//! End-to-end timing closure on benchmark design D1: the same violating
//! snapshot optimized twice — once trusting original GBA, once with the
//! mGBA-corrected timer — and the resulting quality of results compared
//! (the paper's Table 2 story on one design).
//!
//! Run with `cargo run --release -p bench --example timing_closure`.

use bench::build_flow_engine;
use optim::prelude::*;

fn show(tag: &str, r: &FlowResult) {
    println!(
        "\n[{tag}] {} passes, {} upsizes, {} buffers, {} recovery downsizes",
        r.passes, r.counts.upsizes, r.counts.buffers, r.counts.downsizes
    );
    println!(
        "  runtime {:.0} ms (of which mGBA fitting {:.0} ms), closed = {}",
        r.elapsed.as_secs_f64() * 1e3,
        r.mgba_time.as_secs_f64() * 1e3,
        r.closed
    );
    println!(
        "  area {:.0} -> {:.0} um^2, leakage {:.0} -> {:.0} nW, buffers {}",
        r.qor_initial.area,
        r.qor_final.area,
        r.qor_initial.leakage,
        r.qor_final.leakage,
        r.qor_final.buffers
    );
    println!(
        "  signoff (golden PBA): WNS {:.1} ps, TNS {:.1} ps, {} violating endpoints",
        r.qor_final_pba.wns, r.qor_final_pba.tns, r.qor_final_pba.violating_endpoints
    );
}

fn main() {
    let spec = DesignSpec::D1;
    println!("timing closure on {spec} (same snapshot, two timers)");

    let mut gba_sta = build_flow_engine(spec);
    println!(
        "initial: WNS {:.1} ps, TNS {:.1} ps, {} violating endpoints, area {:.0} um^2",
        gba_sta.wns(),
        gba_sta.tns(),
        gba_sta.violating_endpoints().len(),
        gba_sta.netlist().total_area()
    );
    let gba = run_flow(&mut gba_sta, &FlowConfig::gba());
    show("GBA flow", &gba);

    let mut mgba_sta = build_flow_engine(spec);
    let mgba = run_flow(
        &mut mgba_sta,
        &FlowConfig::mgba(MgbaConfig::default(), Solver::ScgRs),
    );
    show("mGBA flow", &mgba);

    println!(
        "\nmGBA flow vs GBA flow: {:+.2}% area, {:+.2}% leakage, {:+} transforms",
        100.0 * (gba.qor_final.area - mgba.qor_final.area) / gba.qor_final.area,
        100.0 * (gba.qor_final.leakage - mgba.qor_final.leakage) / gba.qor_final.leakage,
        gba.counts.total() as i64 - mgba.counts.total() as i64
    );
    println!("(positive = the corrected timer avoided over-design)");
}
