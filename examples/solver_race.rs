//! The solver stack head-to-head on one fitting problem (the paper's
//! Table 4 on a single design): gradient descent, stochastic conjugate
//! gradient (Algorithm 2), uniform row sampling over SCG (Algorithm 1),
//! and the deterministic CGNR reference.
//!
//! Run with `cargo run --release -p bench --example solver_race [D1|D2|D8]`.

use bench::build_engine;
use mgba::prelude::*;

fn main() {
    let spec = match std::env::args().nth(1).as_deref() {
        Some("D2") => DesignSpec::D2,
        Some("D8") => DesignSpec::D8,
        _ => DesignSpec::D1,
    };
    let config = MgbaConfig::default();
    let mut sta = build_engine(spec);
    sta.clear_weights();
    let selection = mgba::select_paths(
        &sta,
        SelectionScheme::PerEndpoint {
            k: config.paths_per_endpoint,
            max_total: config.max_paths,
        },
        true,
    );
    let problem = FitProblem::build(&sta, &selection.paths, config.epsilon, config.penalty);
    let x0 = vec![0.0; problem.num_gates()];
    println!(
        "{spec}: fitting {} paths x {} gates (nnz {}), initial mse {:.3e}\n",
        problem.num_paths(),
        problem.num_gates(),
        problem.matrix().nnz(),
        problem.mse(&x0)
    );
    println!(
        "{:<18} {:>10} {:>9} {:>10} {:>12} {:>6}",
        "solver", "mse", "time(ms)", "iters", "row grads", "conv"
    );
    for solver in [Solver::Gd, Solver::Scg, Solver::ScgRs, Solver::Cgnr] {
        let r = solver.solve(&problem, &config);
        println!(
            "{:<18} {:>10.3e} {:>9.1} {:>10} {:>12} {:>6}",
            solver.paper_name(),
            problem.mse(&r.x),
            r.elapsed.as_secs_f64() * 1e3,
            r.iterations,
            r.rows_touched,
            r.converged
        );
    }
    println!("\npaper shape: similar accuracy; SCG beats GD; row sampling beats plain SCG");
}
