//! Quickstart: generate a design, time it with GBA, measure the
//! GBA-vs-PBA pessimism, fit the mGBA correction, and show the corrected
//! slacks tracking golden PBA.
//!
//! Run with `cargo run --release -p bench --example quickstart`.

use mgba::prelude::*;
use sta::{gba_path_timing, paths::worst_paths_to_endpoint, pba_timing};

fn main() -> Result<(), netlist::BuildError> {
    // 1. A synthetic placed design: 3 pipeline stages, ~250 cells.
    let design = GeneratorConfig::small(7).generate();
    println!(
        "design `{}`: {} cells, {} nets",
        design.name(),
        design.num_cells(),
        design.num_nets()
    );

    // 2. Time it. Pick a period that leaves the worst endpoint violating.
    let probe = Sta::new(
        design.clone(),
        Sdc::with_period(10_000.0),
        DerateSet::standard(),
    )?;
    let period = 10_000.0 - probe.wns() - 250.0;
    let mut sta = Sta::new(design, Sdc::with_period(period), DerateSet::standard())?;
    println!(
        "GBA timing @ {period:.0} ps: WNS = {:.1} ps, TNS = {:.1} ps, {} violating endpoints",
        sta.wns(),
        sta.tns(),
        sta.violating_endpoints().len()
    );

    // 3. The pessimism gap on the worst path: GBA derates each gate at
    //    its worst-case depth; golden PBA uses the path's true depth.
    let worst = sta.violating_endpoints()[0];
    let path = worst_paths_to_endpoint(&sta, worst, 1)
        .into_iter()
        .next()
        .expect("violating endpoint has a path");
    let gba = gba_path_timing(&sta, &path);
    let pba = pba_timing(&sta, &path);
    println!(
        "\nworst path ({} gates, bbox {:.0} um):",
        path.num_gates(),
        pba.distance
    );
    println!(
        "  GBA slack  {:>9.1} ps   (per-gate worst-depth derates)",
        gba.slack
    );
    println!(
        "  PBA slack  {:>9.1} ps   (path derate {:.4}, with CRPR)",
        pba.slack, pba.derate
    );
    println!("  pessimism  {:>9.1} ps", pba.slack - gba.slack);

    // 4. Fit the mGBA correction and re-inspect the same path.
    let report = run_mgba(&mut sta, &MgbaConfig::default(), Solver::ScgRs);
    let corrected = gba_path_timing(&sta, &path);
    println!(
        "\nmGBA fit: {} paths, {} weighted gates, solved in {:.1} ms ({} iterations)",
        report.num_paths,
        report.num_gates,
        report.solve_time.as_secs_f64() * 1e3,
        report.iterations
    );
    println!(
        "  mGBA slack {:>9.1} ps   (graph-based speed, path-based accuracy)",
        corrected.slack
    );
    println!(
        "  pass ratio: GBA {:.1}% -> mGBA {:.1}%  (good = <5% or <5 ps error vs PBA)",
        report.pass_before.percent(),
        report.pass_after.percent()
    );
    Ok(())
}
