//! Multi-corner signoff: the same design timed at slow/typical/fast
//! corners, setup judged at the slow corner and hold at the fast corner,
//! with the mGBA correction fitted independently per corner (each
//! corner's GBA has its own pessimism against that corner's PBA).
//!
//! Run with `cargo run --release -p bench --example multi_corner`.

use mgba::prelude::*;
use sta::{Corner, MultiCornerSta};

fn main() -> Result<(), netlist::BuildError> {
    let design = GeneratorConfig::small(42).generate();
    let mut sdc = Sdc::with_period(2500.0);
    sdc.input_delay_early = 1200.0;
    sdc.input_delay_late = 1400.0;

    let mc = MultiCornerSta::new(&design, &sdc, Corner::signoff_set())?;
    println!("three-corner signoff of `{}`:\n", design.name());
    print!("{}", mc.report());

    // Fit the pessimism correction per corner and compare the gains.
    println!("\nper-corner mGBA fits:");
    for corner in Corner::signoff_set() {
        let scaled = design.with_scaled_delays(corner.delay_scale);
        let mut corner_sdc = sdc.clone();
        corner_sdc.input_delay_late *= corner.delay_scale;
        corner_sdc.input_delay_early *= corner.delay_scale;
        let mut sta = Sta::new(scaled, corner_sdc, corner.derates.clone())?;
        let report = run_mgba(&mut sta, &MgbaConfig::default(), Solver::ScgRs);
        if report.num_paths == 0 {
            println!("  {:<8} no violating paths to fit", corner.name);
            continue;
        }
        println!(
            "  {:<8} {} paths, pass ratio {:.1}% -> {:.1}%, WNS {:.0} -> {:.0} ps",
            corner.name,
            report.num_paths,
            report.pass_before.percent(),
            report.pass_after.percent(),
            mc.corner(&corner.name).expect("corner exists").wns(),
            sta.wns()
        );
    }
    println!("\n(the slow corner dominates setup; its fit matters most for closure)");
    Ok(())
}
