//! The paper's Fig. 2 worked example, reproduced exactly: a shared
//! logic prefix that reaches one capture flop through 5 gates and
//! another through 6, timed with the paper's Table 1 derate table and
//! idealized 100 ps gates.
//!
//! GBA assigns every shared gate the *minimum* depth over the two paths
//! (depth 5 → derate 1.20 at the 0.5 distance row), so the 6-gate path
//! is over-derated relative to PBA's uniform path derate (depth 6 →
//! 1.15) — the delay gap the whole framework exists to remove.
//!
//! Run with `cargo run --release -p bench --example pessimism_gap`.

use mgba::prelude::*;
use netlist::{DriveStrength, Function, LibCell, Library, NetlistBuilder, Point};
use sta::aocv::DeratingTable;

/// An idealized library: every gate is exactly 100 ps, no load or slew
/// dependence, no wire delay — so the arithmetic matches the paper's.
fn ideal_library() -> Library {
    let mut lib = Library::new("std45"); // parser-compatible name
    lib.wire_cap_per_um = 0.0;
    lib.wire_delay_per_um = 0.0;
    lib.wire_delay_per_um2 = 0.0;
    let cell = |name: &str, function: Function, intrinsic: f64| LibCell {
        name: name.to_owned(),
        function,
        drive: DriveStrength::X1,
        area: 1.0,
        leakage: 1.0,
        input_cap: 0.0,
        intrinsic,
        drive_res: 0.0,
        slew_sens: 0.0,
        slew_intrinsic: 0.0,
        slew_res: 0.0,
        max_load: f64::INFINITY,
        setup: 0.0,
        hold: 0.0,
    };
    lib.add(cell("IN_PORT", Function::Input, 0.0));
    lib.add(cell("OUT_PORT", Function::Output, 0.0));
    lib.add(cell("BUF_X1", Function::Buf, 100.0));
    lib.add(cell("DFF_X1", Function::Dff, 0.0));
    lib
}

fn main() -> Result<(), netlist::BuildError> {
    let mut b = NetlistBuilder::new("fig2", ideal_library());
    let clk = b.add_clock_port("clk", Point::ORIGIN);
    let d = b.add_input("d", Point::ORIGIN);
    let ff1 = b.add_flip_flop("FF1", "DFF_X1", Point::ORIGIN, clk)?;
    b.connect_flip_flop_d_net(ff1, d);
    // Shared prefix U1–U4, then U5→FF3 (5 gates) or U6,U7→FF4 (6 gates).
    let mut prev = b.cell_output(ff1);
    for i in 1..=4 {
        let u = b.add_gate(&format!("U{i}"), "BUF_X1", Point::ORIGIN, &[prev])?;
        prev = b.cell_output(u);
    }
    let u5 = b.add_gate("U5", "BUF_X1", Point::ORIGIN, &[prev])?;
    let ff3 = b.add_flip_flop("FF3", "DFF_X1", Point::ORIGIN, clk)?;
    b.connect_flip_flop_d(ff3, u5)?;
    let u6 = b.add_gate("U6", "BUF_X1", Point::ORIGIN, &[prev])?;
    let u7 = b.add_gate("U7", "BUF_X1", Point::ORIGIN, &[b.cell_output(u6)])?;
    let ff4 = b.add_flip_flop("FF4", "DFF_X1", Point::ORIGIN, clk)?;
    b.connect_flip_flop_d(ff4, u7)?;
    for (i, ff) in [ff1, ff3, ff4].into_iter().enumerate() {
        let q = b.cell_output(ff);
        b.add_output(&format!("po{i}"), Point::ORIGIN, q)?;
    }
    let netlist = b.build()?;

    // Paper Table 1 derates; neutral clock derates so the gap is pure AOCV.
    let derates = DerateSet {
        data_late: DeratingTable::paper_table1(),
        data_early: DeratingTable::flat(0.95),
        clock_late: 1.0,
        clock_early: 1.0,
    };
    let sta = Sta::new(netlist, Sdc::with_period(1000.0), derates)?;
    let nl = sta.netlist();

    println!("Fig. 2 reproduction: cell depths and derates (100 ps gates)\n");
    println!(
        "{:>5} {:>10} {:>8} {:>10}",
        "gate", "GBA depth", "derate", "delay(ps)"
    );
    for name in ["U1", "U2", "U3", "U4", "U5", "U6", "U7"] {
        let c = nl.find_cell(name).expect("gate exists");
        let depth = sta.depth_info().gba_depth(c).expect("on a path");
        println!(
            "{name:>5} {depth:>10} {:>8.2} {:>10.1}",
            sta.gate_derate(c),
            sta.gate_delay(c) * sta.gate_derate(c)
        );
    }

    let ff4 = nl.find_cell("FF4").expect("FF4 exists");
    let path = sta::paths::worst_paths_to_endpoint(&sta, ff4, 1)
        .into_iter()
        .next()
        .expect("FF1→FF4 path exists");
    let gba = sta::gba_path_timing(&sta, &path);
    let pba = sta::pba_timing(&sta, &path);
    println!("\nFF1 → FF4 data path (6 gates):");
    println!(
        "  d_gba = {:.0} ps   (paper: 740 ps with its gate depths)",
        gba.arrival
    );
    println!(
        "  d_pba = {:.0} ps = 100 ps x {:.2} x 6   (paper: 690 ps)",
        pba.arrival, pba.derate
    );
    println!(
        "  gap   = {:.0} ps of pure GBA pessimism",
        gba.arrival - pba.arrival
    );
    Ok(())
}
