//! Workspace-level integration tests live in `tests/tests/`.
