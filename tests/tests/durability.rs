//! Durable-session integration tests: write-ahead logging, on-disk
//! checkpoints, and crash-safe restart recovery (`serve --state-dir`,
//! DESIGN.md §16).
//!
//! Invariants exercised here:
//!
//! - a restarted server replays checkpoint + WAL and answers `slack`/
//!   `wns`/`tns`/`history` byte-identically to the pre-restart session;
//! - checkpoints compact the WAL and replay composes checkpoint anchor
//!   with the remaining tail, including warm-refit records that need
//!   the replayed cold fit to regenerate the calibration cache;
//! - a WAL truncated at *any* byte offset (the kill -9 torn-tail case)
//!   recovers the clean prefix of mutations — never a panic, never a
//!   half-applied record;
//! - `health` reports the durability facts (`durable`, `recovered`,
//!   `wal_records`, `last_checkpoint_seq`, `degraded`);
//! - with `--state-dir` set, `snapshot`/`restore` paths are confined to
//!   the state dir — absolute paths and `..` components get a
//!   structured `path_escape` error;
//! - the `query` client's retry budget rides through a server restart
//!   mid-pipeline: in-flight requests are replayed onto the recovered
//!   server and the answers match the pre-restart bytes.

use server::client::{Client, ClientConfig};
use server::{serve_stream, Server, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};

/// A unique, empty scratch directory under the system temp dir.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mgba_durability_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Runs one `serve --stdio`-equivalent session over `requests` and
/// returns the response lines.
fn run(config: &ServerConfig, requests: &[String]) -> Vec<String> {
    let mut script = requests.join("\n");
    script.push('\n');
    let out = serve_stream(config, script.as_bytes(), Vec::<u8>::new()).expect("stream run");
    String::from_utf8(out)
        .expect("utf8 responses")
        .lines()
        .map(str::to_owned)
        .collect()
}

fn durable(dir: &Path) -> ServerConfig {
    ServerConfig {
        state_dir: Some(dir.to_owned()),
        ..ServerConfig::default()
    }
}

fn req(line: &str) -> String {
    line.to_owned()
}

fn ok(line: &str) -> bool {
    line.contains("\"ok\":true")
}

/// The read block both restart tests replay: identical ids before and
/// after restart so the response lines must match byte-for-byte.
fn reads() -> Vec<String> {
    vec![
        req(r#"{"id":40,"cmd":"wns"}"#),
        req(r#"{"id":41,"cmd":"tns"}"#),
        req(r#"{"id":42,"cmd":"slack","top":5}"#),
        req(r#"{"id":43,"cmd":"history"}"#),
    ]
}

#[test]
fn restart_replays_the_wal_to_byte_identical_reads() {
    let dir = scratch("restart");
    let mut first = vec![
        req(r#"{"id":1,"cmd":"load","design":"small:5"}"#),
        req(r#"{"id":2,"cmd":"calibrate","solver":"scgrs"}"#),
        req(r#"{"id":3,"cmd":"commit","cell":"g_1_0_0","to":"up"}"#),
    ];
    first.extend(reads());
    first.push(req(r#"{"id":44,"cmd":"health"}"#));
    first.push(req(r#"{"id":45,"cmd":"shutdown"}"#));
    let before = run(&durable(&dir), &first);
    for (r, resp) in first.iter().zip(&before) {
        assert!(ok(resp), "request {r} failed: {resp}");
    }
    // Durability on, nothing recovered yet, three mutations logged.
    assert!(before[7].contains("\"durable\":true"), "{}", before[7]);
    assert!(before[7].contains("\"recovered\":false"), "{}", before[7]);
    assert!(before[7].contains("\"wal_records\":3"), "{}", before[7]);
    assert!(dir.join("default.wal").exists(), "WAL file persists");

    // Same state dir, a fresh process: recovery replays the WAL tail
    // (no checkpoint was due) and every read answers the same bytes.
    let mut second = reads();
    second.push(req(r#"{"id":44,"cmd":"health"}"#));
    second.push(req(r#"{"id":45,"cmd":"shutdown"}"#));
    let after = run(&durable(&dir), &second);
    assert_eq!(
        &after[..4],
        &before[3..7],
        "recovered reads must be byte-identical"
    );
    assert!(after[4].contains("\"recovered\":true"), "{}", after[4]);
    assert!(after[4].contains("\"wal_records\":3"), "{}", after[4]);
    assert!(!after[4].contains("\"degraded\":true"), "{}", after[4]);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoints_compact_the_wal_and_replay_composes_anchor_plus_tail() {
    let dir = scratch("checkpoint");
    let config = ServerConfig {
        checkpoint_every: 1,
        ..durable(&dir)
    };
    // checkpoint_every=1 cuts a checkpoint after every mutation. The
    // final commit is a warm refit: its anchor is the post-load state
    // with the cold calibrate still in the tail (the calibration cache
    // cannot be checkpointed), so replay re-runs calibrate + commit.
    let mut first = vec![
        req(r#"{"id":1,"cmd":"load","design":"small:7"}"#),
        req(r#"{"id":2,"cmd":"calibrate","solver":"cgnr"}"#),
        req(r#"{"id":3,"cmd":"commit","cell":"g_1_0_0","to":"up"}"#),
    ];
    first.extend(reads());
    first.push(req(r#"{"id":44,"cmd":"shutdown"}"#));
    let before = run(&config, &first);
    for (r, resp) in first.iter().zip(&before) {
        assert!(ok(resp), "request {r} failed: {resp}");
    }
    // The checkpoint exists and the WAL was compacted down to the tail
    // (calibrate + commit), not the full history.
    assert!(dir.join("default.ckpt").exists(), "checkpoint persists");
    let wal_bytes = std::fs::read(dir.join("default.wal")).expect("wal readable");
    let scan = server::wal::scan(&wal_bytes);
    assert_eq!(scan.records.len(), 2, "compacted tail: {:?}", scan.records);
    assert!(scan.records[0].contains("\"cmd\":\"calibrate\""));
    assert!(scan.records[1].contains("\"cmd\":\"commit\""));

    let mut second = reads();
    second.push(req(r#"{"id":44,"cmd":"health"}"#));
    second.push(req(r#"{"id":45,"cmd":"shutdown"}"#));
    let after = run(&config, &second);
    assert_eq!(
        &after[..4],
        &before[3..7],
        "checkpoint + tail replay must reproduce the exact bytes"
    );
    assert!(after[4].contains("\"recovered\":true"), "{}", after[4]);
    // Three mutations total; the newest checkpoint anchors after the
    // load (seq 1), the warm tail replays on top.
    assert!(after[4].contains("\"wal_records\":3"), "{}", after[4]);
    assert!(
        after[4].contains("\"last_checkpoint_seq\":1"),
        "{}",
        after[4]
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wal_truncated_at_every_byte_offset_recovers_the_clean_prefix() {
    // Build a real WAL (no checkpoint: default cadence is far away),
    // then simulate kill -9 at every byte offset by truncating a copy
    // and restarting on it. Each restart must come up serving exactly
    // the prefix of mutations whose frames survived — byte-identical
    // to a reference server that only ever executed that prefix.
    let dir = scratch("sweep_build");
    let mutations = [
        req(r#"{"id":1,"cmd":"load","design":"small:3"}"#),
        req(r#"{"id":2,"cmd":"commit","cell":"g_1_0_0","to":"up"}"#),
        req(r#"{"id":3,"cmd":"commit","cell":"g_1_1_0","to":"up"}"#),
    ];
    let mut first = mutations.to_vec();
    first.push(req(r#"{"id":4,"cmd":"shutdown"}"#));
    for resp in run(&durable(&dir), &first) {
        assert!(ok(&resp), "{resp}");
    }
    let wal = std::fs::read(dir.join("default.wal")).expect("wal readable");
    let full = server::wal::scan(&wal);
    assert_eq!(full.records.len(), mutations.len());
    assert!(full.truncated.is_none());
    // Frame boundaries: truncating at frame_ends[k] leaves k records.
    let mut frame_ends = vec![0usize];
    let mut end = 0usize;
    for rec in &full.records {
        end += server::wal::HEADER_LEN + rec.len();
        frame_ends.push(end);
    }
    let probe = [
        req(r#"{"id":50,"cmd":"wns"}"#),
        req(r#"{"id":51,"cmd":"shutdown"}"#),
    ];
    // Reference responses per surviving-prefix length, computed on an
    // in-memory server (durability off): the durable envelope adds
    // nothing when the session is healthy.
    let references: Vec<String> = (0..=mutations.len())
        .map(|k| {
            let mut script = mutations[..k].to_vec();
            script.extend(probe.iter().cloned());
            run(&ServerConfig::default(), &script)[k].clone()
        })
        .collect();
    for cut in 0..=wal.len() {
        let case = scratch("sweep_case");
        std::fs::write(case.join("default.wal"), &wal[..cut]).expect("truncated copy");
        let responses = run(&durable(&case), &probe);
        let k = frame_ends.iter().filter(|e| **e <= cut).count() - 1;
        assert_eq!(
            responses[0], references[k],
            "cut at byte {cut}: must serve exactly the {k}-record prefix"
        );
        // Recovery truncated the torn tail in place: the WAL on disk is
        // back to a clean prefix.
        let healed = std::fs::read(case.join("default.wal")).expect("wal readable");
        assert_eq!(healed.len(), frame_ends[k], "cut at byte {cut}");
        let _ = std::fs::remove_dir_all(&case);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn snapshot_and_restore_paths_are_confined_to_the_state_dir() {
    let dir = scratch("confine");
    let responses = run(
        &durable(&dir),
        &[
            req(r#"{"id":1,"cmd":"load","design":"small:5"}"#),
            req(r#"{"id":2,"cmd":"snapshot","file":"../escape.snap"}"#),
            req(r#"{"id":3,"cmd":"snapshot","file":"/tmp/abs_escape.snap"}"#),
            req(r#"{"id":4,"cmd":"snapshot","file":"inside.snap"}"#),
            req(r#"{"id":5,"cmd":"restore","file":"inside.snap"}"#),
            req(r#"{"id":6,"cmd":"restore","file":"also/../nested.snap"}"#),
            req(r#"{"id":7,"cmd":"wns"}"#),
            req(r#"{"id":8,"cmd":"shutdown"}"#),
        ],
    );
    for i in [1, 2, 5] {
        assert!(
            responses[i].contains("\"code\":\"path_escape\""),
            "{}",
            responses[i]
        );
        assert!(
            responses[i].contains("escapes the state dir"),
            "{}",
            responses[i]
        );
    }
    assert!(ok(&responses[3]), "{}", responses[3]);
    assert!(ok(&responses[4]), "{}", responses[4]);
    assert!(ok(&responses[6]), "{}", responses[6]);
    // The confined write landed inside the state dir; nothing escaped.
    assert!(dir.join("inside.snap").exists());
    assert!(!dir.parent().unwrap().join("escape.snap").exists());
    assert!(!Path::new("/tmp/abs_escape.snap").exists());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn close_session_deletes_durable_files_but_restart_keeps_them() {
    // `close_session` means "forget this session" — its WAL and
    // checkpoint go with it. A plain shutdown keeps both (that is the
    // whole point of durability).
    let dir = scratch("close");
    let responses = run(
        &durable(&dir),
        &[
            req(r#"{"id":1,"proto":2,"session":"keep","cmd":"load","design":"small:3"}"#),
            req(r#"{"id":2,"proto":2,"session":"drop","cmd":"load","design":"small:5"}"#),
            req(r#"{"id":3,"proto":2,"session":"drop","cmd":"close_session"}"#),
            req(r#"{"id":4,"proto":2,"session":"keep","cmd":"shutdown"}"#),
        ],
    );
    for r in &responses {
        assert!(ok(r), "{r}");
    }
    assert!(dir.join("keep.wal").exists());
    assert!(
        !dir.join("drop.wal").exists(),
        "close_session deletes the WAL"
    );
    assert!(!dir.join("drop.ckpt").exists());

    // The kept session recovers on restart with its design loaded.
    let after = run(
        &durable(&dir),
        &[
            req(r#"{"id":5,"proto":2,"session":"keep","cmd":"wns"}"#),
            req(r#"{"id":6,"proto":2,"session":"drop","cmd":"wns"}"#),
            req(r#"{"id":7,"proto":2,"session":"keep","cmd":"shutdown"}"#),
        ],
    );
    assert!(ok(&after[0]), "kept session recovered: {}", after[0]);
    assert!(
        after[1].contains("no design loaded"),
        "closed session must restart blank: {}",
        after[1]
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// --- restart under a live client -----------------------------------------

fn transact(addr: SocketAddr, requests: &[&str]) -> Vec<String> {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut w = stream.try_clone().expect("clone");
    for r in requests {
        writeln!(w, "{r}").expect("send");
    }
    w.flush().expect("flush");
    BufReader::new(stream)
        .lines()
        .take(requests.len())
        .map(|l| l.expect("read response"))
        .collect()
}

/// A byte-level TCP relay with a stable front address. The test points
/// the client here; "crashing" severs every proxied socket (the client
/// sees a reset, exactly like a killed server) and reconnects route to
/// whatever backend is current — so the client's address never changes
/// across the restart, like a daemon restarting on its well-known port.
struct Relay {
    backend: std::sync::Mutex<SocketAddr>,
    live: std::sync::Mutex<Vec<TcpStream>>,
}

impl Relay {
    fn start(backend: SocketAddr) -> (SocketAddr, std::sync::Arc<Relay>) {
        use std::io::Read as _;
        use std::sync::Arc;
        fn pump(mut from: TcpStream, mut to: TcpStream) {
            let mut buf = [0u8; 4096];
            loop {
                match from.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => {
                        if to.write_all(&buf[..n]).is_err() {
                            break;
                        }
                    }
                }
            }
            let _ = to.shutdown(std::net::Shutdown::Both);
            let _ = from.shutdown(std::net::Shutdown::Both);
        }
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("relay bind");
        let addr = listener.local_addr().expect("relay addr");
        let relay = Arc::new(Relay {
            backend: std::sync::Mutex::new(backend),
            live: std::sync::Mutex::new(Vec::new()),
        });
        let state = Arc::clone(&relay);
        std::thread::spawn(move || {
            for client in listener.incoming() {
                let Ok(client) = client else { break };
                let upstream_addr = *state.backend.lock().unwrap();
                let Ok(upstream) = TcpStream::connect(upstream_addr) else {
                    let _ = client.shutdown(std::net::Shutdown::Both);
                    continue;
                };
                let _ = client.set_nodelay(true);
                let _ = upstream.set_nodelay(true);
                {
                    let mut live = state.live.lock().unwrap();
                    live.push(client.try_clone().expect("clone"));
                    live.push(upstream.try_clone().expect("clone"));
                }
                let (c, u) = (
                    client.try_clone().expect("clone"),
                    upstream.try_clone().expect("clone"),
                );
                std::thread::spawn(move || pump(client, u));
                std::thread::spawn(move || pump(upstream, c));
            }
        });
        (addr, relay)
    }

    /// Retargets future connections, then severs every live socket.
    fn crash_over_to(&self, backend: SocketAddr) {
        *self.backend.lock().unwrap() = backend;
        for s in self.live.lock().unwrap().drain(..) {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
    }
}

#[test]
fn client_retries_ride_through_a_server_restart_mid_pipeline() {
    let dir = scratch("client_restart");
    let config = durable(&dir);
    let srv = Server::bind("127.0.0.1:0", config.clone()).expect("bind");
    let addr1 = srv.local_addr().expect("addr");
    let server1 = std::thread::spawn(move || srv.run().expect("server run"));
    let (front, relay) = Relay::start(addr1);

    let mut client = Client::connect(
        &front.to_string(),
        ClientConfig {
            connect_retries: 5,
            backoff_ms: 20,
            ..ClientConfig::default()
        },
    )
    .expect("connect");
    let wns_line = r#"{"id":7,"proto":2,"session":"default","cmd":"wns"}"#;
    for line in [
        r#"{"id":1,"proto":2,"session":"default","cmd":"load","design":"small:5"}"#,
        r#"{"id":2,"proto":2,"session":"default","cmd":"commit","cell":"g_1_0_0","to":"up"}"#,
        wns_line,
    ] {
        client.send_raw(line).expect("send");
    }
    let mut before = Vec::new();
    for _ in 0..3 {
        before.push(client.recv_raw().expect("recv"));
    }
    assert!(before.iter().all(|r| ok(r)), "{before:?}");

    // "Crash": retire server 1 (every acknowledged mutation is already
    // fsynced in the WAL), recover a fresh server from the state dir,
    // and cut the client's connection out from under it.
    let bye = transact(addr1, &[r#"{"id":99,"cmd":"shutdown"}"#]);
    assert!(bye[0].contains("\"draining\":true"), "{}", bye[0]);
    server1.join().expect("first server exits");
    let srv = Server::bind("127.0.0.1:0", config).expect("bind second");
    let addr2 = srv.local_addr().expect("addr");
    let server2 = std::thread::spawn(move || srv.run().expect("server run"));
    relay.crash_over_to(addr2);

    // The client never learns about the restart explicitly: its next
    // request hits the dead socket, the existing retry budget reconnects
    // and replays it, and the recovered server must answer with the
    // same timing result (`request_id` restarts with the process — it
    // is admission bookkeeping, not session state).
    client.send_raw(wns_line).expect("send across restart");
    let after = client.recv_raw().expect("recv across restart");
    let result = before[2]
        .find("\"result\":")
        .map(|i| &before[2][i..])
        .expect("result payload");
    assert!(ok(&after), "{after}");
    assert!(
        after.ends_with(result),
        "recovered server must answer the replayed read with the same \
         result bytes\n  before: {}\n  after:  {after}",
        before[2]
    );

    let bye = transact(addr2, &[r#"{"id":100,"cmd":"shutdown"}"#]);
    assert!(bye[0].contains("\"draining\":true"), "{}", bye[0]);
    server2.join().expect("second server exits");
    let _ = std::fs::remove_dir_all(&dir);
}
