//! Cross-crate fault suite: walks the failpoint catalog end-to-end and
//! proves every injected fault lands in the designed degradation path —
//! never a crash, never a silently wrong answer.
//!
//! Compiled only under `--features failpoints`; run with
//! `--test-threads=1` (the failpoint registry is process-global, and
//! [`faultinject::scoped`] serializes arming tests through one lock).
//!
//! | failpoint        | injected at             | designed degradation          |
//! |------------------|-------------------------|-------------------------------|
//! | `load.netlist`   | netlist file load       | typed internal error          |
//! | `pba.retime`     | golden path retime      | guards demote to identity     |
//! | `fit.build`      | fit-matrix construction | identity weights, no error    |
//! | `solver.iter`    | each solver iteration   | staged fallback down ladder   |
//! | `weights.write`  | weights sidecar write   | old file intact (atomic)      |
//! | `server.handle`  | server request dispatch | crash-isolated, auto-restored |
//! | `wal.append`     | WAL record write        | session read-only, degraded   |
//! | `wal.fsync`      | WAL record fsync        | session read-only, degraded   |
//! | `wal.checkpoint` | checkpoint + compaction | session read-only, degraded   |
#![cfg(feature = "failpoints")]

use mgba::{
    load_netlist_file, run_mgba, run_mgba_with_accuracy, FallbackStage, MgbaConfig, MgbaError,
    Solver,
};
use netlist::GeneratorConfig;
use server::{Server, ServerConfig};
use sta::{DerateSet, Sdc, Sta};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};

/// A small engine with genuine setup violations (same recipe as
/// `end_to_end.rs`).
fn engine(seed: u64) -> Sta {
    let netlist = GeneratorConfig::small(seed).generate();
    let probe = Sta::new(
        netlist.clone(),
        Sdc::with_period(10_000.0),
        DerateSet::standard(),
    )
    .expect("probe engine builds");
    let max_arrival = probe
        .netlist()
        .endpoints()
        .iter()
        .map(|&e| probe.endpoint_arrival(e))
        .filter(|a| a.is_finite())
        .fold(0.0, f64::max);
    let period = 10_000.0 - probe.wns() - 0.15 * max_arrival;
    Sta::new(netlist, Sdc::with_period(period), DerateSet::standard()).expect("engine builds")
}

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("mgba_fault_suite_{}_{name}", std::process::id()));
    p
}

#[test]
fn load_netlist_failpoint_is_a_typed_error() {
    let path = tmp("load.nl");
    std::fs::write(
        &path,
        netlist::write_netlist(&GeneratorConfig::small(1).generate()),
    )
    .expect("fixture written");
    let path_str = path.to_str().unwrap();
    {
        let _fp = faultinject::scoped("load.netlist=error");
        let err = load_netlist_file(path_str).expect_err("injected failure");
        assert!(matches!(err, MgbaError::Internal(_)), "{err}");
        assert!(err.to_string().contains("load.netlist"), "{err}");
    }
    // Disarmed: the same file loads fine.
    assert!(load_netlist_file(path_str).is_ok());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn delay_failpoint_slows_but_never_alters_results() {
    let path = tmp("delay.nl");
    let design = GeneratorConfig::small(2).generate();
    std::fs::write(&path, netlist::write_netlist(&design)).expect("fixture written");
    let _fp = faultinject::scoped("load.netlist=delay:5");
    let loaded = load_netlist_file(path.to_str().unwrap()).expect("delay is not a failure");
    assert_eq!(loaded.num_cells(), design.num_cells());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn corrupted_golden_retimes_demote_to_identity_weights() {
    // Every PBA retime returns NaN: the fit target is garbage, so the
    // guards must refuse every solver stage and land on identity weights
    // (raw GBA) rather than fitting to non-finite data.
    let mut sta = engine(301);
    let baseline_wns = sta.wns();
    let report = {
        let _fp = faultinject::scoped("pba.retime=nan");
        run_mgba(&mut sta, &MgbaConfig::default(), Solver::ScgRs)
    };
    assert_eq!(report.fallback, FallbackStage::Identity);
    assert!(report.weights.iter().all(|&w| w == 0.0));
    // Identity weights leave the engine exactly at raw GBA.
    assert_eq!(sta.wns().to_bits(), baseline_wns.to_bits());
}

#[test]
fn fit_build_failpoint_degrades_to_identity_with_stage_recorded() {
    let mut sta = engine(302);
    let (report, accuracy) = {
        let _fp = faultinject::scoped("fit.build=error");
        run_mgba_with_accuracy(&mut sta, &MgbaConfig::default(), Solver::ScgRs)
    };
    assert_eq!(report.fallback, FallbackStage::Identity);
    assert!(report.fallback.is_degraded());
    assert!(!report.converged);
    assert!(report.weights.iter().all(|&w| w == 0.0));
    let fault = report.solver_fault.expect("fault recorded");
    assert!(fault.contains("fit.build"), "{fault}");
    // The degradation rung is part of the accuracy report (and its JSON).
    assert_eq!(accuracy.fallback_stage, "identity");
    assert!(accuracy
        .to_json()
        .contains("\"fallback_stage\":\"identity\""));
}

#[test]
fn persistent_solver_faults_walk_the_whole_ladder() {
    let mut sta = engine(303);
    let report = {
        let _fp = faultinject::scoped("solver.iter=nan");
        run_mgba(&mut sta, &MgbaConfig::default(), Solver::ScgRs)
    };
    // Every rung's iterations are poisoned, so the ladder bottoms out.
    assert_eq!(report.fallback, FallbackStage::Identity);
    assert!(report.weights.iter().all(|&w| w == 0.0));
}

#[test]
fn one_shot_solver_fault_demotes_one_rung_and_recovers() {
    let mut sta = engine(304);
    let report = {
        // Only the first iteration anywhere is poisoned: the primary
        // solver trips, the next rung runs clean.
        let _fp = faultinject::scoped("solver.iter=nan*1");
        run_mgba(&mut sta, &MgbaConfig::default(), Solver::ScgRs)
    };
    assert_ne!(report.fallback, FallbackStage::Primary);
    assert!(!report.fallback.is_degraded(), "{:?}", report.fallback);
    assert!(report.weights.iter().all(|w| w.is_finite()));
    assert!(report.weights.iter().any(|&w| w != 0.0));
    // The demoted fit is still a real fit.
    assert!(report.mse_after < report.mse_before);
}

#[test]
fn torn_weights_write_keeps_previous_sidecar() {
    let mut sta = engine(305);
    let report = run_mgba(&mut sta, &MgbaConfig::default(), Solver::Cgnr);
    let path = tmp("torn.weights");
    let path_str = path.to_str().unwrap();
    mgba::write_weights_file(path_str, sta.netlist(), &report.weights).expect("healthy write");
    let before = std::fs::read_to_string(&path).expect("sidecar exists");
    {
        let _fp = faultinject::scoped("weights.write=error");
        let err = mgba::write_weights_file(path_str, sta.netlist(), &report.weights)
            .expect_err("injected torn write");
        assert!(err.to_string().contains("weights.write"), "{err}");
    }
    // The interrupted rewrite never touched the committed file, and the
    // temporary was cleaned up.
    assert_eq!(std::fs::read_to_string(&path).expect("still there"), before);
    assert!(!std::path::Path::new(&format!("{path_str}.tmp")).exists());
    let _ = std::fs::remove_file(&path);
}

// --- TCP chaos: crash isolation over a real socket -----------------------

fn start() -> (SocketAddr, std::thread::JoinHandle<()>) {
    let srv = Server::bind("127.0.0.1:0", ServerConfig::default()).expect("bind localhost");
    let addr = srv.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || srv.run().expect("server run"));
    (addr, handle)
}

fn transact(addr: SocketAddr, requests: &[&str]) -> Vec<String> {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut w = stream.try_clone().expect("clone");
    for r in requests {
        writeln!(w, "{r}").expect("send");
    }
    w.flush().expect("flush");
    BufReader::new(stream)
        .lines()
        .take(requests.len())
        .map(|l| l.expect("read response"))
        .collect()
}

fn wns_field(line: &str) -> &str {
    let start = line.find("\"wns\":").expect("wns field") + 6;
    line[start..].split(&[',', '}'][..]).next().unwrap()
}

fn start_durable(dir: &std::path::Path) -> (SocketAddr, std::thread::JoinHandle<()>) {
    let srv = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            state_dir: Some(dir.to_owned()),
            ..ServerConfig::default()
        },
    )
    .expect("bind localhost");
    let addr = srv.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || srv.run().expect("server run"));
    (addr, handle)
}

/// Scratch state dir for the WAL failpoint scenarios.
fn state_dir(name: &str) -> std::path::PathBuf {
    let dir = tmp(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("state dir");
    dir
}

#[test]
fn wal_append_fault_degrades_the_session_to_read_only() {
    // A failed WAL write means the mutation cannot be made durable: the
    // request is answered `durability_lost`, the in-memory state still
    // serves reads (flagged degraded), and every later mutation is
    // refused up front until a restart — at which point the log, which
    // never acknowledged the lost record, recovers the pre-fault state
    // and the session is writable again.
    let _lock = faultinject::exclusive();
    faultinject::clear();
    let dir = state_dir("wal_append");

    let (addr, handle) = start_durable(&dir);
    let responses = transact(
        addr,
        &[
            r#"{"id":1,"cmd":"load","design":"small:23"}"#,
            r#"{"id":2,"cmd":"wns"}"#,
            r#"{"id":3,"cmd":"failpoint","spec":"wal.append=error*1"}"#,
            r#"{"id":4,"cmd":"commit","cell":"g_1_0_0","to":"up"}"#,
            r#"{"id":5,"cmd":"wns"}"#,
            r#"{"id":6,"cmd":"commit","cell":"g_1_1_0","to":"up"}"#,
            r#"{"id":7,"cmd":"health"}"#,
            r#"{"id":8,"cmd":"shutdown"}"#,
        ],
    );
    faultinject::clear();
    assert_eq!(responses.len(), 8);
    for r in &responses[..3] {
        assert!(r.contains("\"ok\":true"), "{r}");
    }
    // The un-journaled commit is refused with the typed code…
    assert!(responses[3].contains("\"ok\":false"), "{}", responses[3]);
    assert!(
        responses[3].contains("\"code\":\"durability_lost\""),
        "{}",
        responses[3]
    );
    assert!(responses[3].contains("read-only"), "{}", responses[3]);
    // …reads still serve (the commit's state was installed), degraded…
    assert!(responses[4].contains("\"ok\":true"), "{}", responses[4]);
    assert!(
        responses[4].contains("\"degraded\":true"),
        "{}",
        responses[4]
    );
    // …and the loss is sticky for mutations even though the failpoint
    // only fired once.
    assert!(
        responses[5].contains("\"code\":\"durability_lost\""),
        "{}",
        responses[5]
    );
    assert!(
        responses[6].contains("\"degraded\":true"),
        "{}",
        responses[6]
    );
    handle.join().expect("server thread exits");

    // Restart on the same state dir: the torn half-record the failpoint
    // left behind is truncated away, the durable prefix (the load)
    // replays, and the session is writable again.
    let (addr, handle) = start_durable(&dir);
    let responses = transact(
        addr,
        &[
            r#"{"id":9,"cmd":"wns"}"#,
            r#"{"id":10,"cmd":"commit","cell":"g_1_0_0","to":"up"}"#,
            r#"{"id":11,"cmd":"health"}"#,
            r#"{"id":12,"cmd":"shutdown"}"#,
        ],
    );
    assert!(responses[0].contains("\"ok\":true"), "{}", responses[0]);
    assert!(
        !responses[0].contains("\"degraded\":true"),
        "restart clears the degradation: {}",
        responses[0]
    );
    assert!(
        responses[1].contains("\"ok\":true"),
        "mutations work after restart: {}",
        responses[1]
    );
    assert!(
        responses[2].contains("\"recovered\":true"),
        "{}",
        responses[2]
    );
    handle.join().expect("server thread exits");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wal_fsync_fault_is_a_durability_loss_too() {
    let _lock = faultinject::exclusive();
    faultinject::clear();
    let dir = state_dir("wal_fsync");

    let (addr, handle) = start_durable(&dir);
    let responses = transact(
        addr,
        &[
            r#"{"id":1,"cmd":"load","design":"small:24"}"#,
            r#"{"id":2,"cmd":"failpoint","spec":"wal.fsync=error*1"}"#,
            r#"{"id":3,"cmd":"commit","cell":"g_1_0_0","to":"up"}"#,
            r#"{"id":4,"cmd":"wns"}"#,
            r#"{"id":5,"cmd":"shutdown"}"#,
        ],
    );
    faultinject::clear();
    assert!(
        responses[2].contains("\"code\":\"durability_lost\""),
        "{}",
        responses[2]
    );
    assert!(responses[3].contains("\"ok\":true"), "{}", responses[3]);
    assert!(
        responses[3].contains("\"degraded\":true"),
        "{}",
        responses[3]
    );
    handle.join().expect("server thread exits");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wal_checkpoint_fault_is_a_durability_loss() {
    // Checkpointing runs inside the mutation that crossed the cadence;
    // with checkpoint_every=1 the very first logged mutation trips it.
    let _lock = faultinject::exclusive();
    faultinject::clear();
    let dir = state_dir("wal_checkpoint");

    let srv = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            state_dir: Some(dir.clone()),
            checkpoint_every: 1,
            ..ServerConfig::default()
        },
    )
    .expect("bind localhost");
    let addr = srv.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || srv.run().expect("server run"));
    let responses = transact(
        addr,
        &[
            r#"{"id":1,"cmd":"failpoint","spec":"wal.checkpoint=error*1"}"#,
            r#"{"id":2,"cmd":"load","design":"small:25"}"#,
            r#"{"id":3,"cmd":"wns"}"#,
            r#"{"id":4,"cmd":"health"}"#,
            r#"{"id":5,"cmd":"shutdown"}"#,
        ],
    );
    faultinject::clear();
    assert!(
        responses[1].contains("\"code\":\"durability_lost\""),
        "{}",
        responses[1]
    );
    // The load's state was installed (degraded), and health agrees.
    assert!(responses[2].contains("\"ok\":true"), "{}", responses[2]);
    assert!(
        responses[2].contains("\"degraded\":true"),
        "{}",
        responses[2]
    );
    assert!(
        responses[3].contains("\"degraded\":true"),
        "{}",
        responses[3]
    );
    handle.join().expect("server thread exits");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tcp_chaos_panic_is_isolated_and_calibration_survives() {
    // Arming goes over the protocol (`failpoint` command), so hold the
    // process-global registry lock manually for the whole scenario.
    let _lock = faultinject::exclusive();
    faultinject::clear();

    let (addr, handle) = start();
    let responses = transact(
        addr,
        &[
            r#"{"id":1,"cmd":"load","design":"small:21"}"#,
            r#"{"id":2,"cmd":"calibrate","solver":"cgnr"}"#,
            r#"{"id":3,"cmd":"wns"}"#,
            r#"{"id":4,"cmd":"failpoint","spec":"server.handle=panic*1"}"#,
            r#"{"id":5,"cmd":"wns"}"#,
            r#"{"id":6,"cmd":"wns"}"#,
            r#"{"id":7,"cmd":"stats"}"#,
            r#"{"id":8,"cmd":"history"}"#,
            r#"{"id":9,"cmd":"shutdown"}"#,
        ],
    );
    faultinject::clear();
    assert_eq!(responses.len(), 9);
    // Healthy prefix.
    for r in &responses[..4] {
        assert!(r.contains("\"ok\":true"), "{r}");
    }
    assert!(responses[3].contains("\"applied\":1"), "{}", responses[3]);
    // The armed request dies with a structured internal error…
    assert!(responses[4].contains("\"ok\":false"), "{}", responses[4]);
    assert!(
        responses[4].contains("\"kind\":\"internal\""),
        "{}",
        responses[4]
    );
    assert!(responses[4].contains("restored"), "{}", responses[4]);
    // …and the very next query serves the calibrated state, not a
    // degraded one: same WNS bits as before the crash, no degraded flag.
    assert!(responses[5].contains("\"ok\":true"), "{}", responses[5]);
    assert!(!responses[5].contains("degraded"), "{}", responses[5]);
    assert_eq!(wns_field(&responses[5]), wns_field(&responses[2]));
    // The panic is visible in stats, and so is the crash-isolated
    // session rebuild it forced. Stats continuity: the latency counters
    // live on the session handle, so the wns calls from before the
    // crash are still counted after the rebuild.
    assert!(responses[6].contains("\"panics\":1"), "{}", responses[6]);
    assert!(responses[6].contains("\"rebuilds\":1"), "{}", responses[6]);
    assert!(
        responses[6].contains("\"wns\":{\"count\":3"),
        "latency histograms must survive the rebuild: {}",
        responses[6]
    );
    // The calibration-drift history also survives: the ring lives
    // outside the crash-replaced engine state.
    assert!(responses[7].contains("\"count\":1"), "{}", responses[7]);
    assert!(
        responses[7].contains("\"mode\":\"cold\""),
        "{}",
        responses[7]
    );
    assert!(responses[8].contains("\"ok\":true"), "{}", responses[8]);
    handle.join().expect("server thread exits");
}

#[test]
fn tcp_chaos_uncalibrated_panic_degrades_until_recalibrated() {
    let _lock = faultinject::exclusive();
    faultinject::clear();

    let (addr, handle) = start();
    let responses = transact(
        addr,
        &[
            r#"{"id":1,"cmd":"load","design":"small:22"}"#,
            r#"{"id":2,"cmd":"failpoint","spec":"server.handle=panic*1"}"#,
            r#"{"id":3,"cmd":"wns"}"#,
            r#"{"id":4,"cmd":"wns"}"#,
            r#"{"id":5,"cmd":"calibrate","solver":"cgnr"}"#,
            r#"{"id":6,"cmd":"wns"}"#,
            r#"{"id":7,"cmd":"shutdown"}"#,
        ],
    );
    faultinject::clear();
    assert_eq!(responses.len(), 7);
    assert!(
        responses[2].contains("\"kind\":\"internal\""),
        "{}",
        responses[2]
    );
    // Recovered, but the rebuilt session was never calibrated: answers
    // are served with an explicit degraded marker…
    assert!(responses[3].contains("\"ok\":true"), "{}", responses[3]);
    assert!(
        responses[3].contains("\"degraded\":true"),
        "{}",
        responses[3]
    );
    // …until a successful calibration clears it.
    assert!(responses[4].contains("\"ok\":true"), "{}", responses[4]);
    assert!(responses[5].contains("\"ok\":true"), "{}", responses[5]);
    assert!(!responses[5].contains("degraded"), "{}", responses[5]);
    handle.join().expect("server thread exits");
}
