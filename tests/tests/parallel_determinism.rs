//! Cross-crate determinism guarantee of the parallel execution layer:
//! every thread count produces bit-identical results — batch PBA
//! retiming, problem assembly, solver kernels, and the full calibrate
//! flow all the way to the installed weights.
//!
//! This is the property that makes `--threads N` safe to flip in a
//! signoff context: parallelism is a pure speedup, never a numerics
//! change.

use mgba::{run_mgba, FitProblem, MgbaConfig, Solver};
use netlist::GeneratorConfig;
use parallel::Parallelism;
use sta::paths::select_critical_paths;
use sta::{gba_path_timing_batch, pba_timing_batch, DerateSet, Sdc, Sta};

/// A design tight enough to have real violations to fit against.
fn tight_engine(seed: u64) -> Sta {
    let n = GeneratorConfig::small(seed).generate();
    let probe = Sta::new(n.clone(), Sdc::with_period(10_000.0), DerateSet::standard()).unwrap();
    let period = 10_000.0 - probe.wns() - 200.0;
    Sta::new(n, Sdc::with_period(period), DerateSet::standard()).unwrap()
}

#[test]
fn pba_batch_is_bit_identical_across_thread_counts() {
    let sta = tight_engine(2001);
    let paths = select_critical_paths(&sta, 10, 3000, false);
    assert!(paths.len() > 100, "need a real batch, got {}", paths.len());
    let serial = pba_timing_batch(&sta, &paths, Parallelism::serial());
    let serial_gba = gba_path_timing_batch(&sta, &paths, Parallelism::serial());
    for threads in [2, 3, 8] {
        let par = Parallelism::new(threads);
        let pba = pba_timing_batch(&sta, &paths, par);
        let gba = gba_path_timing_batch(&sta, &paths, par);
        for i in 0..paths.len() {
            assert_eq!(pba[i].slack.to_bits(), serial[i].slack.to_bits());
            assert_eq!(pba[i].arrival.to_bits(), serial[i].arrival.to_bits());
            assert_eq!(gba[i].slack.to_bits(), serial_gba[i].slack.to_bits());
        }
    }
}

#[test]
fn objective_and_gradient_are_bit_identical_across_thread_counts() {
    let sta = tight_engine(2002);
    let paths = select_critical_paths(&sta, 10, 3000, false);
    let cfg = MgbaConfig::default();
    let serial = FitProblem::build_par(
        &sta,
        &paths,
        cfg.epsilon,
        cfg.penalty,
        Parallelism::serial(),
    );
    let x: Vec<f64> = (0..serial.num_gates())
        .map(|j| -0.05 + 0.002 * (j % 17) as f64)
        .collect();
    let g0 = serial.gradient(&x);
    for threads in [2, 5] {
        let p = FitProblem::build_par(
            &sta,
            &paths,
            cfg.epsilon,
            cfg.penalty,
            Parallelism::new(threads),
        );
        assert_eq!(p.matrix(), serial.matrix());
        assert_eq!(p.objective(&x).to_bits(), serial.objective(&x).to_bits());
        assert_eq!(p.gradient(&x), g0);
        assert_eq!(p.model_slacks(&x), serial.model_slacks(&x));
    }
}

#[test]
fn calibrate_flow_weights_and_slacks_identical_for_any_thread_count() {
    // The acceptance check: `--threads 1` vs `--threads N` through the
    // whole run_mgba flow (selection, PBA labelling, fit, solve, apply)
    // must install the same weights and report the same slacks.
    let config1 = MgbaConfig::default().with_threads(1);
    let config_n = MgbaConfig::default().with_threads(4);

    for solver in [Solver::ScgRs, Solver::Cgnr] {
        let mut sta1 = tight_engine(2003);
        let mut sta_n = tight_engine(2003);
        let r1 = run_mgba(&mut sta1, &config1, solver);
        let rn = run_mgba(&mut sta_n, &config_n, solver);
        assert_eq!(r1.num_paths, rn.num_paths, "{solver}");
        assert!(r1.num_paths > 0, "{solver}: nothing fitted");
        assert_eq!(r1.weights, rn.weights, "{solver}: weights differ");
        assert_eq!(r1.mse_after.to_bits(), rn.mse_after.to_bits(), "{solver}");
        assert_eq!(r1.pass_after, rn.pass_after, "{solver}");
        // The engines carry identical corrected timing.
        assert_eq!(sta1.wns().to_bits(), sta_n.wns().to_bits(), "{solver}");
        assert_eq!(sta1.tns().to_bits(), sta_n.tns().to_bits(), "{solver}");
    }
}

#[test]
fn mgba_threads_env_is_honored_as_default() {
    // Parallelism::new(0) resolves through (in order): the process-wide
    // CLI override, the MGBA_THREADS environment variable, and the
    // machine width. We can't mutate the environment safely in a
    // multi-threaded test runner, so just pin the resolution invariants.
    let auto = Parallelism::new(0);
    assert!(auto.threads() >= 1);
    assert_eq!(Parallelism::new(1).threads(), 1);
    assert!(Parallelism::new(1).is_serial());
    assert_eq!(Parallelism::new(7).threads(), 7);
}
