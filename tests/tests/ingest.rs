//! EDIF front-door integration: export → import → identical timing,
//! and the collected-issues lint on deliberately broken documents.

use ingest::{import_edif, lint_edif, write_edif};
use mgba::{run_mgba, MgbaConfig, Solver};
use netlist::lint::codes;
use netlist::GeneratorConfig;
use sta::{DerateSet, Sdc, Sta};

/// The acceptance bar for the importer: a design written to EDIF and
/// read back must produce *bit-identical* calibrated WNS/TNS. The
/// importer replays every connection in source order precisely so the
/// float summation order (net loads, endpoint slack sums) is unchanged.
#[test]
fn edif_round_trip_is_bit_identical_on_calibrated_timing() {
    for seed in [601, 602, 603] {
        let original = GeneratorConfig::small(seed).generate();
        let text = write_edif(&original);
        let (imported, _) = import_edif(&text).expect("round trip imports");
        imported.validate().expect("round trip is valid");

        let period = 900.0;
        let mut sta_a = Sta::new(
            original.clone(),
            Sdc::with_period(period),
            DerateSet::standard(),
        )
        .unwrap();
        let mut sta_b = Sta::new(
            imported.clone(),
            Sdc::with_period(period),
            DerateSet::standard(),
        )
        .unwrap();
        assert_eq!(
            sta_a.wns().to_bits(),
            sta_b.wns().to_bits(),
            "seed {seed}: GBA WNS must be bit-identical"
        );
        assert_eq!(
            sta_a.tns().to_bits(),
            sta_b.tns().to_bits(),
            "seed {seed}: GBA TNS must be bit-identical"
        );

        let ra = run_mgba(&mut sta_a, &MgbaConfig::default(), Solver::ScgRs);
        let rb = run_mgba(&mut sta_b, &MgbaConfig::default(), Solver::ScgRs);
        assert_eq!(ra.num_paths, rb.num_paths, "seed {seed}");
        assert_eq!(
            ra.mse_after.to_bits(),
            rb.mse_after.to_bits(),
            "seed {seed}: calibrated fit must be bit-identical"
        );
        assert_eq!(
            sta_a.wns().to_bits(),
            sta_b.wns().to_bits(),
            "seed {seed}: calibrated WNS must be bit-identical"
        );
        assert_eq!(
            sta_a.tns().to_bits(),
            sta_b.tns().to_bits(),
            "seed {seed}: calibrated TNS must be bit-identical"
        );
    }
}

/// Re-exporting an imported design reproduces the same document —
/// the exporter is deterministic and the importer lossless.
#[test]
fn edif_write_import_write_is_a_fixpoint() {
    let original = GeneratorConfig::small(604).generate();
    let first = write_edif(&original);
    let (imported, _) = import_edif(&first).unwrap();
    let second = write_edif(&imported);
    assert_eq!(first, second);
}

/// A document with four distinct defect classes produces one report
/// listing all of them, each with a line/column location.
#[test]
fn lint_reports_every_defect_class_with_locations() {
    let text = r#"(edif broken
  (edifversion 2 0 0)
  (external std45
    (cell INV_X1 (celltype generic)
      (view netlist (viewtype netlist)
        (interface (port A (direction input)) (port Y (direction output))))))
  (library work
    (cell broken (celltype generic)
      (view netlist (viewtype netlist)
        (interface (port a (direction input)) (port y (direction output)))
        (contents
          (instance u0 (viewref netlist (cellref INV_X1 (libraryref std45)))
            (property loc (string "inf,3")))
          (instance u0 (viewref netlist (cellref INV_X1 (libraryref std45))))
          (instance w0 (viewref netlist (cellref WEIRD_X3 (libraryref std45))))
          (instance c0 (viewref netlist (cellref INV_X1 (libraryref std45))))
          (instance c1 (viewref netlist (cellref INV_X1 (libraryref std45))))
          (net na (joined (portref a) (portref A (instanceref u0))))
          (net nu (joined (portref A (instanceref w0))))
          (net l0 (joined (portref Y (instanceref c0)) (portref A (instanceref c1))))
          (net l1 (joined (portref Y (instanceref c1)) (portref A (instanceref c0))))
          (net ny (joined (portref Y (instanceref u0)) (portref y)))))))
  (design broken (cellref broken (libraryref work))))"#;
    let imported = lint_edif(text);
    let report = &imported.report;
    for code in [
        codes::NON_FINITE_ATTR,
        codes::DUPLICATE_CELL,
        codes::UNRESOLVED_REF,
        codes::COMBINATIONAL_CYCLE,
    ] {
        let issue = report
            .issues
            .iter()
            .find(|i| i.code == code)
            .unwrap_or_else(|| panic!("missing {code}:\n{}", report.render_text()));
        assert!(issue.span.is_some(), "{code} carries a location: {issue}");
    }
    assert!(report.num_errors() >= 4, "{}", report.render_text());
    // One pass, one report: the text rendering is stable and complete.
    let rendered = report.render_text();
    assert!(rendered.contains("error ["), "{rendered}");
    assert!(
        rendered.lines().count() == report.issues.len() + 1,
        "{rendered}"
    );
}

/// Truncation sweep: chopping the document anywhere either still
/// imports (impossible here) or fails with a located, non-empty error
/// — never a panic.
#[test]
fn edif_truncation_never_panics() {
    let design = GeneratorConfig::small(605).generate();
    let text = write_edif(&design);
    let step = text.len() / 97 + 1;
    for cut in (0..text.len()).step_by(step) {
        match import_edif(&text[..cut]) {
            Ok(_) => {}
            Err(e) => assert!(!e.to_string().is_empty(), "cut {cut}"),
        }
    }
}
