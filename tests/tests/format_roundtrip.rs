//! The text interchange format round-trips generated designs with
//! timing-exact fidelity.

use netlist::{parse_netlist, write_netlist, DesignSpec, GeneratorConfig};
use sta::{DerateSet, Sdc, Sta};

#[test]
fn roundtrip_preserves_timing_exactly() {
    let original = GeneratorConfig::small(401).generate();
    let text = write_netlist(&original);
    let parsed = parse_netlist(&text).expect("round trip parses");

    let sdc = Sdc::with_period(1500.0);
    let a = Sta::new(original, sdc.clone(), DerateSet::standard()).unwrap();
    let b = Sta::new(parsed, sdc, DerateSet::standard()).unwrap();
    assert_eq!(a.netlist().num_cells(), b.netlist().num_cells());
    assert_eq!(a.wns(), b.wns(), "WNS must be bit-identical");
    assert_eq!(a.tns(), b.tns(), "TNS must be bit-identical");
    for e in a.netlist().endpoints() {
        let name = &a.netlist().cell(e).name;
        let e_b = b.netlist().find_cell(name).expect("same cells by name");
        assert_eq!(a.setup_slack(e), b.setup_slack(e_b), "slack at {name}");
    }
}

#[test]
fn roundtrip_of_benchmark_design() {
    let original = DesignSpec::D1.generate();
    let text = write_netlist(&original);
    let parsed = parse_netlist(&text).expect("benchmark round trip parses");
    assert_eq!(parsed.num_cells(), original.num_cells());
    assert_eq!(parsed.num_nets(), original.num_nets());
    assert_eq!(parsed.total_area(), original.total_area());
    assert_eq!(parsed.buffer_count(), original.buffer_count());
    // Dumps are stable.
    assert_eq!(write_netlist(&parsed), text);
}

#[test]
fn mutated_design_still_roundtrips() {
    let mut n = GeneratorConfig::small(402).generate();
    // Apply a structural edit (buffer insertion), then round trip.
    let (gate, _) = n
        .cells()
        .find(|(_, c)| c.role == netlist::CellRole::Combinational && c.output.is_some())
        .unwrap();
    let net = n.cell(gate).output.unwrap();
    let buf_lib = n
        .library()
        .variant(netlist::Function::Buf, netlist::DriveStrength::X2)
        .unwrap();
    n.insert_buffer(net, buf_lib, "rt_buf", &[]).unwrap();
    n.validate().unwrap();
    let text = write_netlist(&n);
    let parsed = parse_netlist(&text).unwrap();
    assert_eq!(parsed.num_cells(), n.num_cells());
    assert!(parsed.find_cell("rt_buf").is_some());
}
