//! Integration tests of the timing-closure flows: the mGBA-driven flow
//! must never do more optimization work than the GBA-driven flow, and
//! both must leave the design safe under golden PBA.

use mgba::{MgbaConfig, Solver};
use netlist::GeneratorConfig;
use optim::{run_flow, FlowConfig};
use sta::{DerateSet, Sdc, Sta};

fn flow_engine(seed: u64) -> Sta {
    let netlist = GeneratorConfig::small(seed).generate();
    let probe = Sta::new(
        netlist.clone(),
        Sdc::with_period(10_000.0),
        DerateSet::standard(),
    )
    .unwrap();
    let max_arrival = probe
        .netlist()
        .endpoints()
        .iter()
        .map(|&e| probe.endpoint_arrival(e))
        .filter(|a| a.is_finite())
        .fold(0.0, f64::max);
    let period = 10_000.0 - probe.wns() - 0.08 * max_arrival;
    Sta::new(netlist, Sdc::with_period(period), DerateSet::standard()).unwrap()
}

#[test]
fn both_flows_repair_the_design() {
    for seed in [301, 302] {
        for mgba_mode in [false, true] {
            let mut sta = flow_engine(seed);
            let initial_tns = sta.tns();
            assert!(initial_tns < 0.0);
            let cfg = if mgba_mode {
                FlowConfig::mgba(MgbaConfig::default(), Solver::ScgRs)
            } else {
                FlowConfig::gba()
            };
            let r = run_flow(&mut sta, &cfg);
            assert!(
                r.qor_final_pba.tns >= initial_tns,
                "seed {seed} mgba={mgba_mode}: flow must not worsen true timing"
            );
            assert!(r.counts.total() > 0);
        }
    }
}

#[test]
fn mgba_flow_never_does_more_repair_work() {
    for seed in [311, 312] {
        let mut gba_sta = flow_engine(seed);
        let gba = run_flow(&mut gba_sta, &FlowConfig::gba());
        let mut mgba_sta = flow_engine(seed);
        let mgba = run_flow(
            &mut mgba_sta,
            &FlowConfig::mgba(MgbaConfig::default(), Solver::ScgRs),
        );
        assert!(
            mgba.counts.upsizes + mgba.counts.buffers <= gba.counts.upsizes + gba.counts.buffers,
            "seed {seed}: mGBA repair work {} must not exceed GBA {}",
            mgba.counts.upsizes + mgba.counts.buffers,
            gba.counts.upsizes + gba.counts.buffers
        );
        assert!(mgba.qor_final.area <= gba.qor_final.area * 1.01);
    }
}

#[test]
fn recovery_respects_pba_timing_within_tolerance() {
    // After the mGBA flow (repair + recovery in the corrected view), true
    // PBA timing may dip only by the fit tolerance — not catastrophically.
    let mut sta = flow_engine(321);
    let period = sta.sdc().clock_period;
    let r = run_flow(
        &mut sta,
        &FlowConfig::mgba(MgbaConfig::default(), Solver::ScgRs),
    );
    assert!(
        r.qor_final_pba.wns > -0.05 * period,
        "PBA WNS {:.1} dipped more than 5% of the period {period:.0}",
        r.qor_final_pba.wns
    );
}

#[test]
fn flow_reports_runtime_split() {
    let mut sta = flow_engine(331);
    let r = run_flow(
        &mut sta,
        &FlowConfig::mgba(MgbaConfig::default(), Solver::ScgRs),
    );
    assert!(r.mgba_time <= r.elapsed);
    assert!(r.mgba_time.as_nanos() > 0, "mGBA flow must pay for fits");
    let mut sta = flow_engine(331);
    let r = run_flow(&mut sta, &FlowConfig::gba());
    assert_eq!(r.mgba_time.as_nanos(), 0, "GBA flow never fits");
}
