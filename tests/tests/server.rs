//! Integration tests for the mgba-server daemon: a real TCP server on
//! localhost, plus the stdio stream engine for determinism checks.
//!
//! Protocol invariants exercised here:
//!
//! - the full command flow (load → calibrate → query → what-if → commit
//!   → snapshot → restore → stats → shutdown) works over TCP;
//! - responses are byte-identical under `--threads 1` and `--threads 4`;
//! - malformed requests get structured error envelopes and the server
//!   keeps serving;
//! - overload is an explicit rejection, not a hang: every request is
//!   answered even when the bounded queue is full;
//! - expired deadlines are rejected at dequeue;
//! - `shutdown` drains and the server process (thread) exits cleanly.

use server::{serve_stream, Server, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};

fn start(config: ServerConfig) -> (SocketAddr, std::thread::JoinHandle<()>) {
    let srv = Server::bind("127.0.0.1:0", config).expect("bind localhost");
    let addr = srv.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || srv.run().expect("server run"));
    (addr, handle)
}

/// Pipelines `requests` over one connection and reads one response per
/// request, in order.
fn transact(addr: SocketAddr, requests: &[&str]) -> Vec<String> {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut w = stream.try_clone().expect("clone");
    for r in requests {
        writeln!(w, "{r}").expect("send");
    }
    w.flush().expect("flush");
    BufReader::new(stream)
        .lines()
        .take(requests.len())
        .map(|l| l.expect("read response"))
        .collect()
}

fn ok(line: &str) -> bool {
    line.contains("\"ok\":true")
}

#[test]
fn full_command_flow_over_tcp() {
    let dir = std::env::temp_dir().join("mgba_server_integration");
    std::fs::create_dir_all(&dir).unwrap();
    let snap = dir.join("flow.snapshot");
    let snap_str = snap.to_str().unwrap();

    let (addr, handle) = start(ServerConfig::default());
    let snapshot_req = format!(r#"{{"id":9,"cmd":"snapshot","file":"{snap_str}"}}"#);
    let restore_req = format!(r#"{{"id":10,"cmd":"restore","file":"{snap_str}"}}"#);
    let requests = [
        r#"{"id":1,"cmd":"ping"}"#,
        r#"{"id":2,"cmd":"load","design":"small:5"}"#,
        r#"{"id":3,"cmd":"calibrate","solver":"scgrs"}"#,
        r#"{"id":4,"cmd":"slack","top":5}"#,
        r#"{"id":5,"cmd":"wns"}"#,
        r#"{"id":6,"cmd":"tns"}"#,
        r#"{"id":7,"cmd":"path","pba":true}"#,
        r#"{"id":8,"cmd":"stats"}"#,
        &snapshot_req,
        &restore_req,
        r#"{"id":11,"cmd":"wns"}"#,
        r#"{"id":12,"cmd":"shutdown"}"#,
    ];
    let responses = transact(addr, &requests);
    assert_eq!(responses.len(), requests.len());
    for (req, resp) in requests.iter().zip(&responses) {
        assert!(ok(resp), "request {req} failed: {resp}");
    }
    // Calibration actually installed weights…
    assert!(
        responses[2].contains("\"converged\":true"),
        "{}",
        responses[2]
    );
    // …and the restore reproduced the calibrated WNS bit-for-bit: the
    // wns queries before snapshot and after restore match.
    let wns_field = |line: &str| {
        let start = line.find("\"wns\":").expect("wns field") + 6;
        line[start..]
            .split(&[',', '}'][..])
            .next()
            .unwrap()
            .to_owned()
    };
    assert_eq!(wns_field(&responses[4]), wns_field(&responses[10]));
    assert!(responses[11].contains("\"draining\":true"));
    // Graceful drain-then-exit: run() returns, the thread joins.
    handle.join().expect("server thread exits cleanly");
}

#[test]
fn responses_are_bit_identical_across_thread_counts() {
    // The worker serializes execution and responses carry no wall-clock
    // fields, so the entire response stream must be byte-identical no
    // matter how many threads the engine's parallel kernels use.
    let script = concat!(
        r#"{"id":1,"cmd":"load","design":"small:7"}"#,
        "\n",
        r#"{"id":2,"cmd":"calibrate","solver":"scgrs"}"#,
        "\n",
        r#"{"id":3,"cmd":"slack","top":10}"#,
        "\n",
        r#"{"id":4,"cmd":"path","pba":true}"#,
        "\n",
        r#"{"id":5,"cmd":"whatif_resize","cell":"g_1_0_0","to":"up"}"#,
        "\n",
        r#"{"id":6,"cmd":"wns"}"#,
        "\n",
        r#"{"id":7,"cmd":"tns"}"#,
        "\n",
        "this line is not json\n",
        r#"{"id":8,"cmd":"shutdown"}"#,
        "\n",
    );
    let run_with = |threads: usize| -> Vec<u8> {
        parallel::set_global_threads(threads);
        serve_stream(
            &ServerConfig::default(),
            script.as_bytes(),
            Vec::<u8>::new(),
        )
        .expect("stream run")
    };
    let serial = run_with(1);
    let parallel_run = run_with(4);
    parallel::set_global_threads(1);
    assert!(!serial.is_empty());
    assert_eq!(
        String::from_utf8(serial).unwrap(),
        String::from_utf8(parallel_run).unwrap(),
        "threads=1 and threads=4 must produce identical response bytes"
    );
}

#[test]
fn malformed_requests_get_structured_errors_and_serving_continues() {
    let (addr, handle) = start(ServerConfig::default());
    let requests = [
        r#"{"id":1,"cmd":"ping"}"#,
        r#"{"truncated": "#,
        r#"{"id":2,"cmd":"no_such_command"}"#,
        r#"{"id":3,"cmd":"slack"}"#,
        r#"[1,2,3]"#,
        r#"{"id":4,"cmd":"ping"}"#,
        r#"{"id":5,"cmd":"shutdown"}"#,
    ];
    let responses = transact(addr, &requests);
    assert_eq!(responses.len(), requests.len());
    assert!(ok(&responses[0]));
    assert!(
        responses[1].contains("\"kind\":\"usage\""),
        "{}",
        responses[1]
    );
    // Unknown command recovers the request id into the envelope.
    assert!(responses[2].contains("\"id\":2"), "{}", responses[2]);
    assert!(responses[2].contains("\"kind\":\"usage\""));
    // slack before load: a domain error, also structured.
    assert!(responses[3].contains("\"kind\":\"usage\""));
    assert!(responses[3].contains("no design loaded"));
    assert!(responses[4].contains("\"kind\":\"usage\""));
    // The server is still alive and answers normal requests.
    assert!(ok(&responses[5]), "{}", responses[5]);
    assert!(responses[6].contains("\"draining\":true"));
    handle.join().expect("clean exit");
}

#[test]
fn overload_is_an_explicit_rejection_not_a_hang() {
    // Queue depth 1: while the worker executes sleep(300), at most one
    // request can wait; the rest of the burst must be rejected with an
    // explicit overload envelope — and every request must be answered.
    let (addr, handle) = start(ServerConfig {
        queue_depth: 1,
        default_deadline_ms: None,
    });
    let mut requests = vec![r#"{"id":0,"cmd":"sleep","ms":300}"#.to_owned()];
    for i in 1..=8 {
        requests.push(format!(r#"{{"id":{i},"cmd":"ping"}}"#));
    }
    let refs: Vec<&str> = requests.iter().map(String::as_str).collect();
    let responses = transact(addr, &refs);
    assert_eq!(responses.len(), requests.len(), "every request is answered");
    // Overload rejections are answered by the connection's reader
    // thread immediately, so they may arrive ahead of the responses of
    // admitted requests — match by id, not position.
    let overloads = responses
        .iter()
        .filter(|r| r.contains("\"kind\":\"overload\""))
        .count();
    assert!(overloads >= 1, "burst must trip the bounded queue");
    assert!(
        responses
            .iter()
            .any(|r| r.contains("\"slept_ms\":300") && ok(r)),
        "the sleep itself completes: {responses:?}"
    );
    // Cleanup.
    let bye = transact(addr, &[r#"{"id":99,"cmd":"shutdown"}"#]);
    assert!(bye[0].contains("\"draining\":true"));
    handle.join().expect("clean exit");
}

#[test]
fn expired_deadlines_are_rejected_at_dequeue() {
    let (addr, handle) = start(ServerConfig::default());
    let requests = [
        r#"{"id":1,"cmd":"sleep","ms":60}"#,
        r#"{"id":2,"cmd":"ping","deadline_ms":1}"#,
        r#"{"id":3,"cmd":"ping","deadline_ms":60000}"#,
        r#"{"id":4,"cmd":"shutdown"}"#,
    ];
    let responses = transact(addr, &requests);
    assert!(ok(&responses[0]));
    assert!(
        responses[1].contains("\"kind\":\"deadline\""),
        "{}",
        responses[1]
    );
    assert!(
        ok(&responses[2]),
        "generous deadline passes: {}",
        responses[2]
    );
    handle.join().expect("clean exit");
}

#[test]
fn stdio_stream_supports_the_smoke_flow() {
    // The same engine the CLI's `serve --stdio` uses, driven directly.
    let script = concat!(
        r#"{"id":1,"cmd":"load","design":"small:3"}"#,
        "\n",
        r#"{"id":2,"cmd":"calibrate"}"#,
        "\n",
        r#"{"id":3,"cmd":"slack","top":3}"#,
        "\n",
        r#"{"id":4,"cmd":"shutdown"}"#,
        "\n",
    );
    let out = serve_stream(
        &ServerConfig::default(),
        script.as_bytes(),
        Vec::<u8>::new(),
    )
    .expect("stream run");
    let text = String::from_utf8(out).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 4);
    assert!(lines.iter().all(|l| ok(l)), "{text}");
    assert!(lines[3].contains("\"draining\":true"));
}
