//! Integration tests for the mgba-server daemon: a real TCP server on
//! localhost, plus the stdio stream engine for determinism checks.
//!
//! Protocol invariants exercised here:
//!
//! - the full command flow (load → calibrate → query → what-if → commit
//!   → snapshot → restore → stats → shutdown) works over TCP;
//! - responses are byte-identical under `--threads 1` and `--threads 4`,
//!   with the read pool off (`read_workers 0`) and on (`4`);
//! - protocol v2: sessions shard state, every v2 envelope names its
//!   session, and concurrent clients get admission-ordered replies;
//! - protocol v1 requests still work sessionless, pinned byte-for-byte
//!   with the `"deprecated":true` envelope key;
//! - malformed requests get structured error envelopes and the server
//!   keeps serving;
//! - overload is an explicit rejection, not a hang: every request is
//!   answered even when the bounded queue is full;
//! - expired deadlines are rejected at dequeue;
//! - `shutdown` drains and the server process (thread) exits cleanly.

use server::client::{Client, ClientConfig};
use server::proto::Command;
use server::{serve_stream, Server, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};

fn start(config: ServerConfig) -> (SocketAddr, std::thread::JoinHandle<()>) {
    let srv = Server::bind("127.0.0.1:0", config).expect("bind localhost");
    let addr = srv.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || srv.run().expect("server run"));
    (addr, handle)
}

/// Pipelines `requests` over one connection and reads one response per
/// request, in order.
fn transact(addr: SocketAddr, requests: &[&str]) -> Vec<String> {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut w = stream.try_clone().expect("clone");
    for r in requests {
        writeln!(w, "{r}").expect("send");
    }
    w.flush().expect("flush");
    BufReader::new(stream)
        .lines()
        .take(requests.len())
        .map(|l| l.expect("read response"))
        .collect()
}

fn ok(line: &str) -> bool {
    line.contains("\"ok\":true")
}

#[test]
fn full_command_flow_over_tcp() {
    let dir = std::env::temp_dir().join("mgba_server_integration");
    std::fs::create_dir_all(&dir).unwrap();
    let snap = dir.join("flow.snapshot");
    let snap_str = snap.to_str().unwrap();

    let (addr, handle) = start(ServerConfig::default());
    let snapshot_req = format!(r#"{{"id":9,"cmd":"snapshot","file":"{snap_str}"}}"#);
    let restore_req = format!(r#"{{"id":10,"cmd":"restore","file":"{snap_str}"}}"#);
    let requests = [
        r#"{"id":1,"cmd":"ping"}"#,
        r#"{"id":2,"cmd":"load","design":"small:5"}"#,
        r#"{"id":3,"cmd":"calibrate","solver":"scgrs"}"#,
        r#"{"id":4,"cmd":"slack","top":5}"#,
        r#"{"id":5,"cmd":"wns"}"#,
        r#"{"id":6,"cmd":"tns"}"#,
        r#"{"id":7,"cmd":"path","pba":true}"#,
        r#"{"id":8,"cmd":"stats"}"#,
        &snapshot_req,
        &restore_req,
        r#"{"id":11,"cmd":"wns"}"#,
        r#"{"id":12,"cmd":"shutdown"}"#,
    ];
    let responses = transact(addr, &requests);
    assert_eq!(responses.len(), requests.len());
    for (req, resp) in requests.iter().zip(&responses) {
        assert!(ok(resp), "request {req} failed: {resp}");
    }
    // Calibration actually installed weights…
    assert!(
        responses[2].contains("\"converged\":true"),
        "{}",
        responses[2]
    );
    // …and the restore reproduced the calibrated WNS bit-for-bit: the
    // wns queries before snapshot and after restore match.
    let wns_field = |line: &str| {
        let start = line.find("\"wns\":").expect("wns field") + 6;
        line[start..]
            .split(&[',', '}'][..])
            .next()
            .unwrap()
            .to_owned()
    };
    assert_eq!(wns_field(&responses[4]), wns_field(&responses[10]));
    assert!(responses[11].contains("\"draining\":true"));
    // Graceful drain-then-exit: run() returns, the thread joins.
    handle.join().expect("server thread exits cleanly");
}

#[test]
fn responses_are_bit_identical_across_thread_counts_and_read_modes() {
    // Sessions serialize execution per writer lane, responses drain
    // through admission-ordered reply slots, and no envelope carries a
    // wall-clock field — so the entire response stream must be
    // byte-identical no matter how many threads the engine's parallel
    // kernels use AND no matter whether reads funnel through the lane
    // (`read_workers 0`) or run on the snapshot pool (`read_workers 4`).
    // The script mixes v1 sessionless lines with v2 session-addressed
    // lines across two sessions to pin the sharded path too.
    //
    // Ordering rule: every state-changing write to a session precedes
    // that session's reads. Split-mode reads serve the latest published
    // snapshot at or after their admission floor, so a write issued
    // after a read to the same session could publish before the pool
    // executes the read — byte-identity holds only for scripts that
    // respect this write-then-read discipline per session.
    //
    // Observability surfaces are part of the determinism contract: with
    // slow_ms 0 every lane command lands in the slow-query ring, a
    // second fit grows the drift history, and both rings (plus the v2
    // `request_id` stamps) must serialize to the same bytes in funnel
    // and split mode — no timing fields leak.
    let script = concat!(
        r#"{"id":1,"cmd":"load","design":"small:7"}"#,
        "\n",
        r#"{"id":2,"cmd":"calibrate","solver":"scgrs"}"#,
        "\n",
        r#"{"id":3,"proto":2,"session":"alpha","cmd":"load","design":"small:5"}"#,
        "\n",
        r#"{"id":4,"cmd":"commit","cell":"g_1_0_0","to":"up"}"#,
        "\n",
        r#"{"id":5,"proto":2,"session":"alpha","cmd":"calibrate","solver":"cgnr"}"#,
        "\n",
        r#"{"id":6,"cmd":"whatif_resize","cell":"g_1_1_0","to":"up"}"#,
        "\n",
        r#"{"id":7,"cmd":"slack","top":10}"#,
        "\n",
        r#"{"id":8,"cmd":"path","pba":true}"#,
        "\n",
        r#"{"id":9,"proto":2,"session":"alpha","cmd":"wns"}"#,
        "\n",
        r#"{"id":10,"cmd":"wns"}"#,
        "\n",
        r#"{"id":11,"proto":2,"session":"alpha","cmd":"tns"}"#,
        "\n",
        r#"{"id":12,"cmd":"tns"}"#,
        "\n",
        r#"{"id":13,"cmd":"lint"}"#,
        "\n",
        r#"{"id":14,"proto":2,"session":"alpha","cmd":"lint"}"#,
        "\n",
        "this line is not json\n",
        r#"{"id":15,"proto":2,"session":"alpha","cmd":"slowlog"}"#,
        "\n",
        r#"{"id":16,"proto":2,"session":"alpha","cmd":"history"}"#,
        "\n",
        r#"{"id":17,"cmd":"slowlog"}"#,
        "\n",
        r#"{"id":18,"cmd":"history"}"#,
        "\n",
        r#"{"id":19,"cmd":"health"}"#,
        "\n",
        r#"{"id":20,"proto":2,"session":"alpha","cmd":"health"}"#,
        "\n",
        r#"{"id":21,"cmd":"shutdown"}"#,
        "\n",
    );
    let run_with = |threads: usize, read_workers: usize| -> String {
        parallel::set_global_threads(threads);
        let out = serve_stream(
            &ServerConfig {
                read_workers,
                slow_ms: Some(0),
                ..ServerConfig::default()
            },
            script.as_bytes(),
            Vec::<u8>::new(),
        )
        .expect("stream run");
        String::from_utf8(out).expect("utf8 responses")
    };
    let reference = run_with(1, 0);
    assert!(!reference.is_empty());
    // The new surfaces actually answered with content, and v2 envelopes
    // carry admission-order request ids.
    assert!(reference.contains("\"entries\":["), "{reference}");
    assert!(reference.contains("\"records\":["), "{reference}");
    assert!(reference.contains("\"request_id\":"), "{reference}");
    // `health` is a read command with no timing fields; durability is
    // off here, so it reports durable:false and a quiet WAL.
    assert!(reference.contains("\"durable\":false"), "{reference}");
    assert!(reference.contains("\"recovered\":false"), "{reference}");
    assert!(reference.contains("\"wal_records\":0"), "{reference}");
    for (threads, read_workers) in [(1, 4), (4, 0), (4, 4)] {
        assert_eq!(
            run_with(threads, read_workers),
            reference,
            "threads={threads} read_workers={read_workers} must reproduce \
             the threads=1 read_workers=0 response bytes"
        );
    }
    parallel::set_global_threads(1);
}

#[test]
fn malformed_requests_get_structured_errors_and_serving_continues() {
    let (addr, handle) = start(ServerConfig::default());
    let requests = [
        r#"{"id":1,"cmd":"ping"}"#,
        r#"{"truncated": "#,
        r#"{"id":2,"cmd":"no_such_command"}"#,
        r#"{"id":3,"cmd":"slack"}"#,
        r#"[1,2,3]"#,
        r#"{"id":4,"cmd":"ping"}"#,
        r#"{"id":5,"cmd":"shutdown"}"#,
    ];
    let responses = transact(addr, &requests);
    assert_eq!(responses.len(), requests.len());
    assert!(ok(&responses[0]));
    assert!(
        responses[1].contains("\"kind\":\"usage\""),
        "{}",
        responses[1]
    );
    // Unknown command recovers the request id into the envelope.
    assert!(responses[2].contains("\"id\":2"), "{}", responses[2]);
    assert!(responses[2].contains("\"kind\":\"usage\""));
    // slack before load: a domain error, also structured.
    assert!(responses[3].contains("\"kind\":\"usage\""));
    assert!(responses[3].contains("no design loaded"));
    assert!(responses[4].contains("\"kind\":\"usage\""));
    // The server is still alive and answers normal requests.
    assert!(ok(&responses[5]), "{}", responses[5]);
    assert!(responses[6].contains("\"draining\":true"));
    handle.join().expect("clean exit");
}

#[test]
fn overload_is_an_explicit_rejection_not_a_hang() {
    // Queue depth 1: while the worker executes sleep(300), at most one
    // request can wait; the rest of the burst must be rejected with an
    // explicit overload envelope — and every request must be answered.
    let (addr, handle) = start(ServerConfig {
        queue_depth: 1,
        ..ServerConfig::default()
    });
    let mut requests = vec![r#"{"id":0,"cmd":"sleep","ms":300}"#.to_owned()];
    for i in 1..=8 {
        requests.push(format!(r#"{{"id":{i},"cmd":"ping"}}"#));
    }
    let refs: Vec<&str> = requests.iter().map(String::as_str).collect();
    let responses = transact(addr, &refs);
    assert_eq!(responses.len(), requests.len(), "every request is answered");
    // Overload rejections are answered by the connection's reader
    // thread immediately, so they may arrive ahead of the responses of
    // admitted requests — match by id, not position.
    let overloads = responses
        .iter()
        .filter(|r| r.contains("\"kind\":\"overload\""))
        .count();
    assert!(overloads >= 1, "burst must trip the bounded queue");
    assert!(
        responses
            .iter()
            .any(|r| r.contains("\"slept_ms\":300") && ok(r)),
        "the sleep itself completes: {responses:?}"
    );
    // Cleanup.
    let bye = transact(addr, &[r#"{"id":99,"cmd":"shutdown"}"#]);
    assert!(bye[0].contains("\"draining\":true"));
    handle.join().expect("clean exit");
}

#[test]
fn expired_deadlines_are_rejected_at_dequeue() {
    let (addr, handle) = start(ServerConfig::default());
    let requests = [
        r#"{"id":1,"cmd":"sleep","ms":60}"#,
        r#"{"id":2,"cmd":"ping","deadline_ms":1}"#,
        r#"{"id":3,"cmd":"ping","deadline_ms":60000}"#,
        r#"{"id":4,"cmd":"shutdown"}"#,
    ];
    let responses = transact(addr, &requests);
    assert!(ok(&responses[0]));
    assert!(
        responses[1].contains("\"kind\":\"deadline\""),
        "{}",
        responses[1]
    );
    assert!(
        ok(&responses[2]),
        "generous deadline passes: {}",
        responses[2]
    );
    handle.join().expect("clean exit");
}

#[test]
fn v1_requests_pin_the_deprecated_envelope_bytes() {
    // Compatibility contract: a sessionless v1 request routes to the
    // `default` session and its envelope is byte-for-byte the v1 shape
    // plus the `deprecated` flag — nothing else moved.
    let (addr, handle) = start(ServerConfig::default());
    let responses = transact(
        addr,
        &[
            r#"{"id":1,"cmd":"ping"}"#,
            r#"{"id":2,"cmd":"wns"}"#,
            r#"{"id":3,"cmd":"shutdown"}"#,
        ],
    );
    assert_eq!(
        responses[0],
        r#"{"id":1,"ok":true,"deprecated":true,"result":{"pong":true}}"#
    );
    // Error envelopes carry the flag too, before the error object.
    assert!(
        responses[1].starts_with(r#"{"id":2,"ok":false,"deprecated":true,"error":{"#),
        "{}",
        responses[1]
    );
    assert!(responses[1].contains("no design loaded"));
    assert!(responses[2].contains("\"deprecated\":true"));
    handle.join().expect("clean exit");
}

#[test]
fn sessions_shard_state_and_v1_routes_to_default() {
    let (addr, handle) = start(ServerConfig {
        read_workers: 2,
        ..ServerConfig::default()
    });
    let connect = |session: &str| {
        Client::connect(
            &addr.to_string(),
            ClientConfig {
                session: session.into(),
                ..ClientConfig::default()
            },
        )
        .expect("connect")
    };

    // Two v2 sessions load different designs; a third stays empty.
    let mut a = connect("opt-a");
    let mut b = connect("opt-b");
    let mut empty = connect("spectator");
    for (c, design) in [(&mut a, "small:3"), (&mut b, "small:7")] {
        let resp = c
            .call(&Command::Load {
                spec: design.into(),
                period: None,
            })
            .expect("load");
        assert!(resp.ok, "{}", resp.raw);
    }
    let wns = |c: &mut Client| {
        let resp = c.call(&Command::Wns).expect("wns");
        assert!(resp.ok, "{}", resp.raw);
        (
            resp.session.clone().expect("v2 envelope names its session"),
            resp.raw.clone(),
        )
    };
    let (sess_a, wns_a) = wns(&mut a);
    let (sess_b, wns_b) = wns(&mut b);
    assert_eq!(sess_a, "opt-a");
    assert_eq!(sess_b, "opt-b");
    assert_ne!(
        wns_a.replace("opt-a", ""),
        wns_b.replace("opt-b", ""),
        "different designs must yield different timing"
    );
    // The untouched session sees none of it.
    let resp = empty.call(&Command::Wns).expect("wns");
    assert!(!resp.ok, "{}", resp.raw);
    assert_eq!(resp.error.as_ref().expect("error").code, "usage");

    // A v1 sessionless line lands in `default`, whose state is then
    // visible to a v2 client addressing `default` explicitly.
    let one = transact(addr, &[r#"{"id":1,"cmd":"load","design":"small:5"}"#]);
    assert!(ok(&one[0]), "{}", one[0]);
    let mut default = connect("default");
    let resp = default.call(&Command::Wns).expect("wns");
    assert!(
        resp.ok,
        "v1 load must be visible in `default`: {}",
        resp.raw
    );
    assert_eq!(resp.session.as_deref(), Some("default"));

    let bye = default.call(&Command::Shutdown).expect("shutdown");
    assert!(bye.ok, "{}", bye.raw);
    handle.join().expect("clean exit");
}

#[test]
fn concurrent_clients_get_admission_ordered_replies_per_session() {
    // N clients hammer one shared session with a mixed read/write
    // pipeline while the read pool is live. Each connection must get
    // exactly its own responses, in the order it sent the requests —
    // reads answered by pool workers may complete out of order
    // internally, but the reply slots re-serialize them.
    let (addr, handle) = start(ServerConfig {
        read_workers: 4,
        ..ServerConfig::default()
    });
    let config = || ClientConfig {
        session: "shared".into(),
        ..ClientConfig::default()
    };
    let mut setup = Client::connect(&addr.to_string(), config()).expect("connect");
    let loaded = setup
        .call(&Command::Load {
            spec: "small:5".into(),
            period: None,
        })
        .expect("load");
    assert!(loaded.ok, "{}", loaded.raw);

    let clients: Vec<_> = (0..4)
        .map(|k| {
            let addr = addr.to_string();
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr, config()).expect("connect");
                let mut sent = Vec::new();
                for round in 0..25 {
                    let cmd = match round % 4 {
                        0 => Command::Wns,
                        1 => Command::Tns,
                        2 => Command::WhatIfResize {
                            cell: format!("g_1_{}_0", (k + round) % 4),
                            to: "up".into(),
                        },
                        _ => Command::Slack {
                            endpoint: None,
                            top: 5,
                        },
                    };
                    sent.push(c.send(&cmd, None).expect("send"));
                }
                for expected in sent {
                    let resp = c.recv().expect("recv");
                    assert!(resp.ok, "{}", resp.raw);
                    assert_eq!(
                        resp.id,
                        Some(expected),
                        "responses must come back in admission order"
                    );
                    assert_eq!(resp.session.as_deref(), Some("shared"));
                }
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread");
    }

    let bye = setup.call(&Command::Shutdown).expect("shutdown");
    assert!(bye.ok, "{}", bye.raw);
    handle.join().expect("clean exit");
}

#[test]
fn lint_is_read_only_and_close_session_evicts_state() {
    // `lint` is a read command: it is served from the published
    // snapshot, never mutates the design, and reports the collected
    // issues for the loaded netlist. `close_session` drops the session
    // from the registry; the next request on the same name starts from
    // a blank session.
    let (addr, handle) = start(ServerConfig {
        read_workers: 2,
        ..ServerConfig::default()
    });
    let responses = transact(
        addr,
        &[
            r#"{"id":1,"proto":2,"session":"tmp","cmd":"load","design":"small:5"}"#,
            r#"{"id":2,"proto":2,"session":"tmp","cmd":"lint"}"#,
            r#"{"id":3,"proto":2,"session":"tmp","cmd":"wns"}"#,
            r#"{"id":4,"proto":2,"session":"tmp","cmd":"close_session"}"#,
            r#"{"id":5,"proto":2,"session":"tmp","cmd":"close_session"}"#,
            r#"{"id":6,"proto":2,"session":"tmp","cmd":"wns"}"#,
            r#"{"id":7,"proto":2,"session":"tmp","cmd":"shutdown"}"#,
        ],
    );
    assert!(ok(&responses[0]), "{}", responses[0]);
    // The lint report names the design and carries the issue counters.
    assert!(ok(&responses[1]), "{}", responses[1]);
    assert!(responses[1].contains("\"errors\":"), "{}", responses[1]);
    assert!(responses[1].contains("\"issues\":"), "{}", responses[1]);
    // Lint did not disturb the loaded state.
    assert!(ok(&responses[2]), "{}", responses[2]);
    // First close drops the session, the second finds nothing resident.
    assert!(responses[3].contains("\"closed\":true"), "{}", responses[3]);
    assert!(
        responses[4].contains("\"closed\":false"),
        "{}",
        responses[4]
    );
    // The name is reusable but starts blank: no design loaded.
    assert!(
        responses[5].contains("no design loaded"),
        "{}",
        responses[5]
    );
    handle.join().expect("clean exit");
}

#[test]
fn idle_sessions_are_evicted_after_the_ttl() {
    // With a 1-second TTL, a session left idle past the deadline is
    // lazily evicted when any other session is touched; its name then
    // resolves to a fresh, blank session.
    let (addr, handle) = start(ServerConfig {
        session_ttl_secs: Some(1),
        ..ServerConfig::default()
    });
    let loaded = transact(
        addr,
        &[r#"{"id":1,"proto":2,"session":"idle","cmd":"load","design":"small:3"}"#],
    );
    assert!(ok(&loaded[0]), "{}", loaded[0]);
    std::thread::sleep(std::time::Duration::from_millis(1300));
    // Touching another session sweeps the expired one…
    let other = transact(
        addr,
        &[r#"{"id":2,"proto":2,"session":"busy","cmd":"ping"}"#],
    );
    assert!(ok(&other[0]), "{}", other[0]);
    // …so the idle session's design is gone.
    let responses = transact(
        addr,
        &[
            r#"{"id":3,"proto":2,"session":"idle","cmd":"wns"}"#,
            r#"{"id":4,"proto":2,"session":"idle","cmd":"shutdown"}"#,
        ],
    );
    assert!(
        responses[0].contains("no design loaded"),
        "evicted session must come back blank: {}",
        responses[0]
    );
    handle.join().expect("clean exit");
}

#[test]
fn live_exposition_scrapes_and_validates() {
    // Scrape the full Prometheus exposition from a running server after
    // a calibrate and two committed resizes, run it through the
    // conformance checker, and pin the observability families added for
    // request tracing and calibration-drift telemetry.
    let script = concat!(
        r#"{"id":1,"cmd":"load","design":"small:5"}"#,
        "\n",
        r#"{"id":2,"cmd":"calibrate","solver":"cgnr"}"#,
        "\n",
        r#"{"id":3,"cmd":"commit","cell":"g_1_0_0","to":"up"}"#,
        "\n",
        r#"{"id":4,"cmd":"commit","cell":"g_1_1_0","to":"up"}"#,
        "\n",
        r#"{"id":5,"cmd":"metrics"}"#,
        "\n",
        r#"{"id":6,"cmd":"history"}"#,
        "\n",
        r#"{"id":7,"cmd":"shutdown"}"#,
        "\n",
    );
    let out = serve_stream(
        &ServerConfig {
            slow_ms: Some(0),
            ..ServerConfig::default()
        },
        script.as_bytes(),
        Vec::<u8>::new(),
    )
    .expect("stream run");
    let text = String::from_utf8(out).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 7, "{text}");
    assert!(lines.iter().all(|l| ok(l)), "{text}");
    let envelope = server::json::parse(lines[4]).expect("metrics envelope parses");
    let exposition = envelope
        .get("result")
        .and_then(|r| r.get("exposition"))
        .and_then(|e| e.as_str())
        .expect("metrics result carries the exposition")
        .to_owned();
    obs::prom::validate(&exposition).expect("exposition conforms");
    for family in [
        "mgba_build_info{version=",
        "mgba_server_read_backlog",
        "mgba_server_write_queue_depth{session=\"default\"}",
        "mgba_server_session_rebuilds_total{session=\"default\"}",
        "mgba_server_stage_us",
        "mgba_server_command_latency_us",
        "mgba_calibration_drift_mse{session=\"default\"}",
        "mgba_calibration_drift_rms_ps{session=\"default\"}",
        "mgba_calibration_drift_weight_sparsity_pct",
        "mgba_calibration_drift_commits_since_fit",
        "mgba_calibration_drift_records{session=\"default\"}",
    ] {
        assert!(
            exposition.contains(family),
            "exposition is missing `{family}`:\n{exposition}"
        );
    }
    // Stage histograms carry real samples by the time `metrics` runs:
    // at minimum the lane's queue-wait and execute stages.
    for stage in ["stage=\"queue_wait\"", "stage=\"execute\""] {
        assert!(
            exposition.contains(stage),
            "stage histograms missing {stage}:\n{exposition}"
        );
    }
    // One cold calibrate plus two commit-triggered warm refits: three
    // drift records, the latest having absorbed exactly one commit.
    assert!(
        exposition.contains("mgba_calibration_drift_records{session=\"default\"} 3.0"),
        "{exposition}"
    );
    assert!(
        exposition.contains("mgba_calibration_drift_commits_since_fit{session=\"default\"} 1.0"),
        "{exposition}"
    );
    let history = lines[5];
    assert!(history.contains("\"count\":3"), "{history}");
    assert!(history.contains("\"mode\":\"cold\""), "{history}");
    assert!(history.contains("\"mode\":\"warm\""), "{history}");
}

#[test]
fn stdio_stream_supports_the_smoke_flow() {
    // The same engine the CLI's `serve --stdio` uses, driven directly.
    let script = concat!(
        r#"{"id":1,"cmd":"load","design":"small:3"}"#,
        "\n",
        r#"{"id":2,"cmd":"calibrate"}"#,
        "\n",
        r#"{"id":3,"cmd":"slack","top":3}"#,
        "\n",
        r#"{"id":4,"cmd":"shutdown"}"#,
        "\n",
    );
    let out = serve_stream(
        &ServerConfig::default(),
        script.as_bytes(),
        Vec::<u8>::new(),
    )
    .expect("stream run");
    let text = String::from_utf8(out).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 4);
    assert!(lines.iter().all(|l| ok(l)), "{text}");
    assert!(lines[3].contains("\"draining\":true"));
}
