//! End-to-end pipeline integration: generator → STA → path selection →
//! PBA labeling → mGBA fit → weight application, across several seeds.

use mgba::{run_mgba, MgbaConfig, Solver};
use netlist::GeneratorConfig;
use sta::{gba_path_timing, pba_timing, select_critical_paths, DerateSet, Sdc, Sta};

fn engine(seed: u64, depth_frac: f64) -> Sta {
    let netlist = GeneratorConfig::small(seed).generate();
    netlist.validate().expect("generated design is valid");
    let probe = Sta::new(
        netlist.clone(),
        Sdc::with_period(10_000.0),
        DerateSet::standard(),
    )
    .expect("probe engine builds");
    let max_arrival = probe
        .netlist()
        .endpoints()
        .iter()
        .map(|&e| probe.endpoint_arrival(e))
        .filter(|a| a.is_finite())
        .fold(0.0, f64::max);
    let period = 10_000.0 - probe.wns() - depth_frac * max_arrival;
    Sta::new(netlist, Sdc::with_period(period), DerateSet::standard()).expect("engine builds")
}

#[test]
fn pessimism_invariant_holds_across_seeds() {
    // For every enumerated path on every seed: GBA slack ≤ PBA slack.
    for seed in [201, 202, 203] {
        let sta = engine(seed, 0.1);
        let paths = select_critical_paths(&sta, 10, usize::MAX, false);
        assert!(!paths.is_empty());
        for p in &paths {
            let gba = gba_path_timing(&sta, p);
            let pba = pba_timing(&sta, p);
            assert!(
                pba.slack >= gba.slack - 1e-9,
                "seed {seed}: PBA {:.3} < GBA {:.3}",
                pba.slack,
                gba.slack
            );
        }
    }
}

#[test]
fn mgba_closes_most_of_the_gap_on_every_seed() {
    for seed in [211, 212, 213] {
        let mut sta = engine(seed, 0.15);
        let report = run_mgba(&mut sta, &MgbaConfig::default(), Solver::ScgRs);
        assert!(report.num_paths > 0, "seed {seed} must violate");
        assert!(
            report.mse_after < 0.5 * report.mse_before,
            "seed {seed}: mse {:.3e} -> {:.3e} is not enough improvement",
            report.mse_before,
            report.mse_after
        );
        assert!(report.pass_after.ratio() >= report.pass_before.ratio());
    }
}

#[test]
fn corrected_engine_is_still_internally_consistent() {
    // After weights are installed, the graph arrival at every endpoint
    // still equals the max over its enumerated paths.
    let mut sta = engine(221, 0.12);
    let _ = run_mgba(&mut sta, &MgbaConfig::default(), Solver::Cgnr);
    for e in sta.netlist().endpoints().into_iter().take(20) {
        let arr = sta.endpoint_arrival(e);
        if !arr.is_finite() {
            continue;
        }
        let paths = sta::paths::worst_paths_to_endpoint(&sta, e, 1);
        assert!(
            (paths[0].gba_arrival - arr).abs() < 1e-6,
            "worst path must realize the corrected endpoint arrival"
        );
    }
}

#[test]
fn whole_pipeline_is_deterministic() {
    let run = || {
        let mut sta = engine(231, 0.15);
        let r = run_mgba(&mut sta, &MgbaConfig::default(), Solver::ScgRs);
        (r.num_paths, r.iterations, r.mse_after.to_bits(), r.weights)
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
    assert_eq!(a.3, b.3);
}

#[test]
fn weights_never_produce_negative_path_delay() {
    let mut sta = engine(241, 0.2);
    let _ = run_mgba(&mut sta, &MgbaConfig::default(), Solver::ScgRs);
    for (id, cell) in sta.netlist().cells() {
        if cell.role == netlist::CellRole::Combinational {
            assert!(sta.effective_derate(id) >= 0.0);
        }
    }
    // Arrival times stay ordered: every endpoint arrival is at least the
    // launch clock arrival of some startpoint (no time travel).
    for e in sta.netlist().endpoints().into_iter().take(20) {
        let arr = sta.endpoint_arrival(e);
        if arr.is_finite() {
            assert!(arr >= 0.0, "arrival {arr} must be non-negative");
        }
    }
}
