//! Observability integration: the span tree produced by a calibrate run
//! covers the whole pipeline, the metrics registry matches the fitted
//! problem's shape, solver telemetry records Algorithm 1's rounds — and
//! none of it changes a single output bit, enabled or not, serial or
//! parallel.

use mgba::prelude::*;
use std::sync::{Mutex, MutexGuard};

/// Serializes the tests in this binary: they all read and reset the
/// process-wide obs stores.
static OBS_LOCK: Mutex<()> = Mutex::new(());

fn obs_test() -> MutexGuard<'static, ()> {
    let guard = OBS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    obs::set_enabled(false);
    obs::reset();
    guard
}

/// Small generated design timed at a period tight enough that ~15% of
/// the worst arrival depth violates (same recipe as the CLI's
/// auto-derived calibrate period).
fn engine(seed: u64) -> Sta {
    let netlist = GeneratorConfig::small(seed).generate();
    let probe = Sta::new(
        netlist.clone(),
        Sdc::with_period(10_000.0),
        DerateSet::standard(),
    )
    .expect("probe engine builds");
    let max_arrival = netlist
        .endpoints()
        .iter()
        .map(|&e| probe.endpoint_arrival(e))
        .filter(|a| a.is_finite())
        .fold(0.0, f64::max);
    let period = 10_000.0 - probe.wns() - 0.15 * max_arrival;
    Sta::new(netlist, Sdc::with_period(period), DerateSet::standard()).expect("engine builds")
}

fn calibrate(seed: u64, solver: Solver) -> (MgbaReport, Vec<f64>) {
    let mut sta = engine(seed);
    let report = run_mgba(&mut sta, &MgbaConfig::default(), solver);
    let weights = report.weights.clone();
    (report, weights)
}

#[test]
fn span_tree_covers_the_whole_pipeline() {
    let _l = obs_test();
    obs::set_enabled(true);
    let (report, _) = calibrate(301, Solver::ScgRs);
    obs::set_enabled(false);
    assert!(report.num_paths > 0, "design must have violations to fit");

    let profile = obs::ProfileReport::capture();
    let mgba = profile.find_span("mgba").expect("root mgba span");
    assert_eq!(mgba.calls, 1);
    for stage in ["select", "build", "solve", "fold_back", "evaluate"] {
        assert!(
            mgba.child(stage).is_some(),
            "missing pipeline stage {stage}"
        );
    }
    let build = mgba.child("build").unwrap();
    for inner in ["assemble", "pba_batch", "gba_batch"] {
        assert!(build.child(inner).is_some(), "missing build stage {inner}");
    }
    let solve = mgba.child("solve").unwrap();
    let scg_rs = solve.child("scg_rs").expect("solver span under solve");
    assert!(
        scg_rs.child("scg").is_some(),
        "Algorithm 1 rounds run the inner SCG solver"
    );
    // Weights fold back via two set_weights/evaluate passes (golden PBA
    // before, corrected GBA after).
    assert_eq!(mgba.child("fold_back").unwrap().calls, 2);
    assert_eq!(mgba.child("evaluate").unwrap().calls, 2);
    // Wall-clock sanity: children nest inside the parent's time.
    let child_total: u64 = mgba.children.iter().map(|c| c.total_ns).sum();
    assert!(child_total <= mgba.total_ns);
}

#[test]
fn metrics_snapshot_matches_the_fitted_problem() {
    let _l = obs_test();
    obs::set_enabled(true);
    let (report, _) = calibrate(302, Solver::Cgnr);
    obs::set_enabled(false);

    let m = obs::ProfileReport::capture().metrics;
    assert_eq!(
        m.counter("mgba.paths_selected"),
        Some(report.num_paths as u64)
    );
    assert_eq!(m.counter("mgba.fit.rows"), Some(report.num_paths as u64));
    assert_eq!(m.counter("mgba.fit.gates"), Some(report.num_gates as u64));
    let nnz = m.counter("mgba.fit.nnz").expect("nnz counter");
    assert!(nnz >= report.num_paths as u64, "each row has entries");
    // Both timing views retime each selected path at least once (build +
    // evaluate passes).
    let pba = m.counter("sta.pba.paths_retimed").expect("pba counter");
    assert!(pba >= 2 * report.num_paths as u64);
    // Gauges mirror the report exactly — same f64, no rounding.
    assert_eq!(m.gauge("mgba.mse_before"), Some(report.mse_before));
    assert_eq!(m.gauge("mgba.mse_after"), Some(report.mse_after));
    assert_eq!(
        m.gauge("mgba.pass_ratio_after"),
        Some(report.pass_after.ratio())
    );
    // Engine construction runs (at least) the probe and real full update.
    assert!(m.counter("sta.update.full").unwrap_or(0) >= 1);
    // CGNR's per-iteration residual trace is captured.
    let profile = obs::ProfileReport::capture();
    let trace = profile
        .solves
        .iter()
        .find(|s| s.solver == "CGNR")
        .expect("CGNR trace");
    assert!(!trace.iterations.is_empty());
}

#[test]
fn solver_telemetry_records_sampling_rounds() {
    let _l = obs_test();
    obs::set_enabled(true);
    let (report, _) = calibrate(303, Solver::ScgRs);
    obs::set_enabled(false);

    let profile = obs::ProfileReport::capture();
    let outer = profile
        .solves
        .iter()
        .find(|s| s.solver == "SCG + RS")
        .expect("row-sampling trace");
    assert!(
        !outer.rounds.is_empty(),
        "Algorithm 1 ran at least one round"
    );
    assert_eq!(outer.converged, Some(report.converged));
    assert_eq!(outer.total_iterations, report.iterations as u64);
    let mut prev_ratio = 0.0;
    for round in &outer.rounds {
        assert!(
            round.ratio > prev_ratio,
            "sampling ratio doubles monotonically"
        );
        assert!(round.ratio <= 1.0);
        assert!(round.rows > 0);
        prev_ratio = round.ratio;
    }
    // The inner SCG runs are traced too, one per round.
    let inner: Vec<_> = profile
        .solves
        .iter()
        .filter(|s| s.solver == "SCG + w/o RS")
        .collect();
    assert_eq!(inner.len(), outer.rounds.len());
    assert!(inner.iter().any(|s| !s.iterations.is_empty()));
    // JSON export round-trips the same structure without panicking.
    let json = profile.to_json();
    assert!(json.contains("\"SCG + RS\""));
    assert!(json.starts_with("{\"version\":2,"));
}

#[test]
fn instrumentation_never_changes_results() {
    let _l = obs_test();
    // Bit-for-bit: every weight and both MSE scalars must match across
    // {off, profiling, profiling + trace exporter} × {1 thread,
    // 4 threads}. The traced runs also drive both export encoders so
    // "enabling an exporter" is the thing proven inert, not just the
    // collection flags.
    let mut outcomes = Vec::new();
    for threads in [1usize, 4] {
        parallel::set_global_threads(threads);
        for (instrumented, traced) in [(false, false), (true, false), (true, true)] {
            obs::reset();
            obs::set_enabled(instrumented);
            obs::set_trace_enabled(traced);
            let (report, weights) = calibrate(304, Solver::ScgRs);
            obs::set_enabled(false);
            obs::set_trace_enabled(false);
            if traced {
                assert!(
                    obs::trace::export_json().contains("\"mgba\""),
                    "trace exporter captured the run"
                );
                obs::prom::validate(&obs::prom::encode(&obs::metrics::snapshot()))
                    .expect("Prometheus encoding conforms");
            }
            let bits: Vec<u64> = weights.iter().map(|w| w.to_bits()).collect();
            outcomes.push((
                threads,
                (instrumented, traced),
                bits,
                report.mse_before.to_bits(),
                report.mse_after.to_bits(),
                report.iterations,
            ));
        }
    }
    parallel::set_global_threads(1);
    let (_, _, bits0, before0, after0, iters0) = outcomes[0].clone();
    for (threads, mode, bits, before, after, iters) in &outcomes[1..] {
        assert_eq!(
            (bits, before, after, iters),
            (&bits0, &before0, &after0, &iters0),
            "threads={threads} (profiling, trace)={mode:?} diverged"
        );
    }
}

/// Trace timeline reduced to its deterministic part: (phase, span name).
type EventSeq = Vec<(String, Option<String>)>;

#[test]
fn solver_traces_identical_across_thread_counts() {
    let _l = obs_test();
    // The solver telemetry is recorded on the calling thread while the
    // fit-matrix build and path retimes fan out over the worker pool:
    // every sample (iterations, rounds, objectives) and the span
    // timeline's event sequence must be identical for every pool width.
    let mut captured: Vec<(usize, Vec<obs::telemetry::SolveTrace>, EventSeq)> = Vec::new();
    for threads in [1usize, 4] {
        parallel::set_global_threads(threads);
        obs::reset();
        obs::set_enabled(true);
        obs::set_trace_enabled(true);
        let (report, _) = calibrate(305, Solver::ScgRs);
        obs::set_enabled(false);
        obs::set_trace_enabled(false);
        assert!(report.num_paths > 0);
        let solves = obs::ProfileReport::capture().solves;
        let timeline: EventSeq = obs::trace::snapshot()
            .iter()
            .map(|e| (format!("{:?}", e.phase), e.name.clone()))
            .collect();
        assert!(
            !timeline.is_empty(),
            "trace collected under {threads} threads"
        );
        captured.push((threads, solves, timeline));
    }
    parallel::set_global_threads(1);
    let (_, solves0, timeline0) = &captured[0];
    assert!(
        solves0.iter().any(|s| s.solver == "SCG + RS"),
        "telemetry recorded the outer solve"
    );
    for (threads, solves, timeline) in &captured[1..] {
        assert_eq!(
            solves, solves0,
            "solver telemetry diverged at {threads} threads"
        );
        assert_eq!(
            timeline, timeline0,
            "trace event sequence diverged at {threads} threads"
        );
    }
}
