//! The paper's Fig. 2 worked example as an executable test: exact cell
//! depths, Table 1 derates, and the GBA-vs-PBA delay gap on idealized
//! 100 ps gates.

use netlist::{DriveStrength, Function, LibCell, Library, NetlistBuilder, Point};
use sta::{aocv::DeratingTable, DerateSet, Sdc, Sta};

fn ideal_library() -> Library {
    let mut lib = Library::new("ideal");
    lib.wire_cap_per_um = 0.0;
    lib.wire_delay_per_um = 0.0;
    lib.wire_delay_per_um2 = 0.0;
    let cell = |name: &str, function: Function, intrinsic: f64| LibCell {
        name: name.to_owned(),
        function,
        drive: DriveStrength::X1,
        area: 1.0,
        leakage: 1.0,
        input_cap: 0.0,
        intrinsic,
        drive_res: 0.0,
        slew_sens: 0.0,
        slew_intrinsic: 0.0,
        slew_res: 0.0,
        max_load: f64::INFINITY,
        setup: 0.0,
        hold: 0.0,
    };
    lib.add(cell("IN_PORT", Function::Input, 0.0));
    lib.add(cell("OUT_PORT", Function::Output, 0.0));
    lib.add(cell("BUF_X1", Function::Buf, 100.0));
    lib.add(cell("DFF_X1", Function::Dff, 0.0));
    lib
}

fn fig2() -> Sta {
    let mut b = NetlistBuilder::new("fig2", ideal_library());
    let clk = b.add_clock_port("clk", Point::ORIGIN);
    let d = b.add_input("d", Point::ORIGIN);
    let ff1 = b
        .add_flip_flop("FF1", "DFF_X1", Point::ORIGIN, clk)
        .unwrap();
    b.connect_flip_flop_d_net(ff1, d);
    let mut prev = b.cell_output(ff1);
    for i in 1..=4 {
        let u = b
            .add_gate(&format!("U{i}"), "BUF_X1", Point::ORIGIN, &[prev])
            .unwrap();
        prev = b.cell_output(u);
    }
    let u5 = b.add_gate("U5", "BUF_X1", Point::ORIGIN, &[prev]).unwrap();
    let ff3 = b
        .add_flip_flop("FF3", "DFF_X1", Point::ORIGIN, clk)
        .unwrap();
    b.connect_flip_flop_d(ff3, u5).unwrap();
    let u6 = b.add_gate("U6", "BUF_X1", Point::ORIGIN, &[prev]).unwrap();
    let u7 = b
        .add_gate("U7", "BUF_X1", Point::ORIGIN, &[b.cell_output(u6)])
        .unwrap();
    let ff4 = b
        .add_flip_flop("FF4", "DFF_X1", Point::ORIGIN, clk)
        .unwrap();
    b.connect_flip_flop_d(ff4, u7).unwrap();
    for (i, ff) in [ff1, ff3, ff4].into_iter().enumerate() {
        let q = b.cell_output(ff);
        b.add_output(&format!("po{i}"), Point::ORIGIN, q).unwrap();
    }
    let derates = DerateSet {
        data_late: DeratingTable::paper_table1(),
        data_early: DeratingTable::flat(0.95),
        clock_late: 1.0,
        clock_early: 1.0,
    };
    Sta::new(b.build().unwrap(), Sdc::with_period(1000.0), derates).unwrap()
}

#[test]
fn shared_prefix_gets_worst_depth() {
    let sta = fig2();
    let nl = sta.netlist();
    for name in ["U1", "U2", "U3", "U4", "U5"] {
        let c = nl.find_cell(name).unwrap();
        assert_eq!(sta.depth_info().gba_depth(c), Some(5), "{name}");
        assert!((sta.gate_derate(c) - 1.20).abs() < 1e-12, "{name}");
    }
    for name in ["U6", "U7"] {
        let c = nl.find_cell(name).unwrap();
        assert_eq!(sta.depth_info().gba_depth(c), Some(6), "{name}");
        assert!((sta.gate_derate(c) - 1.15).abs() < 1e-12, "{name}");
    }
}

#[test]
fn gba_pba_delay_gap_matches_arithmetic() {
    let sta = fig2();
    let ff4 = sta.netlist().find_cell("FF4").unwrap();
    let path = sta::paths::worst_paths_to_endpoint(&sta, ff4, 1)
        .into_iter()
        .next()
        .unwrap();
    assert_eq!(path.num_gates(), 6);
    let gba = sta::gba_path_timing(&sta, &path);
    let pba = sta::pba_timing(&sta, &path);
    // GBA: U1..U4 at depth-5 derate 1.20 (+U6, U7 at 1.15):
    // 100·(4·1.20 + 2·1.15) = 710.
    assert!((gba.arrival - 710.0).abs() < 1e-9, "gba {}", gba.arrival);
    // PBA: path depth 6 at derate 1.15 → 100·6·1.15 = 690 (paper's Eq. 2).
    assert!((pba.arrival - 690.0).abs() < 1e-9, "pba {}", pba.arrival);
    assert!((pba.derate - 1.15).abs() < 1e-12);
}

#[test]
fn five_gate_path_has_no_aocv_gap() {
    // FF1→FF3 runs entirely at depth 5: GBA per-gate derates equal the
    // path derate, so GBA and PBA agree exactly (no slew/CRPR here).
    let sta = fig2();
    let ff3 = sta.netlist().find_cell("FF3").unwrap();
    let path = sta::paths::worst_paths_to_endpoint(&sta, ff3, 1)
        .into_iter()
        .next()
        .unwrap();
    assert_eq!(path.num_gates(), 5);
    let gba = sta::gba_path_timing(&sta, &path);
    let pba = sta::pba_timing(&sta, &path);
    assert!((gba.arrival - 600.0).abs() < 1e-9); // 100·5·1.20
    assert!((gba.arrival - pba.arrival).abs() < 1e-9);
}
