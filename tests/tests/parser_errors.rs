//! Error-path coverage for every text format the tools ingest: native
//! netlists, structural Verilog, and Liberty libraries. Malformed input —
//! including every truncation of a valid document — must produce a typed
//! error with useful context (line numbers, offending names), never a
//! panic and never a silently wrong netlist.

use mgba::MgbaError;
use netlist::{
    parse_liberty, parse_netlist, parse_verilog, write_liberty, write_netlist, write_verilog,
    GeneratorConfig, Library, ParseNetlistError,
};

fn small_text() -> String {
    write_netlist(&GeneratorConfig::small(1).generate())
}

#[test]
fn every_truncation_of_a_native_netlist_errors_cleanly() {
    let text = small_text();
    assert!(parse_netlist(&text).is_ok(), "fixture must be valid");
    // Every line-boundary prefix, plus every byte prefix of the head of
    // the document (where the grammar's directives live).
    let mut cuts: Vec<usize> = text
        .char_indices()
        .filter(|&(i, c)| c == '\n' || i < 220)
        .map(|(i, _)| i)
        .collect();
    cuts.push(text.len().saturating_sub(1));
    for cut in cuts {
        let prefix = &text[..cut];
        if let Err(e) = parse_netlist(prefix) {
            assert!(!e.to_string().is_empty(), "error must describe itself");
        }
    }
}

#[test]
fn malformed_line_is_reported_with_its_line_number() {
    let err = parse_netlist("design x\nlibrary std45\ncell broken\nend\n").unwrap_err();
    assert!(
        matches!(err, ParseNetlistError::Malformed { line: 3, .. }),
        "{err:?}"
    );
    assert!(err.to_string().starts_with("line 3:"), "{err}");
}

#[test]
fn duplicate_cell_and_net_names_are_rejected_with_location() {
    let dup_cell = "design x\nlibrary std45\n\
                    cell a INV_X1 comb 0 0\n\
                    cell a INV_X1 comb 1 0\n\
                    end\n";
    let err = parse_netlist(dup_cell).unwrap_err();
    assert!(
        matches!(err, ParseNetlistError::Malformed { line: 4, .. }),
        "{err:?}"
    );
    assert!(err.to_string().contains("duplicate cell `a`"), "{err}");

    let dup_net = "design x\nlibrary std45\n\
                   cell a INV_X1 comb 0 0\n\
                   cell b INV_X1 comb 1 0\n\
                   net n driver=a sinks=b:0\n\
                   net n driver=b sinks=a:0\n\
                   end\n";
    let err = parse_netlist(dup_net).unwrap_err();
    assert!(
        matches!(err, ParseNetlistError::Malformed { line: 6, .. }),
        "{err:?}"
    );
    assert!(err.to_string().contains("duplicate net `n`"), "{err}");
}

#[test]
fn combinational_loop_is_rejected_by_validation() {
    let loopy = "design loopy\nlibrary std45\n\
                 cell a INV_X1 comb 0 0\n\
                 cell b INV_X1 comb 1 0\n\
                 net na driver=a sinks=b:0\n\
                 net nb driver=b sinks=a:0\n\
                 end\n";
    let err = parse_netlist(loopy).unwrap_err();
    assert!(matches!(err, ParseNetlistError::Invalid(_)), "{err:?}");
    assert!(
        err.to_string().contains("combinational cycle through cell"),
        "{err}"
    );
}

#[test]
fn truncated_file_surfaces_as_typed_parse_error_with_context() {
    // Through the shared loader the CLI and server use: the typed error
    // keeps the parser's line context.
    let dir = std::env::temp_dir().join(format!("mgba_parser_errors_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("truncated.nl");
    let text = small_text();
    let cut = text[..text.len() / 2]
        .rfind(' ')
        .expect("fixture has spaces");
    std::fs::write(&path, &text[..cut]).unwrap();
    let err = mgba::load_netlist_file(path.to_str().unwrap()).unwrap_err();
    assert!(matches!(err, MgbaError::Parse(_)), "{err:?}");
    assert!(err.to_string().contains("line "), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn every_truncation_of_a_verilog_module_errors_cleanly() {
    let text = write_verilog(&GeneratorConfig::small(2).generate());
    assert!(parse_verilog(&text).is_ok(), "fixture must be valid");
    for (i, _) in text.char_indices().filter(|&(i, _)| i % 3 == 0) {
        if let Err(e) = parse_verilog(&text[..i]) {
            assert!(!e.to_string().is_empty());
        }
    }
    // A cut mid-module is an unambiguous syntax error, not a success.
    let cut = text.len() / 2;
    let cut = (cut..text.len())
        .find(|&i| text.is_char_boundary(i))
        .unwrap();
    assert!(parse_verilog(&text[..cut]).is_err());
}

#[test]
fn unknown_verilog_cell_type_is_named_in_the_error() {
    // Swap one valid instantiation's cell type for a nonexistent one.
    let text = write_verilog(&GeneratorConfig::small(2).generate());
    let corrupted = text.replacen("DFF_X", "FROB_X", 1);
    assert_ne!(corrupted, text, "fixture must contain a flip-flop");
    let err = parse_verilog(&corrupted).unwrap_err();
    assert!(err.to_string().contains("FROB_X"), "{err}");
}

#[test]
fn every_truncation_of_a_liberty_library_errors_cleanly() {
    let text = write_liberty(&Library::standard());
    assert!(parse_liberty(&text).is_ok(), "fixture must be valid");
    for (i, _) in text.char_indices().filter(|&(i, _)| i % 7 == 0) {
        if let Err(e) = parse_liberty(&text[..i]) {
            assert!(!e.to_string().is_empty());
        }
    }
}

#[test]
fn every_truncation_of_an_edif_document_errors_cleanly() {
    let text = ingest::write_edif(&GeneratorConfig::small(3).generate());
    assert!(ingest::import_edif(&text).is_ok(), "fixture must be valid");
    // Byte-prefix sweep at a fixed stride plus every list-closing paren:
    // each cut must yield a typed error with a stable code, never a panic
    // and never a silently wrong netlist.
    let cuts: Vec<usize> = text
        .char_indices()
        .filter(|&(i, c)| i % 5 == 0 || c == ')')
        .map(|(i, _)| i)
        .collect();
    for cut in cuts {
        if let Err(e) = ingest::import_edif(&text[..cut]) {
            assert!(!e.to_string().is_empty(), "error must describe itself");
            assert!(!e.code.is_empty(), "error must carry a lint code");
        }
    }
    // A cut strictly inside the document body is an unambiguous error.
    let mid = (text.len() / 2..text.len())
        .find(|&i| text.is_char_boundary(i))
        .unwrap();
    assert!(ingest::import_edif(&text[..mid]).is_err());
}

#[test]
fn edif_garbage_windows_are_collected_issues_not_panics() {
    // Stamp garbage over a sliding window of the document. Every mutant
    // must run the whole collected-issues pass without panicking; when
    // the lenient pass reports errors the strict import must also fail.
    let text = ingest::write_edif(&GeneratorConfig::small(4).generate());
    let garbage = [
        "]]]@#$",
        "(((((((",
        "\"unterminated",
        "1e999999 ",
        ")) ((banana",
    ];
    for (slot, junk) in garbage.iter().enumerate() {
        let at = (slot + 1) * text.len() / (garbage.len() + 2);
        let start = (at..text.len())
            .find(|&i| text.is_char_boundary(i))
            .unwrap();
        let end = ((start + junk.len()).min(text.len())..=text.len())
            .find(|&i| text.is_char_boundary(i))
            .unwrap();
        let mutant = format!("{}{}{}", &text[..start], junk, &text[end..]);
        let imported = ingest::lint_edif(&mutant);
        if imported.report.num_errors() > 0 {
            assert!(ingest::import_edif(&mutant).is_err());
        }
        for issue in &imported.report.issues {
            assert!(!issue.message.is_empty());
        }
    }
}

#[test]
fn truncated_edif_through_the_shared_loader_keeps_its_location() {
    // The CLI and server load EDIF through the same sniffing loader as
    // native netlists; a truncated document must surface as a typed
    // parse error that still names the source position.
    let dir = std::env::temp_dir().join(format!("mgba_edif_errors_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("truncated.edf");
    let text = ingest::write_edif(&GeneratorConfig::small(5).generate());
    std::fs::write(&path, &text[..text.len() / 2]).unwrap();
    let err = mgba::load_netlist_file(path.to_str().unwrap()).unwrap_err();
    assert!(matches!(err, MgbaError::Parse(_)), "{err:?}");
    assert!(err.to_string().contains("edif"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn liberty_bad_attribute_value_is_rejected() {
    let text = write_liberty(&Library::standard());
    // Corrupt one numeric attribute value in an otherwise valid document.
    let needle = "cap_per_um : ";
    let start = text.find(needle).expect("fixture has attributes") + needle.len();
    let end = start + text[start..].find(';').expect("attribute terminated");
    let corrupted = format!("{}banana{}", &text[..start], &text[end..]);
    assert!(parse_liberty(&corrupted).is_err());
}
