//! Property-based cross-crate invariants, fuzzing the design generator's
//! parameter space: for any generated design at any clock period, the
//! structural and timing invariants that the mGBA framework relies on
//! must hold.

use netlist::{CellRole, GeneratorConfig};
use proptest::prelude::*;
use sta::{gba_path_timing, pba_timing, select_critical_paths, DerateSet, Sdc, Sta};

prop_compose! {
    fn config_strategy()(seed in 0u64..1000, stages in 1usize..4, ffs in 2usize..10,
                         width in 2usize..8, depth_lo in 2usize..4, depth_extra in 0usize..4,
                         skip in 0.0f64..0.5, clean in 0.0f64..1.0)
                        -> GeneratorConfig {
        GeneratorConfig {
            name: format!("prop_{seed}"),
            seed,
            num_stages: stages,
            ffs_per_stage: ffs,
            cloud_width: width,
            cloud_depth: (depth_lo, depth_lo + depth_extra),
            skip_probability: skip,
            clean_cloud_fraction: clean,
            die_size: 200.0,
            clock_levels: 2,
            primary_inputs: 4,
            x2_fraction: 0.3,
            x4_fraction: 0.1,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generated_designs_always_validate(config in config_strategy()) {
        let n = config.generate();
        prop_assert!(n.validate().is_ok());
        prop_assert!(n.topo_order().is_ok());
    }

    #[test]
    fn pba_never_more_pessimistic_than_gba(config in config_strategy(),
                                           period in 500.0f64..5000.0) {
        let n = config.generate();
        let sta = Sta::new(n, Sdc::with_period(period), DerateSet::standard())
            .expect("valid design");
        let paths = select_critical_paths(&sta, 3, 200, false);
        for p in &paths {
            let gba = gba_path_timing(&sta, p);
            let pba = pba_timing(&sta, p);
            prop_assert!(pba.slack >= gba.slack - 1e-9,
                "PBA {} < GBA {}", pba.slack, gba.slack);
        }
    }

    #[test]
    fn endpoint_arrival_is_realized_by_worst_path(config in config_strategy()) {
        let n = config.generate();
        let sta = Sta::new(n, Sdc::with_period(2000.0), DerateSet::standard())
            .expect("valid design");
        for e in sta.netlist().endpoints().into_iter().take(10) {
            let arr = sta.endpoint_arrival(e);
            if !arr.is_finite() { continue; }
            let paths = sta::paths::worst_paths_to_endpoint(&sta, e, 1);
            prop_assert!(!paths.is_empty());
            prop_assert!((paths[0].gba_arrival - arr).abs() < 1e-6);
        }
    }

    #[test]
    fn per_gate_depth_lower_bounds_path_depth(config in config_strategy()) {
        let n = config.generate();
        let sta = Sta::new(n, Sdc::with_period(2000.0), DerateSet::standard())
            .expect("valid design");
        let paths = select_critical_paths(&sta, 2, 100, false);
        for p in &paths {
            let path_depth = p.num_gates() as u32;
            for &g in &p.cells[1..p.cells.len().saturating_sub(1)] {
                if sta.netlist().cell(g).role == CellRole::Combinational {
                    let d = sta.depth_info().gba_depth(g).expect("on a path");
                    prop_assert!(d <= path_depth,
                        "gate depth {d} exceeds its path depth {path_depth}");
                }
            }
        }
    }

    #[test]
    fn resize_incremental_equals_full(config in config_strategy(), pick in 0usize..50) {
        let n = config.generate();
        let mut sta = Sta::new(n, Sdc::with_period(1500.0), DerateSet::standard())
            .expect("valid design");
        let resizable: Vec<_> = sta.netlist().cells()
            .filter(|(_, c)| c.role == CellRole::Combinational
                && sta.netlist().library().upsized(c.lib_cell).is_some())
            .map(|(id, _)| id)
            .collect();
        prop_assume!(!resizable.is_empty());
        let victim = resizable[pick % resizable.len()];
        let up = sta.netlist().library()
            .upsized(sta.netlist().cell(victim).lib_cell).unwrap();
        sta.resize_cell(victim, up).unwrap();
        let fresh = Sta::new(sta.netlist().clone(), sta.sdc().clone(),
                             sta.derates().clone()).unwrap();
        for e in sta.netlist().endpoints() {
            prop_assert!((sta.setup_slack(e) - fresh.setup_slack(e)).abs() < 1e-6);
        }
    }
}
