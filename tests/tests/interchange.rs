//! Cross-format interchange integration: the text format, the Verilog
//! subset, the Liberty subset, the AOCV format, and the SDF export must
//! all agree about the same design.

use netlist::{
    parse_liberty, parse_netlist, parse_verilog, write_liberty, write_netlist, write_verilog,
    GeneratorConfig, Library,
};
use sta::{parse_aocv, write_aocv, write_sdf, DerateSet, DeratingTable, Sdc, Sta};

#[test]
fn text_and_verilog_views_time_identically() {
    let design = GeneratorConfig::small(2001).generate();
    let via_text = parse_netlist(&write_netlist(&design)).expect("text round trip");
    let via_verilog = parse_verilog(&write_verilog(&design)).expect("verilog round trip");

    let sdc = Sdc::with_period(1500.0);
    let a = Sta::new(via_text, sdc.clone(), DerateSet::standard()).unwrap();
    let b = Sta::new(via_verilog, sdc, DerateSet::standard()).unwrap();

    // The Verilog view drops port placement (ports sit at the origin), so
    // compare per-endpoint slacks only up to the port-wire difference:
    // flip-flop endpoints must agree exactly.
    for (e, cell) in a.netlist().cells() {
        if cell.role != netlist::CellRole::Sequential {
            continue;
        }
        let e_b = b.netlist().find_cell(&cell.name).expect("same flops");
        assert!(
            (a.setup_slack(e) - b.setup_slack(e_b)).abs() < 1e-6,
            "slack mismatch at {}",
            cell.name
        );
    }
}

#[test]
fn liberty_round_trip_preserves_timing() {
    let lib_text = write_liberty(&Library::standard());
    let parsed = parse_liberty(&lib_text).expect("liberty parses");
    // A design timed against the re-parsed library matches the original.
    let design = GeneratorConfig::small(2002).generate();
    let a = Sta::new(
        design.clone(),
        Sdc::with_period(1500.0),
        DerateSet::standard(),
    )
    .unwrap();
    // Rebuild the same design against the reparsed library by dumping to
    // the text format (which references cells by name) and re-reading: the
    // text parser uses Library::standard(), so instead compare cell data.
    for (_, cell) in design.cells() {
        let name = &design.library().cell(cell.lib_cell).name;
        let reparsed = parsed.cell(parsed.find(name).expect("cell exists"));
        let original = design.library().cell(cell.lib_cell);
        assert_eq!(reparsed.intrinsic, original.intrinsic, "{name}");
        assert_eq!(reparsed.drive_res, original.drive_res, "{name}");
        assert_eq!(reparsed.input_cap, original.input_cap, "{name}");
    }
    let _ = a;
}

#[test]
fn aocv_export_matches_live_tables() {
    let live = DeratingTable::standard_late();
    let text = write_aocv(&live, "late", "cell");
    let parsed = parse_aocv(&text).expect("aocv parses");
    for &depth in live.depths() {
        for &dist in live.distances() {
            assert!(
                (parsed.table.lookup(depth, dist) - live.lookup(depth, dist)).abs() < 1e-12,
                "grid point ({depth}, {dist})"
            );
        }
    }
    // Interpolated points agree too (same grid → same bilinear surface).
    assert!((parsed.table.lookup(5.5, 333.0) - live.lookup(5.5, 333.0)).abs() < 1e-12);
}

#[test]
fn sdf_reflects_engine_delays() {
    let design = GeneratorConfig::small(2003).generate();
    let sta = Sta::new(design, Sdc::with_period(1500.0), DerateSet::standard()).unwrap();
    let sdf = write_sdf(&sta);
    // Spot-check one combinational gate: its typ IOPATH value equals the
    // engine's underated delay.
    let (id, cell) = sta
        .netlist()
        .cells()
        .find(|(_, c)| c.role == netlist::CellRole::Combinational)
        .expect("has gates");
    let expected = format!("{:.1}", sta.gate_delay(id));
    let block = sdf
        .split("(INSTANCE ")
        .find(|b| b.starts_with(&cell.name))
        .expect("instance in SDF");
    assert!(
        block.contains(&format!(":{expected}:")),
        "typ delay {expected} missing for {} in:\n{block}",
        cell.name
    );
}

#[test]
fn verilog_of_all_benchmark_designs_parses() {
    for spec in [netlist::DesignSpec::D1, netlist::DesignSpec::D5] {
        let design = spec.generate();
        let parsed = parse_verilog(&write_verilog(&design)).expect("round trip");
        assert_eq!(parsed.num_cells(), design.num_cells(), "{spec}");
        parsed.validate().expect("valid");
    }
}
