//! Property tests for the WAL record codec (`server::wal`).
//!
//! The durability layer's recovery path feeds whatever bytes survived a
//! crash straight into `wal::scan`, so the decoder must be *total*:
//! every input — a clean image truncated at any byte offset, any
//! single-bit flip, or outright random garbage — must yield a clean
//! prefix of records plus an optional truncation reason, and never
//! panic, never return a corrupted record as if it were clean.

use proptest::prelude::*;
use server::wal;

/// Builds a WAL image from record payloads.
fn image(lines: &[&str]) -> Vec<u8> {
    let mut out = Vec::new();
    for line in lines {
        out.extend_from_slice(&wal::encode_record(line));
    }
    out
}

const LINES: &[&str] = &[
    r#"{"id":1,"proto":2,"cmd":"load","design":"small:5"}"#,
    r#"{"id":2,"proto":2,"cmd":"calibrate","solver":"scgrs"}"#,
    r#"{"id":3,"proto":2,"cmd":"commit","cell":"g_1_0_0","to":"up"}"#,
];

#[test]
fn clean_image_roundtrips() {
    let scan = wal::scan(&image(LINES));
    assert_eq!(scan.records, LINES);
    assert_eq!(scan.valid_len, image(LINES).len() as u64);
    assert!(scan.truncated.is_none());
}

#[test]
fn truncation_at_every_byte_offset_yields_a_clean_prefix() {
    // A crash can cut the file anywhere. For every prefix length the
    // scan must recover exactly the records whose frames fit entirely
    // inside the prefix, flag the torn tail when bytes remain, and
    // report a valid_len that re-scans to the same records.
    let full = image(LINES);
    let mut frame_ends = Vec::new();
    let mut end = 0usize;
    for line in LINES {
        end += wal::HEADER_LEN + line.len();
        frame_ends.push(end);
    }
    for cut in 0..=full.len() {
        let scan = wal::scan(&full[..cut]);
        let expect_whole = frame_ends.iter().filter(|e| **e <= cut).count();
        assert_eq!(
            scan.records.len(),
            expect_whole,
            "cut at {cut}: clean prefix must hold exactly the complete frames"
        );
        assert_eq!(scan.records, &LINES[..expect_whole], "cut at {cut}");
        let at_boundary = cut == 0 || frame_ends.contains(&cut);
        assert_eq!(
            scan.truncated.is_none(),
            at_boundary,
            "cut at {cut}: only frame boundaries scan clean"
        );
        // The reported clean length must itself re-scan identically —
        // that is the length recovery truncates the file to.
        let again = wal::scan(&full[..scan.valid_len as usize]);
        assert_eq!(again.records, scan.records, "cut at {cut}");
        assert!(again.truncated.is_none(), "cut at {cut}");
    }
}

#[test]
fn every_single_bit_flip_is_detected_or_isolated() {
    // Flipping any one bit must never panic and never smuggle a
    // corrupted payload through as a clean record: every record the
    // scan does return must be one of the originals, byte-for-byte
    // (a flip in record N's frame may still legitimately leave records
    // before N intact).
    let full = image(LINES);
    for byte in 0..full.len() {
        for bit in 0..8 {
            let mut corrupt = full.clone();
            corrupt[byte] ^= 1 << bit;
            let scan = wal::scan(&corrupt);
            for rec in &scan.records {
                assert!(
                    LINES.contains(&rec.as_str()),
                    "flip at byte {byte} bit {bit} forged record {rec:?}"
                );
            }
            // A flip anywhere in the image cannot *add* records.
            assert!(
                scan.records.len() <= LINES.len(),
                "flip at byte {byte} bit {bit} grew the log"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn random_garbage_never_panics(bytes in prop::collection::vec(0u8..=255, 0..4096)) {
        let scan = wal::scan(&bytes);
        // The clean prefix is bounded by the input and re-scans stable.
        prop_assert!(scan.valid_len as usize <= bytes.len());
        let again = wal::scan(&bytes[..scan.valid_len as usize]);
        prop_assert_eq!(again.records, scan.records);
        prop_assert!(again.truncated.is_none());
    }

    #[test]
    fn garbage_appended_to_a_clean_log_preserves_the_prefix(
        garbage in prop::collection::vec(0u8..=255, 1..256),
    ) {
        let mut bytes = image(LINES);
        let clean_len = bytes.len() as u64;
        bytes.extend_from_slice(&garbage);
        let scan = wal::scan(&bytes);
        // All original records survive; the garbage either parses as
        // more (astronomically unlikely but legal if it frames
        // correctly) or trips the truncation detector at/after the
        // clean boundary.
        prop_assert!(scan.records.len() >= LINES.len());
        prop_assert_eq!(&scan.records[..LINES.len()], LINES);
        prop_assert!(scan.valid_len >= clean_len);
    }

    #[test]
    fn encode_scan_roundtrip_for_arbitrary_lines(
        raw in prop::collection::vec(prop::collection::vec(0x20u8..0x7f, 1..120), 0..8),
    ) {
        // Non-empty printable-ASCII payloads, like the rendered request
        // lines the writer actually stores (length-0 frames are
        // rejected by the codec as implausible).
        let lines: Vec<String> = raw
            .into_iter()
            .map(|b| String::from_utf8(b).expect("ascii"))
            .collect();
        let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
        let scan = wal::scan(&image(&refs));
        prop_assert_eq!(scan.records, lines);
        prop_assert!(scan.truncated.is_none());
    }
}
