#!/usr/bin/env bash
# Crash-recovery drill for the durable session layer (DESIGN.md §16).
#
# Runs a scripted commit storm against `mgba-sta serve --state-dir`,
# kill -9s the server after a handful of randomly chosen acknowledged
# mutations, restarts it on the same state dir, resumes the remainder
# of the storm, and byte-compares the final read suite (slack / wns /
# tns / history) against an uninterrupted reference run. Because every
# mutation is fsynced to the WAL before it is acknowledged, an ack
# followed by kill -9 must never lose state.
#
# Environment knobs:
#   BIN    — path to the release binary (default ./target/release/mgba-sta)
#   PORT   — first listen port; each server instance takes the next one
#   POINTS — space-separated kill points (mutation counts) to override
#            the random selection, e.g. POINTS="1 4 8"
set -euo pipefail

BIN=${BIN:-./target/release/mgba-sta}
PORT=${PORT:-7610}
WORK=$(mktemp -d)
SERVER_PID=
trap '[ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null; rm -rf "$WORK"' EXIT

MUTATIONS=(
  '{"id":1,"cmd":"load","design":"small:7"}'
  '{"id":2,"cmd":"calibrate","solver":"scgrs"}'
  '{"id":3,"cmd":"commit","cell":"g_1_0_0","to":"up"}'
  '{"id":4,"cmd":"commit","cell":"g_1_1_0","to":"up"}'
  '{"id":5,"cmd":"commit","cell":"g_0_0_1","to":"up"}'
  '{"id":6,"cmd":"recalibrate"}'
  '{"id":7,"cmd":"commit","cell":"g_1_0_0","to":"down"}'
  '{"id":8,"cmd":"commit","cell":"g_0_0_2","to":"up"}'
)
# The read suite is issued over protocol v1: v1 envelopes carry no
# admission-order request_id stamp, so a restarted process can answer
# byte-for-byte identically to the uninterrupted reference.
READS=(
  '{"id":90,"cmd":"slack","top":5}'
  '{"id":91,"cmd":"wns"}'
  '{"id":92,"cmd":"tns"}'
  '{"id":93,"cmd":"history"}'
)
TOTAL=${#MUTATIONS[@]}

start() { # start <state-dir>; sets SERVER_PID and ADDR
  PORT=$((PORT + 1))
  ADDR=127.0.0.1:$PORT
  "$BIN" serve --listen "$ADDR" --state-dir "$1" &
  SERVER_PID=$!
  for _ in $(seq 1 100); do
    if "$BIN" query --connect "$ADDR" --timeout-ms 2000 \
        '{"id":0,"cmd":"ping"}' >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.1
  done
  echo "FAIL: server did not come up on $ADDR" >&2
  exit 1
}

stop() { # graceful shutdown + reap
  "$BIN" query --connect "$ADDR" --timeout-ms 60000 \
    '{"id":99,"cmd":"shutdown"}' | grep -q '"draining":true'
  wait "$SERVER_PID"
  SERVER_PID=
}

q() { "$BIN" query --connect "$ADDR" --timeout-ms 60000 "$@"; }
qv1() { "$BIN" query --connect "$ADDR" --timeout-ms 60000 --proto 1 "$@"; }

must_ok() { # must_ok <file> <label>
  if grep -q '"ok":false' "$1"; then
    echo "FAIL: $2:" >&2
    cat "$1" >&2
    exit 1
  fi
}

# --- Reference: the storm runs to completion uninterrupted. ----------
start "$WORK/ref"
q "${MUTATIONS[@]}" > "$WORK/ref_mut.out"
must_ok "$WORK/ref_mut.out" "reference mutation storm"
qv1 "${READS[@]}" > "$WORK/ref_reads.out"
stop

# --- Drill: kill -9 after K acknowledged mutations, restart, resume. -
if [ -z "${POINTS:-}" ]; then
  POINTS="1 $TOTAL"
  for _ in 1 2 3; do
    POINTS="$POINTS $((RANDOM % (TOTAL - 1) + 1))"
  done
fi
echo "kill points: $POINTS (of $TOTAL mutations)"

for k in $POINTS; do
  dir=$WORK/kill_$k
  rm -rf "$dir"
  start "$dir"
  q "${MUTATIONS[@]:0:k}" > "$WORK/before_$k.out"
  must_ok "$WORK/before_$k.out" "storm prefix before kill at $k"
  kill -9 "$SERVER_PID"
  wait "$SERVER_PID" 2>/dev/null || true
  SERVER_PID=

  start "$dir"
  q '{"id":80,"cmd":"health"}' > "$WORK/health_$k.out"
  grep -q '"recovered":true' "$WORK/health_$k.out" || {
    echo "FAIL: restart after kill at $k did not report a recovery:" >&2
    cat "$WORK/health_$k.out" >&2
    exit 1
  }
  if [ "$k" -lt "$TOTAL" ]; then
    q "${MUTATIONS[@]:k}" > "$WORK/resume_$k.out"
    must_ok "$WORK/resume_$k.out" "storm remainder after kill at $k"
  fi
  qv1 "${READS[@]}" > "$WORK/reads_$k.out"
  stop

  if ! diff "$WORK/ref_reads.out" "$WORK/reads_$k.out"; then
    echo "FAIL: reads diverged from the uninterrupted reference after kill at $k" >&2
    exit 1
  fi
  echo "kill at $k: recovered, resumed, reads byte-identical"
done

echo "crash-recovery drill passed"
