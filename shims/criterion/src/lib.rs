//! Offline stand-in for `criterion`.
//!
//! Provides the benchmark surface this workspace uses — `Criterion`,
//! `benchmark_group`/`sample_size`/`bench_function`/`finish`,
//! `BenchmarkId::from_parameter`, `criterion_group!`, `criterion_main!` —
//! as a plain wall-clock harness. Each benchmark runs a warmup pass,
//! auto-calibrates an iteration count per sample, then reports min /
//! median / mean time per iteration. There is no statistical regression
//! machinery; the numbers are indicative, which is all the offline
//! environment can support.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target wall-clock time for one measurement sample.
const TARGET_SAMPLE: Duration = Duration::from_millis(5);

/// Top-level benchmark driver handed to every `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 50,
        }
    }

    /// Runs a stand-alone benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) {
        self.benchmark_group("").bench_function(id, f);
    }

    /// Finalizes the run (upstream prints a summary; nothing to do here).
    pub fn final_summary(&mut self) {}
}

/// A named set of benchmarks sharing a sample-count setting.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets how many timing samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times `f` and prints per-iteration statistics.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_count: self.sample_size,
        };
        f(&mut bencher);
        let label = if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{}", self.name, id)
        };
        report(&label, &mut bencher.samples);
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier for a parameterized benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendered from the benchmark's parameter value.
    pub fn from_parameter(p: impl Display) -> Self {
        Self(p.to_string())
    }

    /// An id with a function-name prefix and a parameter value.
    pub fn new(name: impl Display, p: impl Display) -> Self {
        Self(format!("{name}/{p}"))
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// Timing loop handle passed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_count: usize,
}

impl Bencher {
    /// Measures `f`: one warmup call, then `sample_size` samples of an
    /// auto-calibrated number of iterations each.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let warmup = Instant::now();
        std::hint::black_box(f());
        let once = warmup.elapsed();

        // Enough iterations per sample to out-run timer granularity,
        // capped so fast closures do not stretch the run.
        let iters = if once >= TARGET_SAMPLE {
            1
        } else {
            let per_iter = once.as_nanos().max(1);
            ((TARGET_SAMPLE.as_nanos() / per_iter) as u64).clamp(1, 1_000_000)
        };

        self.samples.clear();
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            self.samples.push(start.elapsed() / iters as u32);
        }
    }
}

/// Prints `label  min … median … mean` in human units.
fn report(label: &str, samples: &mut [Duration]) {
    if samples.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    samples.sort_unstable();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{label:<48} [{} {} {}]  (min median mean, {} samples)",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(mean),
        samples.len(),
    );
}

/// Formats a duration with criterion-style adaptive units.
fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Declares a benchmark group function that runs each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `fn main` running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        let mut calls = 0u64;
        group.bench_function(BenchmarkId::from_parameter(42), |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.finish();
        assert!(calls > 5, "warmup + samples should call the closure");
    }

    #[test]
    fn duration_formatting_picks_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(999)), "999 ns");
        assert_eq!(fmt_duration(Duration::from_micros(2)), "2.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(3)), "3.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00 s");
    }
}
