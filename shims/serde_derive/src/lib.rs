//! No-op `Serialize`/`Deserialize` derives for the offline serde shim.
//!
//! The workspace annotates its public data types with serde derives for
//! downstream consumers, but nothing in-tree performs serialization, so
//! the derives expand to nothing. When a real registry is available the
//! shim can be swapped back to upstream serde without touching any
//! annotated type.

use proc_macro::TokenStream;

/// Derives nothing — placeholder for `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Derives nothing — placeholder for `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
