//! Offline stand-in for `proptest`.
//!
//! Implements the macro and strategy surface this workspace uses —
//! `proptest!`, `prop_compose!`, `prop_assert!`, `prop_assume!`,
//! `prop::collection::vec`, range and tuple strategies,
//! `ProptestConfig::with_cases` — as a deterministic random-sampling
//! harness. Unlike real proptest there is no shrinking: a failing case
//! panics with the seed-derived case index so it can be re-run, which is
//! sufficient for the invariant suites in this repository.

/// Per-test configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` sampled cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the offline suite fast
        // while still exercising the parameter space.
        Self { cases: 64 }
    }
}

/// The deterministic generator driving strategy sampling (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// A generator seeded from the test's name, so every property has a
    /// stable, independent stream.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self(h)
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in [0, bound).
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot sample empty range");
        self.next_u64() % bound
    }
}

/// A sampleable value source.
pub trait Strategy {
    /// The produced value type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Strategy wrapping a closure (used by `prop_compose!`).
pub struct FnStrategy<F>(pub F);

impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Strategy producing a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start() <= self.end(), "empty f64 strategy range");
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(lo < hi, "empty integer strategy range");
                (lo + rng.below((hi - lo) as u64) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let lo = *self.start() as i128;
                let hi = *self.end() as i128;
                assert!(lo <= hi, "empty integer strategy range");
                (lo + rng.below((hi - lo + 1) as u64) as i128) as $t
            }
        }
    )*};
}
int_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Strategy namespace mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// Lengths accepted by [`vec()`]: a fixed size or a half-open range.
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            lo: usize,
            hi: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                Self { lo: n, hi: n + 1 }
            }
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty vec length range");
                Self {
                    lo: r.start,
                    hi: r.end,
                }
            }
        }

        impl From<std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: std::ops::RangeInclusive<usize>) -> Self {
                Self {
                    lo: *r.start(),
                    hi: *r.end() + 1,
                }
            }
        }

        /// Strategy producing vectors of `element` with a length drawn
        /// from `size`.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let span = (self.size.hi - self.size.lo) as u64;
                let len = self.size.lo + rng.below(span.max(1)) as usize;
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }

        /// `prop::collection::vec(element, size)`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, prop_compose, proptest, FnStrategy, Just,
        ProptestConfig, Strategy, TestRng,
    };
}

/// Runs one sampled case. Routing the sampled tuple through a generic
/// call pins the closure's argument types before its body is
/// type-checked, which direct closure invocation would not.
#[doc(hidden)]
pub fn __run_case<V, F: FnOnce(V)>(vals: V, f: F) {
    f(vals)
}

/// Asserts a property-test condition (panics with context on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(, $($fmt:tt)+)?) => {
        assert_eq!($a, $b $(, $($fmt)+)?);
    };
}

/// Skips the current sampled case when its precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Defines property tests: each `fn` samples its `pat in strategy`
/// arguments `config.cases` times and runs the body on every sample.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__cfg.cases {
                $crate::__run_case(
                    ($($crate::Strategy::sample(&($strat), &mut __rng),)+),
                    |($($pat,)+)| $body,
                );
            }
        }
    )*};
}

/// Defines a named strategy function from component strategies, mirroring
/// `proptest::prop_compose!`.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($earg:tt)*)
        ($($pat:pat in $strat:expr),+ $(,)?) -> $ret:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name($($earg)*) -> impl $crate::Strategy<Value = $ret> {
            $crate::FnStrategy(move |__rng: &mut $crate::TestRng| {
                $(let $pat = $crate::Strategy::sample(&($strat), __rng);)+
                $body
            })
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    prop_compose! {
        /// A pair (n, n + k) with k bounded.
        fn ordered_pair()(n in 0usize..100, k in 1usize..10) -> (usize, usize) {
            (n, n + k)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_sample_in_bounds(x in 3u32..9, f in -1.5f64..2.5) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.5..2.5).contains(&f));
        }

        #[test]
        fn composed_strategies_run(p in ordered_pair()) {
            prop_assert!(p.0 < p.1, "{} !< {}", p.0, p.1);
        }

        #[test]
        fn vectors_respect_length_and_element_ranges(
            v in prop::collection::vec((0usize..8, -10.0f64..10.0), 0..6),
            w in prop::collection::vec(-5.0f64..5.0, 8),
        ) {
            prop_assert!(v.len() < 6);
            prop_assert_eq!(w.len(), 8);
            for (i, f) in &v {
                prop_assert!(*i < 8 && (-10.0..10.0).contains(f));
            }
        }

        #[test]
        fn assume_skips_cases(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    #[test]
    fn deterministic_rng_is_stable_per_name() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("y");
        assert_ne!(TestRng::deterministic("x").next_u64(), c.next_u64());
    }
}
