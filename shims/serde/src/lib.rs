//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its public data
//! types as an API affordance; no in-tree code serializes anything. With
//! no registry available, this shim supplies no-op derive macros under
//! the same import paths so the annotations compile unchanged.

pub use serde_derive::{Deserialize, Serialize};
