//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! The build environment has no registry access, so this shim provides
//! the exact surface the workspace uses: [`rngs::StdRng`] (xoshiro256++
//! seeded via SplitMix64), [`SeedableRng::seed_from_u64`], the [`Rng`]
//! convenience methods `random`, `random_range`, `random_bool`, and
//! [`seq::IndexedRandom::choose`] for slices.
//!
//! The generator is a different algorithm than upstream `StdRng`
//! (ChaCha12), so streams differ from real `rand` — everything in this
//! workspace only relies on determinism-per-seed and uniformity, never
//! on specific draw values.

/// A source of uniformly random 64-bit words.
pub trait Rng {
    /// The next raw word from the generator.
    fn next_u64(&mut self) -> u64;

    /// A value sampled from the standard distribution of `T`
    /// (`f64` ∈ [0, 1)).
    fn random<T: StandardSample>(&mut self) -> T {
        T::standard(self)
    }

    /// A value uniform over `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::standard(self) < p
    }
}

/// Types samplable from their standard distribution.
pub trait StandardSample {
    /// Draws one value.
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for bool {
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one value from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange for std::ops::RangeInclusive<f64> {
    type Output = f64;
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        let u = f64::standard(rng);
        lo + u * (hi - lo)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi - lo) as u128;
                (lo + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let lo = *self.start() as i128;
                let hi = *self.end() as i128;
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u128 + 1;
                (lo + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
int_sample_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

/// Construction of seedable generators.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ with SplitMix64 seed
    /// expansion. Deterministic per seed, passes BigCrush upstream.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Random selection from indexable collections.
    pub trait IndexedRandom {
        /// The element type.
        type Item;
        /// A uniformly random element, or `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> IndexedRandom for [T] {
        type Item = T;
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::IndexedRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let u = rng.random_range(3usize..17);
            assert!((3..17).contains(&u));
            let i = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
            let f = rng.random_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&f));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "got {hits}");
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn choose_covers_slice() {
        let mut rng = StdRng::seed_from_u64(4);
        let items = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[*items.choose(&mut rng).unwrap() - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn uniformity_rough_check() {
        // Mean of 100k unit draws should be near 0.5.
        let mut rng = StdRng::seed_from_u64(5);
        let sum: f64 = (0..100_000).map(|_| rng.random::<f64>()).sum();
        let mean = sum / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
