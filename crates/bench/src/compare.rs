//! Regression comparator for `BENCH_PR.json` reports: joins a current
//! report against the committed baseline scenario-by-scenario and lists
//! every threshold violation. The `bench_compare` binary maps a
//! non-empty violation list to a nonzero exit status, which is what the
//! CI `bench-gate` job keys on.
//!
//! Two metric classes, two disciplines:
//!
//! - **Machine facts** (`wall_ms`, `peak_rss_kb`) are noisy, so they get
//!   multiplicative headroom plus an absolute floor that keeps
//!   millisecond-scale scenarios from tripping on scheduler jitter.
//! - **QoR metrics** are deterministic; any drift beyond a tight
//!   relative tolerance means the fit changed and the baseline must be
//!   regenerated deliberately (with the change explained in the PR).

use crate::harness::ScenarioResult;
use server::json::{parse, Value};

/// Gate thresholds; [`Thresholds::default`] matches the CI defaults
/// except for the wall factor, which CI widens on shared runners.
#[derive(Debug, Clone)]
pub struct Thresholds {
    /// Current wall time may be at most `baseline * wall_factor +
    /// wall_floor_ms`.
    pub wall_factor: f64,
    /// Absolute wall-time headroom (ms) added on top of the factor.
    pub wall_floor_ms: f64,
    /// Current peak RSS may be at most `baseline * rss_factor +
    /// rss_floor_kb`.
    pub rss_factor: f64,
    /// Absolute RSS headroom (kB) added on top of the factor.
    pub rss_floor_kb: f64,
    /// Relative tolerance for QoR metrics: `|cur - base|` must stay
    /// within `qor_rel_tol * max(|base|, 1e-12)`.
    pub qor_rel_tol: f64,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds {
            wall_factor: 1.75,
            wall_floor_ms: 5.0,
            rss_factor: 1.5,
            rss_floor_kb: 16_384.0,
            qor_rel_tol: 1e-2,
        }
    }
}

/// One threshold breach.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Scenario the breach occurred in.
    pub scenario: String,
    /// Metric name (`wall_ms`, `peak_rss_kb`, or a QoR key).
    pub metric: String,
    /// Baseline value (0 when the metric is simply missing).
    pub baseline: f64,
    /// Current value (0 when the scenario/metric is missing).
    pub current: f64,
    /// Human-readable explanation.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{}: {} (baseline {:.4}, current {:.4})",
            self.scenario, self.metric, self.detail, self.baseline, self.current
        )
    }
}

/// A parsed `BENCH_PR.json` document.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Commit sha recorded by the producing run.
    pub commit: String,
    /// Thread-pool width of the producing run.
    pub threads: u64,
    /// Scenarios in file order.
    pub scenarios: Vec<ScenarioResult>,
}

impl BenchReport {
    fn scenario(&self, name: &str) -> Option<&ScenarioResult> {
        self.scenarios.iter().find(|s| s.name == name)
    }
}

/// Parses a version-1 report document.
///
/// # Errors
///
/// Returns a description of the first structural problem (bad JSON,
/// wrong version, missing fields).
pub fn parse_report(text: &str) -> Result<BenchReport, String> {
    let v = parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let version = v
        .get("version")
        .and_then(Value::as_u64)
        .ok_or("missing `version`")?;
    if version != crate::harness::BENCH_SCHEMA_VERSION {
        return Err(format!("unsupported report version {version}"));
    }
    let commit = v
        .get("commit")
        .and_then(Value::as_str)
        .ok_or("missing `commit`")?
        .to_owned();
    let threads = v
        .get("threads")
        .and_then(Value::as_u64)
        .ok_or("missing `threads`")?;
    let Some(Value::Arr(entries)) = v.get("scenarios") else {
        return Err("missing `scenarios` array".into());
    };
    let mut scenarios = Vec::with_capacity(entries.len());
    for e in entries {
        let name = e
            .get("name")
            .and_then(Value::as_str)
            .ok_or("scenario missing `name`")?
            .to_owned();
        let wall_ms = e
            .get("wall_ms")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("scenario `{name}` missing `wall_ms`"))?;
        let peak_rss_kb = e
            .get("peak_rss_kb")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("scenario `{name}` missing `peak_rss_kb`"))?;
        let Some(Value::Obj(qor_obj)) = e.get("qor") else {
            return Err(format!("scenario `{name}` missing `qor` object"));
        };
        let mut qor = Vec::with_capacity(qor_obj.len());
        for (k, val) in qor_obj {
            let num = val
                .as_f64()
                .ok_or_else(|| format!("scenario `{name}` qor `{k}` is not a number"))?;
            qor.push((k.clone(), num));
        }
        scenarios.push(ScenarioResult {
            name,
            wall_ms,
            peak_rss_kb,
            qor,
        });
    }
    Ok(BenchReport {
        commit,
        threads,
        scenarios,
    })
}

/// Compares `current` against `baseline`, returning every violation
/// (empty means the gate passes). Scenarios present only in `current`
/// are new coverage and never violations; scenarios missing from
/// `current` are.
pub fn compare(baseline: &BenchReport, current: &BenchReport, th: &Thresholds) -> Vec<Violation> {
    let mut out = Vec::new();
    for base in &baseline.scenarios {
        let Some(cur) = current.scenario(&base.name) else {
            out.push(Violation {
                scenario: base.name.clone(),
                metric: "scenario".into(),
                baseline: 1.0,
                current: 0.0,
                detail: "scenario missing from current report".into(),
            });
            continue;
        };
        let wall_allowed = base.wall_ms * th.wall_factor + th.wall_floor_ms;
        if cur.wall_ms > wall_allowed {
            out.push(Violation {
                scenario: base.name.clone(),
                metric: "wall_ms".into(),
                baseline: base.wall_ms,
                current: cur.wall_ms,
                detail: format!("wall time exceeds allowed {wall_allowed:.2} ms"),
            });
        }
        if base.peak_rss_kb > 0 && cur.peak_rss_kb > 0 {
            let rss_allowed = base.peak_rss_kb as f64 * th.rss_factor + th.rss_floor_kb;
            if cur.peak_rss_kb as f64 > rss_allowed {
                out.push(Violation {
                    scenario: base.name.clone(),
                    metric: "peak_rss_kb".into(),
                    baseline: base.peak_rss_kb as f64,
                    current: cur.peak_rss_kb as f64,
                    detail: format!("peak RSS exceeds allowed {rss_allowed:.0} kB"),
                });
            }
        }
        for (key, base_val) in &base.qor {
            // `wall_`- and `read_qps_`-prefixed QoR keys are
            // wall-clock-derived machine facts a scenario wants in its
            // report (per-leg timings, the warm-vs-cold speedup, the
            // saturation throughputs). They are too noisy for the drift
            // gate; CI pins them with explicit `--require-min` floors
            // instead.
            if key.starts_with("wall_") || key.starts_with("read_qps_") {
                continue;
            }
            let Some((_, cur_val)) = cur.qor.iter().find(|(k, _)| k == key) else {
                out.push(Violation {
                    scenario: base.name.clone(),
                    metric: key.clone(),
                    baseline: *base_val,
                    current: 0.0,
                    detail: "QoR metric missing from current report".into(),
                });
                continue;
            };
            let tol = th.qor_rel_tol * base_val.abs().max(1e-12);
            if (cur_val - base_val).abs() > tol {
                out.push(Violation {
                    scenario: base.name.clone(),
                    metric: key.clone(),
                    baseline: *base_val,
                    current: *cur_val,
                    detail: format!(
                        "QoR drifted beyond ±{:.3}% of baseline",
                        th.qor_rel_tol * 100.0
                    ),
                });
            }
        }
    }
    out
}

/// An absolute floor on a current-report metric, from a
/// `--require-min SCENARIO:KEY:MIN` flag. Unlike the baseline diff,
/// floors judge the current report alone — they express requirements
/// ("warm refits must not be slower than cold") rather than drift.
#[derive(Debug, Clone, PartialEq)]
pub struct Minimum {
    /// Scenario the floor applies to.
    pub scenario: String,
    /// QoR key inside that scenario (`wall_`-prefixed keys allowed —
    /// that is the main use).
    pub metric: String,
    /// Smallest acceptable value, inclusive.
    pub min: f64,
}

/// Parses a `SCENARIO:KEY:MIN` spec.
///
/// # Errors
///
/// Returns a description when the spec does not split into three
/// `:`-separated fields or the minimum is not a number.
pub fn parse_minimum(spec: &str) -> Result<Minimum, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    let [scenario, metric, min] = parts.as_slice() else {
        return Err(format!("`{spec}` is not SCENARIO:KEY:MIN"));
    };
    let min: f64 = min
        .parse()
        .map_err(|_| format!("`{min}` in `{spec}` is not a number"))?;
    if scenario.is_empty() || metric.is_empty() {
        return Err(format!("`{spec}` has an empty scenario or key"));
    }
    Ok(Minimum {
        scenario: (*scenario).to_owned(),
        metric: (*metric).to_owned(),
        min,
    })
}

/// Checks `--require-min` floors against `current`. A missing scenario
/// or metric is itself a violation: a floor that silently stops being
/// measured is a gate that silently stops gating.
pub fn check_minimums(current: &BenchReport, minimums: &[Minimum]) -> Vec<Violation> {
    let mut out = Vec::new();
    for m in minimums {
        let Some(s) = current.scenario(&m.scenario) else {
            out.push(Violation {
                scenario: m.scenario.clone(),
                metric: m.metric.clone(),
                baseline: m.min,
                current: 0.0,
                detail: "scenario with a required minimum is missing".into(),
            });
            continue;
        };
        let Some((_, val)) = s.qor.iter().find(|(k, _)| k == &m.metric) else {
            out.push(Violation {
                scenario: m.scenario.clone(),
                metric: m.metric.clone(),
                baseline: m.min,
                current: 0.0,
                detail: "QoR metric with a required minimum is missing".into(),
            });
            continue;
        };
        if *val < m.min {
            out.push(Violation {
                scenario: m.scenario.clone(),
                metric: m.metric.clone(),
                baseline: m.min,
                current: *val,
                detail: format!("below required minimum {}", m.min),
            });
        }
    }
    out
}

/// Exit status for a violation list: 0 clean, 1 gated.
pub fn exit_code(violations: &[Violation]) -> i32 {
    i32::from(!violations.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(scenarios: Vec<ScenarioResult>) -> BenchReport {
        BenchReport {
            commit: "test".into(),
            threads: 1,
            scenarios,
        }
    }

    fn scenario(name: &str, wall_ms: f64, rss: u64, qor: &[(&str, f64)]) -> ScenarioResult {
        ScenarioResult {
            name: name.into(),
            wall_ms,
            peak_rss_kb: rss,
            qor: qor.iter().map(|(k, v)| ((*k).to_owned(), *v)).collect(),
        }
    }

    #[test]
    fn identical_reports_pass() {
        let base = report(vec![scenario(
            "calibrate",
            120.0,
            80_000,
            &[("mse_after", 2.5e-3)],
        )]);
        assert!(compare(&base, &base, &Thresholds::default()).is_empty());
    }

    #[test]
    fn injected_2x_slowdown_fails_the_gate() {
        // The acceptance criterion: a 2x wall-time regression must trip
        // the default thresholds and produce a nonzero exit.
        let base = report(vec![scenario(
            "calibrate_scgrs",
            100.0,
            80_000,
            &[("mse_after", 2.5e-3)],
        )]);
        let mut slow = base.clone();
        slow.scenarios[0].wall_ms *= 2.0;
        let violations = compare(&base, &slow, &Thresholds::default());
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].metric, "wall_ms");
        assert_eq!(exit_code(&violations), 1);
    }

    #[test]
    fn jitter_on_tiny_scenarios_is_absorbed_by_the_floor() {
        // 2 ms -> 4 ms is a 2x "slowdown" but pure noise at this scale;
        // the absolute floor keeps it green.
        let base = report(vec![scenario("query_mix", 2.0, 80_000, &[])]);
        let mut cur = base.clone();
        cur.scenarios[0].wall_ms = 4.0;
        assert!(compare(&base, &cur, &Thresholds::default()).is_empty());
    }

    #[test]
    fn qor_drift_and_missing_metric_fail() {
        let base = report(vec![scenario(
            "calibrate_scgrs",
            100.0,
            80_000,
            &[("mse_after", 2.0e-3), ("paths", 840.0)],
        )]);
        let cur = report(vec![scenario(
            "calibrate_scgrs",
            100.0,
            80_000,
            &[("mse_after", 2.1e-3)],
        )]);
        let violations = compare(&base, &cur, &Thresholds::default());
        let metrics: Vec<&str> = violations.iter().map(|v| v.metric.as_str()).collect();
        assert!(metrics.contains(&"mse_after"), "5% mse drift must fail");
        assert!(metrics.contains(&"paths"), "missing metric must fail");
    }

    #[test]
    fn missing_scenario_fails_but_new_scenario_passes() {
        let base = report(vec![scenario("a", 10.0, 1000, &[])]);
        let cur = report(vec![scenario("b", 10.0, 1000, &[])]);
        let violations = compare(&base, &cur, &Thresholds::default());
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].metric, "scenario");
        // Reversed: current has extra coverage, nothing to flag.
        assert!(compare(
            &cur,
            &report(vec![
                scenario("b", 10.0, 1000, &[]),
                scenario("a", 10.0, 1000, &[]),
            ]),
            &Thresholds::default()
        )
        .is_empty());
    }

    #[test]
    fn wall_prefixed_qor_keys_escape_the_drift_gate() {
        // A 10x swing on `wall_speedup` is machine noise, not QoR drift;
        // the deterministic keys still gate.
        let base = report(vec![scenario(
            "warm_vs_cold",
            50.0,
            80_000,
            &[("wall_speedup", 4.0), ("iterations_warm", 12.0)],
        )]);
        let mut cur = base.clone();
        cur.scenarios[0].qor[0].1 = 0.4;
        assert!(compare(&base, &cur, &Thresholds::default()).is_empty());
        cur.scenarios[0].qor[1].1 = 40.0;
        let violations = compare(&base, &cur, &Thresholds::default());
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].metric, "iterations_warm");
    }

    #[test]
    fn read_qps_prefixed_qor_keys_escape_the_drift_gate() {
        // Saturation throughputs are machine facts: a big swing between
        // runners must not trip the drift gate — the floor on the
        // scaling ratio is enforced via `--require-min` instead.
        let base = report(vec![scenario(
            "server_saturation",
            50.0,
            80_000,
            &[("read_qps_scaling", 2.0), ("clients", 4.0)],
        )]);
        let mut cur = base.clone();
        cur.scenarios[0].qor[0].1 = 9.0;
        assert!(compare(&base, &cur, &Thresholds::default()).is_empty());
        cur.scenarios[0].qor[1].1 = 8.0;
        let violations = compare(&base, &cur, &Thresholds::default());
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].metric, "clients");
    }

    #[test]
    fn minimums_gate_the_current_report_alone() {
        let cur = report(vec![scenario(
            "warm_vs_cold",
            50.0,
            80_000,
            &[("wall_speedup", 2.5)],
        )]);
        let floor = |min| Minimum {
            scenario: "warm_vs_cold".into(),
            metric: "wall_speedup".into(),
            min,
        };
        assert!(check_minimums(&cur, &[floor(1.0)]).is_empty());
        let violations = check_minimums(&cur, &[floor(3.0)]);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].detail.contains("below required minimum"));
        // Missing metric and missing scenario both gate.
        let missing_metric = check_minimums(
            &cur,
            &[Minimum {
                scenario: "warm_vs_cold".into(),
                metric: "nope".into(),
                min: 1.0,
            }],
        );
        assert_eq!(missing_metric.len(), 1);
        let missing_scenario = check_minimums(
            &cur,
            &[Minimum {
                scenario: "nope".into(),
                metric: "wall_speedup".into(),
                min: 1.0,
            }],
        );
        assert_eq!(missing_scenario.len(), 1);
    }

    #[test]
    fn minimum_specs_parse_and_reject() {
        let m = parse_minimum("warm_vs_cold:wall_speedup:1.0").unwrap();
        assert_eq!(m.scenario, "warm_vs_cold");
        assert_eq!(m.metric, "wall_speedup");
        assert_eq!(m.min, 1.0);
        assert!(parse_minimum("only_two:parts").is_err());
        assert!(parse_minimum("a:b:not_a_number").is_err());
        assert!(parse_minimum(":b:1.0").is_err());
    }

    #[test]
    fn rss_regression_fails_beyond_headroom() {
        let base = report(vec![scenario("a", 10.0, 100_000, &[])]);
        let mut cur = base.clone();
        cur.scenarios[0].peak_rss_kb = 400_000;
        let violations = compare(&base, &cur, &Thresholds::default());
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].metric, "peak_rss_kb");
    }

    #[test]
    fn round_trip_parse_matches_render() {
        let base = report(vec![scenario(
            "calibrate_scgrs",
            12.5,
            4096,
            &[("mse_after", 1.5e-3)],
        )]);
        let text = crate::harness::render_report("abc", 1, &base.scenarios);
        let parsed = parse_report(&text).expect("round trip");
        assert_eq!(parsed.scenarios, base.scenarios);
        assert_eq!(parsed.commit, "abc");
        assert!(parse_report("{\"version\":99}").is_err());
        assert!(parse_report("not json").is_err());
    }
}
