//! Shared workload definitions and table formatting for the benchmark
//! harness.
//!
//! Every table/figure binary builds its designs through [`build_engine`]
//! so the whole evaluation runs on the same ten benchmark circuits with
//! the same deterministic clock-period selection: the period is chosen so
//! the worst endpoint violates by a design-specific fraction of its data
//! depth, guaranteeing a realistic population of violating paths (the
//! paper's designs are all pre-closure post-route snapshots).

pub mod compare;
pub mod harness;
pub mod saturation;

use netlist::DesignSpec;
use sta::{DerateSet, Sdc, Sta};

/// Fraction of the worst arrival by which the worst endpoint violates in
/// the *analysis* experiments (Tables 3/4, figures). Deep enough that
/// most endpoints violate, mirroring the pre-closure snapshots the paper
/// measures (its selected-path counts are in the 10⁵–10⁶ range).
pub fn violation_fraction(spec: DesignSpec) -> f64 {
    use DesignSpec::*;
    match spec {
        D1 => 0.15,
        D2 => 0.30,
        D3 => 0.30,
        D4 => 0.30,
        D5 => 0.28,
        D6 => 0.32,
        D7 => 0.28,
        D8 => 0.35,
        D9 => 0.30,
        D10 => 0.30,
    }
}

/// Milder violation fraction for the *flow* experiments (Tables 2/5):
/// the repair transforms can realistically recover this much delay, so
/// both flows have a fighting chance of closure.
pub fn flow_violation_fraction(spec: DesignSpec) -> f64 {
    // Deeper than the typical GBA pessimism gap (~10-13% of the worst
    // arrival), so the violation population is a mix of real violations
    // and pessimism-only phantoms — the regime Table 2 measures.
    violation_fraction(spec) * 0.45
}

fn engine_at_fraction(spec: DesignSpec, frac: f64) -> Sta {
    let netlist = spec.generate();
    let probe = Sta::new(
        netlist.clone(),
        Sdc::with_period(100_000.0),
        DerateSet::standard(),
    )
    .expect("generated designs are valid");
    let max_arrival = probe
        .netlist()
        .endpoints()
        .iter()
        .map(|&e| probe.endpoint_arrival(e))
        .filter(|a| a.is_finite())
        .fold(0.0, f64::max);
    let period = 100_000.0 - probe.wns() - frac * max_arrival;
    Sta::new(netlist, Sdc::with_period(period), DerateSet::standard())
        .expect("generated designs are valid")
}

/// Builds the timing engine for one benchmark design at its standard
/// analysis (deeply violating) clock period.
pub fn build_engine(spec: DesignSpec) -> Sta {
    engine_at_fraction(spec, violation_fraction(spec))
}

/// Builds the engine at the milder flow-experiment period.
pub fn build_flow_engine(spec: DesignSpec) -> Sta {
    engine_at_fraction(spec, flow_violation_fraction(spec))
}

/// Renders one row of a fixed-width table.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    let mut out = String::new();
    for (c, w) in cells.iter().zip(widths) {
        out.push_str(&format!("{c:>w$} ", w = w));
    }
    out.trim_end().to_owned()
}

/// Geometric mean of positive values (used for speedup averages).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let s: f64 = values.iter().map(|v| v.ln()).sum();
    (s / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn d1_engine_has_violations() {
        let sta = build_engine(DesignSpec::D1);
        assert!(sta.wns() < 0.0);
        assert!(!sta.violating_endpoints().is_empty());
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn row_formatting() {
        let r = row(&["a".into(), "bb".into()], &[3, 4]);
        assert_eq!(r, "  a   bb");
    }
}
