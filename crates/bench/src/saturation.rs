//! Read-throughput saturation runner: proves the server's read/write
//! snapshot split scales read-query throughput with the read-worker
//! count.
//!
//! One trial spins up a TCP server, loads a design into one session,
//! and then hammers it with `clients` concurrent pipelined connections
//! issuing read-only queries (`wns`/`tns`/`slack`). The measurement is
//! repeated with the read pool disabled (`read_workers = 0`, every read
//! funnels through the session's writer lane) and enabled; the ratio of
//! the two throughputs is the `read_qps_scaling` figure the CI bench
//! gate pins with `--require-min server_saturation:read_qps_scaling:1.0`.
//!
//! Even on a single-core host the split mode must not lose: a pooled
//! read whose write ticket is already published executes *inline* on
//! the connection's reader thread — strictly fewer cross-thread
//! handoffs than the lane funnel — so the ratio's floor is structural,
//! not a parallelism bet. Each mode reports its best-of-`trials`
//! throughput to shave scheduler noise.

use server::client::{Client, ClientConfig};
use server::proto::Command;
use server::{Server, ServerConfig};
use std::time::Instant;

/// How many requests each client keeps in flight per pipeline window.
const WINDOW: usize = 32;

/// Tunables for one saturation measurement.
#[derive(Debug, Clone)]
pub struct SaturationSpec {
    /// Design loaded into the measured session (e.g. `small:5`).
    pub design: String,
    /// Concurrent pipelined client connections.
    pub clients: usize,
    /// Read requests issued by each client per trial.
    pub reads_per_client: usize,
    /// Read-pool size of the "multi" mode (the "single" mode always
    /// runs at 0 — the writer-lane funnel).
    pub read_workers: usize,
    /// Trials per mode; each mode reports its best throughput.
    pub trials: usize,
}

impl Default for SaturationSpec {
    fn default() -> Self {
        Self {
            design: "small:5".into(),
            clients: 4,
            reads_per_client: 150,
            read_workers: 4,
            trials: 3,
        }
    }
}

/// Throughputs of the two modes plus their ratio.
#[derive(Debug, Clone, Copy)]
pub struct SaturationResult {
    /// Best read throughput with every read funneled through the
    /// writer lane (`read_workers = 0`), queries per second.
    pub read_qps_single: f64,
    /// Best read throughput with the read pool enabled.
    pub read_qps_multi: f64,
    /// `read_qps_multi / read_qps_single` — the scaling figure the CI
    /// gate pins at ≥ 1.0.
    pub read_qps_scaling: f64,
}

fn client_config(session: &str) -> ClientConfig {
    ClientConfig {
        session: session.into(),
        ..ClientConfig::default()
    }
}

/// The rotating read mix: cheap summaries plus a worst-endpoints scan.
fn read_command(i: usize) -> Command {
    match i % 3 {
        0 => Command::Wns,
        1 => Command::Tns,
        _ => Command::Slack {
            endpoint: None,
            top: 10,
        },
    }
}

/// One trial: returns read queries per second over the measured span.
fn trial_qps(spec: &SaturationSpec, read_workers: usize) -> f64 {
    let srv = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            queue_depth: WINDOW * spec.clients + 8,
            read_workers,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = srv.local_addr().expect("addr").to_string();
    let server = std::thread::spawn(move || srv.run().expect("serve"));

    let mut setup = Client::connect(&addr, client_config("bench")).expect("connect");
    let loaded = setup
        .call(&Command::Load {
            spec: spec.design.clone(),
            period: None,
        })
        .expect("load round trip");
    assert!(loaded.ok, "load failed: {}", loaded.raw);

    let t = Instant::now();
    let workers: Vec<_> = (0..spec.clients)
        .map(|_| {
            let addr = addr.clone();
            let reads = spec.reads_per_client;
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr, client_config("bench")).expect("connect");
                let mut done = 0usize;
                while done < reads {
                    let burst = WINDOW.min(reads - done);
                    for i in 0..burst {
                        c.send(&read_command(done + i), None).expect("send");
                    }
                    for _ in 0..burst {
                        let resp = c.recv().expect("recv");
                        assert!(resp.ok, "read failed: {}", resp.raw);
                    }
                    done += burst;
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client thread");
    }
    let elapsed = t.elapsed().as_secs_f64();

    let bye = setup.call(&Command::Shutdown).expect("shutdown");
    assert!(bye.ok, "shutdown failed: {}", bye.raw);
    server.join().expect("clean server exit");

    (spec.clients * spec.reads_per_client) as f64 / elapsed.max(1e-9)
}

fn best_qps(spec: &SaturationSpec, read_workers: usize) -> f64 {
    (0..spec.trials.max(1))
        .map(|_| trial_qps(spec, read_workers))
        .fold(0.0, f64::max)
}

/// Runs both modes and returns their best throughputs and the scaling
/// ratio.
pub fn run(spec: &SaturationSpec) -> SaturationResult {
    let read_qps_single = best_qps(spec, 0);
    let read_qps_multi = best_qps(spec, spec.read_workers);
    SaturationResult {
        read_qps_single,
        read_qps_multi,
        read_qps_scaling: read_qps_multi / read_qps_single.max(1e-9),
    }
}
