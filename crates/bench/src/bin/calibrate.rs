//! Internal calibration harness (not a paper table): prints problem
//! statistics, solver traces and round-by-round RS behaviour to tune
//! hyper-parameters.

use bench::build_engine;
use mgba::prelude::*;
use mgba::solver::{cgnr, gd, sampling, scg};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let spec = match std::env::args().nth(1).as_deref() {
        Some("D2") => DesignSpec::D2,
        Some("D3") => DesignSpec::D3,
        Some("D8") => DesignSpec::D8,
        _ => DesignSpec::D1,
    };
    let config = MgbaConfig::default();
    let mut sta = build_engine(spec);
    sta.clear_weights();
    println!(
        "design {spec}: {} cells, wns {:.1}, violating endpoints {}",
        sta.netlist().num_cells(),
        sta.wns(),
        sta.violating_endpoints().len()
    );
    let selection = mgba::select_paths(
        &sta,
        SelectionScheme::PerEndpoint {
            k: config.paths_per_endpoint,
            max_total: config.max_paths,
        },
        true,
    );
    println!(
        "selected {} paths covering {}/{} gates ({:.1}%)",
        selection.paths.len(),
        selection.covered_gates,
        selection.total_gates,
        100.0 * selection.coverage()
    );
    let p = FitProblem::build(&sta, &selection.paths, config.epsilon, config.penalty);
    let x0 = vec![0.0; p.num_gates()];
    println!(
        "problem: {} x {} nnz {}  initial mse {:.4e} obj {:.4e}",
        p.num_paths(),
        p.num_gates(),
        p.matrix().nnz(),
        p.mse(&x0),
        p.objective(&x0)
    );

    let r = cgnr::solve(&p, &config);
    println!(
        "CGNR : mse {:.4e} obj {:.4e} iters {} time {:.1}ms conv {}",
        p.mse(&r.x),
        r.objective,
        r.iterations,
        r.elapsed.as_secs_f64() * 1e3,
        r.converged
    );
    let r = gd::solve(&p, &config, &x0);
    println!(
        "GD   : mse {:.4e} obj {:.4e} iters {} time {:.1}ms conv {} rows {}",
        p.mse(&r.x),
        r.objective,
        r.iterations,
        r.elapsed.as_secs_f64() * 1e3,
        r.converged,
        r.rows_touched
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let r = scg::solve(&p, &config, &x0, &mut rng);
    println!(
        "SCG  : mse {:.4e} obj {:.4e} iters {} time {:.1}ms conv {} rows {}",
        p.mse(&r.x),
        r.objective,
        r.iterations,
        r.elapsed.as_secs_f64() * 1e3,
        r.converged,
        r.rows_touched
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let (r, rounds) = sampling::solve_traced(&p, &config, &mut rng);
    println!(
        "SCGRS: mse {:.4e} obj {:.4e} iters {} time {:.1}ms conv {} rows {}",
        p.mse(&r.x),
        r.objective,
        r.iterations,
        r.elapsed.as_secs_f64() * 1e3,
        r.converged,
        r.rows_touched
    );
    for rd in rounds {
        println!(
            "   round ratio {:.4} rows {} change {:.3} obj {:.3e} inner_iters {}",
            rd.ratio, rd.rows, rd.change, rd.objective, rd.inner_iterations
        );
    }

    // End-to-end accuracy breakdown: solver-space mse vs engine-realized
    // mse (after clamping), plus the per-path error distribution.
    let weights = p.to_cell_weights(&r.x, sta.netlist().num_cells());
    let par = parallel::global();
    let golden: Vec<f64> = sta::pba_timing_batch(&sta, &selection.paths, par)
        .iter()
        .map(|t| t.slack)
        .collect();
    sta.set_weights(&weights);
    let after: Vec<f64> = sta::gba_path_timing_batch(&sta, &selection.paths, par)
        .iter()
        .map(|t| t.slack)
        .collect();
    let model = p.model_slacks(&r.x);
    let mut clamp_diff = 0usize;
    let mut errs: Vec<f64> = Vec::new();
    let mut rel_errs: Vec<f64> = Vec::new();
    for i in 0..golden.len() {
        if (after[i] - model[i]).abs() > 1.0 {
            clamp_diff += 1;
        }
        errs.push((after[i] - golden[i]).abs());
        rel_errs.push((after[i] - golden[i]).abs() / golden[i].abs().max(1e-9));
    }
    errs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    rel_errs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let q = |v: &Vec<f64>, f: f64| v[(f * (v.len() - 1) as f64) as usize];
    println!(
        "engine mse {:.3e}; paths where clamp shifted model >1ps: {}/{}",
        mgba::metrics::mse(&after, &golden),
        clamp_diff,
        golden.len()
    );
    println!(
        "abs err ps: p50 {:.1} p90 {:.1} p99 {:.1}; rel err: p50 {:.3} p90 {:.3}",
        q(&errs, 0.5),
        q(&errs, 0.9),
        q(&errs, 0.99),
        q(&rel_errs, 0.5),
        q(&rel_errs, 0.9)
    );
    println!(
        "golden slack: min {:.0} median {:.0} max {:.0}",
        golden.iter().cloned().fold(f64::INFINITY, f64::min),
        {
            let mut g = golden.clone();
            g.sort_by(|a, b| a.partial_cmp(b).unwrap());
            g[g.len() / 2]
        },
        golden.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
    );

    // Residual attribution on the CGNR (floor) solution: what do the
    // worst-residual paths look like vs the best?
    let r_ref = mgba::solver::cgnr::solve(&p, &config);
    let model_ref = p.model_slacks(&r_ref.x);
    let mut scored: Vec<(f64, usize)> = model_ref
        .iter()
        .zip(p.pba_slacks())
        .map(|(m, g)| (m - g).abs())
        .enumerate()
        .map(|(i, e)| (e, i))
        .collect();
    scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    let describe = |idx: &[(f64, usize)], tag: &str| {
        let n = idx.len() as f64;
        let mean_err = idx.iter().map(|(e, _)| e).sum::<f64>() / n;
        let mean_gates = idx
            .iter()
            .map(|(_, i)| selection.paths[*i].num_gates() as f64)
            .sum::<f64>()
            / n;
        let mean_depth_gap: f64 = idx
            .iter()
            .map(|(_, i)| {
                let path = &selection.paths[*i];
                let pd = path.num_gates() as f64;
                let min_gate_depth = path.cells[1..path.cells.len() - 1]
                    .iter()
                    .filter_map(|&g| sta.depth_info().gba_depth(g))
                    .map(|d| d as f64)
                    .fold(f64::INFINITY, f64::min);
                pd - min_gate_depth
            })
            .sum::<f64>()
            / n;
        let mean_crpr: f64 = idx
            .iter()
            .map(|(_, i)| {
                let path = &selection.paths[*i];
                sta.crpr_credit(path.startpoint(), path.endpoint)
            })
            .sum::<f64>()
            / n;
        println!(
            "{tag}: |resid| {mean_err:.1}ps, gates {mean_gates:.1}, path-vs-mingate depth gap {mean_depth_gap:.1}, crpr {mean_crpr:.1}ps"
        );
    };
    let k = scored.len() / 10;
    describe(&scored[..k], "worst 10% residual");
    describe(&scored[scored.len() - k..], "best 10% residual");
}
