//! Internal flow diagnostics (not a paper table).

use bench::build_flow_engine;
use optim::prelude::*;

fn main() {
    let spec = match std::env::args().nth(1).as_deref() {
        Some("D2") => DesignSpec::D2,
        Some("D8") => DesignSpec::D8,
        _ => DesignSpec::D1,
    };
    for mode in ["gba", "mgba"] {
        let mut sta = build_flow_engine(spec);
        println!(
            "{spec} [{mode}] initial: wns {:.0} tns {:.0} viol {} area {:.0}",
            sta.wns(),
            sta.tns(),
            sta.violating_endpoints().len(),
            sta.netlist().total_area()
        );
        let cfg = if mode == "gba" {
            FlowConfig::gba()
        } else {
            FlowConfig::mgba(MgbaConfig::default(), Solver::ScgRs)
        };
        let r = run_flow(&mut sta, &cfg);
        println!(
            "  passes {} upsizes {} buffers {} closed {} elapsed {:.0}ms fit {:.0}ms",
            r.passes,
            r.counts.upsizes,
            r.counts.buffers,
            r.closed,
            r.elapsed.as_secs_f64() * 1e3,
            r.mgba_time.as_secs_f64() * 1e3
        );
        println!(
            "  final gba: wns {:.0} tns {:.0} viol {} | timer view viol {} | pba: wns {:.0} tns {:.0} viol {} area {:.0}",
            r.qor_final.wns,
            r.qor_final.tns,
            r.qor_final.violating_endpoints,
            r.qor_final_timer_view.violating_endpoints,
            r.qor_final_pba.wns,
            r.qor_final_pba.tns,
            r.qor_final_pba.violating_endpoints,
            r.qor_final.area
        );
    }
}
