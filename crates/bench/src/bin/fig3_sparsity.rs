//! Regenerates **Fig. 3**: the distribution of the optimal solution `x*`.
//!
//! The paper's justification for row sampling is that the optimal weight
//! vector is extremely sparse — ~96% of entries within `[-0.01, 0.01]`.
//! This binary solves one design's fitting problem to high accuracy with
//! the CGNR reference solver and prints a text histogram of `x*`.
//!
//! Run with `cargo run --release -p bench --bin fig3_sparsity [design]`.

use bench::build_engine;
use mgba::prelude::*;
use mgba::solver::cgnr;

fn main() {
    let spec = match std::env::args().nth(1).as_deref() {
        Some("D2") => DesignSpec::D2,
        Some("D8") => DesignSpec::D8,
        _ => DesignSpec::D1,
    };
    let config = MgbaConfig::default();
    let mut sta = build_engine(spec);
    sta.clear_weights();
    let selection = mgba::select_paths(
        &sta,
        SelectionScheme::PerEndpoint {
            k: config.paths_per_endpoint,
            max_total: config.max_paths,
        },
        true,
    );
    let problem = FitProblem::build(&sta, &selection.paths, config.epsilon, config.penalty);
    let result = cgnr::solve(&problem, &config);
    // The paper's x* has one entry per gate of the design (n gates);
    // gates on no selected path keep their weight at exactly zero.
    let cell_weights = problem.to_cell_weights(&result.x, sta.netlist().num_cells());
    let x_all: Vec<f64> = sta
        .netlist()
        .cells()
        .filter(|(_, c)| c.role == netlist::CellRole::Combinational)
        .map(|(id, _)| cell_weights[id.index()])
        .collect();

    println!("Fig. 3: distribution of the optimal solution x* ({spec})");
    println!(
        "({} paths, n = {} gates of which {} lie on selected paths; CGNR objective {:.3e})\n",
        problem.num_paths(),
        x_all.len(),
        problem.num_gates(),
        result.objective
    );

    // Histogram over [-0.25, 0.05] in 0.01 buckets (the paper's x-range).
    let lo = -0.25;
    let hi = 0.05;
    let buckets = 30usize;
    let mut counts = vec![0usize; buckets];
    let mut below = 0usize;
    let mut above = 0usize;
    for &x in &x_all {
        if x < lo {
            below += 1;
        } else if x >= hi {
            above += 1;
        } else {
            let b = ((x - lo) / (hi - lo) * buckets as f64) as usize;
            counts[b.min(buckets - 1)] += 1;
        }
    }
    let max = counts.iter().copied().max().unwrap_or(1).max(1);
    if below > 0 {
        println!("  < {lo:+.2} : {below}");
    }
    for (b, &c) in counts.iter().enumerate() {
        let x0 = lo + (hi - lo) * b as f64 / buckets as f64;
        let bar = "#".repeat((c * 60).div_ceil(max).min(60));
        println!("  {x0:+.2} .. {:+.2} : {c:6} {bar}", x0 + 0.01);
    }
    if above > 0 {
        println!("  >= {hi:+.2} : {above}");
    }

    let near_zero = x_all.iter().filter(|x| x.abs() <= 0.01).count();
    println!(
        "\nentries within [-0.01, 0.01]: {near_zero}/{} = {:.1}%",
        x_all.len(),
        100.0 * near_zero as f64 / x_all.len() as f64
    );
    println!("paper: 95.9% of x* entries within [-0.01, 0.01]");
    println!("(the sparsity justifies Algorithm 1's uniform row sampling)");
}
