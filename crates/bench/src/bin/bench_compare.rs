//! CI regression gate: diffs a current `BENCH_PR.json` against the
//! committed baseline and exits nonzero when any threshold is breached.
//!
//! ```text
//! bench_compare BASELINE CURRENT [--wall-factor F] [--rss-factor F]
//!               [--qor-tol T] [--require-min SCENARIO:KEY:MIN]...
//! ```
//!
//! Wall/RSS headroom is multiplicative with an absolute floor (see
//! [`bench::compare::Thresholds`]); QoR metrics are deterministic and
//! held to a tight relative tolerance — a deliberate QoR change means
//! regenerating the baseline in the same PR. `--require-min` adds
//! absolute floors judged on the current report alone (e.g. the
//! warm-vs-cold refit speedup must stay at or above 1.0x); `wall_`-
//! prefixed QoR keys are exempt from the drift gate and only checked
//! through such floors.

use bench::compare::{
    check_minimums, compare, exit_code, parse_minimum, parse_report, Minimum, Thresholds,
};

fn usage() -> ! {
    eprintln!(
        "usage: bench_compare BASELINE CURRENT [--wall-factor F] [--rss-factor F] [--qor-tol T] \
         [--require-min SCENARIO:KEY:MIN]..."
    );
    std::process::exit(2);
}

fn read_report(path: &str) -> bench::compare::BenchReport {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench_compare: cannot read {path}: {e}");
        std::process::exit(2);
    });
    parse_report(&text).unwrap_or_else(|e| {
        eprintln!("bench_compare: {path}: {e}");
        std::process::exit(2);
    })
}

fn parse_f64(flag: &str, v: Option<String>) -> f64 {
    v.and_then(|s| s.parse().ok()).unwrap_or_else(|| {
        eprintln!("bench_compare: {flag} needs a number");
        std::process::exit(2);
    })
}

fn main() {
    let mut positional = Vec::new();
    let mut th = Thresholds::default();
    let mut minimums: Vec<Minimum> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--wall-factor" => th.wall_factor = parse_f64("--wall-factor", args.next()),
            "--rss-factor" => th.rss_factor = parse_f64("--rss-factor", args.next()),
            "--qor-tol" => th.qor_rel_tol = parse_f64("--qor-tol", args.next()),
            "--require-min" => {
                let spec = args.next().unwrap_or_else(|| {
                    eprintln!("bench_compare: --require-min needs SCENARIO:KEY:MIN");
                    std::process::exit(2);
                });
                minimums.push(parse_minimum(&spec).unwrap_or_else(|e| {
                    eprintln!("bench_compare: --require-min: {e}");
                    std::process::exit(2);
                }));
            }
            _ if a.starts_with("--") => usage(),
            _ => positional.push(a),
        }
    }
    let [baseline_path, current_path] = positional.as_slice() else {
        usage();
    };
    let baseline = read_report(baseline_path);
    let current = read_report(current_path);

    println!(
        "baseline {} ({} scenarios)  vs  current {} ({} scenarios)",
        baseline.commit,
        baseline.scenarios.len(),
        current.commit,
        current.scenarios.len()
    );
    for base in &baseline.scenarios {
        if let Some(cur) = current.scenarios.iter().find(|s| s.name == base.name) {
            println!(
                "{:<18} wall {:>9.2} -> {:>9.2} ms   rss {:>8} -> {:>8} kB",
                base.name, base.wall_ms, cur.wall_ms, base.peak_rss_kb, cur.peak_rss_kb
            );
        }
    }

    let mut violations = compare(&baseline, &current, &th);
    violations.extend(check_minimums(&current, &minimums));
    if violations.is_empty() {
        println!("bench gate: PASS");
    } else {
        eprintln!("bench gate: FAIL ({} violations)", violations.len());
        for v in &violations {
            eprintln!("  {v}");
        }
    }
    std::process::exit(exit_code(&violations));
}
