//! Regenerates the **§3.2 path-selection study**.
//!
//! The paper's small case: a design with 8444 violated paths over 1437
//! gates. Fitting directly on all violated paths gives error φ = 4.1%;
//! selecting the global top-2000 paths explodes the error to 72.4%
//! (only 47% of gates covered); the per-endpoint top-k′ = 20 scheme with
//! the same 2000-path budget recovers φ = 5.11% (95% coverage).
//!
//! We reproduce the experiment on D1: fit on (a) every violated path,
//! (b) the global top-m′, (c) per-endpoint top-k′ at the same budget —
//! and always *measure* φ (Eq. 10) on the full violated set.
//!
//! Run with `cargo run --release -p bench --bin path_selection [design]`.

use bench::build_engine;
use mgba::prelude::*;
use mgba::solver::cgnr;
use sta::Path;

fn fit_and_measure(
    sta: &sta::Sta,
    fit_paths: &[Path],
    measure: &FitProblem,
    config: &MgbaConfig,
) -> f64 {
    let problem = FitProblem::build(sta, fit_paths, config.epsilon, config.penalty);
    let solved = cgnr::solve(&problem, config);
    // Expand into cell space, then re-project onto the measurement
    // problem's columns (gates never seen by the fit keep weight 0).
    let cell_weights = solved
        .x
        .iter()
        .zip(problem.columns())
        .map(|(&x, &c)| (c, x))
        .collect::<std::collections::HashMap<_, _>>();
    let x_measure: Vec<f64> = measure
        .columns()
        .iter()
        .map(|c| cell_weights.get(c).copied().unwrap_or(0.0))
        .collect();
    measure.phi(&x_measure)
}

fn main() {
    let spec = match std::env::args().nth(1).as_deref() {
        Some("D1") => DesignSpec::D1,
        Some("D5") => DesignSpec::D5,
        _ => DesignSpec::D2,
    };
    let config = MgbaConfig::default();
    let mut sta = build_engine(spec);
    sta.clear_weights();

    // The full violated-path population (generously enumerated).
    let full = select_paths(
        &sta,
        SelectionScheme::PerEndpoint {
            k: 64,
            max_total: usize::MAX,
        },
        true,
    );
    let measure = FitProblem::build(&sta, &full.paths, config.epsilon, config.penalty);
    println!("Section 3.2 path-selection study ({spec})");
    println!(
        "violated paths: {} over {} gates (measurement set; paper: 8444 paths / 1437 gates)\n",
        full.paths.len(),
        full.total_gates
    );

    // Budget ≪ total, as in the paper (2000 of 8444): per-endpoint k'
    // sized to roughly a quarter of the violated population.
    let k_budget = 5;
    let per_endpoint = select_paths(
        &sta,
        SelectionScheme::PerEndpoint {
            k: k_budget,
            max_total: config.max_paths,
        },
        true,
    );
    let budget = per_endpoint.paths.len();
    let top_global = select_paths(
        &sta,
        SelectionScheme::TopGlobal {
            k_enum: 64,
            m: budget,
        },
        true,
    );

    println!(
        "{:<28} {:>8} {:>12} {:>10}",
        "scheme", "paths", "coverage(%)", "phi(%)"
    );
    for (name, selection) in [
        ("all violated paths", &full),
        ("global top-m'", &top_global),
        ("per-endpoint top-k'", &per_endpoint),
    ] {
        let phi = fit_and_measure(&sta, &selection.paths, &measure, &config);
        println!(
            "{:<28} {:>8} {:>12.2} {:>10.2}",
            name,
            selection.paths.len(),
            100.0 * selection.coverage(),
            100.0 * phi
        );
    }
    println!("\npaper: all 8444 paths φ=4.1%; top-2000 global φ=72.4% (47% coverage);");
    println!("       per-endpoint k'=20 (2000 paths) φ=5.11% (95% coverage)");
}
