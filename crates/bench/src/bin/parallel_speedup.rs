//! Records a machine-local snapshot of the parallel-layer speedup to
//! `results/parallel_speedup.json`: serial vs all-core wall time for the
//! batch-PBA, fit-build, matvec and gradient kernels.
//!
//! The parallel kernels are bit-identical to their serial twins, so the
//! ratio is pure speedup. On a single-core host every ratio is ~1.0 by
//! construction (the layer falls back to the serial path); the `cores`
//! field in the JSON says which regime the snapshot was taken in.

use bench::build_engine;
use mgba::prelude::*;
use parallel::Parallelism;
use sta::paths::select_critical_paths;
use sta::pba_timing_batch;
use std::hint::black_box;
use std::time::Instant;

/// Median-of-`reps` wall time of `f`, in seconds.
fn time_median<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            black_box(f());
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

struct Row {
    kernel: &'static str,
    detail: String,
    serial_ms: f64,
    parallel_ms: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        if self.parallel_ms > 0.0 {
            self.serial_ms / self.parallel_ms
        } else {
            1.0
        }
    }
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let serial = Parallelism::serial();
    let wide = Parallelism::new(cores);
    let reps = 5;

    let sta = build_engine(DesignSpec::D3);
    let cfg = MgbaConfig::default();

    // Batch PBA on >= 10k paths (the acceptance workload).
    let paths = select_critical_paths(&sta, 40, usize::MAX, false);
    eprintln!("pba batch: {} paths on {} cores", paths.len(), cores);
    let pba = Row {
        kernel: "pba_batch",
        detail: format!("{} paths", paths.len()),
        serial_ms: 1e3 * time_median(reps, || pba_timing_batch(&sta, &paths, serial)),
        parallel_ms: 1e3 * time_median(reps, || pba_timing_batch(&sta, &paths, wide)),
    };

    // Fit-matrix assembly.
    let fit_paths = select_critical_paths(&sta, 20, usize::MAX, false);
    let build = |par| FitProblem::build_par(&sta, &fit_paths, cfg.epsilon, cfg.penalty, par);
    let fit = Row {
        kernel: "fit_build",
        detail: format!("{} paths", fit_paths.len()),
        serial_ms: 1e3 * time_median(reps, || build(serial)),
        parallel_ms: 1e3 * time_median(reps, || build(wide)),
    };

    // Full-matrix solver kernels on the assembled problem.
    let p = build(serial);
    let x: Vec<f64> = (0..p.num_gates())
        .map(|j| -0.02 + 0.0005 * (j % 13) as f64)
        .collect();
    let a = p.matrix();
    let matvec = Row {
        kernel: "matvec",
        detail: format!("{}x{}, nnz {}", a.num_rows(), a.num_cols(), a.nnz()),
        serial_ms: 1e3 * time_median(reps, || a.matvec_par(&x, serial)),
        parallel_ms: 1e3 * time_median(reps, || a.matvec_par(&x, wide)),
    };
    let ps = p.clone().with_parallelism(serial);
    let pw = p.clone().with_parallelism(wide);
    // Warm both transpose caches outside the timed region.
    let _ = (ps.matrix_t(), pw.matrix_t());
    let mut coeffs = Vec::new();
    let mut g = Vec::new();
    let gradient = Row {
        kernel: "gradient",
        detail: format!("{} rows, {} cols", p.num_paths(), p.num_gates()),
        serial_ms: 1e3 * time_median(reps, || ps.gradient_into(&x, &mut coeffs, &mut g)),
        parallel_ms: 1e3 * time_median(reps, || pw.gradient_into(&x, &mut coeffs, &mut g)),
    };
    let objective = Row {
        kernel: "objective",
        detail: format!("{} rows", p.num_paths()),
        serial_ms: 1e3 * time_median(reps, || ps.objective(&x)),
        parallel_ms: 1e3 * time_median(reps, || pw.objective(&x)),
    };

    let rows = [pba, fit, matvec, gradient, objective];
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"cores\": {cores},\n"));
    json.push_str(&format!("  \"reps\": {reps},\n"));
    json.push_str("  \"design\": \"D3\",\n");
    json.push_str("  \"kernels\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"detail\": \"{}\", \"serial_ms\": {:.3}, \
             \"parallel_ms\": {:.3}, \"speedup\": {:.3}}}{}\n",
            r.kernel,
            r.detail,
            r.serial_ms,
            r.parallel_ms,
            r.speedup(),
            if i + 1 < rows.len() { "," } else { "" }
        ));
        println!(
            "{:<10} {:<28} serial {:>9.3} ms  x{} {:>9.3} ms  speedup {:.2}x",
            r.kernel,
            r.detail,
            r.serial_ms,
            cores,
            r.parallel_ms,
            r.speedup()
        );
    }
    json.push_str("  ]\n}\n");

    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/parallel_speedup.json", &json).expect("write snapshot");
    eprintln!("wrote results/parallel_speedup.json");
}
