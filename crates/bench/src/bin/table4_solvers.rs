//! Regenerates **Table 4**: accuracy and speed comparison of the
//! optimization solvers (`GD + w/o RS`, `SCG + w/o RS`, `SCG + RS`) on
//! designs D1–D10.
//!
//! Accuracy is the modelling squared error of Eq. (12) (×10⁻³, as in the
//! paper); time is the solver wall time; speedup is relative to GD.
//!
//! Run with `cargo run --release -p bench --bin table4_solvers`
//! (add `-- --quick` for D1–D3 only).

use bench::{build_engine, geomean, row};
use mgba::prelude::*;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let designs: Vec<DesignSpec> = if quick {
        DesignSpec::all()[..3].to_vec()
    } else {
        DesignSpec::all().to_vec()
    };
    let config = MgbaConfig::default();
    let solvers = [Solver::Gd, Solver::Scg, Solver::ScgRs];

    println!("Table 4: Accuracy and Speed Comparison of Optimization Solvers");
    println!("(accuracy = mse of Eq. (12) x 1e-3; speedup relative to GD)\n");
    let widths = [5usize, 8, 8, 9, 9, 8, 8, 9, 9, 8, 8, 9, 9, 8, 8];
    let mut header = vec!["".to_owned()];
    for s in &solvers {
        header.push(s.paper_name().replace(" + ", "+"));
        header.push("time(ms)".to_owned());
        header.push("speedup".to_owned());
        header.push("work-x".to_owned());
    }
    header.insert(1, "paths".to_owned());
    println!("{}", row(&header, &widths));

    let mut speedups = vec![Vec::new(); solvers.len()];
    let mut accuracies = vec![Vec::new(); solvers.len()];
    for &spec in &designs {
        let mut sta = build_engine(spec);
        sta.clear_weights();
        let selection = mgba::select_paths(
            &sta,
            SelectionScheme::PerEndpoint {
                k: config.paths_per_endpoint,
                max_total: config.max_paths,
            },
            true,
        );
        let problem = FitProblem::build(&sta, &selection.paths, config.epsilon, config.penalty);
        let mut cells = vec![spec.to_string(), format!("{}", problem.num_paths())];
        let mut gd_time = 0.0;
        let mut gd_rows = 0u64;
        for (si, &solver) in solvers.iter().enumerate() {
            let result = solver.solve(&problem, &config);
            let mse = problem.mse(&result.x);
            let ms = result.elapsed.as_secs_f64() * 1e3;
            if si == 0 {
                gd_time = ms;
                gd_rows = result.rows_touched.max(1);
            }
            let speedup = if ms > 0.0 { gd_time / ms } else { 1.0 };
            // Hardware-independent work ratio: row-gradient evaluations
            // relative to GD (the algorithmic speedup the paper's design
            // targets, independent of our much smaller problem sizes).
            let work = gd_rows as f64 / result.rows_touched.max(1) as f64;
            speedups[si].push(speedup.max(1e-6));
            accuracies[si].push(mse);
            cells.push(format!("{:.3}", mse * 1e3));
            cells.push(format!("{ms:.1}"));
            cells.push(format!("{speedup:.2}"));
            cells.push(format!("{work:.1}"));
        }
        println!("{}", row(&cells, &widths));
    }

    let mut avg = vec!["Avg.".to_owned(), "".to_owned()];
    for si in 0..solvers.len() {
        let acc = accuracies[si].iter().sum::<f64>() / accuracies[si].len() as f64;
        avg.push(format!("{:.3}", acc * 1e3));
        avg.push("".to_owned());
        avg.push(format!("{:.2}", geomean(&speedups[si])));
        avg.push("".to_owned());
    }
    println!("{}", row(&avg, &widths));
    println!(
        "\npaper shape: similar accuracy across solvers; SCG ≈ 2.7x over GD; SCG+RS ≈ 13.8x over GD"
    );
}
