//! Regenerates **Table 5**: runtime comparison of the timing-closure
//! flow with GBA vs. with mGBA embedded.
//!
//! Columns follow the paper: the GBA flow's total time; the mGBA flow's
//! time split into the post-route optimization itself and the mGBA
//! fitting overhead; and the speedup of the mGBA flow. The mGBA flow is
//! expected to win despite paying for the fits, because the corrected
//! timer stops chasing phantom violations.
//!
//! Run with `cargo run --release -p bench --bin table5_runtime`
//! (add `-- --quick` for D1–D3 only).

use bench::{build_flow_engine, row};
use optim::prelude::*;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let designs: Vec<DesignSpec> = if quick {
        DesignSpec::all()[..3].to_vec()
    } else {
        DesignSpec::all().to_vec()
    };

    println!("Table 5: Runtime (ms) comparison for the timing-closure flow");
    println!("(GBA flow total vs mGBA flow = post-route + mGBA fitting)\n");
    let widths = [5usize, 10, 12, 9, 9, 9];
    println!(
        "{}",
        row(
            &[
                "".into(),
                "GBA flow".into(),
                "post-route".into(),
                "mGBA".into(),
                "total".into(),
                "speedup".into(),
            ],
            &widths
        )
    );

    let mut sum = [0.0f64; 4];
    for &spec in &designs {
        let mut gba_sta = build_flow_engine(spec);
        let gba = run_flow(&mut gba_sta, &FlowConfig::gba());
        let mut mgba_sta = build_flow_engine(spec);
        let mgba = run_flow(
            &mut mgba_sta,
            &FlowConfig::mgba(MgbaConfig::default(), Solver::ScgRs),
        );

        let gba_ms = gba.elapsed.as_secs_f64() * 1e3;
        let fit_ms = mgba.mgba_time.as_secs_f64() * 1e3;
        let total_ms = mgba.elapsed.as_secs_f64() * 1e3;
        let post_ms = total_ms - fit_ms;
        let speedup = gba_ms / total_ms.max(1e-9);
        sum[0] += gba_ms;
        sum[1] += post_ms;
        sum[2] += fit_ms;
        sum[3] += total_ms;
        println!(
            "{}",
            row(
                &[
                    spec.to_string(),
                    format!("{gba_ms:.0}"),
                    format!("{post_ms:.0}"),
                    format!("{fit_ms:.0}"),
                    format!("{total_ms:.0}"),
                    format!("{speedup:.2}"),
                ],
                &widths
            )
        );
    }
    let n = designs.len() as f64;
    println!(
        "{}",
        row(
            &[
                "Avg.".into(),
                format!("{:.0}", sum[0] / n),
                format!("{:.0}", sum[1] / n),
                format!("{:.0}", sum[2] / n),
                format!("{:.0}", sum[3] / n),
                format!("{:.2}", (sum[0] / n) / (sum[3] / n).max(1e-9)),
            ],
            &widths
        )
    );
    println!("\npaper shape: mGBA flow ≈ 1.21x faster on average despite the fitting overhead");
}
