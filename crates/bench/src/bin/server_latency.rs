//! Records a machine-local snapshot of mgba-server throughput and
//! per-command latency to `results/server_latency.json`.
//!
//! Two passes over the same workload (load → calibrate → a query/what-if
//! mix), so the numbers separate protocol cost from transport cost:
//!
//! - **stream**: the in-process stdio engine (`serve_stream`) — parse +
//!   dispatch + execute, no sockets;
//! - **tcp**: a real localhost server with a pipelining client — adds
//!   loopback, connection threads, and the bounded admission queue.
//!
//! Both passes size the queue to hold the entire pipelined script: this
//! measures service latency, not backpressure (the rejection path has
//! its own integration tests).
//!
//! Per-command p50/p99 come from the server's own `stats` command (the
//! same log₂ histograms `--profile=json` reports), spliced verbatim
//! into the snapshot.

use server::{serve_stream, Server, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Instant;

/// The steady-state query mix, `reps` rounds after one load+calibrate.
fn workload(design: &str, reps: usize) -> String {
    let mut script = String::new();
    script.push_str(&format!(
        "{{\"id\":1,\"cmd\":\"load\",\"design\":\"{design}\"}}\n"
    ));
    script.push_str("{\"id\":2,\"cmd\":\"calibrate\",\"solver\":\"scgrs\"}\n");
    let mut id = 3u64;
    for round in 0..reps {
        for req in [
            "\"cmd\":\"wns\"".to_owned(),
            "\"cmd\":\"tns\"".to_owned(),
            "\"cmd\":\"slack\",\"top\":10".to_owned(),
            "\"cmd\":\"path\",\"pba\":true".to_owned(),
            format!(
                "\"cmd\":\"whatif_resize\",\"cell\":\"g_1_{}_0\",\"to\":\"up\"",
                round % 4
            ),
        ] {
            script.push_str(&format!("{{\"id\":{id},{req}}}\n"));
            id += 1;
        }
    }
    script.push_str(&format!("{{\"id\":{id},\"cmd\":\"stats\"}}\n"));
    script
}

/// Pulls the `"commands":{...}` object out of a `stats` response line.
fn commands_json(stats_line: &str) -> String {
    let start = stats_line.find("\"commands\":").map(|i| i + 11);
    let Some(start) = start else {
        return "{}".into();
    };
    // The commands object runs to the closing brace of the result
    // object: strip the trailing `}}` of `"result":{...}}`.
    let tail = &stats_line[start..];
    let end = tail.len().saturating_sub(2);
    tail[..end].to_owned()
}

struct Pass {
    transport: &'static str,
    requests: usize,
    elapsed_ms: f64,
    commands: String,
}

impl Pass {
    fn throughput_rps(&self) -> f64 {
        if self.elapsed_ms > 0.0 {
            self.requests as f64 / (self.elapsed_ms / 1e3)
        } else {
            0.0
        }
    }
}

/// A queue deep enough that the fully-pipelined script is admitted
/// without overload rejections.
fn bench_config(script: &str) -> ServerConfig {
    ServerConfig {
        queue_depth: script.lines().count() + 1,
        default_deadline_ms: None,
    }
}

fn run_stream(script: &str) -> Pass {
    let requests = script.lines().count();
    let t = Instant::now();
    let out = serve_stream(&bench_config(script), script.as_bytes(), Vec::<u8>::new())
        .expect("stream pass");
    let elapsed_ms = 1e3 * t.elapsed().as_secs_f64();
    let text = String::from_utf8(out).expect("utf8 responses");
    let stats_line = text.lines().last().expect("stats response");
    Pass {
        transport: "stream",
        requests,
        elapsed_ms,
        commands: commands_json(stats_line),
    }
}

fn run_tcp(script: &str) -> Pass {
    let srv = Server::bind("127.0.0.1:0", bench_config(script)).expect("bind");
    let addr = srv.local_addr().expect("addr");
    let handle = std::thread::spawn(move || srv.run().expect("run"));
    let requests = script.lines().count();

    let t = Instant::now();
    let stream = TcpStream::connect(addr).expect("connect");
    let mut w = stream.try_clone().expect("clone");
    w.write_all(script.as_bytes()).expect("send");
    w.flush().expect("flush");
    let responses: Vec<String> = BufReader::new(stream)
        .lines()
        .take(requests)
        .map(|l| l.expect("response"))
        .collect();
    let elapsed_ms = 1e3 * t.elapsed().as_secs_f64();

    let stats_line = responses.last().expect("stats response").clone();
    let bye = TcpStream::connect(addr).expect("connect for shutdown");
    let mut bw = bye.try_clone().expect("clone");
    writeln!(bw, "{{\"cmd\":\"shutdown\"}}").expect("send shutdown");
    bw.flush().expect("flush shutdown");
    let _ = BufReader::new(bye).lines().next();
    handle.join().expect("clean server exit");

    Pass {
        transport: "tcp",
        requests,
        elapsed_ms,
        commands: commands_json(&stats_line),
    }
}

/// One strict request/response round trip.
fn ask(w: &mut TcpStream, r: &mut impl BufRead, req: &str) -> String {
    writeln!(w, "{req}").expect("send");
    w.flush().expect("flush");
    let mut line = String::new();
    r.read_line(&mut line).expect("response");
    line
}

/// Evaluates the same `n` resize candidates twice against a calibrated
/// TCP session — as `n` strict `whatif_resize` round trips, then as one
/// `whatif_batch` request — and returns `(sequential_ms, batch_ms)`.
/// The batch pays the per-request framing, parse, dispatch, and loopback
/// cost once instead of `n` times, which is the case for its existence.
fn run_batch_comparison(design: &str, n: usize) -> (f64, f64) {
    let config = ServerConfig {
        queue_depth: n + 8,
        default_deadline_ms: None,
    };
    let srv = Server::bind("127.0.0.1:0", config).expect("bind");
    let addr = srv.local_addr().expect("addr");
    let handle = std::thread::spawn(move || srv.run().expect("run"));

    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut w = stream.try_clone().expect("clone");
    let mut r = BufReader::new(stream);
    ask(
        &mut w,
        &mut r,
        &format!("{{\"cmd\":\"load\",\"design\":\"{design}\"}}"),
    );
    ask(
        &mut w,
        &mut r,
        "{\"cmd\":\"calibrate\",\"solver\":\"scgrs\"}",
    );

    let cells: Vec<String> = (0..n).map(|i| format!("g_1_{}_0", i % 4)).collect();
    let t = Instant::now();
    for c in &cells {
        let resp = ask(
            &mut w,
            &mut r,
            &format!("{{\"cmd\":\"whatif_resize\",\"cell\":\"{c}\",\"to\":\"up\"}}"),
        );
        assert!(!resp.contains("\"error\""), "sequential what-if: {resp}");
    }
    let sequential_ms = 1e3 * t.elapsed().as_secs_f64();

    let candidates: Vec<String> = cells
        .iter()
        .map(|c| format!("{{\"cell\":\"{c}\",\"to\":\"up\"}}"))
        .collect();
    let batch_req = format!(
        "{{\"cmd\":\"whatif_batch\",\"resizes\":[{}]}}",
        candidates.join(",")
    );
    let t = Instant::now();
    let resp = ask(&mut w, &mut r, &batch_req);
    let batch_ms = 1e3 * t.elapsed().as_secs_f64();
    assert!(!resp.contains("\"error\""), "batch what-if: {resp}");

    let bye = TcpStream::connect(addr).expect("connect for shutdown");
    let mut bw = bye.try_clone().expect("clone");
    writeln!(bw, "{{\"cmd\":\"shutdown\"}}").expect("send shutdown");
    bw.flush().expect("flush shutdown");
    let _ = BufReader::new(bye).lines().next();
    handle.join().expect("clean server exit");

    (sequential_ms, batch_ms)
}

fn main() {
    let design = "small:5";
    let reps = 40;
    let script = workload(design, reps);
    eprintln!(
        "server latency: {} requests over {design}, stream + tcp passes",
        script.lines().count()
    );

    let passes = [run_stream(&script), run_tcp(&script)];

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"design\": \"{design}\",\n"));
    json.push_str(&format!("  \"query_rounds\": {reps},\n"));
    json.push_str("  \"passes\": [\n");
    for (i, p) in passes.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"transport\": \"{}\", \"requests\": {}, \"elapsed_ms\": {:.3}, \
             \"throughput_rps\": {:.1}, \"commands\": {}}}{}\n",
            p.transport,
            p.requests,
            p.elapsed_ms,
            p.throughput_rps(),
            p.commands,
            if i + 1 < passes.len() { "," } else { "" }
        ));
        println!(
            "{:<8} {:>5} requests in {:>8.2} ms  ({:>8.1} req/s)",
            p.transport,
            p.requests,
            p.elapsed_ms,
            p.throughput_rps()
        );
    }
    json.push_str("  ],\n");

    let batch_n = 32;
    let (sequential_ms, batch_ms) = run_batch_comparison(design, batch_n);
    let speedup = if batch_ms > 0.0 {
        sequential_ms / batch_ms
    } else {
        0.0
    };
    println!(
        "whatif   {batch_n:>5} candidates: sequential {sequential_ms:>8.2} ms, \
         batch {batch_ms:>8.2} ms  ({speedup:>5.1}x)"
    );
    assert!(
        batch_ms < sequential_ms,
        "one whatif_batch ({batch_ms:.2} ms) must beat {batch_n} sequential \
         round trips ({sequential_ms:.2} ms)"
    );
    json.push_str(&format!(
        "  \"whatif_batch\": {{\"candidates\": {batch_n}, \"sequential_ms\": {sequential_ms:.3}, \
         \"batch_ms\": {batch_ms:.3}, \"speedup\": {speedup:.2}}}\n"
    ));
    json.push_str("}\n");

    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/server_latency.json", &json).expect("write snapshot");
    eprintln!("wrote results/server_latency.json");
}
