//! Records a machine-local snapshot of mgba-server throughput and
//! per-command latency to `results/server_latency.json`.
//!
//! Three passes over the same workload (load → calibrate → a
//! query/what-if mix), so the numbers separate protocol cost from
//! transport cost from concurrency headroom:
//!
//! - **stream**: the in-process stdio engine (`serve_stream`) — parse +
//!   dispatch + execute, no sockets;
//! - **tcp**: a real localhost server driven through the typed
//!   [`server::client::Client`] — adds loopback, connection threads,
//!   and the bounded admission queue;
//! - **saturation**: [`bench::saturation`] — concurrent pipelined read
//!   clients against the writer-lane funnel vs the read-worker pool,
//!   yielding the `read_qps_scaling` figure the CI bench gate pins.
//!
//! The stream/tcp passes size the queue to hold the entire pipelined
//! script: they measure service latency, not backpressure (the
//! rejection path has its own integration tests).
//!
//! Per-command p50/p99 come from the server's own `stats` command (the
//! same log₂ histograms `--profile=json` reports), spliced verbatim
//! into the snapshot.

use bench::saturation::{self, SaturationSpec};
use server::client::{Client, ClientConfig};
use server::proto::Command;
use server::{json, serve_stream, Server, ServerConfig};
use std::time::Instant;

/// The steady-state query mix, `reps` rounds after one load+calibrate.
fn workload(design: &str, reps: usize) -> String {
    let mut script = String::new();
    script.push_str(&format!(
        "{{\"id\":1,\"cmd\":\"load\",\"design\":\"{design}\"}}\n"
    ));
    script.push_str("{\"id\":2,\"cmd\":\"calibrate\",\"solver\":\"scgrs\"}\n");
    let mut id = 3u64;
    for round in 0..reps {
        for req in [
            "\"cmd\":\"wns\"".to_owned(),
            "\"cmd\":\"tns\"".to_owned(),
            "\"cmd\":\"slack\",\"top\":10".to_owned(),
            "\"cmd\":\"path\",\"pba\":true".to_owned(),
            format!(
                "\"cmd\":\"whatif_resize\",\"cell\":\"g_1_{}_0\",\"to\":\"up\"",
                round % 4
            ),
        ] {
            script.push_str(&format!("{{\"id\":{id},{req}}}\n"));
            id += 1;
        }
    }
    script.push_str(&format!("{{\"id\":{id},\"cmd\":\"stats\"}}\n"));
    script
}

/// Pulls the per-session `result.commands` object out of a `stats`
/// response line.
fn commands_json(stats_line: &str) -> String {
    json::parse(stats_line)
        .ok()
        .and_then(|v| v.get("result").and_then(|r| r.get("commands")).cloned())
        .map(|c| json::render(&c))
        .unwrap_or_else(|| "{}".into())
}

struct Pass {
    transport: &'static str,
    requests: usize,
    elapsed_ms: f64,
    commands: String,
}

impl Pass {
    fn throughput_rps(&self) -> f64 {
        if self.elapsed_ms > 0.0 {
            self.requests as f64 / (self.elapsed_ms / 1e3)
        } else {
            0.0
        }
    }
}

/// A queue deep enough that the fully-pipelined script is admitted
/// without overload rejections.
fn bench_config(script: &str) -> ServerConfig {
    ServerConfig {
        queue_depth: script.lines().count() + 1,
        ..ServerConfig::default()
    }
}

fn run_stream(script: &str) -> Pass {
    let requests = script.lines().count();
    let t = Instant::now();
    let out = serve_stream(&bench_config(script), script.as_bytes(), Vec::<u8>::new())
        .expect("stream pass");
    let elapsed_ms = 1e3 * t.elapsed().as_secs_f64();
    let text = String::from_utf8(out).expect("utf8 responses");
    let stats_line = text.lines().last().expect("stats response");
    Pass {
        transport: "stream",
        requests,
        elapsed_ms,
        commands: commands_json(stats_line),
    }
}

fn run_tcp(script: &str) -> Pass {
    let srv = Server::bind("127.0.0.1:0", bench_config(script)).expect("bind");
    let addr = srv.local_addr().expect("addr").to_string();
    let handle = std::thread::spawn(move || srv.run().expect("run"));
    let requests = script.lines().count();

    let t = Instant::now();
    let mut client = Client::connect(&addr, ClientConfig::default()).expect("connect");
    // The script is pre-rendered (same bytes as the stream pass), so it
    // rides the raw pipelining escape hatch of the typed client.
    for line in script.lines() {
        client.send_raw(line).expect("send");
    }
    let responses: Vec<String> = (0..requests)
        .map(|_| client.recv_raw().expect("response"))
        .collect();
    let elapsed_ms = 1e3 * t.elapsed().as_secs_f64();

    let stats_line = responses.last().expect("stats response").clone();
    let mut bye = Client::connect(&addr, ClientConfig::default()).expect("connect for shutdown");
    let resp = bye.call(&Command::Shutdown).expect("shutdown round trip");
    assert!(resp.ok, "shutdown failed: {}", resp.raw);
    handle.join().expect("clean server exit");

    Pass {
        transport: "tcp",
        requests,
        elapsed_ms,
        commands: commands_json(&stats_line),
    }
}

/// Evaluates the same `n` resize candidates twice against a calibrated
/// TCP session — as `n` strict `whatif_resize` round trips, then as one
/// `whatif_batch` request — and returns `(sequential_ms, batch_ms)`.
/// The batch pays the per-request framing, parse, dispatch, and loopback
/// cost once instead of `n` times, which is the case for its existence.
fn run_batch_comparison(design: &str, n: usize) -> (f64, f64) {
    let config = ServerConfig {
        queue_depth: n + 8,
        ..ServerConfig::default()
    };
    let srv = Server::bind("127.0.0.1:0", config).expect("bind");
    let addr = srv.local_addr().expect("addr").to_string();
    let handle = std::thread::spawn(move || srv.run().expect("run"));

    let mut client = Client::connect(&addr, ClientConfig::default()).expect("connect");
    let loaded = client
        .call(&Command::Load {
            spec: design.into(),
            period: None,
        })
        .expect("load");
    assert!(loaded.ok, "load failed: {}", loaded.raw);
    let calibrated = client
        .call(&Command::Calibrate {
            solver: Some("scgrs".into()),
        })
        .expect("calibrate");
    assert!(calibrated.ok, "calibrate failed: {}", calibrated.raw);

    let cells: Vec<String> = (0..n).map(|i| format!("g_1_{}_0", i % 4)).collect();
    let t = Instant::now();
    for c in &cells {
        let resp = client
            .call(&Command::WhatIfResize {
                cell: c.clone(),
                to: "up".into(),
            })
            .expect("whatif round trip");
        assert!(resp.ok, "sequential what-if: {}", resp.raw);
    }
    let sequential_ms = 1e3 * t.elapsed().as_secs_f64();

    let t = Instant::now();
    let resp = client
        .call(&Command::WhatIfBatch {
            resizes: cells.iter().map(|c| (c.clone(), "up".to_owned())).collect(),
            pba: false,
        })
        .expect("batch round trip");
    let batch_ms = 1e3 * t.elapsed().as_secs_f64();
    assert!(resp.ok, "batch what-if: {}", resp.raw);

    let bye = client.call(&Command::Shutdown).expect("shutdown");
    assert!(bye.ok, "shutdown failed: {}", bye.raw);
    handle.join().expect("clean server exit");

    (sequential_ms, batch_ms)
}

fn main() {
    let design = "small:5";
    let reps = 40;
    let script = workload(design, reps);
    eprintln!(
        "server latency: {} requests over {design}, stream + tcp passes",
        script.lines().count()
    );

    let passes = [run_stream(&script), run_tcp(&script)];

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"design\": \"{design}\",\n"));
    json.push_str(&format!("  \"query_rounds\": {reps},\n"));
    json.push_str("  \"passes\": [\n");
    for (i, p) in passes.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"transport\": \"{}\", \"requests\": {}, \"elapsed_ms\": {:.3}, \
             \"throughput_rps\": {:.1}, \"commands\": {}}}{}\n",
            p.transport,
            p.requests,
            p.elapsed_ms,
            p.throughput_rps(),
            p.commands,
            if i + 1 < passes.len() { "," } else { "" }
        ));
        println!(
            "{:<8} {:>5} requests in {:>8.2} ms  ({:>8.1} req/s)",
            p.transport,
            p.requests,
            p.elapsed_ms,
            p.throughput_rps()
        );
    }
    json.push_str("  ],\n");

    let batch_n = 32;
    let (sequential_ms, batch_ms) = run_batch_comparison(design, batch_n);
    let speedup = if batch_ms > 0.0 {
        sequential_ms / batch_ms
    } else {
        0.0
    };
    println!(
        "whatif   {batch_n:>5} candidates: sequential {sequential_ms:>8.2} ms, \
         batch {batch_ms:>8.2} ms  ({speedup:>5.1}x)"
    );
    assert!(
        batch_ms < sequential_ms,
        "one whatif_batch ({batch_ms:.2} ms) must beat {batch_n} sequential \
         round trips ({sequential_ms:.2} ms)"
    );
    json.push_str(&format!(
        "  \"whatif_batch\": {{\"candidates\": {batch_n}, \"sequential_ms\": {sequential_ms:.3}, \
         \"batch_ms\": {batch_ms:.3}, \"speedup\": {speedup:.2}}},\n"
    ));

    let spec = SaturationSpec::default();
    // The ≥1.0x floor is structural (published reads execute inline,
    // skipping the lane handoff), but one measurement can still lose to
    // scheduler noise on a loaded host — re-measure before declaring
    // the fast path broken.
    let mut sat = saturation::run(&spec);
    for _ in 0..2 {
        if sat.read_qps_scaling >= 1.0 {
            break;
        }
        eprintln!(
            "saturation scaling {:.2}x below floor; re-measuring",
            sat.read_qps_scaling
        );
        sat = saturation::run(&spec);
    }
    println!(
        "saturate {:>5} clients: funnel {:>8.1} q/s, pool({}) {:>8.1} q/s  ({:>5.2}x)",
        spec.clients,
        sat.read_qps_single,
        spec.read_workers,
        sat.read_qps_multi,
        sat.read_qps_scaling
    );
    assert!(
        sat.read_qps_scaling >= 1.0,
        "read pool ({:.1} q/s) must not lose to the writer-lane funnel ({:.1} q/s)",
        sat.read_qps_multi,
        sat.read_qps_single
    );
    json.push_str(&format!(
        "  \"saturation\": {{\"clients\": {}, \"read_workers\": {}, \
         \"read_qps_single\": {:.1}, \"read_qps_multi\": {:.1}, \"read_qps_scaling\": {:.3}}}\n",
        spec.clients,
        spec.read_workers,
        sat.read_qps_single,
        sat.read_qps_multi,
        sat.read_qps_scaling
    ));
    json.push_str("}\n");

    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/server_latency.json", &json).expect("write snapshot");
    eprintln!("wrote results/server_latency.json");
}
