//! Regenerates **Fig. 4**: solution accuracy vs. number of selected rows.
//!
//! For one design's fitting problem, sweep the number of uniformly
//! sampled equations `m''` and report the relative solution error
//! `‖x(m'') − x*‖ / ‖x*‖` against the full-problem reference `x*`.
//! The paper's point: accuracy converges sharply once the sample reaches
//! a small multiple of the solution's support, so the doubling strategy
//! of Algorithm 1 terminates with a tiny fraction of the rows.
//!
//! Run with `cargo run --release -p bench --bin fig4_row_convergence [design]`.

use bench::build_engine;
use mgba::prelude::*;
use mgba::solver::cgnr;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sparsela::sampling::UniformSampler;
use sparsela::vecops;

fn main() {
    let spec = match std::env::args().nth(1).as_deref() {
        Some("D2") => DesignSpec::D2,
        Some("D8") => DesignSpec::D8,
        _ => DesignSpec::D1,
    };
    let config = MgbaConfig::default();
    let mut sta = build_engine(spec);
    sta.clear_weights();
    let selection = mgba::select_paths(
        &sta,
        SelectionScheme::PerEndpoint {
            k: config.paths_per_endpoint,
            max_total: config.max_paths,
        },
        true,
    );
    let problem = FitProblem::build(&sta, &selection.paths, config.epsilon, config.penalty);
    let m = problem.num_paths();
    let reference = cgnr::solve(&problem, &config);
    let x_star = &reference.x;
    let x_norm = vecops::norm2(x_star).max(1e-30);

    println!("Fig. 4: accuracy of x vs. number of selected rows ({spec})");
    println!(
        "(problem {} x {}; reference x* solved with CGNR on all rows)",
        m,
        problem.num_gates()
    );
    println!(
        "(phi = Eq. (10) fit error on the FULL problem; x-dist = ||x-x*||/||x*||,\n meaningful only once rows exceed the {} columns — below that the\n subproblem is underdetermined and many x fit equally well)\n",
        problem.num_gates()
    );
    println!("{:>8} {:>9} {:>9}  bar (phi)", "rows", "phi(%)", "x-dist");

    let sampler = UniformSampler::new();
    let mut rng = StdRng::seed_from_u64(42);
    let mut rows_list: Vec<usize> = Vec::new();
    let mut r = 32usize;
    while r < m {
        rows_list.push(r);
        r *= 2;
    }
    rows_list.push(m);
    for rows in rows_list {
        let subset = sampler.sample(&mut rng, m, rows);
        let reduced = problem.subproblem(&subset);
        let solved = cgnr::solve(&reduced, &config);
        let err = {
            let diff: f64 = solved
                .x
                .iter()
                .zip(x_star)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt();
            diff / x_norm
        };
        let phi = problem.phi(&solved.x);
        let bar = "#".repeat(((phi * 100.0 * 8.0) as usize).min(60));
        println!("{rows:>8} {:>9.2} {err:>9.3}  {bar}", phi * 100.0);
    }
    println!("\npaper shape: error collapses once rows exceed the solution support,");
    println!("long before the full {m}-row system is used");
}
