//! The standing PR benchmark: runs the calibrate / solver / server
//! scenarios and writes the schema'd `BENCH_PR.json` consumed by
//! `bench_compare` (and the CI `bench-gate` job).
//!
//! ```text
//! bench_all [--out PATH]          # default BENCH_PR.json
//! ```
//!
//! Scenario set (all deterministic apart from wall time and RSS):
//!
//! - `calibrate_scgrs` / `calibrate_cgnr` / `calibrate_gd`: the full
//!   mGBA pipeline on the same seeded small design, one scenario per
//!   solver, with the accuracy dashboard's QoR metrics attached;
//! - `server_query_mix`: load + calibrate + a steady-state query mix
//!   through the in-process stream transport;
//! - `whatif_burst`: incremental what-if resizes against a calibrated
//!   session;
//! - `warm_vs_cold`: one committed resize, then a warm (dirty-rows +
//!   warm-started solve) recalibration timed against a cold full re-run.
//!   The per-leg timings ride along as `wall_`-prefixed QoR keys, which
//!   the comparator exempts from the drift gate; CI pins the speedup
//!   floor with `--require-min warm_vs_cold:wall_speedup:1.0`;
//! - `edif_import`: export the calibrate design to EDIF and re-import
//!   it (strict importer, collected-issues lint included) five times, so
//!   ingestion wall time sits in the regression gate;
//! - `server_saturation`: concurrent pipelined read clients over TCP,
//!   writer-lane funnel vs read-worker pool. The throughputs ride along
//!   as `read_qps_`-prefixed QoR keys (also drift-gate-exempt); CI pins
//!   `--require-min server_saturation:read_qps_scaling:1.0`.

use bench::harness::{commit_sha, run_scenario, write_report, ScenarioResult};
use bench::saturation::{self, SaturationSpec};
use mgba::prelude::*;
use server::{serve_stream, ServerConfig};
use std::time::Instant;

/// Design shared by the calibrate scenarios: the paper's D1 is big
/// enough that the solvers separate on wall time, small enough for a
/// CI-friendly run.
const CALIBRATE_DESIGN: &str = "D1";

/// Design for the server scenarios (matches the latency snapshot bin).
const SERVER_DESIGN: &str = "small:5";

fn calibrate_scenario(name: &str, solver: Solver) -> ScenarioResult {
    run_scenario(name, || {
        let netlist = parse_design(CALIBRATE_DESIGN).expect("known design");
        let period = auto_period(&netlist).expect("probe");
        let mut sta = build_engine(netlist, period).expect("engine");
        let config = MgbaConfig::default();
        let (report, accuracy) = run_mgba_with_accuracy(&mut sta, &config, solver);
        vec![
            ("paths".into(), report.num_paths as f64),
            ("gates".into(), report.num_gates as f64),
            ("mse_before".into(), report.mse_before),
            ("mse_after".into(), report.mse_after),
            ("pass_ratio_after".into(), report.pass_after.ratio()),
            ("iterations".into(), report.iterations as f64),
            ("rows_touched".into(), report.rows_touched as f64),
            ("mean_abs_err_after".into(), accuracy.mean_abs_err_after),
            ("wns_mgba".into(), accuracy.wns.2),
            ("tns_mgba".into(), accuracy.tns.2),
            ("weight_sparsity_pct".into(), accuracy.sparsity_pct()),
        ]
    })
}

/// Runs `script` through the stream transport and counts response lines.
fn stream_responses(script: &str) -> f64 {
    let config = ServerConfig {
        queue_depth: script.lines().count() + 1,
        ..ServerConfig::default()
    };
    let out = serve_stream(&config, script.as_bytes(), Vec::<u8>::new()).expect("stream transport");
    let text = String::from_utf8(out).expect("utf8 responses");
    assert!(
        !text.contains("\"error\""),
        "benchmark script must not error: {text}"
    );
    text.lines().count() as f64
}

fn server_query_mix() -> ScenarioResult {
    run_scenario("server_query_mix", || {
        let mut script = format!("{{\"cmd\":\"load\",\"design\":\"{SERVER_DESIGN}\"}}\n");
        script.push_str("{\"cmd\":\"calibrate\",\"solver\":\"scgrs\"}\n");
        for _ in 0..100 {
            script.push_str("{\"cmd\":\"wns\"}\n");
            script.push_str("{\"cmd\":\"tns\"}\n");
            script.push_str("{\"cmd\":\"slack\",\"top\":10}\n");
            script.push_str("{\"cmd\":\"path\",\"pba\":true}\n");
        }
        vec![("responses".into(), stream_responses(&script))]
    })
}

fn whatif_burst() -> ScenarioResult {
    run_scenario("whatif_burst", || {
        let mut script = format!("{{\"cmd\":\"load\",\"design\":\"{SERVER_DESIGN}\"}}\n");
        script.push_str("{\"cmd\":\"calibrate\",\"solver\":\"scgrs\"}\n");
        for round in 0..150 {
            script.push_str(&format!(
                "{{\"cmd\":\"whatif_resize\",\"cell\":\"g_1_{}_0\",\"to\":\"up\"}}\n",
                round % 4
            ));
        }
        script.push_str("{\"cmd\":\"wns\"}\n");
        vec![("responses".into(), stream_responses(&script))]
    })
}

fn warm_vs_cold() -> ScenarioResult {
    run_scenario("warm_vs_cold", || {
        let netlist = parse_design(CALIBRATE_DESIGN).expect("known design");
        let period = auto_period(&netlist).expect("probe");
        let mut sta = build_engine(netlist, period).expect("engine");
        let config = MgbaConfig::default();
        let solver = Solver::ScgRs;
        let (_, cache) = run_mgba_cached(&mut sta, &config, solver);
        let mut cache = cache.expect("D1 has violating paths");

        // Commit one upsizing of a fitted combinational gate — the same
        // edit the server's `commit` applies before auto-recalibrating.
        // Walk the path back-to-front: a gate near the endpoint has a
        // small fanout cone, so the dirty-row set stays a strict subset
        // and the patch path (not just the warm solve) is exercised.
        let (victim, up) = cache
            .paths
            .iter()
            .flat_map(|p| p.cells.iter().rev())
            .find_map(|&c| {
                let cell = sta.netlist().cell(c);
                if cell.role == netlist::CellRole::Combinational {
                    sta.netlist()
                        .library()
                        .upsized(cell.lib_cell)
                        .map(|u| (c, u))
                } else {
                    None
                }
            })
            .expect("a resizable fitted gate");
        sta.resize_cell(victim, up)
            .expect("library accepts the upsize");
        let dirty = sta.last_touched().to_vec();

        let t = Instant::now();
        let re = recalibrate_warm(&mut sta, &config, solver, &mut cache, &dirty);
        let warm_ms = t.elapsed().as_secs_f64() * 1e3;
        let (wns_warm, tns_warm) = (sta.wns(), sta.tns());

        // Cold leg on the same edited design: full path re-selection,
        // fresh problem assembly, solve from zero.
        let t = Instant::now();
        let (cold, _) = run_mgba_cached(&mut sta, &config, solver);
        let cold_ms = t.elapsed().as_secs_f64() * 1e3;
        let (wns_cold, tns_cold) = (sta.wns(), sta.tns());

        // The warm refit keeps the calibration-time path set while the
        // cold run re-selects; after one gate resize both must land on
        // the same corrected timing (±1%).
        assert!(
            (wns_warm - wns_cold).abs() <= wns_cold.abs() * 0.01 + 1.0,
            "warm wns {wns_warm} vs cold {wns_cold}"
        );
        assert!(
            (tns_warm - tns_cold).abs() <= tns_cold.abs() * 0.01 + 10.0,
            "warm tns {tns_warm} vs cold {tns_cold}"
        );

        vec![
            ("rows".into(), re.total_rows as f64),
            ("dirty_rows".into(), re.dirty_rows as f64),
            ("iterations_warm".into(), re.iterations as f64),
            ("iterations_cold".into(), cold.iterations as f64),
            ("wns_warm".into(), wns_warm),
            ("wns_cold".into(), wns_cold),
            ("tns_warm".into(), tns_warm),
            ("tns_cold".into(), tns_cold),
            ("wall_warm_ms".into(), warm_ms),
            ("wall_cold_ms".into(), cold_ms),
            ("wall_speedup".into(), cold_ms / warm_ms.max(1e-9)),
        ]
    })
}

fn edif_import() -> ScenarioResult {
    run_scenario("edif_import", || {
        // Ingestion wall time: export the calibrate design to EDIF, then
        // run the strict importer (which includes the full one-pass lint)
        // several times so the scenario measures parsing/elaboration, not
        // the one-off export.
        let netlist = parse_design(CALIBRATE_DESIGN).expect("known design");
        let text = ingest::write_edif(&netlist);
        let mut back = None;
        for _ in 0..5 {
            let (n, _sources) = ingest::import_edif(&text).expect("round trip imports");
            back = Some(n);
        }
        let back = back.expect("imported netlist");
        assert_eq!(back.num_cells(), netlist.num_cells(), "cell count survives");
        assert_eq!(back.num_nets(), netlist.num_nets(), "net count survives");
        let report = netlist::lint_netlist(&back);
        vec![
            ("edif_bytes".into(), text.len() as f64),
            ("cells".into(), back.num_cells() as f64),
            ("nets".into(), back.num_nets() as f64),
            ("lint_errors".into(), report.num_errors() as f64),
            ("lint_warnings".into(), report.num_warnings() as f64),
        ]
    })
}

fn server_saturation() -> ScenarioResult {
    run_scenario("server_saturation", || {
        let spec = SaturationSpec::default();
        let sat = saturation::run(&spec);
        vec![
            ("clients".into(), spec.clients as f64),
            ("reads_per_client".into(), spec.reads_per_client as f64),
            ("read_workers".into(), spec.read_workers as f64),
            ("read_qps_single".into(), sat.read_qps_single),
            ("read_qps_multi".into(), sat.read_qps_multi),
            ("read_qps_scaling".into(), sat.read_qps_scaling),
        ]
    })
}

fn main() {
    let mut out_path = "BENCH_PR.json".to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            other => {
                eprintln!("usage: bench_all [--out PATH] (got `{other}`)");
                std::process::exit(2);
            }
        }
    }

    let scenarios = vec![
        calibrate_scenario("calibrate_scgrs", Solver::ScgRs),
        calibrate_scenario("calibrate_cgnr", Solver::Cgnr),
        calibrate_scenario("calibrate_gd", Solver::Gd),
        server_query_mix(),
        whatif_burst(),
        warm_vs_cold(),
        edif_import(),
        server_saturation(),
    ];
    for s in &scenarios {
        println!(
            "{:<18} {:>9.2} ms  rss {:>8} kB  {} qor metrics",
            s.name,
            s.wall_ms,
            s.peak_rss_kb,
            s.qor.len()
        );
    }
    let threads = parallel::global().threads();
    write_report(
        std::path::Path::new(&out_path),
        &commit_sha(),
        threads,
        &scenarios,
    )
    .expect("write report");
    eprintln!("wrote {out_path}");
}
