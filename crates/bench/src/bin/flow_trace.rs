//! Convergence trace of the timing-closure flow (companion to the
//! paper's Fig. 5 framework overview): per-pass WNS/TNS/violations under
//! the GBA and mGBA timers on the same design, showing where the
//! corrected timer stops chasing phantom violations.
//!
//! Run with `cargo run --release -p bench --bin flow_trace [design]`.

use bench::build_flow_engine;
use optim::prelude::*;

fn main() {
    let spec = match std::env::args().nth(1).as_deref() {
        Some("D1") => DesignSpec::D1,
        Some("D8") => DesignSpec::D8,
        _ => DesignSpec::D2,
    };
    println!("flow convergence on {spec} (per-pass, each flow's own timing view)\n");
    for (label, cfg) in [
        ("GBA", FlowConfig::gba()),
        (
            "mGBA",
            FlowConfig::mgba(MgbaConfig::default(), Solver::ScgRs),
        ),
    ] {
        let mut sta = build_flow_engine(spec);
        println!(
            "[{label}] initial: WNS {:.0} ps, TNS {:.0} ps, {} violating endpoints",
            sta.wns(),
            sta.tns(),
            sta.violating_endpoints().len()
        );
        let r = run_flow(&mut sta, &cfg);
        println!(
            "  {:>4} {:>10} {:>12} {:>6} {:>10}",
            "pass", "WNS", "TNS", "viol", "transforms"
        );
        for t in &r.trace {
            println!(
                "  {:>4} {:>10.0} {:>12.0} {:>6} {:>10}",
                t.pass, t.wns, t.tns, t.violating, t.transforms
            );
        }
        println!(
            "  -> closed = {}, {:.0} ms total ({:.0} ms fitting), final PBA WNS {:.0} ps\n",
            r.closed,
            r.elapsed.as_secs_f64() * 1e3,
            r.mgba_time.as_secs_f64() * 1e3,
            r.qor_final_pba.wns
        );
    }
}
