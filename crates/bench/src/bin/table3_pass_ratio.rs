//! Regenerates **Table 3**: pass-ratio comparison of GBA and mGBA against
//! golden PBA on designs D1–D10.
//!
//! A path is "good" when its slack error vs. PBA is below 5% relative or
//! 5 ps absolute (the paper's engineers' rule). The pass ratio is the
//! fraction of good paths; mGBA should massively improve it and no design
//! should get worse.
//!
//! Run with `cargo run --release -p bench --bin table3_pass_ratio`
//! (add `-- --quick` for D1–D3 only).

use bench::{build_engine, row};
use mgba::prelude::*;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let designs: Vec<DesignSpec> = if quick {
        DesignSpec::all()[..3].to_vec()
    } else {
        DesignSpec::all().to_vec()
    };

    println!("Table 3: Pass ratio comparison of GBA and mGBA");
    println!("(good path: |slack error| < 5% relative or < 5 ps absolute)\n");
    let widths = [5usize, 10, 9, 9, 13];
    println!(
        "{}",
        row(
            &[
                "".into(),
                "paths".into(),
                "GBA(%)".into(),
                "mGBA(%)".into(),
                "improve(%)".into(),
            ],
            &widths
        )
    );

    let mut sum_before = 0.0;
    let mut sum_after = 0.0;
    let mut sum_paths = 0usize;
    let mut worse = 0usize;
    for &spec in &designs {
        let mut sta = build_engine(spec);
        let report = run_mgba(&mut sta, &MgbaConfig::default(), Solver::ScgRs);
        let before = report.pass_before.percent();
        let after = report.pass_after.percent();
        if after < before {
            worse += 1;
        }
        sum_before += before;
        sum_after += after;
        sum_paths += report.num_paths;
        println!(
            "{}",
            row(
                &[
                    spec.to_string(),
                    format!("{}", report.num_paths),
                    format!("{before:.2}"),
                    format!("{after:.2}"),
                    format!("{:.2}", after - before),
                ],
                &widths
            )
        );
    }
    let n = designs.len() as f64;
    println!(
        "{}",
        row(
            &[
                "Avg.".into(),
                format!("{}", sum_paths / designs.len()),
                format!("{:.2}", sum_before / n),
                format!("{:.2}", sum_after / n),
                format!("{:.2}", (sum_after - sum_before) / n),
            ],
            &widths
        )
    );
    println!("\ndesigns that got worse under mGBA: {worse} (paper: 0)");
    println!("paper shape: avg GBA 51.6% → mGBA 95.4% (+43.8 points)");
}
