//! Regenerates **Table 2**: QoR improvement of the timing-closure flow
//! with mGBA embedded, relative to the flow with original GBA.
//!
//! Both flows run on identical copies of each design; the table reports
//! the relative improvement of the mGBA flow in WNS, TNS, area, leakage
//! and inserted buffers (positive = mGBA better, the paper's sign
//! convention; small WNS/TNS degradations are expected and discussed in
//! §4.2 — the less pessimistic timer stops optimizing earlier).
//!
//! Run with `cargo run --release -p bench --bin table2_qor`
//! (add `-- --quick` for D1–D3 only).

use bench::{build_flow_engine, row};
use optim::prelude::*;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let designs: Vec<DesignSpec> = if quick {
        DesignSpec::all()[..3].to_vec()
    } else {
        DesignSpec::all().to_vec()
    };

    println!("Table 2: QoR Improvement for Designs (mGBA flow vs GBA flow)");
    println!("(positive = mGBA flow better)\n");
    let widths = [5usize, 9, 9, 9, 11, 10];
    println!(
        "{}",
        row(
            &[
                "".into(),
                "WNS(%)".into(),
                "TNS(%)".into(),
                "area(%)".into(),
                "leakage(%)".into(),
                "buffer(%)".into(),
            ],
            &widths
        )
    );

    let mut sums = [0.0f64; 5];
    for &spec in &designs {
        let mut gba_sta = build_flow_engine(spec);
        let gba = run_flow(&mut gba_sta, &FlowConfig::gba());
        let mut mgba_sta = build_flow_engine(spec);
        let mgba = run_flow(
            &mut mgba_sta,
            &FlowConfig::mgba(MgbaConfig::default(), Solver::ScgRs),
        );

        // WNS/TNS compared under golden PBA (signoff view), normalized by
        // the clock period so near-zero post-closure slacks do not blow
        // the percentage up; area, leakage and buffers are physical and
        // view-independent.
        let period = gba_sta.sdc().clock_period;
        let wns = 100.0 * (mgba.qor_final_pba.wns - gba.qor_final_pba.wns) / period;
        let tns = 100.0 * (mgba.qor_final_pba.tns - gba.qor_final_pba.tns) / period;
        let area = Qor::reduction_percent(gba.qor_final.area, mgba.qor_final.area);
        let leak = Qor::reduction_percent(gba.qor_final.leakage, mgba.qor_final.leakage);
        let buf =
            Qor::reduction_percent(gba.qor_final.buffers as f64, mgba.qor_final.buffers as f64);
        for (s, v) in sums.iter_mut().zip([wns, tns, area, leak, buf]) {
            *s += v;
        }
        println!(
            "{}",
            row(
                &[
                    spec.to_string(),
                    format!("{wns:.2}"),
                    format!("{tns:.2}"),
                    format!("{area:.2}"),
                    format!("{leak:.2}"),
                    format!("{buf:.2}"),
                ],
                &widths
            )
        );
    }
    let n = designs.len() as f64;
    println!(
        "{}",
        row(
            &[
                "Avg.".into(),
                format!("{:.2}", sums[0] / n),
                format!("{:.2}", sums[1] / n),
                format!("{:.2}", sums[2] / n),
                format!("{:.2}", sums[3] / n),
                format!("{:.2}", sums[4] / n),
            ],
            &widths
        )
    );
    println!(
        "\npaper shape: avg +1.20% WNS, +0.65% TNS, +5.58% area, +14.77% leakage, +4.84% buffers"
    );
    println!("(area/leakage/buffer savings positive on most designs; WNS/TNS near neutral)");
}
