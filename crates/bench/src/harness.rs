//! The standing bench harness: named scenarios measured into one
//! schema'd `BENCH_PR.json`, consumed by the comparator ([`crate::compare`])
//! as a CI regression gate.
//!
//! # `BENCH_PR.json` schema (version 1)
//!
//! ```text
//! {
//!   "version": 1,
//!   "commit": str,          // git HEAD sha, "unknown" outside a checkout
//!   "threads": u64,         // parallel pool width the run used
//!   "scenarios": [
//!     {"name": str,
//!      "wall_ms": f64,      // scenario wall time
//!      "peak_rss_kb": u64,  // process VmHWM after the scenario (monotonic
//!                           // high-water mark, not a per-scenario delta)
//!      "qor": {str: f64, ...}}  // deterministic quality metrics
//!   ]
//! }
//! ```
//!
//! Wall time and RSS are noisy machine facts; everything under `qor`
//! is deterministic (fit MSE, pass ratios, response counts) and is held
//! to a much tighter comparison tolerance than the timings.

use obs::json::JsonWriter;
use std::time::Instant;

/// Schema version of [`write_report`].
pub const BENCH_SCHEMA_VERSION: u64 = 1;

/// One measured scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioResult {
    /// Stable scenario name (the comparator joins on it).
    pub name: String,
    /// Wall time, milliseconds.
    pub wall_ms: f64,
    /// Process peak RSS (VmHWM) after the scenario, kilobytes; 0 when
    /// the platform does not expose it.
    pub peak_rss_kb: u64,
    /// Deterministic QoR metrics, in insertion order.
    pub qor: Vec<(String, f64)>,
}

/// Times `body` and packages its QoR metrics as one scenario.
pub fn run_scenario(name: &str, body: impl FnOnce() -> Vec<(String, f64)>) -> ScenarioResult {
    let start = Instant::now();
    let qor = body();
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    ScenarioResult {
        name: name.to_owned(),
        wall_ms,
        peak_rss_kb: peak_rss_kb(),
        qor,
    }
}

/// Process peak resident set size in kB, from `/proc/self/status`
/// (`VmHWM`). Returns 0 where procfs is unavailable.
pub fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|v| v.trim().trim_end_matches("kB").trim().parse().ok())
        .unwrap_or(0)
}

/// `git rev-parse HEAD` of the working directory, or `"unknown"`.
pub fn commit_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

/// Renders the version-1 report document.
pub fn render_report(commit: &str, threads: usize, scenarios: &[ScenarioResult]) -> String {
    let mut w = JsonWriter::new();
    w.begin_obj();
    w.key("version");
    w.u64(BENCH_SCHEMA_VERSION);
    w.key("commit");
    w.str(commit);
    w.key("threads");
    w.u64(threads as u64);
    w.key("scenarios");
    w.begin_arr();
    for s in scenarios {
        w.begin_obj();
        w.key("name");
        w.str(&s.name);
        w.key("wall_ms");
        w.f64(s.wall_ms);
        w.key("peak_rss_kb");
        w.u64(s.peak_rss_kb);
        w.key("qor");
        w.begin_obj();
        for (k, v) in &s.qor {
            w.key(k);
            w.f64(*v);
        }
        w.end_obj();
        w.end_obj();
    }
    w.end_arr();
    w.end_obj();
    w.finish()
}

/// Writes the report to `path` (creating parent directories).
///
/// # Errors
///
/// Returns the I/O error from directory creation or the write.
pub fn write_report(
    path: &std::path::Path,
    commit: &str,
    threads: usize,
    scenarios: &[ScenarioResult],
) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::write(path, render_report(commit, threads, scenarios))
}

#[cfg(test)]
mod tests {
    use super::*;
    use server::json::{parse, Value};

    #[test]
    fn report_round_trips_through_the_parser() {
        let scenarios = vec![
            ScenarioResult {
                name: "calibrate_scgrs".into(),
                wall_ms: 12.5,
                peak_rss_kb: 4096,
                qor: vec![("mse_after".into(), 1.5e-3), ("paths".into(), 840.0)],
            },
            ScenarioResult {
                name: "server_query_mix".into(),
                wall_ms: 3.25,
                peak_rss_kb: 4096,
                qor: vec![("responses".into(), 24.0)],
            },
        ];
        let text = render_report("abc123", 4, &scenarios);
        let v = parse(&text).expect("valid JSON");
        assert_eq!(v.get("version").and_then(Value::as_u64), Some(1));
        assert_eq!(v.get("commit").and_then(Value::as_str), Some("abc123"));
        assert_eq!(v.get("threads").and_then(Value::as_u64), Some(4));
        let Some(Value::Arr(arr)) = v.get("scenarios") else {
            panic!("scenarios must be an array");
        };
        assert_eq!(arr.len(), 2);
        assert_eq!(
            arr[0].get("name").and_then(Value::as_str),
            Some("calibrate_scgrs")
        );
        assert_eq!(
            arr[0]
                .get("qor")
                .unwrap()
                .get("paths")
                .and_then(Value::as_f64),
            Some(840.0)
        );
    }

    #[test]
    fn run_scenario_measures_and_tags() {
        let s = run_scenario("demo", || vec![("answer".into(), 42.0)]);
        assert_eq!(s.name, "demo");
        assert!(s.wall_ms >= 0.0);
        assert_eq!(s.qor, vec![("answer".into(), 42.0)]);
    }

    #[test]
    fn peak_rss_is_positive_on_linux() {
        if std::path::Path::new("/proc/self/status").exists() {
            assert!(peak_rss_kb() > 0);
        }
    }

    #[test]
    fn commit_sha_never_panics() {
        let sha = commit_sha();
        assert!(!sha.is_empty());
    }
}
