//! Criterion benchmark of the end-to-end flows (Table 5's comparison at
//! statistical rigor, on the smallest design so iteration stays cheap)
//! and of one complete mGBA fit invocation.

use bench::{build_engine, build_flow_engine};
use criterion::{criterion_group, criterion_main, Criterion};
use mgba::{run_mgba, MgbaConfig, Solver};
use netlist::DesignSpec;
use optim::{run_flow, FlowConfig};
use std::hint::black_box;

fn bench_flows(c: &mut Criterion) {
    let mut group = c.benchmark_group("flow/d1");
    group.sample_size(10);
    group.bench_function("gba", |b| {
        b.iter(|| {
            let mut sta = build_flow_engine(DesignSpec::D1);
            black_box(run_flow(&mut sta, &FlowConfig::gba()))
        })
    });
    group.bench_function("mgba", |b| {
        b.iter(|| {
            let mut sta = build_flow_engine(DesignSpec::D1);
            black_box(run_flow(
                &mut sta,
                &FlowConfig::mgba(MgbaConfig::default(), Solver::ScgRs),
            ))
        })
    });
    group.finish();
}

fn bench_mgba_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("flow/fit");
    group.sample_size(10);
    group.bench_function("run_mgba_d1", |b| {
        let mut sta = build_engine(DesignSpec::D1);
        b.iter(|| black_box(run_mgba(&mut sta, &MgbaConfig::default(), Solver::ScgRs)))
    });
    group.finish();
}

criterion_group!(benches, bench_flows, bench_mgba_fit);
criterion_main!(benches);
