//! Criterion microbenchmarks of the optimization solvers (Table 4's
//! wall-clock comparison at statistical rigor) plus the ablations called
//! out in DESIGN.md:
//!
//! - `solver/...` — GD vs SCG vs SCG+RS vs CGNR on the same D1 problem;
//! - `ablation/step_decay` — the dynamic step-size schedule on vs off;
//! - `ablation/row_fraction` — sensitivity to the k'' sampling fraction;
//! - `ablation/initial_ratio` — Algorithm 1's starting ratio r₀.

use bench::build_engine;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mgba::{FitProblem, MgbaConfig, SelectionScheme, Solver};
use std::hint::black_box;

fn problem() -> FitProblem {
    let config = MgbaConfig::default();
    let mut sta = build_engine(netlist::DesignSpec::D1);
    sta.clear_weights();
    let selection = mgba::select_paths(
        &sta,
        SelectionScheme::PerEndpoint {
            k: config.paths_per_endpoint,
            max_total: config.max_paths,
        },
        true,
    );
    FitProblem::build(&sta, &selection.paths, config.epsilon, config.penalty)
}

fn bench_solvers(c: &mut Criterion) {
    let p = problem();
    let config = MgbaConfig::default();
    let mut group = c.benchmark_group("solver");
    group.sample_size(10);
    for solver in [Solver::Gd, Solver::Scg, Solver::ScgRs, Solver::Cgnr] {
        group.bench_function(BenchmarkId::from_parameter(solver.paper_name()), |b| {
            b.iter(|| black_box(solver.solve(&p, &config)))
        });
    }
    group.finish();
}

fn bench_step_decay_ablation(c: &mut Criterion) {
    let p = problem();
    let mut group = c.benchmark_group("ablation/step_decay");
    group.sample_size(10);
    for (name, decay) in [
        ("dynamic", MgbaConfig::default().step_decay),
        ("fixed", 0.0),
    ] {
        let config = MgbaConfig {
            step_decay: decay,
            ..MgbaConfig::default()
        };
        group.bench_function(name, |b| {
            b.iter(|| black_box(Solver::Scg.solve(&p, &config)))
        });
    }
    group.finish();
}

fn bench_row_fraction_ablation(c: &mut Criterion) {
    let p = problem();
    let mut group = c.benchmark_group("ablation/row_fraction");
    group.sample_size(10);
    for frac in [0.005, 0.02, 0.08] {
        let config = MgbaConfig {
            row_fraction: frac,
            ..MgbaConfig::default()
        };
        group.bench_function(BenchmarkId::from_parameter(frac), |b| {
            b.iter(|| black_box(Solver::Scg.solve(&p, &config)))
        });
    }
    group.finish();
}

fn bench_initial_ratio_ablation(c: &mut Criterion) {
    let p = problem();
    let mut group = c.benchmark_group("ablation/initial_ratio");
    group.sample_size(10);
    for r0 in [1e-3, 1e-2, 1e-1] {
        let config = MgbaConfig {
            initial_row_ratio: r0,
            ..MgbaConfig::default()
        };
        group.bench_function(BenchmarkId::from_parameter(r0), |b| {
            b.iter(|| black_box(Solver::ScgRs.solve(&p, &config)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_solvers,
    bench_step_decay_ablation,
    bench_row_fraction_ablation,
    bench_initial_ratio_ablation
);
criterion_main!(benches);
