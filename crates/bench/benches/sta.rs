//! Criterion microbenchmarks of the STA substrate: full vs incremental
//! timing update (the flow's inner loop), path enumeration, and PBA
//! re-timing — the costs whose ratio motivates the whole mGBA approach
//! (GBA updates are cheap, PBA is per-path expensive).

use bench::build_engine;
use criterion::{criterion_group, criterion_main, Criterion};
use netlist::{CellRole, DesignSpec};
use sta::paths::{select_critical_paths, worst_paths_to_endpoint};
use sta::pba_timing;
use std::hint::black_box;

fn bench_timing_updates(c: &mut Criterion) {
    let mut group = c.benchmark_group("sta/update");
    group.sample_size(20);
    let sta0 = build_engine(DesignSpec::D3);

    group.bench_function("full", |b| {
        let mut sta = build_engine(DesignSpec::D3);
        b.iter(|| {
            sta.full_update();
            black_box(sta.wns())
        })
    });

    // Incremental: toggle one mid-design gate between two sizes.
    let victim = sta0
        .netlist()
        .cells()
        .find(|(_, cell)| {
            cell.role == CellRole::Combinational
                && sta0.netlist().library().upsized(cell.lib_cell).is_some()
        })
        .map(|(id, _)| id)
        .expect("design has resizable gates");
    group.bench_function("incremental_resize", |b| {
        let mut sta = build_engine(DesignSpec::D3);
        let lo = sta.netlist().cell(victim).lib_cell;
        let hi = sta.netlist().library().upsized(lo).unwrap();
        let mut up = true;
        b.iter(|| {
            sta.resize_cell(victim, if up { hi } else { lo }).unwrap();
            up = !up;
            black_box(sta.wns())
        })
    });
    group.finish();
}

fn bench_path_enumeration(c: &mut Criterion) {
    let sta = build_engine(DesignSpec::D3);
    let endpoint = sta
        .violating_endpoints()
        .first()
        .copied()
        .expect("benchmark design violates");
    let mut group = c.benchmark_group("sta/paths");
    group.sample_size(20);
    group.bench_function("worst_1", |b| {
        b.iter(|| black_box(worst_paths_to_endpoint(&sta, endpoint, 1)))
    });
    group.bench_function("worst_20", |b| {
        b.iter(|| black_box(worst_paths_to_endpoint(&sta, endpoint, 20)))
    });
    group.bench_function("select_all_endpoints_k20", |b| {
        b.iter(|| black_box(select_critical_paths(&sta, 20, usize::MAX, true)))
    });
    group.finish();
}

fn bench_pba(c: &mut Criterion) {
    let sta = build_engine(DesignSpec::D3);
    let paths = select_critical_paths(&sta, 20, 2000, true);
    let mut group = c.benchmark_group("sta/pba");
    group.sample_size(20);
    group.bench_function("retime_2000_paths", |b| {
        b.iter(|| {
            let total: f64 = paths.iter().map(|p| pba_timing(&sta, p).slack).sum();
            black_box(total)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_timing_updates,
    bench_path_enumeration,
    bench_pba
);
criterion_main!(benches);
