//! Criterion benchmarks for the parallel execution layer: 1-thread vs
//! N-thread timings of the kernels the fitting flow spends its life in —
//! batch PBA retiming, fit-matrix assembly, CSR matvec, and the full
//! objective/gradient sweep. Every parallel kernel is bit-identical to
//! its serial twin, so these measure pure speedup, not a different
//! algorithm.

use bench::build_engine;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mgba::{FitProblem, MgbaConfig};
use netlist::DesignSpec;
use parallel::Parallelism;
use sta::paths::select_critical_paths;
use sta::pba_timing_batch;
use std::hint::black_box;

/// Thread counts to sweep: serial baseline, then the machine width.
fn widths() -> Vec<usize> {
    let n = std::thread::available_parallelism().map_or(4, |c| c.get());
    if n > 1 {
        vec![1, n]
    } else {
        vec![1]
    }
}

fn bench_pba_batch(c: &mut Criterion) {
    let sta = build_engine(DesignSpec::D3);
    // The acceptance target: a batch of >= 10k paths.
    let paths = select_critical_paths(&sta, 40, usize::MAX, false);
    let mut group = c.benchmark_group(format!("parallel/pba_batch_{}", paths.len()));
    group.sample_size(10);
    for threads in widths() {
        group.bench_function(BenchmarkId::from_parameter(threads), |b| {
            let par = Parallelism::new(threads);
            b.iter(|| black_box(pba_timing_batch(&sta, &paths, par)))
        });
    }
    group.finish();
}

fn bench_fit_build(c: &mut Criterion) {
    let sta = build_engine(DesignSpec::D3);
    let cfg = MgbaConfig::default();
    let paths = select_critical_paths(&sta, 20, usize::MAX, false);
    let mut group = c.benchmark_group(format!("parallel/fit_build_{}", paths.len()));
    group.sample_size(10);
    for threads in widths() {
        group.bench_function(BenchmarkId::from_parameter(threads), |b| {
            let par = Parallelism::new(threads);
            b.iter(|| {
                black_box(FitProblem::build_par(
                    &sta,
                    &paths,
                    cfg.epsilon,
                    cfg.penalty,
                    par,
                ))
            })
        });
    }
    group.finish();
}

fn bench_matrix_kernels(c: &mut Criterion) {
    let sta = build_engine(DesignSpec::D3);
    let cfg = MgbaConfig::default();
    let paths = select_critical_paths(&sta, 20, usize::MAX, false);
    let p = FitProblem::build_par(
        &sta,
        &paths,
        cfg.epsilon,
        cfg.penalty,
        Parallelism::serial(),
    );
    let a = p.matrix();
    let x: Vec<f64> = (0..p.num_gates())
        .map(|j| -0.02 + 0.0005 * (j % 13) as f64)
        .collect();

    let mut group = c.benchmark_group(format!("parallel/matvec_{}x{}", a.num_rows(), a.num_cols()));
    group.sample_size(20);
    for threads in widths() {
        group.bench_function(BenchmarkId::from_parameter(threads), |b| {
            let par = Parallelism::new(threads);
            b.iter(|| black_box(a.matvec_par(&x, par)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("parallel/gradient");
    group.sample_size(20);
    for threads in widths() {
        group.bench_function(BenchmarkId::from_parameter(threads), |b| {
            let pp = p.clone().with_parallelism(Parallelism::new(threads));
            let mut coeffs = Vec::new();
            let mut g = Vec::new();
            b.iter(|| {
                pp.gradient_into(&x, &mut coeffs, &mut g);
                black_box(g.last().copied())
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("parallel/objective");
    group.sample_size(20);
    for threads in widths() {
        group.bench_function(BenchmarkId::from_parameter(threads), |b| {
            let pp = p.clone().with_parallelism(Parallelism::new(threads));
            b.iter(|| black_box(pp.objective(&x)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_pba_batch,
    bench_fit_build,
    bench_matrix_kernels
);
criterion_main!(benches);
