//! Prometheus text exposition (format version 0.0.4) for the metrics
//! registry — and for any other store that wants to publish series
//! through the same writer (the server's always-on command-latency
//! histograms use it too).
//!
//! # Name mapping
//!
//! Registry names are dotted (`"mgba.fit.rows"`); Prometheus names are
//! `[a-zA-Z_:][a-zA-Z0-9_:]*`. The mapping is mechanical and stable:
//!
//! - every character outside the legal set becomes `_`
//!   (`mgba.fit.rows` → `mgba_fit_rows`);
//! - counters gain the conventional `_total` suffix
//!   (`server.requests.ping` → `server_requests_ping_total`);
//! - gauges and histograms keep the sanitized name unchanged.
//!
//! # Histograms
//!
//! The registry's log₂ buckets carry *per-bucket* counts over the
//! contiguous non-empty range ([`crate::metrics::HistogramSnapshot`]);
//! the exposition format wants **cumulative** counts plus a final
//! `le="+Inf"` bucket equal to `_count`. [`PromWriter`] performs that
//! conversion, so scrapers see a conformant histogram regardless of the
//! registry's internal trimming.
//!
//! [`validate`] is a conformance checker for the subset of the format
//! this module emits; the unit and integration suites run every encoder
//! output through it.

use crate::metrics::MetricsSnapshot;
use std::fmt::Write as _;

/// The HTTP `Content-Type` a scrape endpoint should declare for this
/// output.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Maps an arbitrary registry name onto the Prometheus grammar:
/// illegal characters become `_`, and a leading digit gains a `_`
/// prefix.
pub fn sanitize_name(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len() + 1);
    for (i, c) in raw.chars().enumerate() {
        let legal =
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else if legal {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Renders a sample value: finite floats in shortest round-trip form,
/// infinities as `+Inf`/`-Inf` (the exposition spelling), NaN as `NaN`.
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".into()
    } else if v == f64::INFINITY {
        "+Inf".into()
    } else if v == f64::NEG_INFINITY {
        "-Inf".into()
    } else {
        format!("{v:?}")
    }
}

/// Incremental builder for one exposition document. Callers group
/// output by metric family: `# HELP` / `# TYPE` once, then the family's
/// samples.
#[derive(Default)]
pub struct PromWriter {
    out: String,
}

impl PromWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        let _ = writeln!(self.out, "# HELP {name} {}", escape_help(help));
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    fn sample(&mut self, name: &str, labels: &[(&str, String)], value: f64) {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                let _ = write!(self.out, "{k}=\"{}\"", escape_label(v));
            }
            self.out.push('}');
        }
        let _ = writeln!(self.out, " {}", fmt_value(value));
    }

    /// One counter family with a single unlabeled sample. `name` must
    /// already be sanitized and carry the `_total` suffix.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.header(name, help, "counter");
        self.sample(name, &[], value as f64);
    }

    /// One gauge family with a single unlabeled sample.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) {
        self.header(name, help, "gauge");
        self.sample(name, &[], value);
    }

    /// Opens a gauge family (`# HELP`/`# TYPE` lines). Follow with one
    /// [`sample_labels`](Self::sample_labels) per label set.
    pub fn gauge_family(&mut self, name: &str, help: &str) {
        self.header(name, help, "gauge");
    }

    /// Opens a counter family. Follow with
    /// [`sample_labels`](Self::sample_labels); `name` must already carry
    /// the `_total` suffix.
    pub fn counter_family(&mut self, name: &str, help: &str) {
        self.header(name, help, "counter");
    }

    /// Emits one labeled sample under an already-open family (e.g. a
    /// `{session="a"}` gauge series).
    pub fn sample_labels(&mut self, name: &str, label_set: &[(&str, &str)], value: f64) {
        let labels: Vec<(&str, String)> = label_set
            .iter()
            .map(|(k, v)| (*k, (*v).to_owned()))
            .collect();
        self.sample(name, &labels, value);
    }

    /// Opens a histogram family (`# HELP`/`# TYPE` lines). Follow with
    /// one [`histogram_series`](Self::histogram_series) per label value.
    pub fn histogram_family(&mut self, name: &str, help: &str) {
        self.header(name, help, "histogram");
    }

    /// Emits one histogram series under an open family: cumulative
    /// `_bucket` samples from per-bucket `(upper_bound, count)` pairs,
    /// the mandatory `le="+Inf"` bucket, then `_sum` and `_count`.
    pub fn histogram_series(
        &mut self,
        name: &str,
        label: Option<(&str, &str)>,
        buckets: &[(f64, u64)],
        count: u64,
        sum: f64,
    ) {
        let labels: Vec<(&str, &str)> = label.into_iter().collect();
        self.histogram_series_labels(name, &labels, buckets, count, sum);
    }

    /// [`histogram_series`](Self::histogram_series) with an arbitrary
    /// label set (e.g. `{session="a",cmd="wns"}`), in the given order.
    pub fn histogram_series_labels(
        &mut self,
        name: &str,
        label_set: &[(&str, &str)],
        buckets: &[(f64, u64)],
        count: u64,
        sum: f64,
    ) {
        let base: Vec<(&str, String)> = label_set
            .iter()
            .map(|(k, v)| (*k, (*v).to_owned()))
            .collect();
        let bucket_name = format!("{name}_bucket");
        let mut cumulative = 0u64;
        for &(le, c) in buckets {
            if !le.is_finite() {
                // The registry's overflow bucket; folded into +Inf below.
                cumulative += c;
                continue;
            }
            cumulative += c;
            let mut labels = base.clone();
            labels.push(("le", fmt_value(le)));
            self.sample(&bucket_name, &labels, cumulative as f64);
        }
        let mut labels = base.clone();
        labels.push(("le", "+Inf".into()));
        self.sample(&bucket_name, &labels, count as f64);
        self.sample(&format!("{name}_sum"), &base, sum);
        self.sample(&format!("{name}_count"), &base, count as f64);
    }

    /// Consumes the writer and returns the document (newline-terminated).
    pub fn finish(self) -> String {
        self.out
    }
}

/// Encodes a metrics-registry snapshot as one exposition document.
pub fn encode(snapshot: &MetricsSnapshot) -> String {
    let mut w = PromWriter::new();
    for (name, value) in &snapshot.counters {
        let mut prom = sanitize_name(name);
        if !prom.ends_with("_total") {
            prom.push_str("_total");
        }
        w.counter(&prom, &format!("obs counter `{name}`"), *value);
    }
    for (name, value) in &snapshot.gauges {
        w.gauge(&sanitize_name(name), &format!("obs gauge `{name}`"), *value);
    }
    for h in &snapshot.histograms {
        let prom = sanitize_name(&h.name);
        w.histogram_family(&prom, &format!("obs histogram `{}`", h.name));
        w.histogram_series(&prom, None, &h.buckets, h.count, h.sum);
    }
    w.finish()
}

/// Conformance checker for the exposition subset this module emits.
///
/// Verifies that every line is a `# HELP`, `# TYPE`, or sample line;
/// that every sample's family is typed before its first sample; that
/// metric names match the Prometheus grammar; and that each histogram
/// series has non-decreasing cumulative buckets ending in an
/// `le="+Inf"` bucket equal to its `_count`, plus a `_sum`.
///
/// # Errors
///
/// Returns a human-readable description of the first violation.
pub fn validate(text: &str) -> Result<(), String> {
    use std::collections::BTreeMap;

    if text.is_empty() {
        return Ok(());
    }
    if !text.ends_with('\n') {
        return Err("document must end with a newline".into());
    }
    fn valid_name(name: &str) -> bool {
        let mut chars = name.chars();
        match chars.next() {
            Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
            _ => return false,
        }
        chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }
    fn parse_value(s: &str) -> Result<f64, String> {
        match s {
            "+Inf" => Ok(f64::INFINITY),
            "-Inf" => Ok(f64::NEG_INFINITY),
            "NaN" => Ok(f64::NAN),
            other => other.parse().map_err(|_| format!("bad value `{other}`")),
        }
    }

    let mut types: BTreeMap<String, String> = BTreeMap::new();
    // (family, series labels without `le`) → cumulative bucket values.
    let mut hist_buckets: BTreeMap<(String, String), Vec<(String, f64)>> = BTreeMap::new();
    let mut hist_counts: BTreeMap<(String, String), f64> = BTreeMap::new();
    let mut hist_sums: BTreeMap<(String, String), f64> = BTreeMap::new();

    for (ln, line) in text.lines().enumerate() {
        let ctx = |msg: String| format!("line {}: {msg}", ln + 1);
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.splitn(3, ' ');
            let keyword = parts.next().unwrap_or("");
            let name = parts.next().unwrap_or("");
            match keyword {
                "HELP" => {
                    if !valid_name(name) {
                        return Err(ctx(format!("bad HELP name `{name}`")));
                    }
                }
                "TYPE" => {
                    let kind = parts.next().unwrap_or("");
                    if !matches!(
                        kind,
                        "counter" | "gauge" | "histogram" | "summary" | "untyped"
                    ) {
                        return Err(ctx(format!("bad TYPE kind `{kind}`")));
                    }
                    if types.insert(name.to_owned(), kind.to_owned()).is_some() {
                        return Err(ctx(format!("duplicate TYPE for `{name}`")));
                    }
                }
                other => return Err(ctx(format!("unknown comment keyword `{other}`"))),
            }
            continue;
        }
        if line.is_empty() {
            continue;
        }
        // Sample line: name[{labels}] value
        let (name_labels, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| ctx("sample line without value".into()))?;
        let value = parse_value(value).map_err(ctx)?;
        let (name, labels) = match name_labels.split_once('{') {
            Some((n, rest)) => {
                let labels = rest
                    .strip_suffix('}')
                    .ok_or_else(|| ctx("unterminated label set".into()))?;
                (n, labels)
            }
            None => (name_labels, ""),
        };
        if !valid_name(name) {
            return Err(ctx(format!("bad metric name `{name}`")));
        }
        // Resolve the family: histogram child samples hang off the base
        // name; everything else is its own family.
        let family = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suffix| {
                name.strip_suffix(suffix)
                    .filter(|base| types.get(*base).map(String::as_str) == Some("histogram"))
            })
            .unwrap_or(name);
        if !types.contains_key(family) {
            return Err(ctx(format!("sample `{name}` has no preceding TYPE")));
        }
        if types.get(family).map(String::as_str) == Some("histogram") {
            let mut le: Option<String> = None;
            let mut series = Vec::new();
            for pair in labels.split(',').filter(|p| !p.is_empty()) {
                let (k, v) = pair
                    .split_once('=')
                    .ok_or_else(|| ctx(format!("bad label `{pair}`")))?;
                let v = v.trim_matches('"').to_owned();
                if k == "le" {
                    le = Some(v);
                } else {
                    series.push(format!("{k}={v}"));
                }
            }
            let key = (family.to_owned(), series.join(","));
            if name.ends_with("_bucket") {
                let le = le.ok_or_else(|| ctx("bucket sample without le".into()))?;
                hist_buckets.entry(key).or_default().push((le, value));
            } else if name.ends_with("_count") {
                hist_counts.insert(key, value);
            } else if name.ends_with("_sum") {
                hist_sums.insert(key, value);
            }
        }
    }
    for ((family, series), buckets) in &hist_buckets {
        let at = |msg: String| format!("histogram `{family}`{{{series}}}: {msg}");
        let mut prev = 0.0f64;
        for (le, v) in buckets {
            if *v < prev {
                return Err(at(format!("bucket le={le} decreases ({v} < {prev})")));
            }
            prev = *v;
        }
        let (last_le, last_v) = buckets.last().expect("non-empty");
        if last_le != "+Inf" {
            return Err(at("missing le=\"+Inf\" bucket".into()));
        }
        let count = hist_counts
            .get(&(family.clone(), series.clone()))
            .ok_or_else(|| at("missing _count sample".into()))?;
        if last_v != count {
            return Err(at(format!("+Inf bucket {last_v} != _count {count}")));
        }
        if !hist_sums.contains_key(&(family.clone(), series.clone())) {
            return Err(at("missing _sum sample".into()));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testlock;

    #[test]
    fn sanitizes_names() {
        assert_eq!(sanitize_name("mgba.fit.rows"), "mgba_fit_rows");
        assert_eq!(
            sanitize_name("server.latency_us.ping"),
            "server_latency_us_ping"
        );
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name("a-b c"), "a_b_c");
        assert_eq!(sanitize_name(""), "_");
    }

    #[test]
    fn encode_registry_snapshot_conforms() {
        let _l = testlock::hold();
        crate::set_enabled(true);
        crate::counter_add("mgba.paths_selected", 840);
        crate::gauge_set("mgba.mse_after", 1.25e-3);
        crate::observe("server.latency_us.wns", 12.0);
        crate::observe("server.latency_us.wns", 900.0);
        crate::set_enabled(false);
        let text = encode(&crate::metrics::snapshot());
        validate(&text).expect("conformant exposition");
        assert!(text.contains("# TYPE mgba_paths_selected_total counter"));
        assert!(text.contains("mgba_paths_selected_total 840"));
        assert!(text.contains("# TYPE mgba_mse_after gauge"));
        assert!(text.contains("# TYPE server_latency_us_wns histogram"));
        assert!(text.contains("server_latency_us_wns_count 2"));
        assert!(text.contains("le=\"+Inf\"} 2"));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let mut w = PromWriter::new();
        w.histogram_family("h", "test");
        w.histogram_series("h", None, &[(1.0, 3), (2.0, 0), (4.0, 2)], 5, 9.5);
        let text = w.finish();
        validate(&text).expect("conformant");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[2], "h_bucket{le=\"1.0\"} 3.0");
        assert_eq!(lines[3], "h_bucket{le=\"2.0\"} 3.0");
        assert_eq!(lines[4], "h_bucket{le=\"4.0\"} 5.0");
        assert_eq!(lines[5], "h_bucket{le=\"+Inf\"} 5.0");
        assert_eq!(lines[6], "h_sum 9.5");
        assert_eq!(lines[7], "h_count 5.0");
    }

    #[test]
    fn labeled_series_share_one_family() {
        let mut w = PromWriter::new();
        w.histogram_family("lat", "per-command latency");
        w.histogram_series("lat", Some(("cmd", "ping")), &[(1.0, 1)], 1, 0.5);
        w.histogram_series("lat", Some(("cmd", "wns")), &[(2.0, 2)], 2, 3.0);
        let text = w.finish();
        validate(&text).expect("conformant");
        assert_eq!(text.matches("# TYPE lat histogram").count(), 1);
        assert!(text.contains("lat_bucket{cmd=\"ping\",le=\"1.0\"} 1.0"));
        assert!(text.contains("lat_count{cmd=\"wns\"} 2.0"));
    }

    #[test]
    fn labeled_gauge_and_counter_families() {
        let mut w = PromWriter::new();
        w.gauge_family("g", "per-session gauge");
        w.sample_labels("g", &[("session", "a")], 1.5);
        w.sample_labels("g", &[("session", "b")], -2.0);
        w.counter_family("c_total", "per-session counter");
        w.sample_labels("c_total", &[("session", "a")], 7.0);
        let text = w.finish();
        validate(&text).expect("conformant");
        assert_eq!(text.matches("# TYPE g gauge").count(), 1);
        assert!(text.contains("g{session=\"a\"} 1.5"));
        assert!(text.contains("g{session=\"b\"} -2.0"));
        assert!(text.contains("c_total{session=\"a\"} 7.0"));
    }

    #[test]
    fn overflow_bucket_folds_into_inf() {
        let mut w = PromWriter::new();
        w.histogram_family("h", "overflow");
        // Registry snapshots can end in the +∞ overflow bucket.
        w.histogram_series("h", None, &[(4.0, 1), (f64::INFINITY, 2)], 3, 100.0);
        let text = w.finish();
        validate(&text).expect("conformant");
        assert!(text.contains("h_bucket{le=\"4.0\"} 1.0"));
        assert!(text.contains("h_bucket{le=\"+Inf\"} 3.0"));
        // No literal "inf" bucket label besides +Inf.
        assert_eq!(text.matches("le=\"inf\"").count(), 0);
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        for (bad, why) in [
            ("metric_a 1", "no trailing newline"),
            ("metric_a 1\n", "sample without TYPE"),
            ("# TYPE m counter\nm one\n", "non-numeric value"),
            ("# TYPE 3bad counter\n3bad 1\n", "bad name"),
            (
                "# TYPE h histogram\nh_bucket{le=\"1.0\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
                "decreasing cumulative",
            ),
            (
                "# TYPE h histogram\nh_bucket{le=\"1.0\"} 1\nh_sum 1\nh_count 1\n",
                "missing +Inf",
            ),
        ] {
            assert!(validate(bad).is_err(), "validator accepted: {why}");
        }
    }

    #[test]
    fn escapes_label_and_help_text() {
        let mut w = PromWriter::new();
        w.gauge("g", "line\nbreak \\ slash", 1.0);
        w.histogram_family("h", "h");
        w.histogram_series("h", Some(("cmd", "a\"b")), &[(1.0, 1)], 1, 1.0);
        let text = w.finish();
        validate(&text).expect("conformant");
        assert!(text.contains("# HELP g line\\nbreak \\\\ slash"));
        assert!(text.contains("cmd=\"a\\\"b\""));
    }
}
