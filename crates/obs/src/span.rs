//! Hierarchical timed spans.
//!
//! A span is opened with [`span`] and closed when the returned guard
//! drops. Spans aggregate by `(parent, name)`: re-entering a span under
//! the same parent accumulates into one node (calls, total, min, max)
//! instead of growing the tree, so per-pass and per-round spans stay
//! bounded. Parentage is tracked per thread via a thread-local stack.

use std::cell::RefCell;
use std::sync::Mutex;
use std::time::Instant;

/// One aggregated node of the span tree.
#[derive(Debug, Clone)]
struct Node {
    name: String,
    children: Vec<usize>,
    calls: u64,
    total_ns: u64,
    min_ns: u64,
    max_ns: u64,
}

#[derive(Default)]
struct Tree {
    nodes: Vec<Node>,
    roots: Vec<usize>,
}

impl Tree {
    /// Finds or creates the child of `parent` (or root) named `name`.
    fn intern(&mut self, parent: Option<usize>, name: &str) -> usize {
        let siblings = match parent {
            Some(p) => &self.nodes[p].children,
            None => &self.roots,
        };
        if let Some(&idx) = siblings.iter().find(|&&i| self.nodes[i].name == name) {
            return idx;
        }
        let idx = self.nodes.len();
        self.nodes.push(Node {
            name: name.to_owned(),
            children: Vec::new(),
            calls: 0,
            total_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        });
        match parent {
            Some(p) => self.nodes[p].children.push(idx),
            None => self.roots.push(idx),
        }
        idx
    }
}

static TREE: Mutex<Tree> = Mutex::new(Tree {
    nodes: Vec::new(),
    roots: Vec::new(),
});

thread_local! {
    /// This thread's stack of open span node indices.
    static STACK: RefCell<Vec<usize>> = const { RefCell::new(Vec::new()) };
}

/// Opens a timed span named `name` under the thread's innermost open
/// span. Returns a guard that records the elapsed time on drop. The
/// span feeds two stores independently: the aggregated tree when
/// profiling is enabled ([`crate::enabled`]) and the Chrome trace-event
/// timeline when collection is on ([`crate::trace::trace_enabled`]).
/// With both off this is a no-op costing two relaxed atomic loads.
#[must_use = "a span records on drop; binding it to `_` drops it immediately"]
pub fn span(name: &str) -> SpanGuard {
    let profiling = crate::enabled();
    let tracing = crate::trace::trace_enabled();
    if !profiling && !tracing {
        return SpanGuard(None);
    }
    if tracing {
        crate::trace::emit_begin(name);
    }
    let node = if profiling {
        let parent = STACK.with(|s| s.borrow().last().copied());
        let idx = {
            let mut tree = TREE.lock().unwrap_or_else(|p| p.into_inner());
            // A reset while this thread held open spans leaves stale indices
            // on its stack; treat those as roots instead of indexing into
            // the rebuilt arena.
            let parent = parent.filter(|&p| p < tree.nodes.len());
            tree.intern(parent, name)
        };
        STACK.with(|s| s.borrow_mut().push(idx));
        Some(idx)
    } else {
        None
    };
    SpanGuard(Some(OpenSpan {
        node,
        traced_name: if tracing { Some(name.to_owned()) } else { None },
        started: Instant::now(),
    }))
}

struct OpenSpan {
    /// Aggregated-tree node, when profiling was on at open.
    node: Option<usize>,
    /// Span name, kept only when the open emitted a trace `B` event so
    /// the drop can emit the matching `E`.
    traced_name: Option<String>,
    started: Instant,
}

/// Guard for an open span; records the elapsed wall time when dropped.
pub struct SpanGuard(Option<OpenSpan>);

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(open) = self.0.take() else { return };
        let elapsed = open.started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        if let Some(name) = &open.traced_name {
            // Balanced with the `B` from open even if collection was
            // toggled meanwhile (the store drops it once cleared).
            crate::trace::emit_end(name);
        }
        let Some(open_node) = open.node else { return };
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Normally the top of the stack; tolerate out-of-order drops.
            if let Some(pos) = stack.iter().rposition(|&i| i == open_node) {
                stack.remove(pos);
            }
        });
        let mut tree = TREE.lock().unwrap_or_else(|p| p.into_inner());
        // A reset between open and close invalidates the index; drop the
        // sample rather than attributing it to an unrelated node.
        let Some(node) = tree.nodes.get_mut(open_node) else {
            return;
        };
        node.calls += 1;
        node.total_ns += elapsed;
        node.min_ns = node.min_ns.min(elapsed);
        node.max_ns = node.max_ns.max(elapsed);
    }
}

/// Immutable snapshot of one span-tree node.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanSnapshot {
    /// Span name.
    pub name: String,
    /// Completed calls aggregated into this node.
    pub calls: u64,
    /// Total wall time across calls, nanoseconds.
    pub total_ns: u64,
    /// Shortest single call, nanoseconds.
    pub min_ns: u64,
    /// Longest single call, nanoseconds.
    pub max_ns: u64,
    /// Child spans in first-opened order.
    pub children: Vec<SpanSnapshot>,
}

impl SpanSnapshot {
    /// Finds a direct child by name.
    pub fn child(&self, name: &str) -> Option<&SpanSnapshot> {
        self.children.iter().find(|c| c.name == name)
    }

    /// Depth-first search for a descendant (or self) by name.
    pub fn find(&self, name: &str) -> Option<&SpanSnapshot> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }
}

fn snapshot_node(tree: &Tree, idx: usize) -> SpanSnapshot {
    let n = &tree.nodes[idx];
    SpanSnapshot {
        name: n.name.clone(),
        calls: n.calls,
        total_ns: n.total_ns,
        min_ns: if n.calls == 0 { 0 } else { n.min_ns },
        max_ns: n.max_ns,
        children: n.children.iter().map(|&c| snapshot_node(tree, c)).collect(),
    }
}

/// Snapshot of the whole span forest (one tree per root span). Nodes
/// with zero completed calls (still open) are included with their
/// children so partial captures stay structurally truthful.
pub fn snapshot() -> Vec<SpanSnapshot> {
    let tree = TREE.lock().unwrap_or_else(|p| p.into_inner());
    tree.roots
        .iter()
        .map(|&r| snapshot_node(&tree, r))
        .collect()
}

/// Clears the span tree (open guards of the old tree become no-ops).
pub(crate) fn reset() {
    let mut tree = TREE.lock().unwrap_or_else(|p| p.into_inner());
    tree.nodes.clear();
    tree.roots.clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testlock;

    #[test]
    fn nesting_and_aggregation() {
        let _l = testlock::hold();
        crate::set_enabled(true);
        for _ in 0..3 {
            let _a = span("outer");
            let _b = span("inner");
        }
        crate::set_enabled(false);
        let roots = snapshot();
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].name, "outer");
        assert_eq!(roots[0].calls, 3);
        assert_eq!(roots[0].children.len(), 1);
        assert_eq!(roots[0].children[0].name, "inner");
        assert_eq!(roots[0].children[0].calls, 3);
        assert!(roots[0].min_ns <= roots[0].max_ns);
        assert!(roots[0].total_ns >= roots[0].children[0].total_ns);
    }

    #[test]
    fn siblings_do_not_merge_across_parents() {
        let _l = testlock::hold();
        crate::set_enabled(true);
        {
            let _a = span("a");
            let _x = span("x");
        }
        {
            let _b = span("b");
            let _x = span("x");
        }
        crate::set_enabled(false);
        let roots = snapshot();
        assert_eq!(roots.len(), 2);
        assert_eq!(roots[0].child("x").unwrap().calls, 1);
        assert_eq!(roots[1].child("x").unwrap().calls, 1);
    }

    #[test]
    fn find_descends_depth_first() {
        let _l = testlock::hold();
        crate::set_enabled(true);
        {
            let _a = span("root");
            let _b = span("mid");
            let _c = span("leaf");
        }
        crate::set_enabled(false);
        let roots = snapshot();
        assert_eq!(roots[0].find("leaf").unwrap().calls, 1);
        assert!(roots[0].find("absent").is_none());
    }

    #[test]
    fn guard_survives_reset_between_open_and_close() {
        let _l = testlock::hold();
        crate::set_enabled(true);
        let g = span("doomed");
        reset();
        drop(g); // must not panic or corrupt the fresh tree
        crate::set_enabled(false);
        assert!(snapshot().is_empty());
    }
}
