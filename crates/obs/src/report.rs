//! Snapshot + rendering: span tree, metrics, and solver traces as one
//! report, exportable as JSON (machines) or indented text (humans).
//!
//! # JSON schema (version 2)
//!
//! ```text
//! {
//!   "version": 2,
//!   "spans": [SPAN...],            // root spans, in first-opened order
//!   "metrics": {
//!     "counters":   {"name": u64, ...},
//!     "gauges":     {"name": f64, ...},
//!     "histograms": {"name": {"count","sum","min","max","p50","p99",
//!                             "buckets":[{"le": f64, "count": u64}]}, ...}
//!   },
//!   "solves": [{"solver","converged","iterations_total","rows_touched",
//!               "final_objective","dropped_samples",
//!               "iterations":[{"i","objective","grad_norm","step","rows"}],
//!               "rounds":[{"round","ratio","rows","change","objective",
//!                          "inner_iterations"}]}]
//! }
//! SPAN = {"name","calls","total_ns","min_ns","max_ns","children":[SPAN...]}
//! ```
//!
//! Non-finite floats serialize as `null`.
//!
//! Version history: v1 histograms dropped *all* empty buckets, so the
//! JSON bucket list could disagree with the text renderer's bucket
//! count. v2 buckets are the contiguous first-to-last non-empty range
//! (interior zeros included) shared by every renderer — see
//! [`crate::metrics::HistogramSnapshot::buckets`].

use crate::json::JsonWriter;
use crate::metrics::MetricsSnapshot;
use crate::span::SpanSnapshot;
use crate::telemetry::SolveTrace;
use std::fmt::Write as _;

/// JSON schema version emitted by [`ProfileReport::to_json`].
pub const SCHEMA_VERSION: u64 = 2;

/// One captured profile: everything recorded since the last reset.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// Root spans in first-opened order.
    pub spans: Vec<SpanSnapshot>,
    /// Metrics registry snapshot.
    pub metrics: MetricsSnapshot,
    /// Solver traces in begin order.
    pub solves: Vec<SolveTrace>,
}

impl ProfileReport {
    /// Captures the current state of all three stores.
    pub fn capture() -> Self {
        Self {
            spans: crate::span::snapshot(),
            metrics: crate::metrics::snapshot(),
            solves: crate::telemetry::snapshot(),
        }
    }

    /// Depth-first search across all root spans.
    pub fn find_span(&self, name: &str) -> Option<&SpanSnapshot> {
        self.spans.iter().find_map(|s| s.find(name))
    }

    /// Renders the version-2 JSON document.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.key("version");
        w.u64(SCHEMA_VERSION);
        w.key("spans");
        w.begin_arr();
        for s in &self.spans {
            write_span(&mut w, s);
        }
        w.end_arr();
        w.key("metrics");
        w.begin_obj();
        w.key("counters");
        w.begin_obj();
        for (name, v) in &self.metrics.counters {
            w.key(name);
            w.u64(*v);
        }
        w.end_obj();
        w.key("gauges");
        w.begin_obj();
        for (name, v) in &self.metrics.gauges {
            w.key(name);
            w.f64(*v);
        }
        w.end_obj();
        w.key("histograms");
        w.begin_obj();
        for h in &self.metrics.histograms {
            w.key(&h.name);
            w.begin_obj();
            w.key("count");
            w.u64(h.count);
            w.key("sum");
            w.f64(h.sum);
            w.key("min");
            w.f64(h.min);
            w.key("max");
            w.f64(h.max);
            w.key("p50");
            w.opt_f64(h.quantile(0.50));
            w.key("p99");
            w.opt_f64(h.quantile(0.99));
            w.key("buckets");
            w.begin_arr();
            for (le, count) in &h.buckets {
                w.begin_obj();
                w.key("le");
                w.f64(*le);
                w.key("count");
                w.u64(*count);
                w.end_obj();
            }
            w.end_arr();
            w.end_obj();
        }
        w.end_obj();
        w.end_obj();
        w.key("solves");
        w.begin_arr();
        for t in &self.solves {
            w.begin_obj();
            w.key("solver");
            w.str(&t.solver);
            w.key("converged");
            match t.converged {
                Some(c) => w.bool(c),
                None => w.null(),
            }
            w.key("iterations_total");
            w.u64(t.total_iterations);
            w.key("rows_touched");
            w.u64(t.rows_touched);
            w.key("final_objective");
            w.opt_f64(t.final_objective);
            w.key("dropped_samples");
            w.u64(t.dropped_samples);
            w.key("iterations");
            w.begin_arr();
            for s in &t.iterations {
                w.begin_obj();
                w.key("i");
                w.u64(s.iteration);
                w.key("objective");
                w.opt_f64(s.objective);
                w.key("grad_norm");
                w.f64(s.grad_norm);
                w.key("step");
                w.f64(s.step);
                w.key("rows");
                w.u64(s.rows);
                w.end_obj();
            }
            w.end_arr();
            w.key("rounds");
            w.begin_arr();
            for r in &t.rounds {
                w.begin_obj();
                w.key("round");
                w.u64(r.round);
                w.key("ratio");
                w.f64(r.ratio);
                w.key("rows");
                w.u64(r.rows);
                w.key("change");
                w.f64(r.change);
                w.key("objective");
                w.f64(r.objective);
                w.key("inner_iterations");
                w.u64(r.inner_iterations);
                w.end_obj();
            }
            w.end_arr();
            w.end_obj();
        }
        w.end_arr();
        w.end_obj();
        w.finish()
    }

    /// Renders an indented human-readable profile.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        out.push_str("profile\n=======\nspans:\n");
        if self.spans.is_empty() {
            out.push_str("  (none recorded)\n");
        }
        for s in &self.spans {
            pretty_span(&mut out, s, 1);
        }
        if !self.metrics.counters.is_empty()
            || !self.metrics.gauges.is_empty()
            || !self.metrics.histograms.is_empty()
        {
            out.push_str("metrics:\n");
            for (name, v) in &self.metrics.counters {
                let _ = writeln!(out, "  {name} = {v}");
            }
            for (name, v) in &self.metrics.gauges {
                let _ = writeln!(out, "  {name} = {v:.4}");
            }
            for h in &self.metrics.histograms {
                let mean = if h.count > 0 {
                    h.sum / h.count as f64
                } else {
                    0.0
                };
                let _ = writeln!(
                    out,
                    "  {} : n={} mean={:.4} min={:.4} p50~{:.4} p99~{:.4} max={:.4} ({} buckets)",
                    h.name,
                    h.count,
                    mean,
                    h.min,
                    h.quantile(0.50).unwrap_or(0.0),
                    h.quantile(0.99).unwrap_or(0.0),
                    h.max,
                    h.buckets.len()
                );
            }
        }
        if !self.solves.is_empty() {
            out.push_str("solves:\n");
            for t in &self.solves {
                let _ = writeln!(
                    out,
                    "  {} : iters={} rows={} converged={} obj={}",
                    t.solver,
                    t.total_iterations,
                    t.rows_touched,
                    t.converged.map_or("?".into(), |c| c.to_string()),
                    t.final_objective.map_or("?".into(), |o| format!("{o:.4e}")),
                );
                for r in &t.rounds {
                    let _ = writeln!(
                        out,
                        "    round {}: ratio={:.5} rows={} change={:.3} obj={:.4e} inner={}",
                        r.round, r.ratio, r.rows, r.change, r.objective, r.inner_iterations
                    );
                }
                if t.dropped_samples > 0 {
                    let _ = writeln!(
                        out,
                        "    ({} iteration samples dropped past cap)",
                        t.dropped_samples
                    );
                }
            }
        }
        out
    }
}

fn write_span(w: &mut JsonWriter, s: &SpanSnapshot) {
    w.begin_obj();
    w.key("name");
    w.str(&s.name);
    w.key("calls");
    w.u64(s.calls);
    w.key("total_ns");
    w.u64(s.total_ns);
    w.key("min_ns");
    w.u64(s.min_ns);
    w.key("max_ns");
    w.u64(s.max_ns);
    w.key("children");
    w.begin_arr();
    for c in &s.children {
        write_span(w, c);
    }
    w.end_arr();
    w.end_obj();
}

fn pretty_span(out: &mut String, s: &SpanSnapshot, depth: usize) {
    let ms = s.total_ns as f64 / 1e6;
    let _ = writeln!(
        out,
        "{:indent$}{} : {:.3} ms over {} call{}",
        "",
        s.name,
        ms,
        s.calls,
        if s.calls == 1 { "" } else { "s" },
        indent = depth * 2
    );
    for c in &s.children {
        pretty_span(out, c, depth + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testlock;

    fn record_fixture() {
        crate::set_enabled(true);
        {
            let _root = crate::span("mgba");
            let _sel = crate::span("select");
        }
        crate::counter_add("paths", 7);
        crate::gauge_set("wns_ps", -120.5);
        crate::observe("slack_ps", 33.0);
        crate::telemetry::solve_begin("SCG + RS");
        crate::telemetry::record_iteration(0, Some(9.0), 1.0, 0.02, 20);
        crate::telemetry::record_round(0.01, 10, f64::INFINITY, 9.0, 1);
        crate::telemetry::solve_end(true, 1, 20, Some(9.0));
        crate::set_enabled(false);
    }

    #[test]
    fn json_contains_all_sections() {
        let _l = testlock::hold();
        record_fixture();
        let json = ProfileReport::capture().to_json();
        assert!(json.starts_with("{\"version\":2,"));
        assert!(json.contains("\"name\":\"mgba\""));
        assert!(json.contains("\"name\":\"select\""));
        assert!(json.contains("\"paths\":7"));
        assert!(json.contains("\"wns_ps\":-120.5"));
        assert!(json.contains("\"slack_ps\":{\"count\":1"));
        assert!(json.contains("\"solver\":\"SCG + RS\""));
        // Non-finite round change serializes as null, not Infinity.
        assert!(json.contains("\"change\":null"));
        assert!(!json.contains("inf"));
        // Balanced braces/brackets (cheap well-formedness check; the
        // string contains no braces outside structure).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn pretty_lists_spans_metrics_solves() {
        let _l = testlock::hold();
        record_fixture();
        let text = ProfileReport::capture().to_pretty();
        assert!(text.contains("mgba"));
        assert!(text.contains("  paths = 7"));
        assert!(text.contains("SCG + RS"));
        assert!(text.contains("round 0"));
    }

    #[test]
    fn renderers_agree_on_histogram_buckets() {
        let _l = testlock::hold();
        crate::set_enabled(true);
        // Same fixture as the metrics golden test: a gap between two
        // occupied buckets. Both renderers must show the contiguous
        // 4-bucket range — v1 dropped the two interior zeros from JSON
        // while the text renderer counted them.
        crate::observe("gap", 1.0);
        crate::observe("gap", 5.0);
        crate::set_enabled(false);
        let r = ProfileReport::capture();
        let json = r.to_json();
        assert!(
            json.contains(
                "\"buckets\":[{\"le\":1.0,\"count\":1},{\"le\":2.0,\"count\":0},\
                 {\"le\":4.0,\"count\":0},{\"le\":8.0,\"count\":1}]"
            ),
            "JSON bucket list must be the contiguous range: {json}"
        );
        assert!(
            r.to_pretty().contains("(4 buckets)"),
            "text renderer must count the same 4 buckets"
        );
    }

    #[test]
    fn find_span_descends() {
        let _l = testlock::hold();
        record_fixture();
        let r = ProfileReport::capture();
        assert!(r.find_span("select").is_some());
        assert!(r.find_span("missing").is_none());
    }
}
