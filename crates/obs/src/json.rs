//! Hand-rolled JSON emission (the crate is deliberately dependency-free;
//! the workspace's serde shim is not pulled in here).
//!
//! [`JsonWriter`] is public because other dependency-free layers (most
//! notably the `server` crate's request/response protocol) emit the same
//! dialect: shortest-round-trip floats, non-finite numbers as `null`,
//! and full control-character escaping.

/// Minimal JSON string builder. The caller drives structure; the
/// builder handles commas, escaping, and number validity.
pub struct JsonWriter {
    out: String,
    /// Whether the current container already has an element (one flag
    /// per open container).
    first: Vec<bool>,
}

impl Default for JsonWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl JsonWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self {
            out: String::new(),
            first: vec![true],
        }
    }

    fn sep(&mut self) {
        if let Some(first) = self.first.last_mut() {
            if *first {
                *first = false;
            } else {
                self.out.push(',');
            }
        }
    }

    /// Opens an object (`{`).
    pub fn begin_obj(&mut self) {
        self.sep();
        self.out.push('{');
        self.first.push(true);
    }

    /// Closes the innermost object (`}`).
    pub fn end_obj(&mut self) {
        self.out.push('}');
        self.first.pop();
    }

    /// Opens an array (`[`).
    pub fn begin_arr(&mut self) {
        self.sep();
        self.out.push('[');
        self.first.push(true);
    }

    /// Closes the innermost array (`]`).
    pub fn end_arr(&mut self) {
        self.out.push(']');
        self.first.pop();
    }

    /// Writes `"key":` (must be inside an object, before a value call).
    pub fn key(&mut self, k: &str) {
        self.sep();
        self.out.push('"');
        escape_into(k, &mut self.out);
        self.out.push_str("\":");
        // The upcoming value must not emit a separator of its own.
        if let Some(first) = self.first.last_mut() {
            *first = true;
        }
    }

    /// Writes a string value.
    pub fn str(&mut self, v: &str) {
        self.sep();
        self.out.push('"');
        escape_into(v, &mut self.out);
        self.out.push('"');
    }

    /// Writes an unsigned integer value.
    pub fn u64(&mut self, v: u64) {
        self.sep();
        self.out.push_str(&v.to_string());
    }

    /// Writes a boolean value.
    pub fn bool(&mut self, v: bool) {
        self.sep();
        self.out.push_str(if v { "true" } else { "false" });
    }

    /// Writes a `null` value.
    pub fn null(&mut self) {
        self.sep();
        self.out.push_str("null");
    }

    /// Finite floats as shortest round-trip decimals; non-finite as
    /// `null` (JSON has no NaN/Infinity).
    pub fn f64(&mut self, v: f64) {
        if !v.is_finite() {
            self.null();
            return;
        }
        self.sep();
        self.out.push_str(&format!("{v:?}"));
    }

    /// Optional float: `null` when absent or non-finite.
    pub fn opt_f64(&mut self, v: Option<f64>) {
        match v {
            Some(x) => self.f64(x),
            None => self.null(),
        }
    }

    /// Splices pre-rendered JSON in as one value. The caller guarantees
    /// `json` is a single well-formed JSON value; the writer only
    /// handles the surrounding separator.
    pub fn raw(&mut self, json: &str) {
        self.sep();
        self.out.push_str(json);
    }

    /// Consumes the writer and returns the rendered document.
    pub fn finish(self) -> String {
        self.out
    }
}

fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_nested_structures() {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.key("name");
        w.str("a\"b");
        w.key("vals");
        w.begin_arr();
        w.u64(1);
        w.f64(2.5);
        w.f64(f64::NAN);
        w.bool(true);
        w.null();
        w.end_arr();
        w.key("obj");
        w.begin_obj();
        w.key("n");
        w.opt_f64(None);
        w.end_obj();
        w.end_obj();
        assert_eq!(
            w.finish(),
            r#"{"name":"a\"b","vals":[1,2.5,null,true,null],"obj":{"n":null}}"#
        );
    }

    #[test]
    fn escapes_control_characters() {
        let mut w = JsonWriter::new();
        w.str("line\nbreak\u{1}");
        assert_eq!(w.finish(), "\"line\\nbreak\\u0001\"");
    }

    #[test]
    fn floats_round_trip_shortest() {
        let mut w = JsonWriter::new();
        w.begin_arr();
        w.f64(0.02);
        w.f64(1e-5);
        w.f64(-3.0);
        w.end_arr();
        assert_eq!(w.finish(), "[0.02,1e-5,-3.0]");
    }

    #[test]
    fn raw_splices_with_separators() {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.key("a");
        w.raw("{\"x\":1}");
        w.key("b");
        w.u64(2);
        w.end_obj();
        assert_eq!(w.finish(), r#"{"a":{"x":1},"b":2}"#);
    }
}
