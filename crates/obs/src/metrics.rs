//! Named metrics: counters, gauges, and log₂-bucket histograms.
//!
//! The registry is a flat name → metric map. Names are dotted paths by
//! convention (`"sta.pba.paths"`); the first operation on a name fixes
//! its kind, and later operations of a different kind are ignored (they
//! must not panic inside instrumented library code).

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Number of histogram buckets. Bucket `i` counts values in
/// `(2^(i-1+HIST_MIN_EXP), 2^(i+HIST_MIN_EXP)]`; the first bucket also
/// absorbs every value ≤ its upper bound (including zero and negatives).
pub const HIST_BUCKETS: usize = 64;

/// Exponent of the first bucket's upper bound: bucket 0 is
/// `(-∞, 2^HIST_MIN_EXP]`. With 64 buckets the top covers up to 2⁴⁷ —
/// wide enough for nanosecond durations and row counts alike.
pub const HIST_MIN_EXP: i32 = -16;

#[derive(Debug, Clone)]
struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    fn new() -> Self {
        Self {
            buckets: vec![0; HIST_BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn observe(&mut self, v: f64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }
}

/// Fixed log₂ bucketing: values ≤ 2^HIST_MIN_EXP land in bucket 0,
/// values beyond the last boundary in the last bucket.
fn bucket_index(v: f64) -> usize {
    if !v.is_finite() || v <= 0.0 {
        return 0;
    }
    let exp = v.log2().ceil() as i64;
    (exp - HIST_MIN_EXP as i64).clamp(0, HIST_BUCKETS as i64 - 1) as usize
}

/// Upper bound (`le`) of bucket `i`. The last bucket is the overflow
/// bucket with an infinite bound (serialized as `null` in JSON).
fn bucket_le(i: usize) -> f64 {
    if i == HIST_BUCKETS - 1 {
        f64::INFINITY
    } else {
        (2.0f64).powi(HIST_MIN_EXP + i as i32)
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(u64),
    Gauge(f64),
    Hist(Histogram),
}

static REGISTRY: Mutex<BTreeMap<String, Metric>> = Mutex::new(BTreeMap::new());

/// Adds `by` to the counter `name`. No-op when recording is disabled or
/// `name` is already a different metric kind.
pub fn counter_add(name: &str, by: u64) {
    if !crate::enabled() {
        return;
    }
    let mut reg = REGISTRY.lock().unwrap_or_else(|p| p.into_inner());
    if let Metric::Counter(c) = reg.entry(name.to_owned()).or_insert(Metric::Counter(0)) {
        *c += by;
    }
}

/// Sets the gauge `name` to `v` (last write wins). No-op when recording
/// is disabled or `name` is already a different metric kind.
pub fn gauge_set(name: &str, v: f64) {
    if !crate::enabled() {
        return;
    }
    let mut reg = REGISTRY.lock().unwrap_or_else(|p| p.into_inner());
    if let Metric::Gauge(g) = reg.entry(name.to_owned()).or_insert(Metric::Gauge(v)) {
        *g = v;
    }
}

/// Records `v` into the histogram `name`. No-op when recording is
/// disabled or `name` is already a different metric kind.
pub fn observe(name: &str, v: f64) {
    if !crate::enabled() {
        return;
    }
    let mut reg = REGISTRY.lock().unwrap_or_else(|p| p.into_inner());
    if let Metric::Hist(h) = reg
        .entry(name.to_owned())
        .or_insert_with(|| Metric::Hist(Histogram::new()))
    {
        h.observe(v);
    }
}

/// Snapshot of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Observations recorded.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Smallest observed value (`+∞` when empty).
    pub min: f64,
    /// Largest observed value (`-∞` when empty).
    pub max: f64,
    /// Buckets as `(upper_bound, count)` in ascending order, covering
    /// the **contiguous** range from the first to the last non-empty
    /// bucket. Interior empty buckets are included (count 0); only
    /// leading and trailing empty buckets are trimmed. Every renderer —
    /// JSON, pretty text, Prometheus exposition — consumes this same
    /// range, so bucket counts agree across formats (pinned by a golden
    /// test).
    pub buckets: Vec<(f64, u64)>,
}

/// Snapshot of the whole metrics registry, names sorted.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values.
    pub counters: Vec<(String, u64)>,
    /// Gauge values.
    pub gauges: Vec<(String, f64)>,
    /// Histograms.
    pub histograms: Vec<HistogramSnapshot>,
}

impl HistogramSnapshot {
    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) from the log₂ buckets:
    /// the upper bound of the first bucket whose cumulative count reaches
    /// `q · count`, clamped to the observed `[min, max]` range. Returns
    /// `None` for an empty histogram.
    ///
    /// The estimate is bucket-resolution coarse (a factor-of-two bound),
    /// which is exactly what latency reporting needs: p50/p99 within one
    /// power of two, with the true extremes preserved by the clamp.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for &(le, c) in &self.buckets {
            seen += c;
            if seen >= target {
                return Some(le.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }
}

impl MetricsSnapshot {
    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Looks up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }
}

/// Captures the registry.
pub fn snapshot() -> MetricsSnapshot {
    let reg = REGISTRY.lock().unwrap_or_else(|p| p.into_inner());
    let mut out = MetricsSnapshot::default();
    for (name, metric) in reg.iter() {
        match metric {
            Metric::Counter(c) => out.counters.push((name.clone(), *c)),
            Metric::Gauge(g) => out.gauges.push((name.clone(), *g)),
            Metric::Hist(h) => out.histograms.push(HistogramSnapshot {
                name: name.clone(),
                count: h.count,
                sum: h.sum,
                min: h.min,
                max: h.max,
                // Trim leading/trailing empty buckets only; keep the
                // interior contiguous so every renderer sees one range.
                buckets: match (
                    h.buckets.iter().position(|&c| c > 0),
                    h.buckets.iter().rposition(|&c| c > 0),
                ) {
                    (Some(first), Some(last)) => (first..=last)
                        .map(|i| (bucket_le(i), h.buckets[i]))
                        .collect(),
                    _ => Vec::new(),
                },
            }),
        }
    }
    out
}

/// Clears the registry.
pub(crate) fn reset() {
    REGISTRY.lock().unwrap_or_else(|p| p.into_inner()).clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testlock;

    #[test]
    fn bucket_boundaries_are_log2() {
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-5.0), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
        // 1.0 = 2^0 → le boundary 2^0 → bucket index -HIST_MIN_EXP.
        assert_eq!(bucket_index(1.0), (-HIST_MIN_EXP) as usize);
        assert_eq!(bucket_index(1.5), (-HIST_MIN_EXP) as usize + 1);
        assert_eq!(bucket_index(2.0), (-HIST_MIN_EXP) as usize + 1);
        assert_eq!(bucket_index(f64::MAX), HIST_BUCKETS - 1);
        // Every value lands at or below its bucket's upper bound.
        for v in [1e-9, 0.02, 1.0, 3.7, 1e6, 1e30] {
            let i = bucket_index(v);
            assert!(v <= bucket_le(i), "{v} > le {}", bucket_le(i));
            if i > 0 {
                assert!(v > bucket_le(i - 1), "{v} ≤ prior le {}", bucket_le(i - 1));
            }
        }
    }

    #[test]
    fn counters_gauges_histograms_record_and_snapshot() {
        let _l = testlock::hold();
        crate::set_enabled(true);
        counter_add("c.x", 2);
        counter_add("c.x", 3);
        gauge_set("g.y", 1.5);
        gauge_set("g.y", 2.5);
        observe("h.z", 1.0);
        observe("h.z", 100.0);
        crate::set_enabled(false);
        let s = snapshot();
        assert_eq!(s.counter("c.x"), Some(5));
        assert_eq!(s.gauge("g.y"), Some(2.5));
        let h = s.histogram("h.z").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 101.0);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 100.0);
        assert_eq!(h.buckets.iter().map(|(_, c)| c).sum::<u64>(), 2);
    }

    #[test]
    fn kind_mismatch_is_ignored_not_fatal() {
        let _l = testlock::hold();
        crate::set_enabled(true);
        counter_add("mixed", 1);
        gauge_set("mixed", 9.0);
        observe("mixed", 9.0);
        crate::set_enabled(false);
        let s = snapshot();
        assert_eq!(s.counter("mixed"), Some(1));
        assert_eq!(s.gauge("mixed"), None);
        assert!(s.histogram("mixed").is_none());
    }

    #[test]
    fn quantiles_track_bucket_bounds() {
        let _l = testlock::hold();
        crate::set_enabled(true);
        // 99 fast observations and one slow outlier: p50 stays in the
        // fast band, p99 reaches the outlier's bucket.
        for _ in 0..99 {
            observe("q", 10.0);
        }
        observe("q", 5000.0);
        crate::set_enabled(false);
        let s = snapshot();
        let h = s.histogram("q").unwrap();
        let p50 = h.quantile(0.50).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        assert!((10.0..=16.0).contains(&p50), "p50 = {p50}");
        assert!(p50 <= p99);
        assert!((10.0..=5000.0).contains(&p99), "p99 = {p99}");
        assert_eq!(h.quantile(1.0), Some(5000.0));
        // Empty histogram has no quantiles.
        assert!(s.histogram("absent").is_none());
    }

    #[test]
    fn bucket_trimming_keeps_contiguous_interior() {
        let _l = testlock::hold();
        crate::set_enabled(true);
        // 1.0 lands at le=1 (bucket 16), 5.0 at le=8 (bucket 19): the
        // snapshot must keep the empty le=2 and le=4 buckets between
        // them, and trim everything outside [le=1, le=8].
        observe("golden", 1.0);
        observe("golden", 5.0);
        crate::set_enabled(false);
        let s = snapshot();
        let h = s.histogram("golden").unwrap();
        assert_eq!(
            h.buckets,
            vec![(1.0, 1), (2.0, 0), (4.0, 0), (8.0, 1)],
            "contiguous range from first to last non-empty bucket"
        );
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 6.0);
    }

    #[test]
    fn disabled_records_nothing() {
        let _l = testlock::hold();
        counter_add("off", 1);
        observe("off.h", 1.0);
        assert!(snapshot().counters.is_empty());
        assert!(snapshot().histograms.is_empty());
    }
}
