//! Per-solve telemetry: iteration traces and Algorithm 1 rounds.
//!
//! Each solver run opens a trace with [`solve_begin`], streams
//! [`record_iteration`] / [`record_round`] samples into it, and closes
//! it with [`solve_end`]. Traces nest: Algorithm 1's outer trace stays
//! open while each doubling round's inner SCG solve records its own
//! trace (a per-thread stack tracks the innermost open trace, mirroring
//! how spans nest).

use std::cell::RefCell;
use std::sync::Mutex;

/// Cap on stored per-iteration samples per trace. Beyond it samples are
/// counted in [`SolveTrace::dropped_samples`] instead of stored — never
/// silently: the report surfaces the drop count.
pub const MAX_ITERATION_SAMPLES: usize = 65_536;

/// One solver iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationSample {
    /// Iteration number within the solve (0-based).
    pub iteration: u64,
    /// Exact or probe objective, when the solver computed one this
    /// iteration (solvers only evaluate it at check windows).
    pub objective: Option<f64>,
    /// Norm of the (sampled or full) gradient / residual driving the step.
    pub grad_norm: f64,
    /// Step size taken.
    pub step: f64,
    /// Row-gradient evaluations consumed by this iteration.
    pub rows: u64,
}

/// One ratio-doubling round of Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundSample {
    /// Round number (0-based).
    pub round: u64,
    /// Row-selection ratio.
    pub ratio: f64,
    /// Rows in the reduced problem.
    pub rows: u64,
    /// Relative solution change vs. the previous round.
    pub change: f64,
    /// Full-problem objective estimate after the round.
    pub objective: f64,
    /// Inner SCG iterations.
    pub inner_iterations: u64,
}

/// Telemetry of one solver run.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveTrace {
    /// Solver display name (paper naming: `"SCG + RS"`, …).
    pub solver: String,
    /// Per-iteration samples (capped at [`MAX_ITERATION_SAMPLES`]).
    pub iterations: Vec<IterationSample>,
    /// Algorithm 1 doubling rounds (empty for inner/plain solvers).
    pub rounds: Vec<RoundSample>,
    /// Samples not stored because the cap was hit.
    pub dropped_samples: u64,
    /// Whether the solver reported convergence (`None` while open).
    pub converged: Option<bool>,
    /// Total iterations reported at close.
    pub total_iterations: u64,
    /// Total row-gradient evaluations reported at close.
    pub rows_touched: u64,
    /// Final objective reported at close.
    pub final_objective: Option<f64>,
}

static STORE: Mutex<Vec<SolveTrace>> = Mutex::new(Vec::new());

thread_local! {
    /// Indices of this thread's open traces, innermost last.
    static ACTIVE: RefCell<Vec<usize>> = const { RefCell::new(Vec::new()) };
}

/// Opens a trace for a solver run. No-op when recording is disabled.
pub fn solve_begin(solver: &str) {
    if !crate::enabled() {
        return;
    }
    let idx = {
        let mut store = STORE.lock().unwrap_or_else(|p| p.into_inner());
        store.push(SolveTrace {
            solver: solver.to_owned(),
            iterations: Vec::new(),
            rounds: Vec::new(),
            dropped_samples: 0,
            converged: None,
            total_iterations: 0,
            rows_touched: 0,
            final_objective: None,
        });
        store.len() - 1
    };
    ACTIVE.with(|a| a.borrow_mut().push(idx));
}

/// Runs `f` on the innermost open trace, if recording is live and a
/// trace is open on this thread.
fn with_current(f: impl FnOnce(&mut SolveTrace)) {
    if !crate::enabled() {
        return;
    }
    let Some(idx) = ACTIVE.with(|a| a.borrow().last().copied()) else {
        return;
    };
    let mut store = STORE.lock().unwrap_or_else(|p| p.into_inner());
    // A reset between begin and end invalidates the index.
    if let Some(trace) = store.get_mut(idx) {
        f(trace);
    }
}

/// Streams one iteration sample into the innermost open trace.
pub fn record_iteration(
    iteration: u64,
    objective: Option<f64>,
    grad_norm: f64,
    step: f64,
    rows: u64,
) {
    with_current(|t| {
        if t.iterations.len() >= MAX_ITERATION_SAMPLES {
            t.dropped_samples += 1;
            return;
        }
        t.iterations.push(IterationSample {
            iteration,
            objective,
            grad_norm,
            step,
            rows,
        });
    });
}

/// Streams one Algorithm 1 doubling-round sample into the innermost
/// open trace.
pub fn record_round(ratio: f64, rows: u64, change: f64, objective: f64, inner_iterations: u64) {
    with_current(|t| {
        let round = t.rounds.len() as u64;
        t.rounds.push(RoundSample {
            round,
            ratio,
            rows,
            change,
            objective,
            inner_iterations,
        });
    });
}

/// Closes the innermost open trace with the solve's summary. Must pair
/// with [`solve_begin`]; unbalanced calls are ignored.
pub fn solve_end(
    converged: bool,
    total_iterations: u64,
    rows_touched: u64,
    objective: Option<f64>,
) {
    if !crate::enabled() {
        // Still pop the stack if a trace was opened while enabled, so a
        // disable mid-solve cannot leave the stack unbalanced.
        ACTIVE.with(|a| {
            a.borrow_mut().pop();
        });
        return;
    }
    let Some(idx) = ACTIVE.with(|a| a.borrow_mut().pop()) else {
        return;
    };
    let mut store = STORE.lock().unwrap_or_else(|p| p.into_inner());
    if let Some(trace) = store.get_mut(idx) {
        trace.converged = Some(converged);
        trace.total_iterations = total_iterations;
        trace.rows_touched = rows_touched;
        trace.final_objective = objective;
    }
}

/// Snapshot of every recorded solver trace, in begin order.
pub fn snapshot() -> Vec<SolveTrace> {
    STORE.lock().unwrap_or_else(|p| p.into_inner()).clone()
}

/// Clears all traces (open handles of the old store become no-ops).
pub(crate) fn reset() {
    STORE.lock().unwrap_or_else(|p| p.into_inner()).clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testlock;

    #[test]
    fn trace_records_iterations_and_summary() {
        let _l = testlock::hold();
        crate::set_enabled(true);
        solve_begin("GD + w/o RS");
        record_iteration(0, None, 3.0, 0.02, 400);
        record_iteration(1, Some(12.5), 2.0, 0.019, 400);
        solve_end(true, 2, 800, Some(12.5));
        crate::set_enabled(false);
        let traces = snapshot();
        assert_eq!(traces.len(), 1);
        let t = &traces[0];
        assert_eq!(t.solver, "GD + w/o RS");
        assert_eq!(t.iterations.len(), 2);
        assert_eq!(t.iterations[0].objective, None);
        assert_eq!(t.iterations[1].objective, Some(12.5));
        assert_eq!(t.converged, Some(true));
        assert_eq!(t.rows_touched, 800);
    }

    #[test]
    fn traces_nest_like_algorithm_1() {
        let _l = testlock::hold();
        crate::set_enabled(true);
        solve_begin("SCG + RS");
        for round in 0..2u64 {
            solve_begin("SCG + w/o RS");
            record_iteration(0, None, 1.0, 0.02, 4);
            solve_end(true, 1, 4, Some(1.0));
            record_round(0.01 * 2f64.powi(round as i32), 10, 0.5, 1.0, 1);
        }
        solve_end(true, 2, 8, Some(1.0));
        crate::set_enabled(false);
        let traces = snapshot();
        assert_eq!(traces.len(), 3);
        // Outer trace opened first, rounds landed on it, not the inners.
        assert_eq!(traces[0].solver, "SCG + RS");
        assert_eq!(traces[0].rounds.len(), 2);
        assert_eq!(traces[0].rounds[1].round, 1);
        assert!(traces[1].rounds.is_empty());
        assert_eq!(traces[1].iterations.len(), 1);
    }

    #[test]
    fn sample_cap_counts_drops() {
        let _l = testlock::hold();
        crate::set_enabled(true);
        solve_begin("S");
        for i in 0..(MAX_ITERATION_SAMPLES as u64 + 10) {
            record_iteration(i, None, 1.0, 0.1, 1);
        }
        solve_end(false, MAX_ITERATION_SAMPLES as u64 + 10, 0, None);
        crate::set_enabled(false);
        let t = &snapshot()[0];
        assert_eq!(t.iterations.len(), MAX_ITERATION_SAMPLES);
        assert_eq!(t.dropped_samples, 10);
    }

    #[test]
    fn unbalanced_end_is_ignored() {
        let _l = testlock::hold();
        crate::set_enabled(true);
        solve_end(true, 0, 0, None);
        record_iteration(0, None, 1.0, 0.1, 1);
        crate::set_enabled(false);
        assert!(snapshot().is_empty());
    }
}
