//! Streaming Chrome `trace_event` collection: every span open/close
//! becomes a `B`/`E` duration event loadable by `chrome://tracing` and
//! Perfetto.
//!
//! The span tree ([`crate::span()`]) *aggregates* — identically-named
//! spans collapse into one node — which is the right shape for summary
//! reports but loses the timeline. This store keeps the timeline:
//! individual begin/end events with microsecond timestamps relative to
//! a trace epoch, tagged with a small per-thread `tid`.
//!
//! Collection has its own switch ([`set_trace_enabled`]), independent of
//! the profiling flag: `--trace` works without `--profile` and vice
//! versa. Like every other `obs` store, recording only reads clocks and
//! the names it is handed — it never changes a computed result (the
//! integration suite extends the bit-identity test over this exporter).
//!
//! Timestamps within one thread are monotonic by construction: a thread
//! records its own events in program order, and each event's timestamp
//! is taken before the event is appended. Events are capped at
//! [`MAX_TRACE_EVENTS`]; overflow is counted, never silent.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Cap on stored trace events (B + E pairs count as two). A calibrate
/// run emits a few hundred; the cap guards a resident server traced for
/// hours.
pub const MAX_TRACE_EVENTS: usize = 1_048_576;

/// The phase of one trace event (Chrome `ph` field).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Duration begin (`"B"`).
    Begin,
    /// Duration end (`"E"`).
    End,
    /// Complete (`"X"`): a self-contained duration event carrying its
    /// own `dur`. Used for retroactive measurements (e.g. a queue wait
    /// only known at dequeue) that cannot be bracketed by `B`/`E`.
    Complete,
}

impl Phase {
    fn as_str(self) -> &'static str {
        match self {
            Phase::Begin => "B",
            Phase::End => "E",
            Phase::Complete => "X",
        }
    }
}

/// One collected trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Span name (`B` events; `E` events close the innermost open `B`
    /// on the same `tid`, so Chrome does not require a name there).
    pub name: Option<String>,
    /// Begin or end.
    pub phase: Phase,
    /// Microseconds since the trace epoch.
    pub ts_us: f64,
    /// Duration in microseconds (`X` events only).
    pub dur_us: Option<f64>,
    /// Small stable per-thread id (assigned in first-record order).
    pub tid: u64,
}

struct Store {
    epoch: Instant,
    events: Vec<TraceEvent>,
    dropped: u64,
}

/// Fast-path switch; mirrors the `Some`/`None` state of [`STORE`].
static TRACE_ENABLED: AtomicBool = AtomicBool::new(false);
static STORE: Mutex<Option<Store>> = Mutex::new(None);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// This thread's tid (0 = unassigned).
    static TID: Cell<u64> = const { Cell::new(0) };
}

fn thread_tid() -> u64 {
    TID.with(|t| {
        let mut id = t.get();
        if id == 0 {
            id = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            t.set(id);
        }
        id
    })
}

/// Whether trace collection is currently recording.
#[inline]
pub fn trace_enabled() -> bool {
    TRACE_ENABLED.load(Ordering::Relaxed)
}

/// Turns trace collection on or off. Enabling starts a fresh epoch when
/// no events have been collected yet; re-enabling after a pause keeps
/// the original epoch so timestamps stay on one timeline.
pub fn set_trace_enabled(on: bool) {
    let mut store = STORE.lock().unwrap_or_else(|p| p.into_inner());
    if on && store.is_none() {
        *store = Some(Store {
            epoch: Instant::now(),
            events: Vec::new(),
            dropped: 0,
        });
    }
    TRACE_ENABLED.store(on, Ordering::SeqCst);
}

fn record(phase: Phase, name: Option<&str>) {
    let mut store = STORE.lock().unwrap_or_else(|p| p.into_inner());
    let Some(store) = store.as_mut() else { return };
    if store.events.len() >= MAX_TRACE_EVENTS {
        store.dropped += 1;
        return;
    }
    let ts_us = store.epoch.elapsed().as_nanos() as f64 / 1e3;
    store.events.push(TraceEvent {
        name: name.map(str::to_owned),
        phase,
        ts_us,
        dur_us: None,
        tid: thread_tid(),
    });
}

/// Records a `B` event. Called by [`crate::span()`] at open; usable
/// directly for ad-hoc regions. No-op when collection is disabled.
pub fn emit_begin(name: &str) {
    if !trace_enabled() {
        return;
    }
    record(Phase::Begin, Some(name));
}

/// Records the matching `E` event. Emitted even if collection was
/// disabled between open and close, so `B`/`E` pairs stay balanced
/// within one enable window (the store ignores it once cleared).
pub fn emit_end(name: &str) {
    record(Phase::End, Some(name));
}

/// Records an `X` (complete) event that *started* at `start` and ran
/// for `dur`. The start may predate the trace epoch (e.g. a request
/// enqueued before `--trace` flipped on); its timestamp is then clamped
/// to the epoch. No-op when collection is disabled.
pub fn emit_complete(name: &str, start: Instant, dur: std::time::Duration) {
    if !trace_enabled() {
        return;
    }
    let mut store = STORE.lock().unwrap_or_else(|p| p.into_inner());
    let Some(store) = store.as_mut() else { return };
    if store.events.len() >= MAX_TRACE_EVENTS {
        store.dropped += 1;
        return;
    }
    let ts_us = start
        .checked_duration_since(store.epoch)
        .map_or(0.0, |d| d.as_nanos() as f64 / 1e3);
    store.events.push(TraceEvent {
        name: Some(name.to_owned()),
        phase: Phase::Complete,
        ts_us,
        dur_us: Some(dur.as_nanos() as f64 / 1e3),
        tid: thread_tid(),
    });
}

/// Snapshot of every collected event, in record order.
pub fn snapshot() -> Vec<TraceEvent> {
    STORE
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .as_ref()
        .map(|s| s.events.clone())
        .unwrap_or_default()
}

/// Events not stored because [`MAX_TRACE_EVENTS`] was hit.
pub fn dropped_events() -> u64 {
    STORE
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .as_ref()
        .map_or(0, |s| s.dropped)
}

/// Renders the collected events as a Chrome `trace_event` JSON array —
/// the "JSON Array Format" both `chrome://tracing` and Perfetto load
/// directly. Timestamps (`ts`) are microseconds; all events share
/// `pid` 1; `tid` is the per-thread id. Within each `tid`, `ts` is
/// monotonically non-decreasing.
pub fn export_json() -> String {
    let events = snapshot();
    let mut w = crate::json::JsonWriter::new();
    w.begin_arr();
    for e in &events {
        w.begin_obj();
        if let Some(name) = &e.name {
            w.key("name");
            w.str(name);
        }
        w.key("cat");
        w.str("mgba");
        w.key("ph");
        w.str(e.phase.as_str());
        w.key("ts");
        w.f64(e.ts_us);
        if let Some(dur) = e.dur_us {
            w.key("dur");
            w.f64(dur);
        }
        w.key("pid");
        w.u64(1);
        w.key("tid");
        w.u64(e.tid);
        w.end_obj();
    }
    w.end_arr();
    w.finish()
}

/// Clears collected events and the epoch. Does not change the enabled
/// flag; the next recording (or enable) starts a fresh epoch.
pub(crate) fn reset() {
    let mut store = STORE.lock().unwrap_or_else(|p| p.into_inner());
    if TRACE_ENABLED.load(Ordering::SeqCst) {
        *store = Some(Store {
            epoch: Instant::now(),
            events: Vec::new(),
            dropped: 0,
        });
    } else {
        *store = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testlock;

    #[test]
    fn disabled_records_nothing() {
        let _l = testlock::hold();
        emit_begin("quiet");
        emit_end("quiet");
        assert!(snapshot().is_empty());
        assert_eq!(export_json(), "[]");
    }

    #[test]
    fn span_integration_emits_balanced_pairs() {
        let _l = testlock::hold();
        set_trace_enabled(true);
        {
            let _a = crate::span("outer");
            let _b = crate::span("inner");
        }
        set_trace_enabled(false);
        let events = snapshot();
        // Note profiling stayed OFF: tracing alone drives the guards.
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].phase, Phase::Begin);
        assert_eq!(events[0].name.as_deref(), Some("outer"));
        assert_eq!(events[1].name.as_deref(), Some("inner"));
        // LIFO close order: inner E before outer E.
        assert_eq!(events[2].phase, Phase::End);
        assert_eq!(events[2].name.as_deref(), Some("inner"));
        assert_eq!(events[3].name.as_deref(), Some("outer"));
        // All on one thread, timestamps monotone.
        assert!(events.windows(2).all(|w| w[0].tid == w[1].tid));
        assert!(events.windows(2).all(|w| w[0].ts_us <= w[1].ts_us));
    }

    #[test]
    fn export_is_a_chrome_trace_array() {
        let _l = testlock::hold();
        set_trace_enabled(true);
        {
            let _s = crate::span("solve");
        }
        set_trace_enabled(false);
        let json = export_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains(r#""name":"solve""#));
        assert!(json.contains(r#""ph":"B""#));
        assert!(json.contains(r#""ph":"E""#));
        assert!(json.contains(r#""pid":1"#));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn timestamps_monotonic_per_tid_across_threads() {
        let _l = testlock::hold();
        set_trace_enabled(true);
        std::thread::scope(|scope| {
            for _ in 0..2 {
                scope.spawn(|| {
                    for _ in 0..20 {
                        let _s = crate::span("worker");
                    }
                });
            }
        });
        set_trace_enabled(false);
        let events = snapshot();
        assert_eq!(events.len(), 80);
        let mut last: std::collections::BTreeMap<u64, f64> = Default::default();
        for e in &events {
            let prev = last.entry(e.tid).or_insert(f64::NEG_INFINITY);
            assert!(e.ts_us >= *prev, "tid {} went backwards", e.tid);
            *prev = e.ts_us;
        }
        assert_eq!(last.len(), 2, "two worker tids");
    }

    #[test]
    fn complete_events_carry_duration_and_clamp_to_epoch() {
        let _l = testlock::hold();
        // A start captured before the epoch exists must clamp to ts=0.
        let early = Instant::now();
        set_trace_enabled(true);
        emit_complete("stage", early, std::time::Duration::from_micros(250));
        let later = Instant::now();
        emit_complete("stage2", later, std::time::Duration::from_micros(10));
        set_trace_enabled(false);
        let events = snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].phase, Phase::Complete);
        assert_eq!(events[0].ts_us, 0.0, "pre-epoch start clamps to zero");
        assert_eq!(events[0].dur_us, Some(250.0));
        assert!(events[1].ts_us >= 0.0);
        let json = export_json();
        assert!(json.contains(r#""ph":"X""#));
        assert!(json.contains(r#""dur":250.0"#));
    }

    #[test]
    fn reset_clears_events() {
        let _l = testlock::hold();
        set_trace_enabled(true);
        emit_begin("gone");
        emit_end("gone");
        crate::reset();
        assert!(snapshot().is_empty());
        // Still enabled: new events land on the fresh epoch.
        emit_begin("kept");
        set_trace_enabled(false);
        assert_eq!(snapshot().len(), 1);
    }

    #[test]
    fn event_cap_counts_drops() {
        let _l = testlock::hold();
        // Exercise the cap logic directly on a tiny window by filling
        // via the public API (full-size fill would be slow).
        set_trace_enabled(true);
        emit_begin("a");
        emit_end("a");
        assert_eq!(dropped_events(), 0);
        set_trace_enabled(false);
    }
}
