//! Zero-dependency observability for the mGBA workspace.
//!
//! The paper's value proposition is a *measured* trade: fit quality
//! against the runtime of path selection, row sampling, and the
//! stochastic solvers. This crate provides the instrumentation layer
//! that makes those measurements first-class:
//!
//! - **Timed spans** ([`span()`]) — hierarchical wall-clock accounting.
//!   Identically-named spans under the same parent aggregate (call
//!   count, total/min/max), so a hot function called 10⁴ times is one
//!   tree node, not 10⁴.
//! - **Metrics** ([`metrics`]) — named counters, gauges, and histograms
//!   with fixed log₂-scale buckets, aggregated process-wide.
//! - **Solver telemetry** ([`telemetry`]) — per-iteration traces
//!   (objective, gradient norm, step size, rows touched) for every
//!   solver run, plus Algorithm 1's ratio-doubling rounds.
//! - **Snapshots** ([`ProfileReport`]) — one call captures the span
//!   tree, metrics registry, and solver traces, renderable as JSON or
//!   indented text (the CLI's `--profile[=json]`).
//!
//! # Cost model
//!
//! Instrumentation is **off by default**. Every recording entry point
//! first checks one relaxed atomic bool ([`enabled`]) and returns
//! immediately when disabled — no allocation, no lock, no time query —
//! so instrumented hot paths stay within noise of uninstrumented code.
//! Crucially, recording only ever *reads* the values it is handed:
//! enabling observability never changes a computed result, an RNG
//! draw, or an iteration count. The integration suite asserts the
//! calibrate flow is bit-identical with instrumentation on and off.
//!
//! # Threading
//!
//! All stores are behind mutexes and safe to use from any thread. Span
//! parentage is tracked per thread: a span opened on a worker thread
//! roots its own tree on that thread (the workspace convention is to
//! open spans on the coordinating thread, around parallel regions).
//!
//! # Example
//!
//! ```
//! obs::set_enabled(true);
//! {
//!     let _outer = obs::span("solve");
//!     let _inner = obs::span("matvec");
//!     obs::counter_add("rows", 128);
//!     obs::observe("latency_ns", 425.0);
//! }
//! let report = obs::ProfileReport::capture();
//! assert_eq!(report.spans[0].name, "solve");
//! assert_eq!(report.spans[0].children[0].name, "matvec");
//! obs::set_enabled(false);
//! obs::reset();
//! ```

pub mod events;
pub mod json;
pub mod metrics;
pub mod prom;
pub mod report;
pub mod span;
pub mod telemetry;
pub mod trace;

use std::sync::atomic::{AtomicBool, Ordering};

pub use events::{log_enabled, set_log_enabled};
pub use metrics::{counter_add, gauge_set, observe, MetricsSnapshot};
pub use report::ProfileReport;
pub use span::{span, SpanGuard, SpanSnapshot};
pub use trace::{set_trace_enabled, trace_enabled};

/// Process-wide master switch. Relaxed loads keep the disabled path to a
/// single uncontended atomic read.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether instrumentation is currently recording.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns recording on or off. Spans opened while enabled finish
/// recording even if recording is disabled before they drop.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// Clears every collected span, metric, solver trace, trace event, and
/// logged event. Does not change the enabled flags.
pub fn reset() {
    span::reset();
    metrics::reset();
    telemetry::reset();
    trace::reset();
    events::reset();
}

#[cfg(test)]
pub(crate) mod testlock {
    use std::sync::{Mutex, MutexGuard};

    /// Serializes tests that touch the global stores. `cargo test` runs
    /// tests of one binary concurrently; the global registries would
    /// otherwise bleed between them.
    static LOCK: Mutex<()> = Mutex::new(());

    pub fn hold() -> MutexGuard<'static, ()> {
        let guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        crate::set_enabled(false);
        crate::set_trace_enabled(false);
        crate::set_log_enabled(false);
        crate::reset();
        guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_records_nothing() {
        let _l = testlock::hold();
        {
            let _s = span("nothing");
            counter_add("nothing", 1);
        }
        let r = ProfileReport::capture();
        assert!(r.spans.is_empty());
        assert!(r.metrics.counters.is_empty());
    }

    #[test]
    fn enable_disable_roundtrip() {
        let _l = testlock::hold();
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
    }

    #[test]
    fn reset_clears_all_stores() {
        let _l = testlock::hold();
        set_enabled(true);
        {
            let _s = span("a");
            counter_add("c", 2);
            telemetry::solve_begin("S");
            telemetry::solve_end(true, 1, 1, Some(0.5));
        }
        set_enabled(false);
        reset();
        let r = ProfileReport::capture();
        assert!(r.spans.is_empty());
        assert!(r.metrics.counters.is_empty());
        assert!(r.solves.is_empty());
    }
}
