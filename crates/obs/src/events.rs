//! Bounded structured event log: a process-wide ring buffer of typed
//! JSON events with severity, a monotonic sequence number, and optional
//! session/request attribution.
//!
//! Spans answer "where did the time go", metrics answer "how much" —
//! this store answers "what happened, in order": a design was loaded, a
//! calibration fell back a solver stage, a session was rebuilt after a
//! panic. The CLI writes the log to `--log FILE` as JSON lines; the
//! server keeps it resident for post-mortem inspection.
//!
//! Like every other `obs` store the log is **off by default**
//! ([`set_log_enabled`]) and recording only reads the values it is
//! handed, so enabling it never changes a computed result. The ring is
//! capped at [`MAX_EVENTS`]; overflow evicts the oldest event and is
//! counted, never silent.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Ring capacity: old events are evicted (and counted) past this.
pub const MAX_EVENTS: usize = 4096;

/// Event severity, ordered from chattiest to most urgent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Routine lifecycle notes (command started, snapshot written).
    Info,
    /// Something degraded but recoverable (solver fell back, retry).
    Warn,
    /// Something failed (request errored, session rebuilt after panic).
    Error,
}

impl Severity {
    /// The lowercase wire spelling (`"info"` / `"warn"` / `"error"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

/// One structured event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Monotonic sequence number, starting at 1; never reused within
    /// one enable window, so gaps after eviction are visible.
    pub seq: u64,
    /// Severity class.
    pub severity: Severity,
    /// Stable dotted event kind (`"server.session.rebuilt"`).
    pub kind: String,
    /// Session the event belongs to, when attributable.
    pub session: Option<String>,
    /// Admission-order request id, when the event came from a request.
    pub request_id: Option<u64>,
    /// Free-form `key=value` detail pairs, in insertion order.
    pub fields: Vec<(String, String)>,
}

struct Store {
    next_seq: u64,
    events: VecDeque<Event>,
    evicted: u64,
}

/// Fast-path switch; mirrors the `Some`/`None` state of [`STORE`].
static LOG_ENABLED: AtomicBool = AtomicBool::new(false);
static STORE: Mutex<Option<Store>> = Mutex::new(None);

/// Whether the event log is currently recording.
#[inline]
pub fn log_enabled() -> bool {
    LOG_ENABLED.load(Ordering::Relaxed)
}

/// Turns the event log on or off. Enabling starts sequence numbering at
/// 1 when the ring is empty; re-enabling keeps the existing sequence so
/// one process has one ordering.
pub fn set_log_enabled(on: bool) {
    let mut store = STORE.lock().unwrap_or_else(|p| p.into_inner());
    if on && store.is_none() {
        *store = Some(Store {
            next_seq: 1,
            events: VecDeque::new(),
            evicted: 0,
        });
    }
    LOG_ENABLED.store(on, Ordering::SeqCst);
}

/// Records one event. No-op when the log is disabled. `fields` are
/// `(key, value)` detail pairs kept in the order given.
pub fn emit(
    severity: Severity,
    kind: &str,
    session: Option<&str>,
    request_id: Option<u64>,
    fields: &[(&str, String)],
) {
    if !log_enabled() {
        return;
    }
    let mut store = STORE.lock().unwrap_or_else(|p| p.into_inner());
    let Some(store) = store.as_mut() else { return };
    let seq = store.next_seq;
    store.next_seq += 1;
    if store.events.len() >= MAX_EVENTS {
        store.events.pop_front();
        store.evicted += 1;
    }
    store.events.push_back(Event {
        seq,
        severity,
        kind: kind.to_owned(),
        session: session.map(str::to_owned),
        request_id,
        fields: fields
            .iter()
            .map(|(k, v)| ((*k).to_owned(), v.clone()))
            .collect(),
    });
}

/// Snapshot of the resident ring, oldest first.
pub fn snapshot() -> Vec<Event> {
    STORE
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .as_ref()
        .map(|s| s.events.iter().cloned().collect())
        .unwrap_or_default()
}

/// Events evicted from the ring because [`MAX_EVENTS`] was hit.
pub fn evicted_events() -> u64 {
    STORE
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .as_ref()
        .map_or(0, |s| s.evicted)
}

fn write_event(w: &mut crate::json::JsonWriter, e: &Event) {
    w.begin_obj();
    w.key("seq");
    w.u64(e.seq);
    w.key("severity");
    w.str(e.severity.as_str());
    w.key("kind");
    w.str(&e.kind);
    if let Some(session) = &e.session {
        w.key("session");
        w.str(session);
    }
    if let Some(rid) = e.request_id {
        w.key("request_id");
        w.u64(rid);
    }
    for (k, v) in &e.fields {
        w.key(k);
        w.str(v);
    }
    w.end_obj();
}

/// Renders the resident ring as JSON lines (one event object per line,
/// oldest first) — the `--log FILE` format. Empty string when nothing
/// was recorded.
pub fn export_jsonl() -> String {
    let events = snapshot();
    let mut out = String::new();
    for e in &events {
        let mut w = crate::json::JsonWriter::new();
        write_event(&mut w, e);
        out.push_str(&w.finish());
        out.push('\n');
    }
    out
}

/// Clears the ring and restarts sequence numbering. Does not change the
/// enabled flag.
pub(crate) fn reset() {
    let mut store = STORE.lock().unwrap_or_else(|p| p.into_inner());
    if LOG_ENABLED.load(Ordering::SeqCst) {
        *store = Some(Store {
            next_seq: 1,
            events: VecDeque::new(),
            evicted: 0,
        });
    } else {
        *store = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testlock;

    #[test]
    fn disabled_records_nothing() {
        let _l = testlock::hold();
        emit(Severity::Info, "quiet", None, None, &[]);
        assert!(snapshot().is_empty());
        assert_eq!(export_jsonl(), "");
    }

    #[test]
    fn events_carry_attribution_and_monotonic_seq() {
        let _l = testlock::hold();
        set_log_enabled(true);
        emit(Severity::Info, "cli.start", None, None, &[]);
        emit(
            Severity::Warn,
            "solver.fallback",
            Some("opt-a"),
            Some(7),
            &[("stage", "cgnr".into())],
        );
        set_log_enabled(false);
        let events = snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 1);
        assert_eq!(events[1].seq, 2);
        assert_eq!(events[1].severity, Severity::Warn);
        assert_eq!(events[1].session.as_deref(), Some("opt-a"));
        assert_eq!(events[1].request_id, Some(7));
        let jsonl = export_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            r#"{"seq":1,"severity":"info","kind":"cli.start"}"#
        );
        assert_eq!(
            lines[1],
            r#"{"seq":2,"severity":"warn","kind":"solver.fallback","session":"opt-a","request_id":7,"stage":"cgnr"}"#
        );
    }

    #[test]
    fn ring_evicts_oldest_and_counts() {
        let _l = testlock::hold();
        set_log_enabled(true);
        for i in 0..(MAX_EVENTS + 3) {
            emit(Severity::Info, "tick", None, Some(i as u64), &[]);
        }
        set_log_enabled(false);
        let events = snapshot();
        assert_eq!(events.len(), MAX_EVENTS);
        assert_eq!(evicted_events(), 3);
        // Oldest three evicted: the ring starts at seq 4.
        assert_eq!(events[0].seq, 4);
        assert_eq!(events.last().unwrap().seq, (MAX_EVENTS + 3) as u64);
    }

    #[test]
    fn reset_restarts_sequencing() {
        let _l = testlock::hold();
        set_log_enabled(true);
        emit(Severity::Error, "boom", None, None, &[]);
        crate::reset();
        emit(Severity::Info, "fresh", None, None, &[]);
        set_log_enabled(false);
        let events = snapshot();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].seq, 1, "reset restarts the sequence");
        assert_eq!(events[0].kind, "fresh");
    }

    #[test]
    fn severity_orders_and_spells() {
        assert!(Severity::Info < Severity::Warn);
        assert!(Severity::Warn < Severity::Error);
        assert_eq!(Severity::Error.as_str(), "error");
    }
}
