//! Property-based tests of the STA engine's analytical invariants.

use netlist::GeneratorConfig;
use proptest::prelude::*;
use sta::{DerateSet, DeratingTable, Sdc, Sta};

prop_compose! {
    /// A random valid derating table with monotone structure: derates
    /// decrease with depth and increase with distance (the AOCV law).
    fn monotone_table()(base in 1.05f64..1.5, depth_gain in 0.01f64..0.2,
                        dist_gain in 0.0f64..0.2, nd in 2usize..6, nk in 2usize..8)
                       -> DeratingTable {
        let depths: Vec<f64> = (0..nk).map(|i| (i as f64 + 1.0) * 3.0).collect();
        let distances: Vec<f64> = (0..nd).map(|i| (i as f64 + 1.0) * 250.0).collect();
        let mut values = Vec::new();
        for (di, _) in distances.iter().enumerate() {
            for (ki, _) in depths.iter().enumerate() {
                let v = base - depth_gain * ki as f64 / nk as f64
                    + dist_gain * di as f64 / nd as f64;
                values.push(v.max(1.001));
            }
        }
        DeratingTable::new(depths, distances, values).expect("constructed valid")
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Bilinear interpolation of a monotone table is monotone.
    #[test]
    fn lookup_is_monotone(table in monotone_table(),
                          d1 in 1.0f64..40.0, d2 in 1.0f64..40.0,
                          x1 in 0.0f64..2000.0, x2 in 0.0f64..2000.0) {
        let (dlo, dhi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        let (xlo, xhi) = if x1 <= x2 { (x1, x2) } else { (x2, x1) };
        // Deeper → smaller derate at fixed distance.
        prop_assert!(table.lookup(dhi, xlo) <= table.lookup(dlo, xlo) + 1e-12);
        // Farther → larger derate at fixed depth.
        prop_assert!(table.lookup(dlo, xhi) >= table.lookup(dlo, xlo) - 1e-12);
    }

    /// Lookups are clamped to the table's value range.
    #[test]
    fn lookup_stays_in_range(table in monotone_table(),
                             depth in -5.0f64..200.0, dist in -5.0f64..5000.0) {
        let v = table.lookup(depth, dist);
        // The extreme corners bound every interpolated value.
        let min_corner = table.lookup(1e9, -1e9);
        let max_corner = table.lookup(-1e9, 1e9);
        prop_assert!(v >= min_corner - 1e-12);
        prop_assert!(v <= max_corner + 1e-12);
    }

    /// Setup slack shifts exactly 1:1 with the clock period.
    #[test]
    fn slack_is_period_equivariant(seed in 0u64..50, t0 in 800.0f64..2000.0,
                                   delta in 1.0f64..1000.0) {
        let n = GeneratorConfig::small(seed).generate();
        let a = Sta::new(n.clone(), Sdc::with_period(t0), DerateSet::standard())
            .expect("valid design");
        let b = Sta::new(n, Sdc::with_period(t0 + delta), DerateSet::standard())
            .expect("valid design");
        for e in a.netlist().endpoints().into_iter().take(8) {
            let sa = a.setup_slack(e);
            let sb = b.setup_slack(e);
            if sa.is_finite() && sb.is_finite() {
                prop_assert!((sb - sa - delta).abs() < 1e-9);
            }
        }
    }

    /// Uniformly more negative weights never increase any arrival.
    #[test]
    fn weights_are_monotone_in_arrivals(seed in 0u64..30,
                                        w1 in -0.10f64..0.0, w2 in -0.10f64..0.0) {
        let (lo, hi) = if w1 <= w2 { (w1, w2) } else { (w2, w1) };
        let n = GeneratorConfig::small(seed).generate();
        let mut sta = Sta::new(n, Sdc::with_period(1500.0), DerateSet::standard())
            .expect("valid design");
        let cells = sta.netlist().num_cells();
        sta.set_weights(&vec![hi; cells]);
        let arr_hi: Vec<f64> = sta.netlist().endpoints().iter()
            .map(|&e| sta.endpoint_arrival(e)).collect();
        sta.set_weights(&vec![lo; cells]);
        for (e, &ah) in sta.netlist().endpoints().iter().zip(&arr_hi) {
            let al = sta.endpoint_arrival(*e);
            if al.is_finite() && ah.is_finite() {
                prop_assert!(al <= ah + 1e-9,
                    "more negative weights must not slow paths: {al} > {ah}");
            }
        }
    }

    /// Hold slack never depends on the clock period (same-cycle check).
    #[test]
    fn hold_is_period_independent(seed in 0u64..30, t0 in 800.0f64..1500.0,
                                  delta in 10.0f64..2000.0) {
        let n = GeneratorConfig::small(seed).generate();
        let a = Sta::new(n.clone(), Sdc::with_period(t0), DerateSet::standard())
            .expect("valid design");
        let b = Sta::new(n, Sdc::with_period(t0 + delta), DerateSet::standard())
            .expect("valid design");
        for e in a.netlist().endpoints().into_iter().take(8) {
            match (a.hold_slack(e), b.hold_slack(e)) {
                (Some(ha), Some(hb)) if ha.is_finite() && hb.is_finite() => {
                    prop_assert!((ha - hb).abs() < 1e-9);
                }
                _ => {}
            }
        }
    }
}
