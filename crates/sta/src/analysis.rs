//! The core STA engine: graph-based arrival/required propagation, setup
//! and hold slacks, per-gate AOCV derates, mGBA weight application, and
//! incremental update after netlist modification.
//!
//! One [`Sta`] owns its netlist. The timing-closure flow mutates the
//! design exclusively through [`Sta::resize_cell`] and
//! [`Sta::insert_buffer`], which keep the timing state consistent via
//! incremental (worklist-driven) or full re-propagation.

use crate::aocv::DerateSet;
use crate::constraints::Sdc;
use crate::depth::DepthInfo;
use crate::graph::TimingGraph;
use netlist::{BuildError, CellId, CellRole, LibCellId, NetId, Netlist, PinIndex};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Counters describing how much work timing updates performed; used by the
/// benchmark harness to demonstrate the value of incremental update.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UpdateStats {
    /// Number of full (whole-graph) timing updates.
    pub full_updates: u64,
    /// Number of incremental updates.
    pub incremental_updates: u64,
    /// Cells re-evaluated across all incremental updates.
    pub cells_propagated: u64,
}

/// Convergence tolerance for incremental propagation, ps.
const EPS: f64 = 1e-9;

/// Graph-based static timing analysis over an owned netlist.
///
/// `Clone` supports read/write-split serving: a writer clones the
/// fully-propagated engine into an immutable snapshot that read-only
/// queries share without locking.
#[derive(Clone)]
pub struct Sta {
    netlist: Netlist,
    sdc: Sdc,
    derates: DerateSet,
    graph: TimingGraph,
    depth: DepthInfo,
    /// mGBA per-gate weight corrections `x_j`; effective derate is
    /// `λ_j · (1 + x_j)` clamped to at least 1.
    weights: Vec<f64>,

    // Characterization (recomputed on sizing).
    load: Vec<f64>,
    fixed_delay: Vec<f64>,
    slew_sens: Vec<f64>,
    slew_out: Vec<f64>,
    gba_delay: Vec<f64>,
    derate_late: Vec<f64>,
    derate_early: Vec<f64>,

    // Clock network arrivals (at cell output; for flip-flops: at CK pin).
    clk_late: Vec<f64>,
    clk_early: Vec<f64>,
    clock_path: Vec<Vec<CellId>>,

    // Data timing (at cell output).
    arrival_late: Vec<f64>,
    arrival_early: Vec<f64>,
    required_late: Vec<f64>,

    /// Cells re-evaluated by the forward pass of the most recent
    /// incremental update (empty after a full update). See
    /// [`Sta::last_touched`].
    last_touched: Vec<CellId>,

    /// Update effort counters.
    pub stats: UpdateStats,
}

impl Sta {
    /// Builds the engine and runs a full timing update.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] if the netlist fails structural validation
    /// (most notably combinational cycles).
    pub fn new(netlist: Netlist, sdc: Sdc, derates: DerateSet) -> Result<Self, BuildError> {
        let n = netlist.num_cells();
        let graph = TimingGraph::new(&netlist)?;
        let depth = DepthInfo::compute(&netlist, &graph);
        let mut sta = Self {
            netlist,
            sdc,
            derates,
            graph,
            depth,
            weights: vec![0.0; n],
            load: vec![0.0; n],
            fixed_delay: vec![0.0; n],
            slew_sens: vec![0.0; n],
            slew_out: vec![0.0; n],
            gba_delay: vec![0.0; n],
            derate_late: vec![1.0; n],
            derate_early: vec![1.0; n],
            clk_late: vec![f64::NEG_INFINITY; n],
            clk_early: vec![f64::INFINITY; n],
            clock_path: vec![Vec::new(); n],
            arrival_late: vec![f64::NEG_INFINITY; n],
            arrival_early: vec![f64::INFINITY; n],
            required_late: vec![f64::INFINITY; n],
            last_touched: Vec::new(),
            stats: UpdateStats::default(),
        };
        sta.full_update();
        Ok(sta)
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The analyzed netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The timing constraints.
    pub fn sdc(&self) -> &Sdc {
        &self.sdc
    }

    /// The derate configuration.
    pub fn derates(&self) -> &DerateSet {
        &self.derates
    }

    /// The structural timing graph.
    pub fn graph(&self) -> &TimingGraph {
        &self.graph
    }

    /// The GBA depth/distance analysis.
    pub fn depth_info(&self) -> &DepthInfo {
        &self.depth
    }

    /// Underated worst-slew delay of `cell`, ps (the paper's `d_j`).
    #[inline]
    pub fn gate_delay(&self, cell: CellId) -> f64 {
        self.gba_delay[cell.index()]
    }

    /// GBA AOCV derate of `cell` (the paper's `λ_j`), before weights.
    #[inline]
    pub fn gate_derate(&self, cell: CellId) -> f64 {
        self.derate_late[cell.index()]
    }

    /// Current mGBA weight `x_j` of `cell`.
    #[inline]
    pub fn gate_weight(&self, cell: CellId) -> f64 {
        self.weights[cell.index()]
    }

    /// Effective late derate: `λ_j · (1 + x_j)` for combinational cells
    /// and flip-flop clock-to-Q arcs — both are "delay units" the paper
    /// weights (a launch-flop weight is also what lets the fit absorb
    /// per-launch CRPR pessimism). Clamped to be non-negative: a weight
    /// can remove derating and slew/CRPR pessimism entirely, but never
    /// make a delay negative. Clock-network cells and ports keep their
    /// fixed derates.
    #[inline]
    pub fn effective_derate(&self, cell: CellId) -> f64 {
        let i = cell.index();
        match self.netlist.cell(cell).role {
            CellRole::Combinational | CellRole::Sequential => {
                (self.derate_late[i] * (1.0 + self.weights[i])).max(0.0)
            }
            _ => self.derate_late[i],
        }
    }

    /// Late (max) data arrival at `cell`'s output, ps.
    #[inline]
    pub fn arrival_late(&self, cell: CellId) -> f64 {
        self.arrival_late[cell.index()]
    }

    /// Early (min) data arrival at `cell`'s output, ps.
    #[inline]
    pub fn arrival_early(&self, cell: CellId) -> f64 {
        self.arrival_early[cell.index()]
    }

    /// Late required time at `cell`'s output, ps.
    #[inline]
    pub fn required_late(&self, cell: CellId) -> f64 {
        self.required_late[cell.index()]
    }

    /// Worst-slew output transition of `cell`, ps.
    #[inline]
    pub fn slew(&self, cell: CellId) -> f64 {
        self.slew_out[cell.index()]
    }

    /// Load-dependent part of `cell`'s delay (no slew term), ps.
    #[inline]
    pub fn fixed_delay(&self, cell: CellId) -> f64 {
        self.fixed_delay[cell.index()]
    }

    /// Slew sensitivity of `cell`'s delay, ps/ps.
    #[inline]
    pub fn slew_sensitivity(&self, cell: CellId) -> f64 {
        self.slew_sens[cell.index()]
    }

    /// Late clock arrival at a flip-flop's CK pin (or a clock cell's
    /// output), ps.
    #[inline]
    pub fn clock_arrival_late(&self, cell: CellId) -> f64 {
        self.clk_late[cell.index()]
    }

    /// Early clock arrival, ps.
    #[inline]
    pub fn clock_arrival_early(&self, cell: CellId) -> f64 {
        self.clk_early[cell.index()]
    }

    /// The chain of clock cells (source, buffers) feeding a flip-flop.
    pub fn clock_path(&self, ff: CellId) -> &[CellId] {
        &self.clock_path[ff.index()]
    }

    /// Every cell re-evaluated by the forward pass of the most recent
    /// incremental update ([`Sta::resize_cell`]), sorted by cell index
    /// and duplicate-free.
    ///
    /// Incremental propagation re-evaluates exactly the cells whose
    /// cached timing quantities (delay, arrivals, clock arrivals) may
    /// have moved; any cell *not* in this set kept its values to within
    /// the propagation tolerance. Clients use this as the invalidation
    /// set for caches derived from per-cell timing (e.g. the mGBA
    /// fit-matrix rows). The set is replaced by the next incremental
    /// update and cleared by a full update ([`Sta::full_update`],
    /// [`Sta::set_weights`], [`Sta::clear_weights`]), after which *all*
    /// cells must be considered touched — an empty result here is
    /// meaningful only immediately after an incremental update.
    pub fn last_touched(&self) -> &[CellId] {
        &self.last_touched
    }

    // ------------------------------------------------------------------
    // Endpoint timing
    // ------------------------------------------------------------------

    /// Late data arrival at the endpoint's input pin (FF `D` or output
    /// port), ps. Computed on demand from the driver's propagated arrival,
    /// because in dependency order the `D` driver is evaluated *after* the
    /// flip-flop itself.
    pub fn endpoint_arrival(&self, endpoint: CellId) -> f64 {
        self.graph
            .data_fanins(&self.netlist, endpoint)
            .map(|e| self.arrival_late[e.from.index()] + e.wire_delay)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Early data arrival at the endpoint's input pin, ps.
    pub fn endpoint_arrival_early(&self, endpoint: CellId) -> f64 {
        self.graph
            .data_fanins(&self.netlist, endpoint)
            .map(|e| self.arrival_early[e.from.index()] + e.wire_delay)
            .fold(f64::INFINITY, f64::min)
    }

    /// Setup required time at an endpoint under GBA (no CRPR credit):
    /// for a flip-flop, `T + early capture clock − t_setup`; for an output
    /// port, `T − output_delay`.
    pub fn endpoint_required(&self, endpoint: CellId) -> f64 {
        let cell = self.netlist.cell(endpoint);
        match cell.role {
            CellRole::Sequential => {
                let lib = self.netlist.library().cell(cell.lib_cell);
                self.sdc.clock_period + self.clk_early[endpoint.index()] - lib.setup
            }
            CellRole::Output => self.sdc.clock_period - self.sdc.output_delay,
            _ => f64::INFINITY,
        }
    }

    /// GBA setup slack at `endpoint`, ps. Positive means timing is met.
    pub fn setup_slack(&self, endpoint: CellId) -> f64 {
        self.endpoint_required(endpoint) - self.endpoint_arrival(endpoint)
    }

    /// GBA hold slack at a flip-flop endpoint, or `None` for ports.
    pub fn hold_slack(&self, endpoint: CellId) -> Option<f64> {
        let cell = self.netlist.cell(endpoint);
        if cell.role != CellRole::Sequential {
            return None;
        }
        let lib = self.netlist.library().cell(cell.lib_cell);
        Some(self.endpoint_arrival_early(endpoint) - (self.clk_late[endpoint.index()] + lib.hold))
    }

    /// Worst (most negative) setup slack over all endpoints, ps.
    pub fn wns(&self) -> f64 {
        self.netlist
            .endpoints()
            .into_iter()
            .map(|e| self.setup_slack(e))
            .filter(|s| s.is_finite())
            .fold(f64::INFINITY, f64::min)
    }

    /// Total negative setup slack over all endpoints, ps (≤ 0).
    pub fn tns(&self) -> f64 {
        self.netlist
            .endpoints()
            .into_iter()
            .map(|e| self.setup_slack(e))
            .filter(|s| s.is_finite() && *s < 0.0)
            .sum()
    }

    /// Endpoints with negative setup slack, worst first.
    pub fn violating_endpoints(&self) -> Vec<CellId> {
        let mut v: Vec<(CellId, f64)> = self
            .netlist
            .endpoints()
            .into_iter()
            .map(|e| (e, self.setup_slack(e)))
            .filter(|(_, s)| s.is_finite() && *s < 0.0)
            .collect();
        v.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("slacks are finite"));
        v.into_iter().map(|(e, _)| e).collect()
    }

    /// Clock-reconvergence pessimism credit between a launch and capture
    /// flip-flop: the late/early delay disagreement accumulated on the
    /// shared prefix of their clock paths. Zero unless both are flip-flops.
    pub fn crpr_credit(&self, launch: CellId, capture: CellId) -> f64 {
        if self.netlist.cell(launch).role != CellRole::Sequential
            || self.netlist.cell(capture).role != CellRole::Sequential
        {
            return 0.0;
        }
        let a = &self.clock_path[launch.index()];
        let b = &self.clock_path[capture.index()];
        let mut credit = 0.0;
        for (x, y) in a.iter().zip(b.iter()) {
            if x != y {
                break;
            }
            credit +=
                self.gba_delay[x.index()] * (self.derates.clock_late - self.derates.clock_early);
        }
        credit
    }

    // ------------------------------------------------------------------
    // mGBA weights
    // ------------------------------------------------------------------

    /// Installs mGBA weight corrections (one per cell; only combinational
    /// cells are affected) and re-propagates late timing.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != netlist.num_cells()`.
    pub fn set_weights(&mut self, weights: &[f64]) {
        assert_eq!(
            weights.len(),
            self.netlist.num_cells(),
            "one weight per cell required"
        );
        self.weights.copy_from_slice(weights);
        self.propagate_arrivals_full();
        self.propagate_required_full();
        self.last_touched.clear();
        self.stats.full_updates += 1;
    }

    /// Clears all weights (back to original GBA) and re-propagates.
    pub fn clear_weights(&mut self) {
        self.weights.fill(0.0);
        self.propagate_arrivals_full();
        self.propagate_required_full();
        self.last_touched.clear();
        self.stats.full_updates += 1;
    }

    // ------------------------------------------------------------------
    // Mutation + incremental update
    // ------------------------------------------------------------------

    /// Resizes `cell` to `new_lib` and incrementally updates timing.
    ///
    /// # Errors
    ///
    /// Propagates [`BuildError::WrongFunction`] from the netlist.
    pub fn resize_cell(&mut self, cell: CellId, new_lib: LibCellId) -> Result<(), BuildError> {
        self.netlist.set_lib_cell(cell, new_lib)?;
        // Re-characterize the resized cell and the drivers of its input
        // nets (their loads include this cell's input capacitance).
        let mut seeds = vec![cell];
        for net in self.netlist.cell(cell).input_nets().collect::<Vec<_>>() {
            if let Some(driver) = self.netlist.net(net).driver {
                seeds.push(driver);
            }
        }
        for &s in &seeds {
            self.characterize(s);
        }
        self.incremental_update(&seeds);
        Ok(())
    }

    /// Inserts a buffer on `net` (see [`Netlist::insert_buffer`]) and
    /// rebuilds timing. This is a structural change, so depths, bounding
    /// boxes and the graph are recomputed; existing weights are preserved
    /// and the new buffer starts with weight 0.
    ///
    /// # Errors
    ///
    /// Propagates netlist errors; the timing state is unchanged on error.
    pub fn insert_buffer(
        &mut self,
        net: NetId,
        buf_lib: LibCellId,
        name: &str,
        moved_sinks: &[(CellId, PinIndex)],
    ) -> Result<CellId, BuildError> {
        let buf = self
            .netlist
            .insert_buffer(net, buf_lib, name, moved_sinks)?;
        self.rebuild_structure()?;
        Ok(buf)
    }

    /// Rebuilds all structural caches after an external netlist change and
    /// runs a full update.
    fn rebuild_structure(&mut self) -> Result<(), BuildError> {
        let n = self.netlist.num_cells();
        self.graph = TimingGraph::new(&self.netlist)?;
        self.depth = DepthInfo::compute(&self.netlist, &self.graph);
        self.weights.resize(n, 0.0);
        for v in [
            &mut self.load,
            &mut self.fixed_delay,
            &mut self.slew_sens,
            &mut self.slew_out,
            &mut self.gba_delay,
        ] {
            v.resize(n, 0.0);
        }
        self.derate_late.resize(n, 1.0);
        self.derate_early.resize(n, 1.0);
        self.clk_late.resize(n, f64::NEG_INFINITY);
        self.clk_early.resize(n, f64::INFINITY);
        self.clock_path.resize(n, Vec::new());
        self.arrival_late.resize(n, f64::NEG_INFINITY);
        self.arrival_early.resize(n, f64::INFINITY);
        self.required_late.resize(n, f64::INFINITY);
        self.full_update();
        Ok(())
    }

    // ------------------------------------------------------------------
    // Internal propagation
    // ------------------------------------------------------------------

    /// Recomputes load, fixed delay, slew model parameters of one cell.
    fn characterize(&mut self, c: CellId) {
        let i = c.index();
        let cell = self.netlist.cell(c);
        let lib = self.netlist.library().cell(cell.lib_cell);
        self.load[i] = cell
            .output
            .map(|net| self.netlist.net_load(net))
            .unwrap_or(0.0);
        self.fixed_delay[i] = lib.intrinsic + lib.drive_res * self.load[i];
        self.slew_sens[i] = lib.slew_sens;
        self.slew_out[i] = lib.output_slew(self.load[i]);
    }

    /// Computes the AOCV derates of one cell from the depth analysis.
    fn derate(&mut self, c: CellId) {
        let i = c.index();
        match self.netlist.cell(c).role {
            CellRole::Combinational => {
                let dist = self.depth.gba_distance(c);
                match self.depth.gba_depth(c) {
                    Some(k) => {
                        self.derate_late[i] = self.derates.data_late.lookup(k as f64, dist);
                        self.derate_early[i] = self.derates.data_early.lookup(k as f64, dist);
                    }
                    None => {
                        // Dead logic: no complete path, no derate needed.
                        self.derate_late[i] = 1.0;
                        self.derate_early[i] = 1.0;
                    }
                }
            }
            CellRole::Sequential | CellRole::ClockBuffer | CellRole::ClockSource => {
                self.derate_late[i] = self.derates.clock_late;
                self.derate_early[i] = self.derates.clock_early;
            }
            CellRole::Input | CellRole::Output => {
                self.derate_late[i] = 1.0;
                self.derate_early[i] = 1.0;
            }
        }
    }

    /// Worst (max) input slew seen by `c` under GBA slew propagation:
    /// combinational cells take the max over all data fanins; flip-flops
    /// the slew of their clock driver.
    fn worst_input_slew(&self, c: CellId) -> f64 {
        match self.netlist.cell(c).role {
            CellRole::Sequential => self
                .graph
                .clock_fanin(&self.netlist, c)
                .map(|e| self.slew_out[e.from.index()])
                .unwrap_or(0.0),
            CellRole::ClockBuffer => self
                .graph
                .fanins(c)
                .first()
                .map(|e| self.slew_out[e.from.index()])
                .unwrap_or(0.0),
            _ => self
                .graph
                .data_fanins(&self.netlist, c)
                .map(|e| self.slew_out[e.from.index()])
                .fold(0.0, f64::max),
        }
    }

    /// Re-evaluates one cell's timing values in topological order.
    /// Returns `true` if any externally visible value changed.
    fn evaluate(&mut self, c: CellId) -> bool {
        let i = c.index();
        let role = self.netlist.cell(c).role;
        let old_delay = self.gba_delay[i];
        let old_late = self.arrival_late[i];
        let old_early = self.arrival_early[i];
        let old_clk_l = self.clk_late[i];
        let old_clk_e = self.clk_early[i];

        self.gba_delay[i] = match role {
            CellRole::Input | CellRole::Output | CellRole::ClockSource => 0.0,
            _ => self.fixed_delay[i] + self.slew_sens[i] * self.worst_input_slew(c),
        };

        match role {
            CellRole::Input => {
                self.arrival_late[i] = self.sdc.input_delay_late;
                self.arrival_early[i] = self.sdc.input_delay_early;
            }
            CellRole::ClockSource => {
                self.clk_late[i] = 0.0;
                self.clk_early[i] = 0.0;
                self.arrival_late[i] = 0.0;
                self.arrival_early[i] = 0.0;
            }
            CellRole::ClockBuffer => {
                if let Some(e) = self.graph.fanins(c).first() {
                    let d = self.gba_delay[i];
                    self.clk_late[i] =
                        self.clk_late[e.from.index()] + e.wire_delay + d * self.derates.clock_late;
                    self.clk_early[i] = self.clk_early[e.from.index()]
                        + e.wire_delay
                        + d * self.derates.clock_early;
                    self.arrival_late[i] = self.clk_late[i];
                    self.arrival_early[i] = self.clk_early[i];
                }
            }
            CellRole::Sequential => {
                if let Some(e) = self.graph.clock_fanin(&self.netlist, c) {
                    self.clk_late[i] = self.clk_late[e.from.index()] + e.wire_delay;
                    self.clk_early[i] = self.clk_early[e.from.index()] + e.wire_delay;
                }
                let d = self.gba_delay[i];
                self.arrival_late[i] = self.clk_late[i] + d * self.effective_derate(c);
                self.arrival_early[i] = self.clk_early[i] + d * self.derates.clock_early;
            }
            CellRole::Output => {
                let (mut dl, mut de) = (f64::NEG_INFINITY, f64::INFINITY);
                for e in self.graph.data_fanins(&self.netlist, c) {
                    dl = dl.max(self.arrival_late[e.from.index()] + e.wire_delay);
                    de = de.min(self.arrival_early[e.from.index()] + e.wire_delay);
                }
                self.arrival_late[i] = dl;
                self.arrival_early[i] = de;
            }
            CellRole::Combinational => {
                let (mut al, mut ae) = (f64::NEG_INFINITY, f64::INFINITY);
                for e in self.graph.data_fanins(&self.netlist, c) {
                    al = al.max(self.arrival_late[e.from.index()] + e.wire_delay);
                    ae = ae.min(self.arrival_early[e.from.index()] + e.wire_delay);
                }
                let d = self.gba_delay[i];
                self.arrival_late[i] = al + d * self.effective_derate(c);
                self.arrival_early[i] = ae + d * self.derate_early[i];
            }
        }

        changed(old_delay, self.gba_delay[i])
            || changed(old_late, self.arrival_late[i])
            || changed(old_early, self.arrival_early[i])
            || changed(old_clk_l, self.clk_late[i])
            || changed(old_clk_e, self.clk_early[i])
    }

    /// Recomputes one cell's late required time from its fanouts.
    /// Returns `true` if it changed.
    fn evaluate_required(&mut self, c: CellId) -> bool {
        let i = c.index();
        let role = self.netlist.cell(c).role;
        if role == CellRole::Output || self.graph.in_clock_network(c) {
            return false;
        }
        let mut req = f64::INFINITY;
        let fanouts: Vec<_> = self.graph.data_fanouts(&self.netlist, c).copied().collect();
        for e in fanouts {
            let to_role = self.netlist.cell(e.to).role;
            let r = match to_role {
                CellRole::Sequential | CellRole::Output => {
                    self.endpoint_required(e.to) - e.wire_delay
                }
                CellRole::Combinational => {
                    self.required_late[e.to.index()]
                        - self.gba_delay[e.to.index()] * self.effective_derate(e.to)
                        - e.wire_delay
                }
                _ => f64::INFINITY,
            };
            req = req.min(r);
        }
        let old = self.required_late[i];
        self.required_late[i] = req;
        changed(old, req)
    }

    fn propagate_arrivals_full(&mut self) {
        for &c in &self.graph.topo().to_vec() {
            self.evaluate(c);
        }
    }

    fn propagate_required_full(&mut self) {
        for &c in &self
            .graph
            .topo()
            .to_vec()
            .into_iter()
            .rev()
            .collect::<Vec<_>>()
        {
            self.evaluate_required(c);
        }
    }

    /// Full timing update: characterize and derate every cell, then
    /// propagate arrivals forward and required times backward.
    pub fn full_update(&mut self) {
        let _span = obs::span("sta_full_update");
        for i in 0..self.netlist.num_cells() {
            let c = CellId::new(i);
            self.characterize(c);
            self.derate(c);
        }
        self.compute_clock_paths();
        self.propagate_arrivals_full();
        self.propagate_required_full();
        self.last_touched.clear();
        self.stats.full_updates += 1;
        obs::counter_add("sta.update.full", 1);
    }

    fn compute_clock_paths(&mut self) {
        for i in 0..self.netlist.num_cells() {
            let c = CellId::new(i);
            if self.netlist.cell(c).role != CellRole::Sequential {
                continue;
            }
            let mut chain = Vec::new();
            let mut cur = self.graph.clock_fanin(&self.netlist, c).map(|e| e.from);
            while let Some(cc) = cur {
                chain.push(cc);
                cur = match self.netlist.cell(cc).role {
                    CellRole::ClockBuffer => self.graph.fanins(cc).first().map(|e| e.from),
                    _ => None,
                };
            }
            chain.reverse(); // source first
            self.clock_path[i] = chain;
        }
    }

    /// Worklist-driven incremental update from the given seed cells
    /// (already re-characterized). Propagates arrivals forward, then
    /// required times backward from everything that changed.
    fn incremental_update(&mut self, seeds: &[CellId]) {
        let cells_before = self.stats.cells_propagated;
        // Forward pass: min-heap on topological position guarantees each
        // cell is evaluated after all its changed predecessors.
        let mut heap: BinaryHeap<Reverse<(usize, u32)>> = BinaryHeap::new();
        let mut queued = vec![false; self.netlist.num_cells()];
        for &s in seeds {
            heap.push(Reverse((self.graph.topo_pos(s), s.index() as u32)));
            queued[s.index()] = true;
        }
        let mut touched: Vec<CellId> = Vec::new();
        while let Some(Reverse((_, idx))) = heap.pop() {
            let c = CellId::new(idx as usize);
            queued[c.index()] = false;
            self.stats.cells_propagated += 1;
            let was_seed = seeds.contains(&c);
            let changed_here = self.evaluate(c);
            touched.push(c);
            if changed_here || was_seed {
                for e in self.graph.fanouts(c).to_vec() {
                    if !queued[e.to.index()] {
                        queued[e.to.index()] = true;
                        heap.push(Reverse((self.graph.topo_pos(e.to), e.to.index() as u32)));
                    }
                }
            }
        }

        // Backward pass: seed the fanin cone of everything whose delay or
        // arrival changed (required times depend on fanout delays and
        // endpoint constraints).
        let mut bheap: BinaryHeap<(usize, u32)> = BinaryHeap::new();
        let mut bqueued = vec![false; self.netlist.num_cells()];
        let push_back = |heap: &mut BinaryHeap<(usize, u32)>,
                         bqueued: &mut Vec<bool>,
                         graph: &TimingGraph,
                         c: CellId| {
            if !bqueued[c.index()] {
                bqueued[c.index()] = true;
                heap.push((graph.topo_pos(c), c.index() as u32));
            }
        };
        for &c in &touched {
            push_back(&mut bheap, &mut bqueued, &self.graph, c);
            for e in self.graph.fanins(c) {
                push_back(&mut bheap, &mut bqueued, &self.graph, e.from);
            }
        }
        while let Some((_, idx)) = bheap.pop() {
            let c = CellId::new(idx as usize);
            bqueued[c.index()] = false;
            self.stats.cells_propagated += 1;
            if self.evaluate_required(c) {
                for e in self.graph.fanins(c).to_vec() {
                    if !bqueued[e.from.index()] {
                        bqueued[e.from.index()] = true;
                        bheap.push((self.graph.topo_pos(e.from), e.from.index() as u32));
                    }
                }
            }
        }
        self.stats.incremental_updates += 1;
        obs::counter_add("sta.update.incremental", 1);
        obs::counter_add(
            "sta.update.cells_propagated",
            self.stats.cells_propagated - cells_before,
        );
        // Publish the forward-pass invalidation set (see
        // `Sta::last_touched`). The backward pass only rewrites required
        // times, which no per-cell cache consumer reads. A cell can be
        // popped more than once (a data-fanout edge can re-queue a
        // flip-flop that already propagated with the clock cone), so
        // canonicalize to a sorted, duplicate-free set.
        touched.sort_unstable_by_key(|c| c.index());
        touched.dedup();
        self.last_touched = touched;
    }
}

#[inline]
fn changed(old: f64, new: f64) -> bool {
    if old.is_finite() && new.is_finite() {
        (old - new).abs() > EPS
    } else {
        // Transitions involving ±∞ count as changes only if the class
        // differs (e.g. -∞ → finite).
        !(old == new || (old.is_nan() && new.is_nan()))
    }
}

impl std::fmt::Debug for Sta {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sta")
            .field("design", &self.netlist.name())
            .field("cells", &self.netlist.num_cells())
            .field("clock_period", &self.sdc.clock_period)
            .field("wns", &self.wns())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::{DriveStrength, Function, GeneratorConfig, Library, NetlistBuilder, Point};

    fn engine(seed: u64, period: f64) -> Sta {
        let n = GeneratorConfig::small(seed).generate();
        Sta::new(n, Sdc::with_period(period), DerateSet::standard()).unwrap()
    }

    #[test]
    fn arrivals_are_finite_and_ordered() {
        let sta = engine(41, 2000.0);
        for e in sta.netlist().endpoints() {
            let late = sta.endpoint_arrival(e);
            assert!(late.is_finite(), "endpoint must be reached");
            let early = sta.endpoint_arrival_early(e);
            assert!(early.is_finite());
            assert!(
                early <= late + EPS,
                "early {early} must not exceed late {late}"
            );
        }
    }

    #[test]
    fn slack_definition_matches_components() {
        let sta = engine(42, 1500.0);
        for e in sta.netlist().endpoints() {
            let s = sta.setup_slack(e);
            assert!((s - (sta.endpoint_required(e) - sta.endpoint_arrival(e))).abs() < 1e-9);
        }
    }

    #[test]
    fn wns_and_tns_consistent() {
        let sta = engine(43, 900.0);
        let wns = sta.wns();
        let tns = sta.tns();
        assert!(tns <= 0.0);
        if wns < 0.0 {
            assert!(tns <= wns, "TNS accumulates all violations");
            assert!(!sta.violating_endpoints().is_empty());
        }
        // The worst violating endpoint realizes WNS.
        if let Some(&worst) = sta.violating_endpoints().first() {
            assert!((sta.setup_slack(worst) - wns).abs() < 1e-9);
        }
    }

    #[test]
    fn longer_period_increases_slack() {
        let slow = engine(44, 3000.0);
        let fast = engine(44, 800.0);
        assert!((slow.wns() - fast.wns() - 2200.0).abs() < 1e-6);
    }

    #[test]
    fn derates_exceed_one_for_data_gates() {
        let sta = engine(45, 1000.0);
        for (id, cell) in sta.netlist().cells() {
            if cell.role == CellRole::Combinational {
                assert!(sta.gate_derate(id) >= 1.0);
                assert!(sta.gate_delay(id) > 0.0);
            }
        }
    }

    #[test]
    fn clock_arrivals_respect_tree_depth() {
        let sta = engine(46, 1000.0);
        for (id, cell) in sta.netlist().cells() {
            if cell.role == CellRole::Sequential {
                let l = sta.clock_arrival_late(id);
                let e = sta.clock_arrival_early(id);
                assert!(l.is_finite() && e.is_finite());
                assert!(l >= e, "late clock must not beat early clock");
                assert!(!sta.clock_path(id).is_empty());
            }
        }
    }

    #[test]
    fn crpr_credit_positive_for_shared_clock_prefix() {
        let sta = engine(47, 1000.0);
        let ffs: Vec<CellId> = sta
            .netlist()
            .cells()
            .filter(|(_, c)| c.role == CellRole::Sequential)
            .map(|(id, _)| id)
            .collect();
        // Any two FFs share at least the root clock buffer in this design.
        let credit = sta.crpr_credit(ffs[0], ffs[1]);
        assert!(credit > 0.0);
        // Identical FFs share the whole path.
        let self_credit = sta.crpr_credit(ffs[0], ffs[0]);
        assert!(self_credit >= credit);
    }

    #[test]
    fn weights_reduce_arrival() {
        let mut sta = engine(48, 1000.0);
        let wns_before = sta.wns();
        // Negative weights reduce derates → smaller delays → better slack.
        let w = vec![-0.05; sta.netlist().num_cells()];
        sta.set_weights(&w);
        assert!(sta.wns() > wns_before);
        sta.clear_weights();
        assert!((sta.wns() - wns_before).abs() < 1e-9);
    }

    #[test]
    fn effective_derate_clamps_at_zero() {
        let mut sta = engine(49, 1000.0);
        let w = vec![-10.0; sta.netlist().num_cells()];
        sta.set_weights(&w);
        for (id, cell) in sta.netlist().cells() {
            if cell.role == CellRole::Combinational {
                assert_eq!(sta.effective_derate(id), 0.0, "floor is zero delay");
            }
        }
    }

    #[test]
    fn resize_matches_full_recompute() {
        let mut sta = engine(50, 1000.0);
        // Pick a combinational cell and upsize it.
        let (victim, _) = sta
            .netlist()
            .cells()
            .find(|(_, c)| {
                c.role == CellRole::Combinational
                    && sta.netlist().library().upsized(c.lib_cell).is_some()
            })
            .expect("design has a resizable gate");
        let up = sta
            .netlist()
            .library()
            .upsized(sta.netlist().cell(victim).lib_cell)
            .unwrap();
        sta.resize_cell(victim, up).unwrap();

        // Reference: fresh engine over the mutated netlist.
        let fresh = Sta::new(
            sta.netlist().clone(),
            sta.sdc().clone(),
            sta.derates().clone(),
        )
        .unwrap();
        for e in sta.netlist().endpoints() {
            assert!(
                (sta.setup_slack(e) - fresh.setup_slack(e)).abs() < 1e-6,
                "incremental and full slack must agree at {}",
                sta.netlist().cell(e).name
            );
        }
        for (id, _) in sta.netlist().cells() {
            let a = sta.required_late(id);
            let b = fresh.required_late(id);
            if a.is_finite() || b.is_finite() {
                assert!((a - b).abs() < 1e-6, "required mismatch at {id}");
            }
        }
        assert_eq!(sta.stats.incremental_updates, 1);
    }

    #[test]
    fn buffer_insert_matches_full_recompute() {
        let mut sta = engine(51, 1000.0);
        let (gate, _) = sta
            .netlist()
            .cells()
            .find(|(_, c)| c.role == CellRole::Combinational && c.output.is_some())
            .unwrap();
        let net = sta.netlist().cell(gate).output.unwrap();
        let buf_lib = sta
            .netlist()
            .library()
            .variant(Function::Buf, DriveStrength::X4)
            .unwrap();
        sta.insert_buffer(net, buf_lib, "test_buf", &[]).unwrap();
        let fresh = Sta::new(
            sta.netlist().clone(),
            sta.sdc().clone(),
            sta.derates().clone(),
        )
        .unwrap();
        for e in sta.netlist().endpoints() {
            assert!((sta.setup_slack(e) - fresh.setup_slack(e)).abs() < 1e-6);
        }
    }

    #[test]
    fn incremental_update_touches_a_small_cone() {
        // The whole point of incremental update: a single resize must
        // re-evaluate far fewer cells than a full sweep would.
        let mut sta = engine(55, 1000.0);
        let design_size = sta.netlist().num_cells() as u64;
        let (victim, _) = sta
            .netlist()
            .cells()
            .find(|(_, c)| {
                c.role == CellRole::Combinational
                    && sta.netlist().library().upsized(c.lib_cell).is_some()
            })
            .expect("resizable gate exists");
        let up = sta
            .netlist()
            .library()
            .upsized(sta.netlist().cell(victim).lib_cell)
            .unwrap();
        let before = sta.stats.cells_propagated;
        sta.resize_cell(victim, up).unwrap();
        let touched = sta.stats.cells_propagated - before;
        assert!(touched > 0);
        assert!(
            touched < 2 * design_size,
            "incremental work {touched} should not dwarf the design ({design_size})"
        );
        assert_eq!(sta.stats.incremental_updates, 1);
    }

    #[test]
    fn last_touched_covers_the_resize_cone_and_clears_on_full_update() {
        let mut sta = engine(55, 1000.0);
        assert!(
            sta.last_touched().is_empty(),
            "no incremental update has run yet"
        );
        let (victim, _) = sta
            .netlist()
            .cells()
            .find(|(_, c)| {
                c.role == CellRole::Combinational
                    && sta.netlist().library().upsized(c.lib_cell).is_some()
            })
            .expect("resizable gate exists");
        let up = sta
            .netlist()
            .library()
            .upsized(sta.netlist().cell(victim).lib_cell)
            .unwrap();

        // Reference engine over the mutated netlist: any cell whose
        // weight-independent timing quantities moved must be in the set.
        let mut reference = Sta::new(
            sta.netlist().clone(),
            sta.sdc().clone(),
            sta.derates().clone(),
        )
        .unwrap();
        reference.resize_cell(victim, up).unwrap();
        reference.full_update();

        sta.resize_cell(victim, up).unwrap();
        let touched = sta.last_touched().to_vec();
        assert!(touched.contains(&victim), "the seed itself is touched");
        // Canonical form: sorted by cell index, duplicate-free.
        let idx: Vec<usize> = touched.iter().map(|c| c.index()).collect();
        for w in idx.windows(2) {
            assert!(w[0] < w[1], "touched not canonical: {idx:?}");
        }
        let same = |a: f64, b: f64| !changed(a, b);
        for (id, _) in sta.netlist().cells() {
            if touched.contains(&id) {
                continue;
            }
            assert!(
                same(sta.gate_delay(id), reference.gate_delay(id))
                    && same(sta.clock_arrival_late(id), reference.clock_arrival_late(id)),
                "untouched cell {id} must have kept its cached values"
            );
        }

        // Weight installation invalidates the set (full repropagation).
        sta.set_weights(&vec![0.0; sta.netlist().num_cells()]);
        assert!(sta.last_touched().is_empty());
    }

    #[test]
    fn clock_paths_start_at_the_source() {
        let sta = engine(56, 1000.0);
        for (id, cell) in sta.netlist().cells() {
            if cell.role == CellRole::Sequential {
                let path = sta.clock_path(id);
                assert!(!path.is_empty());
                assert_eq!(
                    sta.netlist().cell(path[0]).role,
                    CellRole::ClockSource,
                    "clock path must start at the source"
                );
                for &c in &path[1..] {
                    assert_eq!(sta.netlist().cell(c).role, CellRole::ClockBuffer);
                }
            }
        }
    }

    #[test]
    fn hold_slack_exists_for_ffs_only() {
        let sta = engine(52, 1000.0);
        for e in sta.netlist().endpoints() {
            match sta.netlist().cell(e).role {
                CellRole::Sequential => assert!(sta.hold_slack(e).is_some()),
                _ => assert!(sta.hold_slack(e).is_none()),
            }
        }
    }

    #[test]
    fn required_less_weights_improves_with_weights() {
        // Required times at internal cells must also move when weights
        // shrink downstream delays.
        let mut sta = engine(53, 1000.0);
        let before: Vec<f64> = (0..sta.netlist().num_cells())
            .map(|i| sta.required_late(CellId::new(i)))
            .collect();
        sta.set_weights(&vec![-0.05; sta.netlist().num_cells()]);
        let mut improved = 0;
        for (i, b) in before.iter().enumerate() {
            let after = sta.required_late(CellId::new(i));
            if b.is_finite() && after.is_finite() && after > b + 1e-9 {
                improved += 1;
            }
        }
        assert!(improved > 0, "some required times must relax");
    }

    #[test]
    fn input_delay_shifts_arrivals() {
        let n = GeneratorConfig::small(54).generate();
        let mut sdc = Sdc::with_period(1500.0);
        sdc.input_delay_late = 200.0;
        let shifted = Sta::new(n.clone(), sdc, DerateSet::standard()).unwrap();
        let base = Sta::new(n, Sdc::with_period(1500.0), DerateSet::standard()).unwrap();
        // Primary-input-fed endpoints get later arrivals.
        let mut some_later = false;
        for e in base.netlist().endpoints() {
            if shifted.endpoint_arrival(e) > base.endpoint_arrival(e) + 1.0 {
                some_later = true;
            }
        }
        assert!(some_later);
    }

    #[test]
    fn hand_built_two_gate_delay_arithmetic() {
        // clk→ff0→inv→ff1 with known characterization: verify the exact
        // arrival arithmetic.
        let lib = Library::standard();
        let mut b = NetlistBuilder::new("arith", lib);
        let clk = b.add_clock_port("clk", Point::ORIGIN);
        let d = b.add_input("d", Point::ORIGIN);
        let ff0 = b
            .add_flip_flop("ff0", "DFF_X1", Point::ORIGIN, clk)
            .unwrap();
        b.connect_flip_flop_d_net(ff0, d);
        let inv = b
            .add_gate("inv", "INV_X1", Point::ORIGIN, &[b.cell_output(ff0)])
            .unwrap();
        let ff1 = b
            .add_flip_flop("ff1", "DFF_X1", Point::ORIGIN, clk)
            .unwrap();
        b.connect_flip_flop_d(ff1, inv).unwrap();
        let q = b.cell_output(ff1);
        b.add_output("y", Point::ORIGIN, q).unwrap();
        let n = b.build().unwrap();

        let derates = DerateSet::flat(1.2, 0.9);
        let sta = Sta::new(n, Sdc::with_period(1000.0), derates).unwrap();
        let nl = sta.netlist();
        let ff0 = nl.find_cell("ff0").unwrap();
        let inv = nl.find_cell("inv").unwrap();
        let ff1 = nl.find_cell("ff1").unwrap();

        // All cells co-located: zero wire delay. Launch = clk2q × 1.2
        // (clock late derate = flat 1.2 here).
        let launch = sta.gate_delay(ff0) * 1.2;
        assert!((sta.arrival_late(ff0) - launch).abs() < 1e-9);
        let inv_arr = launch + sta.gate_delay(inv) * 1.2;
        assert!((sta.arrival_late(inv) - inv_arr).abs() < 1e-9);
        assert!((sta.endpoint_arrival(ff1) - inv_arr).abs() < 1e-9);
        // Setup slack = T + clk_early(0) − setup − arrival.
        let setup = nl.library().cell(nl.cell(ff1).lib_cell).setup;
        let expect = 1000.0 - setup - inv_arr;
        assert!((sta.setup_slack(ff1) - expect).abs() < 1e-9);
    }
}
