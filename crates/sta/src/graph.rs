//! The timing graph: structural view of a netlist for timing traversal.
//!
//! Nodes are cell instances (the paper's "delay units"); edges are
//! driver→sink net connections annotated with estimated wire delay. The
//! graph caches the topological order and per-cell classification so the
//! propagation engines ([`Sta`](crate::Sta)) are simple array sweeps.

use netlist::{BuildError, CellId, CellRole, Netlist, PinIndex};

/// An edge arriving at a cell's input pin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaninEdge {
    /// Driving cell.
    pub from: CellId,
    /// Input pin on the receiving cell.
    pub pin: PinIndex,
    /// Estimated wire delay in ps.
    pub wire_delay: f64,
}

/// An edge leaving a cell's output pin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FanoutEdge {
    /// Receiving cell.
    pub to: CellId,
    /// Input pin on the receiving cell.
    pub pin: PinIndex,
    /// Estimated wire delay in ps.
    pub wire_delay: f64,
}

/// Cached structural view of a [`Netlist`] for timing analysis.
#[derive(Debug, Clone)]
pub struct TimingGraph {
    fanins: Vec<Vec<FaninEdge>>,
    fanouts: Vec<Vec<FanoutEdge>>,
    topo: Vec<CellId>,
    topo_pos: Vec<u32>,
    is_clock_network: Vec<bool>,
}

impl TimingGraph {
    /// Builds the graph from `netlist`.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::CombinationalCycle`] if the netlist's timing
    /// dependency relation is cyclic.
    pub fn new(netlist: &Netlist) -> Result<Self, BuildError> {
        let n = netlist.num_cells();
        let mut fanins: Vec<Vec<FaninEdge>> = vec![Vec::new(); n];
        let mut fanouts: Vec<Vec<FanoutEdge>> = vec![Vec::new(); n];
        for (_, net) in netlist.nets() {
            let Some(driver) = net.driver else { continue };
            let from_loc = netlist.cell(driver).loc;
            for &(sink, pin) in &net.sinks {
                let wire_delay = netlist.wire_delay(from_loc.manhattan(netlist.cell(sink).loc));
                fanins[sink.index()].push(FaninEdge {
                    from: driver,
                    pin,
                    wire_delay,
                });
                fanouts[driver.index()].push(FanoutEdge {
                    to: sink,
                    pin,
                    wire_delay,
                });
            }
        }
        let topo = netlist.topo_order()?;
        let mut topo_pos = vec![0u32; n];
        for (pos, &c) in topo.iter().enumerate() {
            topo_pos[c.index()] = pos as u32;
        }
        let is_clock_network = netlist
            .cells()
            .map(|(_, c)| c.role.is_clock_network())
            .collect();
        Ok(Self {
            fanins,
            fanouts,
            topo,
            topo_pos,
            is_clock_network,
        })
    }

    /// Edges into `cell`'s input pins.
    #[inline]
    pub fn fanins(&self, cell: CellId) -> &[FaninEdge] {
        &self.fanins[cell.index()]
    }

    /// Edges out of `cell`'s output pin.
    #[inline]
    pub fn fanouts(&self, cell: CellId) -> &[FanoutEdge] {
        &self.fanouts[cell.index()]
    }

    /// Cells in timing-dependency topological order.
    #[inline]
    pub fn topo(&self) -> &[CellId] {
        &self.topo
    }

    /// Position of `cell` in [`TimingGraph::topo`].
    #[inline]
    pub fn topo_pos(&self, cell: CellId) -> usize {
        self.topo_pos[cell.index()] as usize
    }

    /// Whether `cell` belongs to the clock distribution network.
    #[inline]
    pub fn in_clock_network(&self, cell: CellId) -> bool {
        self.is_clock_network[cell.index()]
    }

    /// Number of nodes.
    pub fn num_cells(&self) -> usize {
        self.fanins.len()
    }

    /// Total number of edges.
    pub fn num_edges(&self) -> usize {
        self.fanins.iter().map(Vec::len).sum()
    }

    /// Data fanins of a cell: for flip-flops only the `D` edge, and edges
    /// from clock-network cells are excluded (a data gate fed by a clock
    /// buffer would be clock gating, which this model does not time).
    pub fn data_fanins<'a>(
        &'a self,
        netlist: &'a Netlist,
        cell: CellId,
    ) -> impl Iterator<Item = &'a FaninEdge> {
        let role = netlist.cell(cell).role;
        self.fanins(cell).iter().filter(move |e| {
            if self.is_clock_network[e.from.index()] {
                return false;
            }
            match role {
                CellRole::Sequential => e.pin == PinIndex::FF_D,
                _ => true,
            }
        })
    }

    /// Data fanouts of a cell: edges into flip-flop `CK` pins are excluded.
    pub fn data_fanouts<'a>(
        &'a self,
        netlist: &'a Netlist,
        cell: CellId,
    ) -> impl Iterator<Item = &'a FanoutEdge> {
        self.fanouts(cell).iter().filter(move |e| {
            let to_role = netlist.cell(e.to).role;
            (to_role != CellRole::Sequential || e.pin != PinIndex::FF_CK)
                && !to_role.is_clock_network()
        })
    }

    /// The clock fanin of a flip-flop (its `CK` edge), if present.
    pub fn clock_fanin(&self, netlist: &Netlist, ff: CellId) -> Option<&FaninEdge> {
        debug_assert_eq!(netlist.cell(ff).role, CellRole::Sequential);
        self.fanins(ff).iter().find(|e| e.pin == PinIndex::FF_CK)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::GeneratorConfig;

    #[test]
    fn graph_matches_netlist_shape() {
        let n = GeneratorConfig::small(17).generate();
        let g = TimingGraph::new(&n).unwrap();
        assert_eq!(g.num_cells(), n.num_cells());
        let expected_edges: usize = n.nets().map(|(_, net)| net.sinks.len()).sum();
        assert_eq!(g.num_edges(), expected_edges);
        assert_eq!(g.topo().len(), n.num_cells());
    }

    #[test]
    fn topo_pos_is_consistent() {
        let n = GeneratorConfig::small(18).generate();
        let g = TimingGraph::new(&n).unwrap();
        for (pos, &c) in g.topo().iter().enumerate() {
            assert_eq!(g.topo_pos(c), pos);
        }
    }

    #[test]
    fn ff_data_fanins_are_d_only() {
        let n = GeneratorConfig::small(19).generate();
        let g = TimingGraph::new(&n).unwrap();
        for (id, cell) in n.cells() {
            if cell.role == CellRole::Sequential {
                let data: Vec<_> = g.data_fanins(&n, id).collect();
                assert_eq!(data.len(), 1, "FF has exactly one data fanin (D)");
                assert_eq!(data[0].pin, PinIndex::FF_D);
                assert!(g.clock_fanin(&n, id).is_some());
            }
        }
    }

    #[test]
    fn clock_cells_marked() {
        let n = GeneratorConfig::small(20).generate();
        let g = TimingGraph::new(&n).unwrap();
        let marked = (0..n.num_cells())
            .filter(|&i| g.in_clock_network(CellId::new(i)))
            .count();
        let expect = n.cells().filter(|(_, c)| c.role.is_clock_network()).count();
        assert_eq!(marked, expect);
        assert!(marked > 0);
    }

    #[test]
    fn wire_delay_scales_with_distance() {
        let n = GeneratorConfig::small(21).generate();
        let g = TimingGraph::new(&n).unwrap();
        for (id, _) in n.cells() {
            for e in g.fanins(id) {
                let len = n.cell(e.from).loc.manhattan(n.cell(id).loc);
                assert!((e.wire_delay - n.wire_delay(len)).abs() < 1e-9);
                assert!(e.wire_delay >= n.library().wire_delay_per_um * len);
            }
        }
    }
}
