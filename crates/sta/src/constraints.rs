//! Timing constraints (the SDC of this reproduction).

use serde::{Deserialize, Serialize};

/// Design timing constraints: a single clock domain plus boundary delays.
///
/// ```
/// use sta::Sdc;
/// let sdc = Sdc::with_period(1200.0);
/// assert_eq!(sdc.clock_period, 1200.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sdc {
    /// Clock period in ps.
    pub clock_period: f64,
    /// Latest arrival of primary inputs relative to the clock edge, ps.
    pub input_delay_late: f64,
    /// Earliest arrival of primary inputs relative to the clock edge, ps.
    pub input_delay_early: f64,
    /// Required margin at primary outputs before the next edge, ps
    /// (external setup time of the receiving device).
    pub output_delay: f64,
}

impl Sdc {
    /// Constraints with the given clock period and zero boundary delays.
    pub fn with_period(clock_period: f64) -> Self {
        Self {
            clock_period,
            input_delay_late: 0.0,
            input_delay_early: 0.0,
            output_delay: 0.0,
        }
    }

    /// Returns a copy with a different clock period (used by the harness to
    /// sweep target frequencies until a design has timing violations).
    pub fn at_period(&self, clock_period: f64) -> Self {
        Self {
            clock_period,
            ..self.clone()
        }
    }
}

impl Default for Sdc {
    fn default() -> Self {
        Self::with_period(1000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let sdc = Sdc::with_period(800.0);
        assert_eq!(sdc.input_delay_late, 0.0);
        let faster = sdc.at_period(600.0);
        assert_eq!(faster.clock_period, 600.0);
        assert_eq!(Sdc::default().clock_period, 1000.0);
    }
}
