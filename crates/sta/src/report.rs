//! Human-readable timing reports in the style industrial timers print:
//! per-path cell-by-cell arrival breakdowns, endpoint summaries, and
//! slack histograms.

use crate::analysis::Sta;
use crate::paths::{worst_paths_to_endpoint, Path};
use crate::pba::{gba_path_timing, pba_timing};
use netlist::{CellId, CellRole};
use std::fmt::Write as _;

/// Formats a cell-by-cell breakdown of one path, in both the GBA and
/// golden PBA views.
///
/// ```text
/// Startpoint: ff_0_3 (flip-flop clocked by clk)
/// Endpoint:   ff_1_7 (setup check)
///
///   cell            lib        incr(GBA)   arrival    derate
///   ...
/// ```
pub fn path_report(sta: &Sta, path: &Path) -> String {
    let nl = sta.netlist();
    let mut out = String::new();
    let start = path.startpoint();
    let end = path.endpoint;
    let _ = writeln!(
        out,
        "Startpoint: {} ({})",
        nl.cell(start).name,
        match nl.cell(start).role {
            CellRole::Sequential => "flip-flop clock-to-Q",
            CellRole::Input => "primary input",
            _ => "startpoint",
        }
    );
    let _ = writeln!(
        out,
        "Endpoint:   {} ({})",
        nl.cell(end).name,
        match nl.cell(end).role {
            CellRole::Sequential => "setup check against clock",
            CellRole::Output => "primary output",
            _ => "endpoint",
        }
    );
    let _ = writeln!(
        out,
        "Path group: {} gates, GBA depth view vs PBA\n",
        path.num_gates()
    );
    let _ = writeln!(
        out,
        "  {:<18} {:<10} {:>10} {:>10} {:>8}",
        "cell", "lib", "incr (ps)", "arrival", "derate"
    );

    let mut arrival = sta.arrival_late(start);
    let _ = writeln!(
        out,
        "  {:<18} {:<10} {:>10.1} {:>10.1} {:>8}",
        nl.cell(start).name,
        nl.library().cell(nl.cell(start).lib_cell).name,
        arrival,
        arrival,
        "-"
    );
    let mut prev = start;
    for &g in &path.cells[1..path.cells.len().saturating_sub(1)] {
        let wire = sta
            .graph()
            .fanins(g)
            .iter()
            .find(|e| e.from == prev)
            .map(|e| e.wire_delay)
            .unwrap_or(0.0);
        let derate = sta.effective_derate(g);
        let incr = wire + sta.gate_delay(g) * derate;
        arrival += incr;
        let _ = writeln!(
            out,
            "  {:<18} {:<10} {:>10.1} {:>10.1} {:>8.4}",
            nl.cell(g).name,
            nl.library().cell(nl.cell(g).lib_cell).name,
            incr,
            arrival,
            derate
        );
        prev = g;
    }
    let wire = sta
        .graph()
        .fanins(end)
        .iter()
        .find(|e| e.from == prev)
        .map(|e| e.wire_delay)
        .unwrap_or(0.0);
    arrival += wire;
    let _ = writeln!(
        out,
        "  {:<18} {:<10} {:>10.1} {:>10.1} {:>8}",
        nl.cell(end).name,
        nl.library().cell(nl.cell(end).lib_cell).name,
        wire,
        arrival,
        "-"
    );

    let gba = gba_path_timing(sta, path);
    let pba = pba_timing(sta, path);
    let _ = writeln!(out);
    let _ = writeln!(out, "  data required time (GBA) {:>12.1}", gba.required);
    let _ = writeln!(out, "  data arrival time (GBA)  {:>12.1}", gba.arrival);
    let _ = writeln!(out, "  slack (GBA)              {:>12.1}", gba.slack);
    let _ = writeln!(
        out,
        "  slack (golden PBA)       {:>12.1}   (path depth {}, bbox {:.0} um, derate {:.4})",
        pba.slack, pba.depth, pba.distance, pba.derate
    );
    let _ = writeln!(
        out,
        "  pessimism removed by PBA {:>12.1}",
        pba.slack - gba.slack
    );
    out
}

/// Formats the worst `n` endpoints with their slacks, one line each.
pub fn endpoint_summary(sta: &Sta, n: usize) -> String {
    let mut rows: Vec<(f64, CellId)> = sta
        .netlist()
        .endpoints()
        .into_iter()
        .map(|e| (sta.setup_slack(e), e))
        .filter(|(s, _)| s.is_finite())
        .collect();
    rows.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite slacks"));
    let mut out = String::new();
    let _ = writeln!(
        out,
        "  {:<20} {:>12} {:>12} {:>10}",
        "endpoint", "arrival", "required", "slack"
    );
    for (slack, e) in rows.into_iter().take(n) {
        let _ = writeln!(
            out,
            "  {:<20} {:>12.1} {:>12.1} {:>10.1}{}",
            sta.netlist().cell(e).name,
            sta.endpoint_arrival(e),
            sta.endpoint_required(e),
            slack,
            if slack < 0.0 { "  (VIOLATED)" } else { "" }
        );
    }
    out
}

/// A text histogram of endpoint setup slacks in `buckets` bins.
pub fn slack_histogram(sta: &Sta, buckets: usize) -> String {
    let slacks: Vec<f64> = sta
        .netlist()
        .endpoints()
        .into_iter()
        .map(|e| sta.setup_slack(e))
        .filter(|s| s.is_finite())
        .collect();
    let mut out = String::new();
    if slacks.is_empty() || buckets == 0 {
        out.push_str("  (no constrained endpoints)\n");
        return out;
    }
    let lo = slacks.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = slacks.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let width = ((hi - lo) / buckets as f64).max(1e-9);
    let mut counts = vec![0usize; buckets];
    for &s in &slacks {
        let b = (((s - lo) / width) as usize).min(buckets - 1);
        counts[b] += 1;
    }
    let max = counts.iter().copied().max().unwrap_or(1).max(1);
    for (b, &c) in counts.iter().enumerate() {
        let x0 = lo + b as f64 * width;
        let bar = "#".repeat((c * 50).div_ceil(max).min(50));
        let _ = writeln!(out, "  {x0:>9.0} .. {:>9.0} | {c:>5} {bar}", x0 + width);
    }
    out
}

/// Full report: summary line, worst endpoints, worst path breakdown,
/// slack histogram.
pub fn timing_report(sta: &Sta, top_endpoints: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "design {}: {} cells, clock period {:.1} ps",
        sta.netlist().name(),
        sta.netlist().num_cells(),
        sta.sdc().clock_period
    );
    let _ = writeln!(
        out,
        "WNS {:.1} ps, TNS {:.1} ps, {} violating endpoints\n",
        sta.wns(),
        sta.tns(),
        sta.violating_endpoints().len()
    );
    let _ = writeln!(out, "worst endpoints:");
    out.push_str(&endpoint_summary(sta, top_endpoints));
    if let Some(&worst) = sta.violating_endpoints().first() {
        if let Some(path) = worst_paths_to_endpoint(sta, worst, 1).into_iter().next() {
            let _ = writeln!(out, "\nworst path:");
            out.push_str(&path_report(sta, &path));
        }
    }
    let _ = writeln!(out, "\nendpoint slack distribution:");
    out.push_str(&slack_histogram(sta, 12));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aocv::DerateSet;
    use crate::constraints::Sdc;
    use netlist::GeneratorConfig;

    fn engine() -> Sta {
        let n = GeneratorConfig::small(501).generate();
        let probe = Sta::new(n.clone(), Sdc::with_period(10_000.0), DerateSet::standard()).unwrap();
        let period = 10_000.0 - probe.wns() - 200.0;
        Sta::new(n, Sdc::with_period(period), DerateSet::standard()).unwrap()
    }

    #[test]
    fn path_report_contains_every_cell() {
        let sta = engine();
        let e = sta.violating_endpoints()[0];
        let path = worst_paths_to_endpoint(&sta, e, 1)[0].clone();
        let report = path_report(&sta, &path);
        for &c in &path.cells {
            assert!(
                report.contains(&sta.netlist().cell(c).name),
                "missing {}",
                sta.netlist().cell(c).name
            );
        }
        assert!(report.contains("slack (GBA)"));
        assert!(report.contains("slack (golden PBA)"));
    }

    #[test]
    fn path_report_arrival_matches_engine() {
        let sta = engine();
        let e = sta.violating_endpoints()[0];
        let path = worst_paths_to_endpoint(&sta, e, 1)[0].clone();
        let report = path_report(&sta, &path);
        // The final arrival printed must equal the enumerated arrival.
        let expect = format!("{:.1}", path.gba_arrival);
        assert!(
            report.contains(&expect),
            "report should contain arrival {expect}:\n{report}"
        );
    }

    #[test]
    fn endpoint_summary_sorted_and_flagged() {
        let sta = engine();
        let summary = endpoint_summary(&sta, 5);
        assert!(summary.contains("VIOLATED"));
        assert!(summary.lines().count() >= 2);
    }

    #[test]
    fn histogram_covers_all_endpoints() {
        let sta = engine();
        let h = slack_histogram(&sta, 8);
        let total: usize = h
            .lines()
            .filter_map(|l| l.split('|').nth(1))
            .filter_map(|r| r.split_whitespace().next())
            .filter_map(|c| c.parse::<usize>().ok())
            .sum();
        let expect = sta
            .netlist()
            .endpoints()
            .into_iter()
            .filter(|&e| sta.setup_slack(e).is_finite())
            .count();
        assert_eq!(total, expect);
    }

    #[test]
    fn full_report_is_well_formed() {
        let sta = engine();
        let r = timing_report(&sta, 5);
        assert!(r.contains("WNS"));
        assert!(r.contains("worst path:"));
        assert!(r.contains("slack distribution"));
    }

    #[test]
    fn histogram_handles_empty() {
        let sta = engine();
        assert!(slack_histogram(&sta, 0).contains("no constrained endpoints"));
    }
}
