//! Path-based analysis (PBA) — the golden timing reference.
//!
//! For one concrete [`Path`], PBA removes all three GBA pessimism sources:
//!
//! 1. **Path-specific AOCV derate** — the derate is looked up once with the
//!    path's true cell depth and its own bounding box, instead of each
//!    gate's worst-case depth/distance.
//! 2. **Path-specific slew** — each gate's delay uses the transition of
//!    its actual predecessor on the path, not the worst transition over
//!    all fanins.
//! 3. **CRPR** — the launch and capture clock paths' common prefix cannot
//!    simultaneously be late and early; PBA credits the difference back.
//!
//! [`gba_path_timing`] evaluates the *same* path under GBA rules (per-gate
//! effective derates, worst slew, no CRPR), which is both the baseline for
//! pass-ratio comparisons and the row model of the mGBA least-squares
//! problem.

use crate::analysis::Sta;
use crate::paths::Path;
use netlist::point::BoundingBox;
use netlist::{CellId, CellRole};
use parallel::Parallelism;
use serde::{Deserialize, Serialize};

/// Timing of a single path under one analysis mode.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathTiming {
    /// Data arrival at the endpoint pin, ps.
    pub arrival: f64,
    /// Required time at the endpoint pin, ps.
    pub required: f64,
    /// Slack (`required − arrival`), ps.
    pub slack: f64,
    /// Cell depth used for the derate lookup.
    pub depth: usize,
    /// Bounding-box diagonal used for the derate lookup, µm.
    pub distance: f64,
    /// Derate applied (path derate for PBA; mean per-gate effective
    /// derate for GBA).
    pub derate: f64,
}

/// Finds the wire delay of the edge `from → to` on the timing graph.
fn wire_between(sta: &Sta, from: CellId, to: CellId) -> f64 {
    sta.graph()
        .fanins(to)
        .iter()
        .find(|e| e.from == from)
        .map(|e| e.wire_delay)
        .expect("consecutive path cells are connected")
}

/// Launch-point arrival in the engine's (possibly weighted) GBA view.
fn launch_arrival_gba(sta: &Sta, launch: CellId) -> f64 {
    match sta.netlist().cell(launch).role {
        // Single clock fanin / constant, so the graph arrival is exact.
        CellRole::Sequential | CellRole::Input => sta.arrival_late(launch),
        _ => panic!("paths launch from flip-flops or input ports"),
    }
}

/// Launch-point arrival in the golden PBA view: always the *unweighted*
/// clock-to-Q derate, independent of any installed mGBA weights.
fn launch_arrival_pba(sta: &Sta, launch: CellId) -> f64 {
    match sta.netlist().cell(launch).role {
        CellRole::Sequential => {
            sta.clock_arrival_late(launch) + sta.gate_delay(launch) * sta.derates().clock_late
        }
        CellRole::Input => sta.arrival_late(launch),
        _ => panic!("paths launch from flip-flops or input ports"),
    }
}

/// Required time at the endpoint, optionally with a CRPR credit.
fn endpoint_required(sta: &Sta, path: &Path, crpr: bool) -> f64 {
    let base = sta.endpoint_required(path.endpoint);
    if crpr {
        base + sta.crpr_credit(path.startpoint(), path.endpoint)
    } else {
        base
    }
}

/// The path's own AOCV coordinates: exact gate count and the bounding box
/// of the path's cells.
fn path_coordinates(sta: &Sta, path: &Path) -> (usize, f64) {
    let depth = path.num_gates();
    let bb: BoundingBox = path
        .cells
        .iter()
        .map(|&c| sta.netlist().cell(c).loc)
        .collect();
    (depth, bb.diagonal())
}

/// Evaluates `path` under **PBA** (golden) rules.
///
/// # Panics
///
/// Panics if `path` is not a well-formed path of `sta`'s netlist
/// (consecutive cells must be connected).
pub fn pba_timing(sta: &Sta, path: &Path) -> PathTiming {
    let (depth, distance) = path_coordinates(sta, path);
    if faultinject::fire("pba.retime").is_some() {
        // Both `error` and `nan` manifest as a corrupted (non-finite)
        // golden retime — PBA has no error channel, and the point of this
        // failpoint is proving the downstream solver guards catch bad
        // golden data instead of fitting to it.
        return PathTiming {
            arrival: f64::NAN,
            required: f64::NAN,
            slack: f64::NAN,
            depth,
            distance,
            derate: f64::NAN,
        };
    }
    let derate = sta.derates().data_late.lookup(depth as f64, distance);

    let launch = path.startpoint();
    let mut arrival = launch_arrival_pba(sta, launch);
    let mut prev = launch;
    for &g in &path.cells[1..path.cells.len() - 1] {
        arrival += wire_between(sta, prev, g);
        // Path-specific slew: the transition of the actual predecessor.
        let delay = sta.fixed_delay(g) + sta.slew_sensitivity(g) * sta.slew(prev);
        arrival += delay * derate;
        prev = g;
    }
    arrival += wire_between(sta, prev, path.endpoint);

    let required = endpoint_required(sta, path, true);
    PathTiming {
        arrival,
        required,
        slack: required - arrival,
        depth,
        distance,
        derate,
    }
}

/// Evaluates `path` under **GBA** rules with the engine's current
/// effective derates (per-gate worst-case derate, worst slew, no CRPR).
///
/// With all weights zero this is the original GBA path slack; with fitted
/// mGBA weights installed it is the corrected mGBA path slack.
///
/// # Panics
///
/// Panics if `path` is not a well-formed path of `sta`'s netlist.
pub fn gba_path_timing(sta: &Sta, path: &Path) -> PathTiming {
    let (depth, distance) = path_coordinates(sta, path);
    let launch = path.startpoint();
    let mut arrival = launch_arrival_gba(sta, launch);
    let mut prev = launch;
    let mut derate_sum = 0.0;
    let mut gates = 0usize;
    for &g in &path.cells[1..path.cells.len() - 1] {
        arrival += wire_between(sta, prev, g);
        let eff = sta.effective_derate(g);
        arrival += sta.gate_delay(g) * eff;
        derate_sum += eff;
        gates += 1;
        prev = g;
    }
    arrival += wire_between(sta, prev, path.endpoint);

    let required = endpoint_required(sta, path, false);
    PathTiming {
        arrival,
        required,
        slack: required - arrival,
        depth,
        distance,
        derate: if gates > 0 {
            derate_sum / gates as f64
        } else {
            1.0
        },
    }
}

/// Evaluates a batch of paths under **PBA** rules, fanning the per-path
/// retimes out over `par` threads.
///
/// Each path's timing is an independent function of `(sta, path)` and is
/// written to its own output slot, so the result is identical to mapping
/// [`pba_timing`] serially — element for element, bit for bit — for any
/// thread count.
///
/// # Panics
///
/// Panics if any path is not a well-formed path of `sta`'s netlist.
pub fn pba_timing_batch(sta: &Sta, paths: &[Path], par: Parallelism) -> Vec<PathTiming> {
    let _span = obs::span("pba_batch");
    obs::counter_add("sta.pba.paths_retimed", paths.len() as u64);
    parallel::par_map(par, paths, |p| pba_timing(sta, p))
}

/// Evaluates a batch of paths under **GBA** rules (see
/// [`gba_path_timing`]), fanning out over `par` threads with the same
/// order- and bit-exactness guarantee as [`pba_timing_batch`].
///
/// # Panics
///
/// Panics if any path is not a well-formed path of `sta`'s netlist.
pub fn gba_path_timing_batch(sta: &Sta, paths: &[Path], par: Parallelism) -> Vec<PathTiming> {
    let _span = obs::span("gba_batch");
    obs::counter_add("sta.gba.paths_retimed", paths.len() as u64);
    parallel::par_map(par, paths, |p| gba_path_timing(sta, p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aocv::DerateSet;
    use crate::constraints::Sdc;
    use crate::paths::{select_critical_paths, worst_paths_to_endpoint};
    use netlist::GeneratorConfig;

    fn engine(seed: u64) -> Sta {
        let n = GeneratorConfig::small(seed).generate();
        Sta::new(n, Sdc::with_period(1200.0), DerateSet::standard()).unwrap()
    }

    #[test]
    fn pba_never_more_pessimistic_than_gba() {
        // The fundamental soundness property: for every path, the PBA
        // slack is at least the GBA slack (monotone tables + slew + CRPR).
        let sta = engine(71);
        let paths = select_critical_paths(&sta, 5, usize::MAX, false);
        assert!(!paths.is_empty());
        for p in &paths {
            let pba = pba_timing(&sta, p);
            let gba = gba_path_timing(&sta, p);
            assert!(
                pba.slack >= gba.slack - 1e-9,
                "PBA {:.3} must be ≥ GBA {:.3} on {:?}",
                pba.slack,
                gba.slack,
                p.cells
            );
        }
    }

    #[test]
    fn gba_path_timing_matches_enumerated_arrival() {
        let sta = engine(72);
        for e in sta.netlist().endpoints().into_iter().take(8) {
            for p in worst_paths_to_endpoint(&sta, e, 3) {
                let gba = gba_path_timing(&sta, &p);
                assert!(
                    (gba.arrival - p.gba_arrival).abs() < 1e-6,
                    "path eval must agree with enumeration"
                );
                assert!((gba.slack - p.gba_slack).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn pba_depth_is_exact_gate_count() {
        let sta = engine(73);
        let e = sta.netlist().endpoints()[0];
        let p = &worst_paths_to_endpoint(&sta, e, 1)[0];
        let t = pba_timing(&sta, p);
        assert_eq!(t.depth, p.num_gates());
        assert!(t.distance > 0.0);
        assert!(t.derate > 1.0);
    }

    #[test]
    fn pba_derate_leq_every_gate_derate() {
        // Path depth ≥ per-gate worst depth and path box ⊆ per-gate worst
        // box, so the path derate is the smallest in play.
        let sta = engine(74);
        let paths = select_critical_paths(&sta, 3, 200, false);
        for p in &paths {
            let t = pba_timing(&sta, p);
            for &g in &p.cells[1..p.cells.len() - 1] {
                assert!(
                    t.derate <= sta.gate_derate(g) + 1e-9,
                    "path derate must lower-bound gate derates"
                );
            }
        }
    }

    #[test]
    fn crpr_improves_pba_required_for_ff_pairs() {
        let sta = engine(75);
        let paths = select_critical_paths(&sta, 2, 100, false);
        let ff_path = paths.iter().find(|p| {
            sta.netlist().cell(p.startpoint()).role == CellRole::Sequential
                && sta.netlist().cell(p.endpoint).role == CellRole::Sequential
        });
        let p = ff_path.expect("design has FF-to-FF paths");
        let with = endpoint_required(&sta, p, true);
        let without = endpoint_required(&sta, p, false);
        assert!(with > without, "CRPR credit must relax the requirement");
    }

    #[test]
    fn negative_weights_close_the_gap() {
        // Installing uniform negative weights moves GBA path slack toward
        // PBA (less pessimism), never past the clamp.
        let mut sta = engine(76);
        // Pick a path with at least one gate (bank-0 flip-flops are fed
        // directly by ports, so their paths carry no derateable delay).
        let p = sta
            .netlist()
            .endpoints()
            .into_iter()
            .flat_map(|e| worst_paths_to_endpoint(&sta, e, 1))
            .find(|p| p.num_gates() > 0)
            .expect("design has multi-gate paths");
        let before = gba_path_timing(&sta, &p).slack;
        sta.set_weights(&vec![-0.04; sta.netlist().num_cells()]);
        let after = gba_path_timing(&sta, &p).slack;
        assert!(after > before);
    }

    #[test]
    fn batch_timing_is_bit_identical_to_serial_maps() {
        let sta = engine(78);
        let paths = select_critical_paths(&sta, 10, usize::MAX, false);
        assert!(paths.len() > 1);
        let pba_serial: Vec<PathTiming> = paths.iter().map(|p| pba_timing(&sta, p)).collect();
        let gba_serial: Vec<PathTiming> = paths.iter().map(|p| gba_path_timing(&sta, p)).collect();
        for threads in [1, 2, 4] {
            let par = Parallelism::new(threads);
            assert_eq!(pba_timing_batch(&sta, &paths, par), pba_serial);
            assert_eq!(gba_path_timing_batch(&sta, &paths, par), gba_serial);
        }
    }

    #[test]
    fn flat_tables_remove_depth_pessimism_gap() {
        // With a flat derate table and no skip connections the AOCV
        // component of the GBA/PBA delay gap vanishes; remaining gap comes
        // only from slew and CRPR. Verify the gap shrinks vs. AOCV tables.
        let n = GeneratorConfig::small(77).generate();
        let aocv = Sta::new(n.clone(), Sdc::with_period(1200.0), DerateSet::standard()).unwrap();
        // Flat data tables but identical clock derates, so the CRPR
        // contribution to the gap is held constant.
        let mut flat_set = DerateSet::standard();
        flat_set.data_late = crate::aocv::DeratingTable::flat(1.2);
        flat_set.data_early = crate::aocv::DeratingTable::flat(0.9);
        let flat = Sta::new(n, Sdc::with_period(1200.0), flat_set).unwrap();
        let gap = |sta: &Sta| -> f64 {
            let paths = select_critical_paths(sta, 3, 300, false);
            paths
                .iter()
                .map(|p| pba_timing(sta, p).slack - gba_path_timing(sta, p).slack)
                .sum::<f64>()
                / paths.len() as f64
        };
        let g_aocv = gap(&aocv);
        let g_flat = gap(&flat);
        assert!(g_aocv > 0.0);
        assert!(g_flat >= 0.0);
        assert!(
            g_aocv > g_flat,
            "AOCV gap {g_aocv:.3} should exceed flat gap {g_flat:.3}"
        );
    }
}
