//! Multi-corner analysis.
//!
//! Industrial signoff times a design at several process/voltage/
//! temperature corners and takes the worst case per check type: **setup
//! at the slow corner** (longest delays eat into the period) and **hold
//! at the fast corner** (shortest delays race the clock). This module
//! replicates one engine per corner over delay-scaled copies of the
//! library ([`netlist::Library::scale_delays`]) and merges the verdicts.
//!
//! The OCV derating of the paper is *within-corner* variation; corners
//! capture *global* variation. Both margins coexist in real flows, and
//! the mGBA correction applies per corner (each corner's GBA has its own
//! pessimism vs that corner's PBA).

use crate::analysis::Sta;
use crate::aocv::DerateSet;
use crate::constraints::Sdc;
use netlist::{BuildError, CellId, Netlist};
use std::fmt::Write as _;

/// One PVT corner: a name, a global delay scale, and a derate set.
#[derive(Debug, Clone, PartialEq)]
pub struct Corner {
    /// Corner name (`ss_0p72v_125c`-style or just `slow`).
    pub name: String,
    /// Global delay multiplier vs the typical library.
    pub delay_scale: f64,
    /// Within-corner OCV derating.
    pub derates: DerateSet,
}

impl Corner {
    /// The slow (setup-critical) corner: +15 % delays.
    pub fn slow() -> Self {
        Self {
            name: "slow".to_owned(),
            delay_scale: 1.15,
            derates: DerateSet::standard(),
        }
    }

    /// The typical corner.
    pub fn typical() -> Self {
        Self {
            name: "typical".to_owned(),
            delay_scale: 1.0,
            derates: DerateSet::standard(),
        }
    }

    /// The fast (hold-critical) corner: −15 % delays.
    pub fn fast() -> Self {
        Self {
            name: "fast".to_owned(),
            delay_scale: 0.85,
            derates: DerateSet::standard(),
        }
    }

    /// The conventional three-corner signoff set.
    pub fn signoff_set() -> Vec<Corner> {
        vec![Corner::slow(), Corner::typical(), Corner::fast()]
    }
}

/// A per-corner verdict for one metric.
#[derive(Debug, Clone, PartialEq)]
pub struct CornerVerdict {
    /// Corner the worst value came from.
    pub corner: String,
    /// The worst value, ps.
    pub value: f64,
}

/// One timing engine per corner over the same design.
pub struct MultiCornerSta {
    engines: Vec<(Corner, Sta)>,
}

impl MultiCornerSta {
    /// Builds an engine per corner. Each corner gets its own copy of the
    /// design with a delay-scaled library.
    ///
    /// # Errors
    ///
    /// Propagates [`BuildError`] from any corner's engine construction.
    ///
    /// # Panics
    ///
    /// Panics if `corners` is empty.
    pub fn new(netlist: &Netlist, sdc: &Sdc, corners: Vec<Corner>) -> Result<Self, BuildError> {
        assert!(!corners.is_empty(), "need at least one corner");
        let mut engines = Vec::with_capacity(corners.len());
        for corner in corners {
            let scaled = netlist.with_scaled_delays(corner.delay_scale);
            // External input paths sit in silicon at the same corner, so
            // SDC input arrivals scale with it; the output-margin and the
            // period are system constraints and do not.
            let mut corner_sdc = sdc.clone();
            corner_sdc.input_delay_late *= corner.delay_scale;
            corner_sdc.input_delay_early *= corner.delay_scale;
            let sta = Sta::new(scaled, corner_sdc, corner.derates.clone())?;
            engines.push((corner, sta));
        }
        Ok(Self { engines })
    }

    /// The corners analyzed, in construction order.
    pub fn corners(&self) -> impl Iterator<Item = &Corner> {
        self.engines.iter().map(|(c, _)| c)
    }

    /// The engine for a named corner.
    pub fn corner(&self, name: &str) -> Option<&Sta> {
        self.engines
            .iter()
            .find(|(c, _)| c.name == name)
            .map(|(_, s)| s)
    }

    /// Worst setup slack over all corners (expected at the slow corner).
    pub fn setup_wns(&self) -> CornerVerdict {
        self.engines
            .iter()
            .map(|(c, s)| CornerVerdict {
                corner: c.name.clone(),
                value: s.wns(),
            })
            .min_by(|a, b| a.value.partial_cmp(&b.value).expect("finite WNS"))
            .expect("at least one corner")
    }

    /// Worst hold slack over all corners (expected at the fast corner).
    pub fn hold_wns(&self) -> CornerVerdict {
        self.engines
            .iter()
            .map(|(c, s)| {
                let worst = s
                    .netlist()
                    .endpoints()
                    .into_iter()
                    .filter_map(|e| s.hold_slack(e))
                    .filter(|h| h.is_finite())
                    .fold(f64::INFINITY, f64::min);
                CornerVerdict {
                    corner: c.name.clone(),
                    value: worst,
                }
            })
            .min_by(|a, b| a.value.partial_cmp(&b.value).expect("finite hold"))
            .expect("at least one corner")
    }

    /// Per-endpoint worst setup slack across corners.
    pub fn merged_setup_slack(&self, endpoint: CellId) -> f64 {
        self.engines
            .iter()
            .map(|(_, s)| s.setup_slack(endpoint))
            .fold(f64::INFINITY, f64::min)
    }

    /// A summary report of all corners.
    pub fn report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<10} {:>7} {:>12} {:>12} {:>12} {:>8}",
            "corner", "scale", "setup WNS", "setup TNS", "hold WNS", "viol"
        );
        for (c, s) in &self.engines {
            let hold = s
                .netlist()
                .endpoints()
                .into_iter()
                .filter_map(|e| s.hold_slack(e))
                .filter(|h| h.is_finite())
                .fold(f64::INFINITY, f64::min);
            let _ = writeln!(
                out,
                "{:<10} {:>7.2} {:>12.1} {:>12.1} {:>12.1} {:>8}",
                c.name,
                c.delay_scale,
                s.wns(),
                s.tns(),
                hold,
                s.violating_endpoints().len()
            );
        }
        let setup = self.setup_wns();
        let hold = self.hold_wns();
        let _ = writeln!(
            out,
            "signoff: setup WNS {:.1} ps @ {}, hold WNS {:.1} ps @ {}",
            setup.value, setup.corner, hold.value, hold.corner
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::GeneratorConfig;

    fn multi(seed: u64, period: f64) -> MultiCornerSta {
        let n = GeneratorConfig::small(seed).generate();
        // Input arrivals later than the clock-tree insertion delay, so
        // port-fed flops have genuine positive hold margins (in a real
        // flow this is the input-delay-vs-network-latency budgeting the
        // SDC writer does).
        let mut sdc = Sdc::with_period(period);
        sdc.input_delay_early = 1200.0;
        sdc.input_delay_late = 1400.0;
        MultiCornerSta::new(&n, &sdc, Corner::signoff_set()).unwrap()
    }

    #[test]
    fn setup_is_worst_at_the_slow_corner() {
        let mc = multi(1001, 1500.0);
        assert_eq!(mc.setup_wns().corner, "slow");
        // And strictly worse than typical.
        let slow = mc.corner("slow").unwrap().wns();
        let typ = mc.corner("typical").unwrap().wns();
        assert!(slow < typ);
    }

    #[test]
    fn hold_is_worst_at_the_fast_corner() {
        let mc = multi(1002, 1500.0);
        assert_eq!(mc.hold_wns().corner, "fast");
    }

    #[test]
    fn merged_slack_is_min_over_corners() {
        let mc = multi(1003, 1500.0);
        for e in mc
            .corner("typical")
            .unwrap()
            .netlist()
            .endpoints()
            .into_iter()
            .take(10)
        {
            let merged = mc.merged_setup_slack(e);
            for c in ["slow", "typical", "fast"] {
                assert!(merged <= mc.corner(c).unwrap().setup_slack(e) + 1e-9);
            }
        }
    }

    #[test]
    fn delay_scaling_is_proportional() {
        let n = GeneratorConfig::small(1004).generate();
        let base = Sta::new(n.clone(), Sdc::with_period(1500.0), DerateSet::standard()).unwrap();
        let scaled = Sta::new(
            n.with_scaled_delays(2.0),
            Sdc::with_period(1500.0),
            DerateSet::standard(),
        )
        .unwrap();
        // Arrival times exactly double (every path-delay quantity
        // scales; ports carry zero SDC delay here).
        for e in base.netlist().endpoints().into_iter().take(10) {
            let a = base.endpoint_arrival(e);
            let b = scaled.endpoint_arrival(e);
            if a.is_finite() {
                assert!((b - 2.0 * a).abs() < 1e-6, "{b} != 2*{a}");
            }
        }
    }

    #[test]
    fn report_lists_all_corners() {
        let mc = multi(1005, 1500.0);
        let r = mc.report();
        for c in ["slow", "typical", "fast", "signoff:"] {
            assert!(r.contains(c), "missing {c} in:\n{r}");
        }
    }

    #[test]
    fn unknown_corner_is_none() {
        let mc = multi(1006, 1500.0);
        assert!(mc.corner("nonexistent").is_none());
        assert_eq!(mc.corners().count(), 3);
    }
}
