//! Advanced On-Chip Variation (AOCV) derating tables.
//!
//! AOCV replaces the single flat OCV derate (e.g. "multiply every delay by
//! 1.2") with a table indexed by **cell depth** (number of logic stages on
//! the path — deeper paths enjoy statistical variation cancellation, so
//! they need less margin) and **distance** (the bounding-box size of the
//! path — far-apart logic sees more systematic variation, so it needs more
//! margin). This is Table 1 of the paper.
//!
//! A [`DeratingTable`] is a dense grid over sorted depth and distance axes,
//! looked up with bilinear interpolation and clamped at the edges.

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Errors constructing a [`DeratingTable`].
#[derive(Debug, Clone, PartialEq)]
pub enum TableError {
    /// An axis is empty or not strictly increasing.
    BadAxis(&'static str),
    /// `values` length is not `depths × distances`.
    BadShape {
        /// Expected number of values.
        expected: usize,
        /// Provided number of values.
        got: usize,
    },
    /// A derate value is non-positive or non-finite.
    BadValue(f64),
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::BadAxis(axis) => {
                write!(f, "{axis} axis must be non-empty and strictly increasing")
            }
            TableError::BadShape { expected, got } => {
                write!(f, "expected {expected} derate values, got {got}")
            }
            TableError::BadValue(v) => {
                write!(f, "derate value {v} is not a positive finite number")
            }
        }
    }
}

impl Error for TableError {}

/// A depth × distance derating table with bilinear interpolation.
///
/// ```
/// use sta::aocv::DeratingTable;
/// let t = DeratingTable::paper_table1();
/// // Exact grid point: depth 5, distance 1000 nm → 1.23.
/// assert!((t.lookup(5.0, 1.0) - 1.23).abs() < 1e-12);
/// // Clamped below the shallowest depth.
/// assert!((t.lookup(1.0, 0.5) - 1.30).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeratingTable {
    /// Strictly increasing cell-depth axis.
    depths: Vec<f64>,
    /// Strictly increasing distance axis in µm.
    distances: Vec<f64>,
    /// Row-major values: `values[di * depths.len() + ki]` for distance
    /// index `di` and depth index `ki`.
    values: Vec<f64>,
}

fn check_axis(axis: &[f64], name: &'static str) -> Result<(), TableError> {
    if axis.is_empty() || axis.windows(2).any(|w| w[0] >= w[1]) {
        return Err(TableError::BadAxis(name));
    }
    Ok(())
}

/// Finds the bracketing segment of `x` on `axis` and the interpolation
/// fraction within it; clamps outside the axis range.
fn bracket(axis: &[f64], x: f64) -> (usize, f64) {
    if x <= axis[0] || axis.len() == 1 {
        return (0, 0.0);
    }
    let last = axis.len() - 1;
    if x >= axis[last] {
        return (last - 1, 1.0);
    }
    // Axes are tiny (≤ tens of entries); linear scan beats binary search.
    let mut i = 0;
    while axis[i + 1] < x {
        i += 1;
    }
    let t = (x - axis[i]) / (axis[i + 1] - axis[i]);
    (i, t)
}

impl DeratingTable {
    /// Builds a table from axes and row-major values.
    ///
    /// # Errors
    ///
    /// Returns [`TableError`] if an axis is not strictly increasing, the
    /// value count does not match, or any value is non-positive/non-finite.
    pub fn new(
        depths: Vec<f64>,
        distances: Vec<f64>,
        values: Vec<f64>,
    ) -> Result<Self, TableError> {
        check_axis(&depths, "depth")?;
        check_axis(&distances, "distance")?;
        let expected = depths.len() * distances.len();
        if values.len() != expected {
            return Err(TableError::BadShape {
                expected,
                got: values.len(),
            });
        }
        if let Some(&bad) = values.iter().find(|v| !v.is_finite() || **v <= 0.0) {
            return Err(TableError::BadValue(bad));
        }
        Ok(Self {
            depths,
            distances,
            values,
        })
    }

    /// A constant (depth- and distance-independent) derate — the
    /// conventional flat OCV penalty factor the paper's introduction
    /// describes.
    pub fn flat(derate: f64) -> Self {
        Self::new(vec![1.0], vec![1.0], vec![derate]).expect("flat table is always valid")
    }

    /// The exact example lookup table of the paper's Table 1
    /// (distances in µm: the paper's "500 nm" row is read as 500 µm-scale
    /// bounding boxes in our µm-based geometry; only the shape matters).
    pub fn paper_table1() -> Self {
        Self::new(
            vec![3.0, 4.0, 5.0, 6.0],
            vec![0.5, 1.0, 1.5],
            vec![
                1.30, 1.25, 1.20, 1.15, // 0.5
                1.32, 1.27, 1.23, 1.18, // 1.0
                1.35, 1.31, 1.28, 1.25, // 1.5
            ],
        )
        .expect("paper table is valid")
    }

    /// The default *late* (max-delay) derate table used by the benchmark
    /// designs: depths 1–64, distances 0–2000 µm, derates decaying with
    /// depth as `1 + a(dist)/sqrt(depth)` — the statistical cancellation
    /// law AOCV tables encode.
    pub fn standard_late() -> Self {
        let depths: Vec<f64> = [
            1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0, 48.0, 64.0,
        ]
        .to_vec();
        let distances: Vec<f64> = vec![50.0, 200.0, 500.0, 1000.0, 2000.0];
        let mut values = Vec::with_capacity(depths.len() * distances.len());
        for &dist in &distances {
            // Margin grows mildly with distance: 18% at 50 µm → 30% at 2 mm.
            let a = 0.18 + 0.12 * (dist / 2000.0);
            for &depth in &depths {
                values.push(1.0 + a / depth.sqrt());
            }
        }
        Self::new(depths, distances, values).expect("standard table is valid")
    }

    /// The default *early* (min-delay) derate table: symmetric speed-up
    /// margin below 1.0, used for hold analysis and capture-clock paths.
    pub fn standard_early() -> Self {
        let late = Self::standard_late();
        let values = late.values.iter().map(|v| 2.0 - v).collect();
        Self::new(late.depths.clone(), late.distances.clone(), values)
            .expect("mirrored table is valid")
    }

    /// Looks up the derate for a path (or gate) of `depth` stages whose
    /// bounding box measures `distance` µm, with bilinear interpolation and
    /// edge clamping.
    pub fn lookup(&self, depth: f64, distance: f64) -> f64 {
        let nd = self.depths.len();
        let (ki, kt) = bracket(&self.depths, depth);
        let (di, dt) = bracket(&self.distances, distance);
        let at = |d: usize, k: usize| self.values[d * nd + k];
        if nd == 1 && self.distances.len() == 1 {
            return at(0, 0);
        }
        if nd == 1 {
            return at(di, 0) * (1.0 - dt) + at(di + 1, 0) * dt;
        }
        if self.distances.len() == 1 {
            return at(0, ki) * (1.0 - kt) + at(0, ki + 1) * kt;
        }
        let lo = at(di, ki) * (1.0 - kt) + at(di, ki + 1) * kt;
        let hi = at(di + 1, ki) * (1.0 - kt) + at(di + 1, ki + 1) * kt;
        lo * (1.0 - dt) + hi * dt
    }

    /// The depth axis.
    pub fn depths(&self) -> &[f64] {
        &self.depths
    }

    /// The distance axis (µm).
    pub fn distances(&self) -> &[f64] {
        &self.distances
    }
}

/// The complete derate configuration of an analysis run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DerateSet {
    /// Late (max-delay) AOCV table applied to data-path cells.
    pub data_late: DeratingTable,
    /// Early (min-delay) AOCV table applied to data-path cells (hold).
    pub data_early: DeratingTable,
    /// Flat late derate on clock-network cells (launch view).
    pub clock_late: f64,
    /// Flat early derate on clock-network cells (capture view).
    pub clock_early: f64,
}

impl DerateSet {
    /// The standard benchmark derate set.
    pub fn standard() -> Self {
        Self {
            data_late: DeratingTable::standard_late(),
            data_early: DeratingTable::standard_early(),
            clock_late: 1.01,
            clock_early: 0.99,
        }
    }

    /// A flat-OCV derate set (no depth/distance dependence) for ablations.
    pub fn flat(late: f64, early: f64) -> Self {
        Self {
            data_late: DeratingTable::flat(late),
            data_early: DeratingTable::flat(early),
            clock_late: late,
            clock_early: early,
        }
    }
}

impl Default for DerateSet {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table1_exact_corners() {
        let t = DeratingTable::paper_table1();
        assert_eq!(t.lookup(3.0, 0.5), 1.30);
        assert_eq!(t.lookup(6.0, 0.5), 1.15);
        assert_eq!(t.lookup(3.0, 1.5), 1.35);
        assert_eq!(t.lookup(6.0, 1.5), 1.25);
    }

    #[test]
    fn interpolation_between_grid_points() {
        let t = DeratingTable::paper_table1();
        // Midway between depth 3 (1.30) and depth 4 (1.25) at distance 0.5.
        let v = t.lookup(3.5, 0.5);
        assert!((v - 1.275).abs() < 1e-12);
        // Midway in both axes.
        let v = t.lookup(3.5, 0.75);
        let expect = (1.275 + (1.32 + 1.27) / 2.0) / 2.0;
        assert!((v - expect).abs() < 1e-12);
    }

    #[test]
    fn clamping_outside_range() {
        let t = DeratingTable::paper_table1();
        assert_eq!(t.lookup(0.0, 0.5), 1.30);
        assert_eq!(t.lookup(100.0, 0.5), 1.15);
        assert_eq!(t.lookup(3.0, 0.0), 1.30);
        assert_eq!(t.lookup(3.0, 99.0), 1.35);
    }

    #[test]
    fn derate_monotone_in_depth_and_distance() {
        let t = DeratingTable::standard_late();
        let mut prev = f64::INFINITY;
        for depth in 1..=64 {
            let v = t.lookup(depth as f64, 300.0);
            assert!(v <= prev + 1e-12, "derate must fall with depth");
            assert!(v > 1.0);
            prev = v;
        }
        assert!(t.lookup(8.0, 1500.0) > t.lookup(8.0, 100.0));
    }

    #[test]
    fn early_table_mirrors_late() {
        let late = DeratingTable::standard_late();
        let early = DeratingTable::standard_early();
        let l = late.lookup(6.0, 400.0);
        let e = early.lookup(6.0, 400.0);
        assert!((l + e - 2.0).abs() < 1e-12);
        assert!(e < 1.0);
    }

    #[test]
    fn flat_table_ignores_inputs() {
        let t = DeratingTable::flat(1.2);
        assert_eq!(t.lookup(1.0, 1.0), 1.2);
        assert_eq!(t.lookup(64.0, 2000.0), 1.2);
    }

    #[test]
    fn bad_axis_rejected() {
        assert!(matches!(
            DeratingTable::new(vec![], vec![1.0], vec![]),
            Err(TableError::BadAxis("depth"))
        ));
        assert!(matches!(
            DeratingTable::new(vec![2.0, 1.0], vec![1.0], vec![1.1, 1.2]),
            Err(TableError::BadAxis("depth"))
        ));
    }

    #[test]
    fn bad_shape_and_values_rejected() {
        assert!(matches!(
            DeratingTable::new(vec![1.0, 2.0], vec![1.0], vec![1.1]),
            Err(TableError::BadShape {
                expected: 2,
                got: 1
            })
        ));
        assert!(matches!(
            DeratingTable::new(vec![1.0], vec![1.0], vec![-0.5]),
            Err(TableError::BadValue(_))
        ));
        assert!(matches!(
            DeratingTable::new(vec![1.0], vec![1.0], vec![f64::NAN]),
            Err(TableError::BadValue(_))
        ));
    }

    #[test]
    fn derate_set_defaults() {
        let d = DerateSet::default();
        assert!(d.clock_late > 1.0);
        assert!(d.clock_early < 1.0);
        let f = DerateSet::flat(1.2, 0.9);
        assert_eq!(f.data_late.lookup(10.0, 10.0), 1.2);
    }

    #[test]
    fn error_display() {
        assert!(TableError::BadAxis("depth").to_string().contains("depth"));
        assert!(TableError::BadValue(0.0).to_string().contains('0'));
    }
}
