//! Critical-path enumeration.
//!
//! GBA identifies candidate critical paths; PBA then re-times them
//! path-by-path. This module enumerates, for each endpoint, the `k` worst
//! paths by GBA arrival using a best-first backward search with an
//! admissible bound (the classic lazy k-longest-path scheme): a partial
//! suffix from some cell `c` to the endpoint has exact suffix delay `S`,
//! and `arrival_late(c) + S` is an upper bound on any completion, so a
//! max-heap pops complete paths in exactly descending arrival order.

use crate::analysis::Sta;
use netlist::{CellId, CellRole};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A complete timing path from a startpoint to an endpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct Path {
    /// Cells on the path: `cells[0]` is the launching flip-flop or input
    /// port, the middle cells are combinational gates, and the last cell
    /// is the capturing flip-flop or output port.
    pub cells: Vec<CellId>,
    /// The endpoint cell (same as `cells.last()`).
    pub endpoint: CellId,
    /// GBA late arrival at the endpoint pin along this path, under the
    /// engine's current effective derates, ps.
    pub gba_arrival: f64,
    /// GBA slack of this path (endpoint required − arrival), ps.
    pub gba_slack: f64,
}

impl Path {
    /// The launching cell.
    pub fn startpoint(&self) -> CellId {
        self.cells[0]
    }

    /// Number of combinational gates on the path (the PBA cell depth).
    pub fn num_gates(&self) -> usize {
        self.cells.len().saturating_sub(2)
    }
}

/// Search state: a suffix of a path, from `cell`'s output to the endpoint.
struct State {
    /// Upper bound on the arrival of any completion of this suffix.
    bound: f64,
    cell: CellId,
    /// Exact delay from `cell`'s output to the endpoint pin.
    suffix_delay: f64,
    /// Cells after `cell`, in reverse order (endpoint first).
    suffix: Vec<CellId>,
}

impl PartialEq for State {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound
    }
}
impl Eq for State {}
impl PartialOrd for State {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for State {
    fn cmp(&self, other: &Self) -> Ordering {
        self.bound
            .partial_cmp(&other.bound)
            .unwrap_or(Ordering::Equal)
    }
}

/// Enumerates the `k` worst (largest GBA arrival) paths ending at
/// `endpoint`, in descending arrival order.
///
/// Returns fewer than `k` paths if the endpoint's fanin cone contains
/// fewer distinct paths.
pub fn worst_paths_to_endpoint(sta: &Sta, endpoint: CellId, k: usize) -> Vec<Path> {
    let netlist = sta.netlist();
    let graph = sta.graph();
    let role = netlist.cell(endpoint).role;
    debug_assert!(
        matches!(role, CellRole::Sequential | CellRole::Output),
        "paths end at endpoints"
    );
    let required = sta.endpoint_required(endpoint);
    let mut heap: BinaryHeap<State> = BinaryHeap::new();
    for e in graph.data_fanins(netlist, endpoint) {
        heap.push(State {
            bound: sta.arrival_late(e.from) + e.wire_delay,
            cell: e.from,
            suffix_delay: e.wire_delay,
            suffix: vec![endpoint],
        });
    }

    let mut out = Vec::with_capacity(k);
    while let Some(state) = heap.pop() {
        if out.len() >= k {
            break;
        }
        let role = netlist.cell(state.cell).role;
        match role {
            CellRole::Input | CellRole::Sequential => {
                let arrival = sta.arrival_late(state.cell) + state.suffix_delay;
                if !arrival.is_finite() {
                    continue;
                }
                let mut cells = Vec::with_capacity(state.suffix.len() + 1);
                cells.push(state.cell);
                cells.extend(state.suffix.iter().rev());
                out.push(Path {
                    cells,
                    endpoint,
                    gba_arrival: arrival,
                    gba_slack: required - arrival,
                });
            }
            CellRole::Combinational => {
                let contribution = sta.gate_delay(state.cell) * sta.effective_derate(state.cell);
                for e in graph.data_fanins(netlist, state.cell) {
                    let suffix_delay = state.suffix_delay + contribution + e.wire_delay;
                    let bound = sta.arrival_late(e.from) + suffix_delay;
                    if !bound.is_finite() {
                        continue;
                    }
                    let mut suffix = state.suffix.clone();
                    suffix.push(state.cell);
                    heap.push(State {
                        bound,
                        cell: e.from,
                        suffix_delay,
                        suffix,
                    });
                }
            }
            // Clock cells never appear on data suffixes.
            _ => {}
        }
    }
    out
}

/// Per-endpoint critical path selection over the whole design: the
/// paper's §3.2 "second scheme". For every endpoint, takes the `k` worst
/// paths; optionally keeps only paths with negative GBA slack; caps the
/// total at `max_total` worst-first.
pub fn select_critical_paths(
    sta: &Sta,
    k_per_endpoint: usize,
    max_total: usize,
    only_violating: bool,
) -> Vec<Path> {
    let mut all = Vec::new();
    for e in sta.netlist().endpoints() {
        let paths = worst_paths_to_endpoint(sta, e, k_per_endpoint);
        for p in paths {
            if !only_violating || p.gba_slack < 0.0 {
                all.push(p);
            }
        }
    }
    all.sort_by(|a, b| {
        a.gba_slack
            .partial_cmp(&b.gba_slack)
            .expect("slacks are finite")
    });
    all.truncate(max_total);
    all
}

/// Global top-`m` path selection (the paper's strawman "first scheme"):
/// sorts every enumerated path by GBA slack and keeps the worst `m`,
/// ignoring endpoint coverage. Exists to reproduce the §3.2 comparison.
pub fn select_top_global_paths(sta: &Sta, k_per_endpoint: usize, m: usize) -> Vec<Path> {
    let mut all = Vec::new();
    for e in sta.netlist().endpoints() {
        all.extend(worst_paths_to_endpoint(sta, e, k_per_endpoint));
    }
    all.sort_by(|a, b| {
        a.gba_slack
            .partial_cmp(&b.gba_slack)
            .expect("slacks are finite")
    });
    all.truncate(m);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aocv::DerateSet;
    use crate::constraints::Sdc;
    use netlist::GeneratorConfig;
    use std::collections::HashSet;

    fn engine(seed: u64) -> Sta {
        let n = GeneratorConfig::small(seed).generate();
        Sta::new(n, Sdc::with_period(1200.0), DerateSet::standard()).unwrap()
    }

    #[test]
    fn worst_path_realizes_endpoint_arrival() {
        let sta = engine(61);
        for e in sta.netlist().endpoints() {
            let paths = worst_paths_to_endpoint(&sta, e, 1);
            if sta.endpoint_arrival(e).is_finite() {
                assert_eq!(paths.len(), 1);
                assert!(
                    (paths[0].gba_arrival - sta.endpoint_arrival(e)).abs() < 1e-6,
                    "worst path must realize the GBA endpoint arrival at {}",
                    sta.netlist().cell(e).name
                );
            }
        }
    }

    #[test]
    fn paths_are_sorted_and_distinct() {
        let sta = engine(62);
        let e = sta.netlist().endpoints()[0];
        let paths = worst_paths_to_endpoint(&sta, e, 10);
        for w in paths.windows(2) {
            assert!(w[0].gba_arrival >= w[1].gba_arrival - 1e-9);
        }
        let distinct: HashSet<Vec<CellId>> = paths.iter().map(|p| p.cells.clone()).collect();
        assert_eq!(distinct.len(), paths.len(), "no duplicate paths");
    }

    #[test]
    fn paths_start_and_end_correctly() {
        let sta = engine(63);
        for e in sta.netlist().endpoints().into_iter().take(5) {
            for p in worst_paths_to_endpoint(&sta, e, 5) {
                let start_role = sta.netlist().cell(p.startpoint()).role;
                assert!(matches!(start_role, CellRole::Input | CellRole::Sequential));
                assert_eq!(*p.cells.last().unwrap(), e);
                // Middle cells are combinational.
                for &c in &p.cells[1..p.cells.len() - 1] {
                    assert_eq!(sta.netlist().cell(c).role, CellRole::Combinational);
                }
                // Consecutive cells are actually connected.
                for w in p.cells.windows(2) {
                    let connected = sta
                        .graph()
                        .fanins(w[1])
                        .iter()
                        .any(|edge| edge.from == w[0]);
                    assert!(connected, "path cells must be wired in sequence");
                }
            }
        }
    }

    #[test]
    fn path_arrival_matches_manual_sum() {
        let sta = engine(64);
        let e = sta.netlist().endpoints()[0];
        for p in worst_paths_to_endpoint(&sta, e, 3) {
            let mut arr = sta.arrival_late(p.startpoint());
            for w in p.cells.windows(2) {
                let edge = sta
                    .graph()
                    .fanins(w[1])
                    .iter()
                    .find(|edge| edge.from == w[0])
                    .expect("consecutive path cells are connected");
                arr += edge.wire_delay;
                if sta.netlist().cell(w[1]).role == CellRole::Combinational {
                    arr += sta.gate_delay(w[1]) * sta.effective_derate(w[1]);
                }
            }
            assert!((arr - p.gba_arrival).abs() < 1e-6);
        }
    }

    #[test]
    fn per_endpoint_selection_covers_endpoints() {
        let sta = engine(65);
        let paths = select_critical_paths(&sta, 3, usize::MAX, false);
        let covered: HashSet<CellId> = paths.iter().map(|p| p.endpoint).collect();
        let reachable = sta
            .netlist()
            .endpoints()
            .into_iter()
            .filter(|&e| sta.endpoint_arrival(e).is_finite())
            .count();
        assert_eq!(covered.len(), reachable);
    }

    #[test]
    fn global_selection_truncates_worst_first() {
        let sta = engine(66);
        let global = select_top_global_paths(&sta, 5, 10);
        assert!(global.len() <= 10);
        for w in global.windows(2) {
            assert!(w[0].gba_slack <= w[1].gba_slack + 1e-9);
        }
    }

    #[test]
    fn violating_filter_drops_positive_slack() {
        let n = GeneratorConfig::small(67).generate();
        // Very long period: nothing violates.
        let sta = Sta::new(n, Sdc::with_period(100_000.0), DerateSet::standard()).unwrap();
        let v = select_critical_paths(&sta, 3, usize::MAX, true);
        assert!(v.is_empty());
    }

    #[test]
    fn num_gates_counts_middles() {
        let sta = engine(68);
        let e = sta.netlist().endpoints()[0];
        if let Some(p) = worst_paths_to_endpoint(&sta, e, 1).first() {
            assert_eq!(p.num_gates(), p.cells.len() - 2);
        }
    }
}
