//! SDF (Standard Delay Format) back-annotation writer.
//!
//! Dumps the engine's timing view as an SDF 3.0 subset — `IOPATH` cell
//! delays as `(min::max)` triples spanning the early/late derated values,
//! `INTERCONNECT` wire delays, and `SETUP`/`HOLD` timing checks — so the
//! analysis can be cross-checked in any SDF-consuming simulator or
//! timer. With mGBA weights installed, the max values are the corrected
//! (pessimism-reduced) delays: the SDF is how the correction would ship
//! to downstream tools that cannot run the fit themselves.

use crate::analysis::Sta;
use netlist::{CellRole, Function};
use std::fmt::Write as _;

/// Input pin names in pin-index order (mirrors the Verilog interchange).
fn pin_name(function: Function, index: usize) -> &'static str {
    match (function, index) {
        (Function::Dff, 0) => "D",
        (Function::Dff, 1) => "CK",
        (_, 0) => "A",
        (_, 1) => "B",
        (_, 2) => "C",
        _ => "?",
    }
}

fn triple(min: f64, typ: f64, max: f64) -> String {
    format!("({min:.1}:{typ:.1}:{max:.1})")
}

/// Serializes the engine's current timing as SDF 3.0.
///
/// Cell delays use the early derate for `min`, the underated delay for
/// `typ`, and the **effective** (possibly mGBA-corrected) late derate for
/// `max`. Interconnect delays are the graph's wire estimates.
pub fn write_sdf(sta: &Sta) -> String {
    let nl = sta.netlist();
    let mut out = String::new();
    let _ = writeln!(out, "(DELAYFILE");
    let _ = writeln!(out, " (SDFVERSION \"3.0\")");
    let _ = writeln!(out, " (DESIGN \"{}\")", nl.name());
    let _ = writeln!(out, " (TIMESCALE 1ps)");

    for (id, cell) in nl.cells() {
        let lib = nl.library().cell(cell.lib_cell);
        match cell.role {
            CellRole::Combinational | CellRole::ClockBuffer | CellRole::Sequential => {}
            _ => continue,
        }
        let _ = writeln!(out, " (CELL");
        let _ = writeln!(out, "  (CELLTYPE \"{}\")", lib.name);
        let _ = writeln!(out, "  (INSTANCE {})", cell.name);
        let d = sta.gate_delay(id);
        let (from_pins, to_pin): (Vec<&str>, &str) = match lib.function {
            Function::Dff => (vec!["CK"], "Q"),
            f => ((0..f.arity()).map(|i| pin_name(f, i)).collect(), "Y"),
        };
        let (early, late) = match cell.role {
            CellRole::Sequential | CellRole::ClockBuffer => {
                (sta.derates().clock_early, sta.effective_derate(id))
            }
            _ => (
                // Early data derate comes from the early AOCV table at
                // the same worst-case coordinates.
                {
                    let dist = sta.depth_info().gba_distance(id);
                    match sta.depth_info().gba_depth(id) {
                        Some(k) => sta.derates().data_early.lookup(k as f64, dist),
                        None => 1.0,
                    }
                },
                sta.effective_derate(id),
            ),
        };
        let _ = writeln!(out, "  (DELAY (ABSOLUTE");
        for from in from_pins {
            let _ = writeln!(
                out,
                "   (IOPATH {from} {to_pin} {t} {t})",
                t = triple(d * early, d, d * late)
            );
        }
        let _ = writeln!(out, "  ))");
        if lib.function == Function::Dff {
            let _ = writeln!(out, "  (TIMINGCHECK");
            let _ = writeln!(out, "   (SETUP D (posedge CK) ({:.1}))", lib.setup);
            let _ = writeln!(out, "   (HOLD D (posedge CK) ({:.1}))", lib.hold);
            let _ = writeln!(out, "  )");
        }
        let _ = writeln!(out, " )");
    }

    // Interconnect delays, one per graph edge.
    for (_, net) in nl.nets() {
        let Some(driver) = net.driver else { continue };
        let dcell = nl.cell(driver);
        if matches!(dcell.role, CellRole::Input | CellRole::ClockSource) {
            continue; // port-driven interconnect carries SDC delay instead
        }
        let from_pin = if nl.library().cell(dcell.lib_cell).function == Function::Dff {
            "Q"
        } else {
            "Y"
        };
        for &(sink, pin) in &net.sinks {
            let scell = nl.cell(sink);
            if scell.role == CellRole::Output {
                continue;
            }
            let func = nl.library().cell(scell.lib_cell).function;
            let wire = nl.wire_delay(dcell.loc.manhattan(scell.loc));
            let _ = writeln!(
                out,
                " (CELL (CELLTYPE \"interconnect\") (INSTANCE {})\n  (DELAY (ABSOLUTE (INTERCONNECT {}/{} {}/{} {t} {t}))))",
                scell.name,
                dcell.name,
                from_pin,
                scell.name,
                pin_name(func, pin.index()),
                t = triple(wire, wire, wire)
            );
        }
    }
    let _ = writeln!(out, ")");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aocv::DerateSet;
    use crate::constraints::Sdc;
    use netlist::GeneratorConfig;

    fn engine(seed: u64) -> Sta {
        let n = GeneratorConfig::small(seed).generate();
        Sta::new(n, Sdc::with_period(1500.0), DerateSet::standard()).unwrap()
    }

    #[test]
    fn sdf_is_paren_balanced() {
        let sta = engine(1101);
        let sdf = write_sdf(&sta);
        let mut depth = 0i64;
        for c in sdf.chars() {
            match c {
                '(' => depth += 1,
                ')' => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0, "unbalanced parens");
        }
        assert_eq!(depth, 0);
    }

    #[test]
    fn every_gate_and_flop_appears() {
        let sta = engine(1102);
        let sdf = write_sdf(&sta);
        for (_, cell) in sta.netlist().cells() {
            if matches!(
                cell.role,
                netlist::CellRole::Combinational | netlist::CellRole::Sequential
            ) {
                assert!(
                    sdf.contains(&format!("(INSTANCE {})", cell.name)),
                    "missing {}",
                    cell.name
                );
            }
        }
        assert!(sdf.contains("TIMINGCHECK"));
        assert!(sdf.contains("INTERCONNECT"));
    }

    #[test]
    fn triples_are_ordered_min_typ_max() {
        let sta = engine(1103);
        let sdf = write_sdf(&sta);
        for line in sdf.lines().filter(|l| l.contains("IOPATH")) {
            let open = line.find('(').expect("has paren");
            let triple = &line[open..];
            let inner = triple
                .split('(')
                .nth(2)
                .and_then(|s| s.split(')').next())
                .expect("triple present");
            let parts: Vec<f64> = inner
                .split(':')
                .map(|t| t.parse().expect("numeric triple"))
                .collect();
            assert_eq!(parts.len(), 3, "line {line}");
            assert!(parts[0] <= parts[1] + 1e-9, "{line}");
            assert!(parts[1] <= parts[2] + 1e-9, "{line}");
        }
    }

    #[test]
    fn weights_change_only_the_max_column() {
        let mut sta = engine(1104);
        let before = write_sdf(&sta);
        sta.set_weights(&vec![-0.05; sta.netlist().num_cells()]);
        let after = write_sdf(&sta);
        assert_ne!(before, after, "corrected derates must show up");
        // min/typ columns are weight-independent: compare a sample line.
        let pick = |s: &str| {
            s.lines()
                .find(|l| l.contains("IOPATH"))
                .map(str::to_owned)
                .expect("has IOPATH")
        };
        let a = pick(&before);
        let b = pick(&after);
        let head = |l: &str| {
            let inner = l.split('(').nth(2).unwrap_or("");
            inner.split(':').take(2).collect::<Vec<_>>().join(":")
        };
        assert_eq!(head(&a), head(&b), "min/typ must be unchanged");
    }
}
