//! Static timing analysis engine for the mGBA pessimism-reduction
//! framework.
//!
//! This crate implements everything the paper's evaluation assumes from a
//! commercial timer:
//!
//! - a levelized **timing graph** ([`graph::TimingGraph`]) over a
//!   [`netlist::Netlist`];
//! - **AOCV derating** ([`aocv`]) with depth × distance tables (the
//!   paper's Table 1);
//! - worst-case **GBA depth analysis** ([`depth`]) — the minimum cell
//!   depth and maximal bounding box over all paths through each gate
//!   (the paper's Fig. 2);
//! - graph-based **arrival/required propagation** with setup & hold
//!   slacks, worst-slew propagation, a clock tree, and CRPR
//!   ([`analysis::Sta`]);
//! - **critical path enumeration** ([`paths`]) — per-endpoint k-worst
//!   paths (the paper's §3.2 selection schemes);
//! - golden **PBA** path re-timing ([`pba`]);
//! - **incremental update** after gate sizing and buffer insertion
//!   ([`Sta::resize_cell`], [`Sta::insert_buffer`]).
//!
//! # Example
//!
//! ```
//! use netlist::GeneratorConfig;
//! use sta::{DerateSet, Sdc, Sta};
//!
//! # fn main() -> Result<(), netlist::BuildError> {
//! let design = GeneratorConfig::small(1).generate();
//! let sta = Sta::new(design, Sdc::with_period(1200.0), DerateSet::standard())?;
//! println!("WNS = {:.1} ps, TNS = {:.1} ps", sta.wns(), sta.tns());
//! let paths = sta::paths::select_critical_paths(&sta, 20, 1_000, false);
//! let golden = sta::pba::pba_timing(&sta, &paths[0]);
//! assert!(golden.slack >= paths[0].gba_slack); // PBA removes pessimism
//! # Ok(())
//! # }
//! ```

pub mod analysis;
pub mod aocv;
pub mod aocv_format;
pub mod constraints;
pub mod corners;
pub mod depth;
pub mod graph;
pub mod paths;
pub mod pba;
pub mod report;
pub mod sdf;

pub use analysis::{Sta, UpdateStats};
pub use aocv::{DerateSet, DeratingTable};
pub use aocv_format::{parse_aocv, write_aocv, AocvTable};
pub use constraints::Sdc;
pub use corners::{Corner, MultiCornerSta};
pub use paths::{select_critical_paths, select_top_global_paths, Path};
pub use pba::{gba_path_timing, gba_path_timing_batch, pba_timing, pba_timing_batch, PathTiming};
pub use report::timing_report;
pub use sdf::write_sdf;
