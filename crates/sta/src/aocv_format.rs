//! AOCV derate-table file format (Synopsys-style subset).
//!
//! Foundries ship AOCV derating as text tables; this module reads and
//! writes the conventional format the paper's Table 1 is drawn in:
//!
//! ```text
//! version: 1.0
//!
//! object_type: design
//! rf_type: rise fall
//! delay_type: cell
//! derate_type: late
//! depth: 3 4 5 6
//! distance: 500 1000 1500
//! table: 1.30 1.25 1.20 1.15 \
//!        1.32 1.27 1.23 1.18 \
//!        1.35 1.31 1.28 1.25
//! ```
//!
//! `table` is row-major over `distance × depth`, exactly the layout of
//! [`DeratingTable`]. Only `derate_type: late`/`early` and the 2-D
//! depth×distance form are supported (1-D depth-only tables read as a
//! single-distance grid).

use crate::aocv::{DeratingTable, TableError};
use std::error::Error;
use std::fmt;

/// Errors from [`parse_aocv`].
#[derive(Debug, Clone, PartialEq)]
pub enum ParseAocvError {
    /// A line was not `key: values`.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// Description.
        reason: String,
    },
    /// A required key is missing.
    MissingKey(&'static str),
    /// The table body failed validation.
    BadTable(TableError),
}

impl fmt::Display for ParseAocvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseAocvError::Malformed { line, reason } => write!(f, "line {line}: {reason}"),
            ParseAocvError::MissingKey(k) => write!(f, "missing `{k}:` entry"),
            ParseAocvError::BadTable(e) => write!(f, "bad derate table: {e}"),
        }
    }
}

impl Error for ParseAocvError {}

impl From<TableError> for ParseAocvError {
    fn from(e: TableError) -> Self {
        ParseAocvError::BadTable(e)
    }
}

/// One parsed AOCV table with its metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct AocvTable {
    /// `late` or `early`.
    pub derate_type: String,
    /// `cell` or `net`.
    pub delay_type: String,
    /// The numeric table.
    pub table: DeratingTable,
}

/// Parses one AOCV table from the text format.
///
/// # Errors
///
/// Returns [`ParseAocvError`] on malformed lines, missing keys, or an
/// invalid table body.
pub fn parse_aocv(src: &str) -> Result<AocvTable, ParseAocvError> {
    let mut depth: Option<Vec<f64>> = None;
    let mut distance: Option<Vec<f64>> = None;
    let mut values: Option<Vec<f64>> = None;
    let mut derate_type = String::new();
    let mut delay_type = String::new();

    // Join continuation lines (trailing backslash).
    let mut logical: Vec<(usize, String)> = Vec::new();
    let mut pending: Option<(usize, String)> = None;
    for (i, raw) in src.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with("//") || line.starts_with('#') {
            continue;
        }
        let (body, continues) = match line.strip_suffix('\\') {
            Some(b) => (b.trim_end(), true),
            None => (line, false),
        };
        match pending.take() {
            Some((start, mut acc)) => {
                acc.push(' ');
                acc.push_str(body);
                if continues {
                    pending = Some((start, acc));
                } else {
                    logical.push((start, acc));
                }
            }
            None => {
                if continues {
                    pending = Some((i + 1, body.to_owned()));
                } else {
                    logical.push((i + 1, body.to_owned()));
                }
            }
        }
    }
    if let Some((start, acc)) = pending {
        logical.push((start, acc));
    }

    for (lineno, line) in logical {
        let Some((key, rest)) = line.split_once(':') else {
            return Err(ParseAocvError::Malformed {
                line: lineno,
                reason: format!("expected `key: values`, got `{line}`"),
            });
        };
        let key = key.trim();
        let rest = rest.trim();
        let parse_floats = |s: &str| -> Result<Vec<f64>, ParseAocvError> {
            s.split_whitespace()
                .map(|t| {
                    t.parse::<f64>().map_err(|_| ParseAocvError::Malformed {
                        line: lineno,
                        reason: format!("bad number `{t}` in `{key}`"),
                    })
                })
                .collect()
        };
        match key {
            "depth" => depth = Some(parse_floats(rest)?),
            "distance" => distance = Some(parse_floats(rest)?),
            "table" => values = Some(parse_floats(rest)?),
            "derate_type" => derate_type = rest.to_owned(),
            "delay_type" => delay_type = rest.to_owned(),
            // Metadata we accept and ignore.
            "version" | "object_type" | "rf_type" | "object_spec" => {}
            other => {
                return Err(ParseAocvError::Malformed {
                    line: lineno,
                    reason: format!("unknown key `{other}`"),
                })
            }
        }
    }

    let depth = depth.ok_or(ParseAocvError::MissingKey("depth"))?;
    let values = values.ok_or(ParseAocvError::MissingKey("table"))?;
    // Depth-only tables are a single-distance grid.
    let distance = distance.unwrap_or_else(|| vec![1.0]);
    let table = DeratingTable::new(depth, distance, values)?;
    Ok(AocvTable {
        derate_type,
        delay_type,
        table,
    })
}

/// Writes a [`DeratingTable`] in the AOCV text format.
pub fn write_aocv(table: &DeratingTable, derate_type: &str, delay_type: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "version: 1.0");
    let _ = writeln!(out);
    let _ = writeln!(out, "object_type: design");
    let _ = writeln!(out, "rf_type: rise fall");
    let _ = writeln!(out, "delay_type: {delay_type}");
    let _ = writeln!(out, "derate_type: {derate_type}");
    let fmt_axis = |axis: &[f64]| {
        axis.iter()
            .map(|v| format!("{v}"))
            .collect::<Vec<_>>()
            .join(" ")
    };
    let _ = writeln!(out, "depth: {}", fmt_axis(table.depths()));
    let _ = writeln!(out, "distance: {}", fmt_axis(table.distances()));
    let nd = table.depths().len();
    let _ = write!(out, "table:");
    for (di, _) in table.distances().iter().enumerate() {
        if di > 0 {
            let _ = write!(out, " \\\n      ");
        }
        for (ki, _) in table.depths().iter().enumerate() {
            let _ = write!(
                out,
                " {}",
                table.lookup(table.depths()[ki], table.distances()[di])
            );
        }
        let _ = nd;
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAPER_TABLE: &str = r"
version: 1.0

object_type: design
rf_type: rise fall
delay_type: cell
derate_type: late
depth: 3 4 5 6
distance: 500 1000 1500
table: 1.30 1.25 1.20 1.15 \
       1.32 1.27 1.23 1.18 \
       1.35 1.31 1.28 1.25
";

    #[test]
    fn parses_the_paper_table() {
        let t = parse_aocv(PAPER_TABLE).unwrap();
        assert_eq!(t.derate_type, "late");
        assert_eq!(t.delay_type, "cell");
        assert_eq!(t.table.lookup(3.0, 500.0), 1.30);
        assert_eq!(t.table.lookup(6.0, 500.0), 1.15);
        assert_eq!(t.table.lookup(5.0, 1000.0), 1.23);
        assert_eq!(t.table.lookup(6.0, 1500.0), 1.25);
    }

    #[test]
    fn depth_only_table_reads_as_single_distance() {
        let src = "derate_type: late\ndepth: 1 2 4\ntable: 1.3 1.2 1.1\n";
        let t = parse_aocv(src).unwrap();
        assert_eq!(t.table.lookup(2.0, 9999.0), 1.2);
    }

    #[test]
    fn round_trips_through_writer() {
        let original = parse_aocv(PAPER_TABLE).unwrap();
        let text = write_aocv(&original.table, "late", "cell");
        let reparsed = parse_aocv(&text).unwrap();
        assert_eq!(reparsed.table, original.table);
    }

    #[test]
    fn missing_table_is_an_error() {
        let err = parse_aocv("derate_type: late\ndepth: 1 2\n").unwrap_err();
        assert_eq!(err, ParseAocvError::MissingKey("table"));
    }

    #[test]
    fn bad_number_reports_line() {
        let err = parse_aocv("depth: 1 banana\ntable: 1.0 1.0\n").unwrap_err();
        assert!(matches!(err, ParseAocvError::Malformed { line: 1, .. }));
        assert!(err.to_string().contains("banana"));
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let src = "depth: 1 2 3\ndistance: 10 20\ntable: 1.1 1.2 1.3\n";
        assert!(matches!(parse_aocv(src), Err(ParseAocvError::BadTable(_))));
    }

    #[test]
    fn unknown_key_rejected_with_position() {
        let err = parse_aocv("wibble: 3\n").unwrap_err();
        assert!(matches!(err, ParseAocvError::Malformed { line: 1, .. }));
    }

    #[test]
    fn comments_and_continuations() {
        let src = "# comment\nderate_type: early\ndepth: 1 \\\n 2\ntable: 0.9 \\\n 0.95\n";
        let t = parse_aocv(src).unwrap();
        assert_eq!(t.derate_type, "early");
        assert_eq!(t.table.lookup(1.0, 0.0), 0.9);
    }
}
