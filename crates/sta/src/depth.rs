//! GBA cell-depth and bounding-box analysis.
//!
//! This module computes, for every combinational gate, the **worst** AOCV
//! lookup coordinates GBA must assume (Fig. 2 of the paper):
//!
//! - `gba_depth(g)` — the *minimum* number of logic stages over all
//!   startpoint→endpoint paths through `g`. Minimum depth means maximum
//!   derate, hence design safety.
//! - `gba_distance(g)` — the diagonal of the union of bounding boxes of
//!   all paths through `g` (an upper bound on any single path's box, hence
//!   again maximum derate).
//!
//! Both are two dynamic programs over the data DAG: a forward pass
//! (prefix from startpoints) and a backward pass (suffix to endpoints),
//! combined per gate as `prefix + suffix − 1`.

use crate::graph::TimingGraph;
use netlist::point::BoundingBox;
use netlist::{CellId, CellRole, Netlist};

/// Per-gate GBA depth/distance results.
#[derive(Debug, Clone)]
pub struct DepthInfo {
    /// Minimum stage count from any startpoint *to and including* the cell;
    /// `u32::MAX` when unreachable from a startpoint.
    pub prefix: Vec<u32>,
    /// Minimum stage count *from and including* the cell to any endpoint;
    /// `u32::MAX` when no endpoint is reachable (dead logic).
    pub suffix: Vec<u32>,
    /// Worst path bounding-box diagonal through the cell, in µm.
    pub distance: Vec<f64>,
}

const UNREACHED: u32 = u32::MAX;

impl DepthInfo {
    /// Runs the depth analysis on `netlist` with its `graph`.
    pub fn compute(netlist: &Netlist, graph: &TimingGraph) -> Self {
        let n = netlist.num_cells();
        let mut prefix = vec![UNREACHED; n];
        let mut suffix = vec![UNREACHED; n];
        let mut pre_bb = vec![BoundingBox::empty(); n];
        let mut suf_bb = vec![BoundingBox::empty(); n];

        // Forward pass over topological order.
        for &c in graph.topo() {
            let cell = netlist.cell(c);
            match cell.role {
                CellRole::Input | CellRole::Sequential => {
                    prefix[c.index()] = 0;
                    pre_bb[c.index()] = BoundingBox::at(cell.loc);
                }
                CellRole::Combinational => {
                    let mut best = UNREACHED;
                    let mut bb = BoundingBox::empty();
                    for e in graph.data_fanins(netlist, c) {
                        let p = prefix[e.from.index()];
                        if p != UNREACHED {
                            best = best.min(p.saturating_add(1));
                            bb.union(&pre_bb[e.from.index()]);
                        }
                    }
                    if best != UNREACHED {
                        bb.include(cell.loc);
                        prefix[c.index()] = best;
                        pre_bb[c.index()] = bb;
                    }
                }
                _ => {}
            }
        }

        // Backward pass over reverse topological order.
        for &c in graph.topo().iter().rev() {
            let cell = netlist.cell(c);
            if !matches!(
                cell.role,
                CellRole::Combinational | CellRole::Input | CellRole::Sequential
            ) {
                continue;
            }
            let mut best = UNREACHED;
            let mut bb = BoundingBox::empty();
            for e in graph.data_fanouts(netlist, c) {
                let to_role = netlist.cell(e.to).role;
                match to_role {
                    CellRole::Sequential | CellRole::Output => {
                        best = best.min(1);
                        bb.include(netlist.cell(e.to).loc);
                    }
                    CellRole::Combinational => {
                        let s = suffix[e.to.index()];
                        if s != UNREACHED {
                            best = best.min(s.saturating_add(1));
                            bb.union(&suf_bb[e.to.index()]);
                        }
                    }
                    _ => {}
                }
            }
            match cell.role {
                CellRole::Combinational if best != UNREACHED => {
                    bb.include(cell.loc);
                    // `suffix` counts the cell itself as one stage: a gate
                    // feeding an endpoint directly has suffix 1.
                    suffix[c.index()] = best;
                    suf_bb[c.index()] = bb;
                }
                // Startpoints record reachability (suffix 0 = "a path
                // starts here"), useful for the distance union below.
                CellRole::Input | CellRole::Sequential if best != UNREACHED => {
                    suffix[c.index()] = 0;
                    bb.include(cell.loc);
                    suf_bb[c.index()] = bb;
                }
                _ => {}
            }
        }

        // Worst distance per gate: union of its prefix and suffix boxes.
        let mut distance = vec![0.0; n];
        for (i, d) in distance.iter_mut().enumerate() {
            if prefix[i] != UNREACHED {
                let mut bb = pre_bb[i];
                bb.union(&suf_bb[i]);
                *d = bb.diagonal();
            }
        }

        Self {
            prefix,
            suffix,
            distance,
        }
    }

    /// GBA cell depth of `cell`: the minimum number of combinational
    /// stages over any complete path through it. Returns `None` for cells
    /// that lie on no complete startpoint→endpoint path.
    pub fn gba_depth(&self, cell: CellId) -> Option<u32> {
        let p = self.prefix[cell.index()];
        let s = self.suffix[cell.index()];
        if p == UNREACHED || s == UNREACHED {
            return None;
        }
        // Both prefix and suffix count the cell itself; subtract the
        // double count. Startpoints (prefix = suffix = 0) saturate to 0.
        Some((p + s).saturating_sub(1))
    }

    /// Worst bounding-box diagonal of any path through `cell`, µm.
    pub fn gba_distance(&self, cell: CellId) -> f64 {
        self.distance[cell.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::{GeneratorConfig, Library, NetlistBuilder, Point};

    /// Builds the paper's Fig. 2 topology:
    ///
    /// ```text
    /// FF1 → U1 → U2 → U3 → U4 ┬→ U5 → FF3      (5-gate path)
    ///                          └→ U6 → U7 → FF4 (6-gate path)
    /// ```
    ///
    /// As in the paper, U1 lies on a 5-gate path (to FF3) and a 6-gate
    /// path (to FF4), so GBA assigns it the worst (minimum) depth 5.
    fn fig2() -> (Netlist, TimingGraph, DepthInfo) {
        let mut b = NetlistBuilder::new("fig2", Library::standard());
        let clk = b.add_clock_port("clk", Point::ORIGIN);
        let d = b.add_input("d", Point::ORIGIN);
        let ff1 = b
            .add_flip_flop("ff1", "DFF_X1", Point::new(0.0, 10.0), clk)
            .unwrap();
        b.connect_flip_flop_d_net(ff1, d);
        let mut prev = b.cell_output(ff1);
        let mut chain = Vec::new();
        for i in 1..=4 {
            let u = b
                .add_gate(
                    &format!("u{i}"),
                    "BUF_X1",
                    Point::new(10.0 * i as f64, 10.0),
                    &[prev],
                )
                .unwrap();
            prev = b.cell_output(u);
            chain.push(u);
        }
        let u5 = b
            .add_gate("u5", "BUF_X1", Point::new(50.0, 5.0), &[prev])
            .unwrap();
        let ff3 = b
            .add_flip_flop("ff3", "DFF_X1", Point::new(60.0, 5.0), clk)
            .unwrap();
        b.connect_flip_flop_d(ff3, u5).unwrap();
        let u6 = b
            .add_gate("u6", "BUF_X1", Point::new(50.0, 15.0), &[prev])
            .unwrap();
        let u7 = b
            .add_gate("u7", "BUF_X1", Point::new(55.0, 15.0), &[b.cell_output(u6)])
            .unwrap();
        let ff4 = b
            .add_flip_flop("ff4", "DFF_X1", Point::new(60.0, 15.0), clk)
            .unwrap();
        b.connect_flip_flop_d(ff4, u7).unwrap();
        for (i, ff) in [ff1, ff3, ff4].iter().enumerate() {
            let q = b.cell_output(*ff);
            b.add_output(&format!("po{i}"), Point::new(70.0, 10.0), q)
                .unwrap();
        }
        let n = b.build().unwrap();
        let g = TimingGraph::new(&n).unwrap();
        let d = DepthInfo::compute(&n, &g);
        (n, g, d)
    }

    #[test]
    fn fig2_gba_depth_is_min_over_paths() {
        let (n, _, d) = fig2();
        // U1–U4 lie on a 5-gate path (via U5) and a 6-gate path (via
        // U6,U7): GBA picks 5.
        for name in ["u1", "u2", "u3", "u4", "u5"] {
            let c = n.find_cell(name).unwrap();
            assert_eq!(d.gba_depth(c), Some(5), "{name}");
        }
        // U6, U7 lie only on the 6-gate path.
        for name in ["u6", "u7"] {
            let c = n.find_cell(name).unwrap();
            assert_eq!(d.gba_depth(c), Some(6), "{name}");
        }
    }

    #[test]
    fn fig2_prefix_suffix_values() {
        let (n, _, d) = fig2();
        let u1 = n.find_cell("u1").unwrap();
        assert_eq!(d.prefix[u1.index()], 1);
        assert_eq!(d.suffix[u1.index()], 5); // u1,u2,u3,u4,u5 (counts u1 itself)
        let u7 = n.find_cell("u7").unwrap();
        assert_eq!(d.prefix[u7.index()], 6);
        assert_eq!(d.suffix[u7.index()], 1) // feeds FF4 directly
    }

    #[test]
    fn startpoints_have_zero_prefix() {
        let (n, _, d) = fig2();
        let ff1 = n.find_cell("ff1").unwrap();
        assert_eq!(d.prefix[ff1.index()], 0);
    }

    #[test]
    fn distance_covers_path_extent() {
        let (n, _, d) = fig2();
        let u1 = n.find_cell("u1").unwrap();
        // Paths through u1 span x from ff1 (0) to ff3/ff4 (60), y 5..15.
        let dist = d.gba_distance(u1);
        assert!(dist >= 60.0, "distance {dist} must cover the path extent");
    }

    #[test]
    fn generated_design_depths_are_complete() {
        let n = GeneratorConfig::small(31).generate();
        let g = TimingGraph::new(&n).unwrap();
        let d = DepthInfo::compute(&n, &g);
        for (id, cell) in n.cells() {
            if cell.role == CellRole::Combinational {
                assert!(
                    d.gba_depth(id).is_some(),
                    "gate {} lies on no complete path",
                    cell.name
                );
                assert!(d.gba_distance(id) > 0.0);
            }
        }
    }

    #[test]
    fn gba_depth_le_any_path_depth() {
        // On the shared prefix, gba depth (5) ≤ actual depth of the long
        // path (6) — the invariant that makes GBA conservative.
        let (n, _, d) = fig2();
        let u3 = n.find_cell("u3").unwrap();
        assert!(d.gba_depth(u3).unwrap() <= 6);
    }
}
