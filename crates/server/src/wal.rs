//! Per-session write-ahead log: the durable record of every
//! acknowledged state-changing command.
//!
//! The log is a flat file of checksummed, length-prefixed records.
//! Each record frames one protocol command line (the canonical JSON
//! request the writer lane executed):
//!
//! ```text
//! +----------------+----------------+------------------+
//! | len: u32 LE    | crc32: u32 LE  | payload (len B)  |
//! +----------------+----------------+------------------+
//! ```
//!
//! `crc32` is the IEEE 802.3 checksum of the payload bytes; `len` is
//! bounded by [`MAX_RECORD_LEN`] so a corrupt header can never drive a
//! giant allocation. The payload is UTF-8 JSON — one command per
//! record, no trailing newline.
//!
//! Recovery ([`scan`]) walks the file front to back and stops at the
//! first defect: a torn header, a torn payload, an implausible length,
//! a checksum mismatch, or non-UTF-8 bytes. Everything before the
//! defect is the *clean prefix* — exactly the records whose append was
//! fsynced before the crash — and everything from the defect onward is
//! truncated on reopen. Corrupt bytes are a normal crash artifact here,
//! never a panic.
//!
//! Append durability: [`Wal::append`] writes the framed record and
//! fsyncs (`sync_data`) before returning, so the writer lane only
//! acknowledges a mutation that is already on disk. The `wal.append`
//! and `wal.fsync` failpoints simulate a torn write (half the record
//! lands, then the "disk" fails) and an fsync failure respectively;
//! [`Wal::rewrite`] (log compaction after a checkpoint) is covered by
//! the `wal.checkpoint` failpoint at its call site in the registry.
//!
//! See `DESIGN.md` §16 for the full durability model (fsync points,
//! recovery algorithm, checkpoint anchoring, degradation rules).

use std::fs::{File, OpenOptions};
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};

/// Bytes of framing before each record payload (`len` + `crc32`).
pub const HEADER_LEN: usize = 8;

/// Upper bound on a single record's payload length. Command lines are
/// small (a `commit` is ~100 bytes); the bound exists so a corrupted
/// length field reads as "implausible" instead of driving a huge
/// allocation during recovery.
pub const MAX_RECORD_LEN: u32 = 1 << 20;

/// IEEE 802.3 CRC-32 of `bytes`. Bitwise (no table): WAL records are
/// tiny and this keeps the codec dependency-free and obviously correct.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Frames one command line into `[len][crc32][payload]` wire bytes.
#[must_use]
pub fn encode_record(line: &str) -> Vec<u8> {
    let payload = line.as_bytes();
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Result of walking a WAL image front to back: the clean prefix of
/// records, how many bytes it spans, and why the walk stopped early
/// (if it did).
#[derive(Debug)]
pub struct Scan {
    /// Decoded record payloads, in append order.
    pub records: Vec<String>,
    /// Bytes covered by the clean prefix — the truncation point when
    /// the tail is torn.
    pub valid_len: u64,
    /// `Some(reason)` when bytes past the clean prefix were rejected
    /// (torn header/payload, bad length, checksum mismatch, non-UTF-8).
    pub truncated: Option<String>,
}

/// Decodes a WAL image into its clean prefix. Total: every input —
/// including truncations at arbitrary byte offsets, single-bit flips,
/// and random garbage — yields a prefix plus an optional truncation
/// reason, never a panic.
#[must_use]
pub fn scan(bytes: &[u8]) -> Scan {
    let mut records = Vec::new();
    let mut off = 0usize;
    let mut truncated = None;
    while off < bytes.len() {
        let rest = &bytes[off..];
        if rest.len() < HEADER_LEN {
            truncated = Some(format!("torn header ({} trailing bytes)", rest.len()));
            break;
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().unwrap());
        let crc = u32::from_le_bytes(rest[4..8].try_into().unwrap());
        if len == 0 || len > MAX_RECORD_LEN {
            truncated = Some(format!("implausible record length {len}"));
            break;
        }
        let len = len as usize;
        if rest.len() < HEADER_LEN + len {
            truncated = Some(format!(
                "torn payload (record wants {len} bytes, {} present)",
                rest.len() - HEADER_LEN
            ));
            break;
        }
        let payload = &rest[HEADER_LEN..HEADER_LEN + len];
        if crc32(payload) != crc {
            truncated = Some("checksum mismatch".into());
            break;
        }
        match std::str::from_utf8(payload) {
            Ok(s) => records.push(s.to_owned()),
            Err(_) => {
                truncated = Some("payload is not UTF-8".into());
                break;
            }
        }
        off += HEADER_LEN + len;
    }
    Scan {
        records,
        valid_len: off as u64,
        truncated,
    }
}

/// An open per-session WAL file positioned for appends.
pub struct Wal {
    path: PathBuf,
    file: File,
    /// Records currently in the log (replayed + appended since open).
    pub records: u64,
    /// Bytes currently in the log.
    pub bytes: u64,
}

impl Wal {
    /// Opens (or creates) the log at `path`, decodes the clean prefix,
    /// truncates any torn tail in place, and positions for appends.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the file cannot be read,
    /// created, or truncated. Corrupt *content* is not an error — it is
    /// reported through [`Scan::truncated`] and cut off.
    pub fn open(path: &Path) -> std::io::Result<(Self, Scan)> {
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let scan = scan(&bytes);
        if scan.valid_len < bytes.len() as u64 {
            file.set_len(scan.valid_len)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(scan.valid_len))?;
        let wal = Self {
            path: path.to_owned(),
            file,
            records: scan.records.len() as u64,
            bytes: scan.valid_len,
        };
        Ok((wal, scan))
    }

    /// Appends one framed record and fsyncs it. Returns the framed
    /// byte count on success; the caller must not acknowledge the
    /// mutation unless this returned `Ok`.
    ///
    /// # Errors
    ///
    /// Returns the write or fsync error (including the synthetic ones
    /// injected by the `wal.append`/`wal.fsync` failpoints — the former
    /// leaves a deliberately torn half-record on disk so recovery sweeps
    /// exercise the truncation path).
    pub fn append(&mut self, line: &str) -> std::io::Result<u64> {
        let rec = encode_record(line);
        if faultinject::fire("wal.append").is_some() {
            // Simulated torn write: half the frame reaches the disk and
            // the device errors before the rest. Recovery must truncate
            // this partial record.
            let _ = self.file.write_all(&rec[..rec.len() / 2]);
            let _ = self.file.sync_data();
            return Err(std::io::Error::other(
                "failpoint `wal.append`: injected torn write",
            ));
        }
        self.file.write_all(&rec)?;
        if faultinject::fire("wal.fsync").is_some() {
            return Err(std::io::Error::other(
                "failpoint `wal.fsync`: injected fsync failure",
            ));
        }
        self.file.sync_data()?;
        self.records += 1;
        self.bytes += rec.len() as u64;
        Ok(rec.len() as u64)
    }

    /// Compacts the log to exactly `tail` (the records newer than the
    /// checkpoint anchor): writes a `.tmp` sibling, fsyncs, renames it
    /// over the live log, and reopens for appends — the same
    /// crash-safety discipline as `atomic_write_text`. A crash at any
    /// point leaves either the old complete log or the new one.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error; the partially written temp
    /// file is removed on the error path and the old log stays intact.
    pub fn rewrite(&mut self, tail: &[String]) -> std::io::Result<()> {
        let mut tmp = self.path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        let write_all = |tmp: &Path| -> std::io::Result<(File, u64, u64)> {
            let mut f = File::create(tmp)?;
            let mut bytes = 0u64;
            for line in tail {
                let rec = encode_record(line);
                f.write_all(&rec)?;
                bytes += rec.len() as u64;
            }
            f.sync_data()?;
            Ok((f, bytes, tail.len() as u64))
        };
        let (file, bytes, records) = match write_all(&tmp) {
            Ok(t) => t,
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                return Err(e);
            }
        };
        if let Err(e) = std::fs::rename(&tmp, &self.path) {
            let _ = std::fs::remove_file(&tmp);
            return Err(e);
        }
        // The renamed handle is already positioned at end-of-file.
        self.file = file;
        self.records = records;
        self.bytes = bytes;
        Ok(())
    }

    /// The log's on-disk path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines() -> Vec<String> {
        vec![
            r#"{"cmd":"load","design":"small:7"}"#.to_owned(),
            r#"{"cmd":"calibrate","solver":"cgnr"}"#.to_owned(),
            r#"{"cmd":"commit","cell":"g1","to":"INV_X2"}"#.to_owned(),
        ]
    }

    fn image(lines: &[String]) -> Vec<u8> {
        lines.iter().flat_map(|l| encode_record(l)).collect()
    }

    #[test]
    fn crc32_matches_reference_vectors() {
        // Classic IEEE 802.3 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn roundtrip_decodes_every_record() {
        let lines = lines();
        let s = scan(&image(&lines));
        assert_eq!(s.records, lines);
        assert!(s.truncated.is_none());
        assert_eq!(s.valid_len, image(&lines).len() as u64);
    }

    #[test]
    fn truncation_sweep_yields_clean_prefix_at_every_byte_offset() {
        let lines = lines();
        let img = image(&lines);
        // Where each record's frame ends; a cut strictly inside frame i
        // must recover exactly records 0..i.
        let mut ends = Vec::new();
        let mut acc = 0usize;
        for l in &lines {
            acc += HEADER_LEN + l.len();
            ends.push(acc);
        }
        for cut in 0..=img.len() {
            let s = scan(&img[..cut]);
            let complete = ends.iter().filter(|e| **e <= cut).count();
            assert_eq!(s.records, lines[..complete], "cut at {cut}");
            assert_eq!(
                s.valid_len,
                ends.get(complete.wrapping_sub(1)).copied().unwrap_or(0) as u64
            );
            assert_eq!(
                s.truncated.is_some(),
                cut != ends.get(complete.wrapping_sub(1)).copied().unwrap_or(0),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn single_bit_flip_sweep_never_panics_and_keeps_the_untouched_prefix() {
        let lines = lines();
        let img = image(&lines);
        // Frame start offsets, to know which records a flip cannot touch.
        let mut starts = vec![0usize];
        for l in &lines[..lines.len() - 1] {
            starts.push(starts.last().unwrap() + HEADER_LEN + l.len());
        }
        for byte in 0..img.len() {
            for bit in 0..8 {
                let mut corrupt = img.clone();
                corrupt[byte] ^= 1 << bit;
                let s = scan(&corrupt);
                // The records framed entirely before the flipped byte
                // are untouched and must decode verbatim.
                let intact = starts.iter().filter(|s| **s < byte).count();
                let intact = intact.min(s.records.len());
                assert_eq!(
                    s.records[..intact],
                    lines[..intact],
                    "flip at byte {byte} bit {bit}"
                );
                // A flip is always detected: either fewer records come
                // back or the walk reports a truncation.
                assert!(
                    s.records.len() < lines.len() || s.truncated.is_some(),
                    "flip at byte {byte} bit {bit} went unnoticed"
                );
            }
        }
    }

    #[test]
    fn random_garbage_yields_prefix_or_typed_reason_never_a_panic() {
        // Deterministic xorshift so the sweep reproduces.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for len in [0usize, 1, 7, 8, 9, 64, 257, 4096] {
            for _ in 0..8 {
                let bytes: Vec<u8> = (0..len).map(|_| (next() & 0xFF) as u8).collect();
                let s = scan(&bytes);
                assert!(s.valid_len <= bytes.len() as u64);
                if s.valid_len < bytes.len() as u64 {
                    assert!(s.truncated.is_some());
                }
            }
        }
        // An implausible length field is named, not allocated.
        let mut huge = (u32::MAX).to_le_bytes().to_vec();
        huge.extend_from_slice(&[0; 4]);
        let s = scan(&huge);
        assert_eq!(s.records.len(), 0);
        assert!(s.truncated.unwrap().contains("implausible"));
    }

    #[test]
    fn open_truncates_a_torn_tail_and_appends_after_it() {
        let dir = std::env::temp_dir().join("mgba_wal_unit");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.wal");
        let lines = lines();
        let mut img = image(&lines);
        // Tear the last record in half.
        let keep = img.len() - (HEADER_LEN + lines[2].len()) / 2;
        img.truncate(keep);
        std::fs::write(&path, &img).unwrap();

        let (mut wal, s) = Wal::open(&path).unwrap();
        assert_eq!(s.records, lines[..2]);
        assert!(s.truncated.is_some());
        assert_eq!(wal.records, 2);

        // The file was physically truncated to the clean prefix, and a
        // fresh append lands after it.
        wal.append(r#"{"cmd":"recalibrate"}"#).unwrap();
        let (wal2, s2) = Wal::open(&path).unwrap();
        assert_eq!(
            s2.records,
            vec![
                lines[0].clone(),
                lines[1].clone(),
                r#"{"cmd":"recalibrate"}"#.to_owned()
            ]
        );
        assert!(s2.truncated.is_none());
        assert_eq!(wal2.records, 3);
    }

    #[test]
    fn rewrite_compacts_to_the_tail_atomically() {
        let dir = std::env::temp_dir().join("mgba_wal_unit");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("compact.wal");
        let _ = std::fs::remove_file(&path);
        let (mut wal, _) = Wal::open(&path).unwrap();
        for l in lines() {
            wal.append(&l).unwrap();
        }
        let tail = vec![lines()[2].clone()];
        wal.rewrite(&tail).unwrap();
        assert_eq!(wal.records, 1);
        let (_, s) = Wal::open(&path).unwrap();
        assert_eq!(s.records, tail);
        // Appends continue after the compaction point.
    }
}
