//! One resident timing session: a loaded design + engine + fitted
//! weights, executing mutating protocol commands sequentially on its
//! writer-lane thread while read queries are served either inline
//! (funnel mode) or from published [`ReadSnapshot`]s (read/write split —
//! see [`crate::registry`]).
//!
//! The session is where the paper's economics pay off: the expensive
//! steps (netlist load, full STA build, weight fitting) happen once per
//! `load`/`calibrate`, after which `slack`/`wns`/`path` queries read the
//! already-propagated graph and `whatif_resize` rides [`Sta`]'s
//! incremental update — resize, measure the delta, roll back — without
//! ever paying a full re-propagation.
//!
//! Every handler returns either a rendered JSON `result` object or an
//! [`MgbaError`]; nothing here panics on bad input, because a panic
//! would take the daemon (and every other client) down with it.
//!
//! Responses deliberately contain **no wall-clock fields**: they must be
//! bit-identical across `--threads` settings and repeated runs. Latency
//! lives in the `stats` command and the `obs` profile instead.

use crate::proto::Command;
use crate::registry::ReadSnapshot;
use crate::suggest;
use mgba::{recalibrate_warm, run_mgba_cached, CalibrationCache, MgbaConfig, MgbaError, Solver};
use netlist::{CellId, LibCellId};
use obs::json::JsonWriter;
use sta::{
    gba_path_timing_batch, paths::worst_paths_to_endpoint, pba_timing, pba_timing_batch, Path, Sta,
};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// Server-level counters assembled by the admission layer and handed to
/// the registry-level `stats`/`metrics` renderers.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerInfo {
    /// Configured bounded-queue depth.
    pub queue_depth: usize,
    /// Configured read-pool size (0 = all requests funnel through the
    /// writer lane).
    pub read_workers: usize,
    /// Requests executed to completion.
    pub served: u64,
    /// Requests rejected because the queue was full.
    pub rejected_overload: u64,
    /// Requests rejected because their admission deadline expired.
    pub rejected_deadline: u64,
    /// Request handlers that panicked and were crash-isolated.
    pub panics: u64,
}

/// A design loaded into the session.
struct Loaded {
    /// The spec string `load`/`restore` used (generator spec or file
    /// path) — recorded into snapshots for warm restart.
    spec: String,
    /// Clock period, ps.
    period: f64,
    /// The resident timing engine.
    sta: Sta,
    /// Solver name when the session has been calibrated.
    calibrated: Option<String>,
    /// Solver of the most recent successful calibration, reused by
    /// commit-triggered recalibrations.
    solver: Option<Solver>,
    /// Warm-refit state of the most recent calibration: the frozen path
    /// set, the fit problem (patched in place per commit), and `x*`.
    /// `None` until calibrated, and dropped by crash recovery — the next
    /// recalibration then falls back to a cold fit.
    cache: Option<CalibrationCache>,
    /// Union of cells invalidated by committed resizes since the last
    /// recalibration ([`Sta::last_touched`] captured right after each
    /// commit, before weight installs clear it), canonically sorted.
    dirty: Vec<CellId>,
    /// Committed resizes since load, in order, as (cell name, resolved
    /// library-cell name) — replayed verbatim by crash recovery.
    resizes: Vec<(String, String)>,
}

/// What one recalibration did — rendered into `commit`/`recalibrate`
/// responses and folded into session counters.
struct RecalOutcome {
    /// `"warm"` (dirty rows patched, solver warm-started) or `"cold"`
    /// (full re-select + re-fit).
    mode: &'static str,
    solver_name: String,
    fallback_name: &'static str,
    dirty_rows: u64,
    total_rows: u64,
    iterations: u64,
    converged: bool,
    mse_before: f64,
    mse_after: f64,
    wns: f64,
    tns: f64,
    degraded: bool,
}

/// Slow-query ring capacity per session.
pub(crate) const SLOWLOG_CAP: usize = 128;

/// Calibration-drift history ring capacity per session.
pub(crate) const HISTORY_CAP: usize = 64;

/// One slow-query ring entry: a write-lane command whose execution met
/// the server's `--slow-ms` threshold. Carries **no timing fields** —
/// membership is decided by the wall clock but the rendered bytes are
/// pure admission-order facts, so `slowlog` responses stay
/// byte-identical across `--threads`/`--read-workers` (with
/// `--slow-ms 0`, which records every lane command, they are identical
/// across runs too).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct SlowEntry {
    /// Admission-order request id of the slow request (assigned for
    /// both v1 and v2 requests, echoed only on v2 envelopes).
    pub request_id: Option<u64>,
    /// Stable command name ([`Command::name`]).
    pub cmd: &'static str,
}

/// One calibration-drift record: the fit-accuracy summary captured
/// after every calibrate/recalibrate (warm or cold), appended to a
/// bounded per-session history ring and served by the v2 `history`
/// command. Only bit-deterministic fit statistics are recorded — no
/// wall-clock — so `history` responses are byte-identical across
/// thread/read-worker settings.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct CalibrationRecord {
    /// 1-based fit index within the session (keeps numbering stable
    /// after ring eviction).
    pub fit_seq: u64,
    /// `"warm"` or `"cold"`.
    pub mode: &'static str,
    /// Solver that produced the accepted weights.
    pub solver: String,
    /// Fallback-ladder stage the fit landed on.
    pub fallback: &'static str,
    /// Solver iterations spent.
    pub iterations: u64,
    /// Whether the solver converged.
    pub converged: bool,
    /// Mean squared `s_mgba − s_pba` over fitted rows before the fit.
    pub mse_before: f64,
    /// Mean squared `s_mgba − s_pba` after the fit — the drift figure.
    pub mse_after: f64,
    /// Engine WNS after the fit, ps.
    pub wns: f64,
    /// Engine TNS after the fit, ps.
    pub tns: f64,
    /// Gates carrying a nonzero fitted weight.
    pub weights_nonzero: u64,
    /// Total gates (so sparsity is derivable).
    pub weights_total: u64,
    /// Commits accumulated since the previous fit (how stale the
    /// weights were when this fit ran).
    pub commits_since_fit: u64,
}

/// Everything needed to rebuild [`Loaded`] from scratch after a caught
/// panic: the engine itself may be mid-mutation when a handler unwinds,
/// so recovery never reuses it — it replays this record instead.
#[derive(Clone)]
struct MemSnapshot {
    spec: String,
    period: f64,
    calibrated: Option<String>,
    resizes: Vec<(String, String)>,
    /// Nonzero fitted weights keyed by cell name.
    weights: Vec<(String, f64)>,
}

/// One session's writer-lane state: at most one loaded design plus the
/// crash-recovery checkpoint. Latency accounting lives on the session's
/// [`crate::registry::SessionHandle`] so read workers can record into it
/// without touching the lane.
#[derive(Default)]
pub struct Session {
    loaded: Option<Loaded>,
    /// In-memory checkpoint taken after every successful state-changing
    /// command; [`Session::recover`] restores from it.
    last_good: Option<MemSnapshot>,
    /// True while serving from a fault-recovered state whose calibration
    /// is unavailable (answers are raw GBA: safe but pessimistic).
    degraded: bool,
    /// True once a WAL append/fsync/checkpoint failed: the in-memory
    /// state is ahead of the durable log, so the lane refuses further
    /// mutations (`error.code:"durability_lost"`) and reads carry the
    /// `degraded` envelope flag until restart. Sticky by design — the
    /// log may be arbitrarily behind, so no later write can clear it.
    durability_lost: bool,
    /// Warm (incremental, dirty-rows-only) recalibrations served.
    recalib_warm: u64,
    /// Cold (full re-select + re-fit) recalibrations served — explicit
    /// `full:true`, or the warm cache was unavailable.
    recalib_cold: u64,
    /// Calibration-drift history ring, oldest first (cap
    /// [`HISTORY_CAP`]). Deliberately outside [`Loaded`]: it survives
    /// crash-recovery rebuilds, preserving the drift time-series.
    history: std::collections::VecDeque<CalibrationRecord>,
    /// Records evicted from the history ring.
    history_evicted: u64,
    /// Fits recorded since the session started ([`CalibrationRecord`]
    /// sequence source).
    fits_total: u64,
    /// Commits since the last fit (captured into the next record).
    commits_since_fit: u64,
    /// Slow-query ring, oldest first (cap [`SLOWLOG_CAP`]); fed by the
    /// writer lane when `--slow-ms` is configured.
    slowlog: std::collections::VecDeque<SlowEntry>,
    /// Entries evicted from the slow-query ring.
    slow_dropped: u64,
}

/// Engine-level gauge values for one session, consumed by the
/// registry-level Prometheus renderer. Built either from the live lane
/// state ([`Session::engine_gauges`]) or from a published
/// [`ReadSnapshot`] ([`snapshot_engine_gauges`]).
pub(crate) struct EngineGauges {
    pub wns: f64,
    pub tns: f64,
    pub calibrated: bool,
    pub full_updates: u64,
    pub incremental_updates: u64,
    pub cells_propagated: u64,
}

/// Engine gauges read out of a published snapshot (for sessions other
/// than the one serving the `metrics` request).
pub(crate) fn snapshot_engine_gauges(snap: &ReadSnapshot) -> EngineGauges {
    EngineGauges {
        wns: snap.sta.wns(),
        tns: snap.sta.tns(),
        calibrated: snap.calibrated,
        full_updates: snap.sta.stats.full_updates,
        incremental_updates: snap.sta.stats.incremental_updates,
        cells_propagated: snap.sta.stats.cells_propagated,
    }
}

fn usage(msg: impl Into<String>) -> MgbaError {
    MgbaError::Usage(msg.into())
}

fn parse_solver(name: &str) -> Result<Solver, MgbaError> {
    Ok(match name {
        "gd" => Solver::Gd,
        "scg" => Solver::Scg,
        "scgrs" => Solver::ScgRs,
        "cgnr" => Solver::Cgnr,
        other => return Err(usage(format!("unknown solver `{other}`"))),
    })
}

/// Endpoints with finite setup slack, worst first (ties broken by cell
/// id so the order — and therefore the response bytes — are stable).
fn worst_endpoints(sta: &Sta, top: usize) -> Vec<(CellId, f64)> {
    let mut v: Vec<(CellId, f64)> = sta
        .netlist()
        .endpoints()
        .into_iter()
        .map(|e| (e, sta.setup_slack(e)))
        .filter(|(_, s)| s.is_finite())
        .collect();
    v.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.index().cmp(&b.0.index())));
    v.truncate(top);
    v
}

// ---------------------------------------------------------------------
// Read handlers.
//
// Free functions over `&Sta` so the same code serves both paths of the
// read/write split: the writer lane (live engine, funnel mode) and the
// read pool (published `ReadSnapshot`). Byte-identity across the two
// paths falls out of sharing one implementation.
// ---------------------------------------------------------------------

/// `ping` result object.
pub(crate) fn ping_result() -> String {
    let mut w = JsonWriter::new();
    w.begin_obj();
    w.key("pong");
    w.bool(true);
    w.end_obj();
    w.finish()
}

/// `slack` result: one endpoint's slack, or the `top` worst endpoints.
pub(crate) fn read_slack(
    sta: &Sta,
    endpoint: Option<&str>,
    top: usize,
) -> Result<String, MgbaError> {
    let mut w = JsonWriter::new();
    match endpoint {
        Some(name) => {
            let cell = sta
                .netlist()
                .find_cell(name)
                .ok_or_else(|| usage(format!("unknown cell `{name}`")))?;
            if !sta.netlist().endpoints().contains(&cell) {
                return Err(usage(format!("cell `{name}` is not a timing endpoint")));
            }
            w.begin_obj();
            w.key("endpoint");
            w.str(name);
            w.key("slack");
            w.f64(sta.setup_slack(cell));
            w.end_obj();
        }
        None => {
            let worst = worst_endpoints(sta, top);
            w.begin_obj();
            w.key("wns");
            w.f64(sta.wns());
            w.key("endpoints");
            w.begin_arr();
            for (cell, slack) in &worst {
                w.begin_obj();
                w.key("endpoint");
                w.str(&sta.netlist().cell(*cell).name);
                w.key("slack");
                w.f64(*slack);
                w.end_obj();
            }
            w.end_arr();
            w.end_obj();
        }
    }
    Ok(w.finish())
}

/// Process-wide lint issue counters, split by severity. They feed the
/// `mgba_lint_issues_total{severity}` Prometheus family, so they are
/// monotonic across every session and server instance in the process —
/// the response payload itself stays free of cross-request state.
static LINT_ERRORS: AtomicU64 = AtomicU64::new(0);
static LINT_WARNINGS: AtomicU64 = AtomicU64::new(0);

/// `(errors, warnings)` found by every `lint` command served so far.
pub(crate) fn lint_totals() -> (u64, u64) {
    (
        LINT_ERRORS.load(Ordering::SeqCst),
        LINT_WARNINGS.load(Ordering::SeqCst),
    )
}

/// `lint` result: the collected-issues report over the loaded design.
/// The report is a pure function of the netlist (no wall-clock fields,
/// no ordering dependence on the serving thread), so responses are
/// byte-identical across `--threads` and `--read-workers` settings and
/// across the funnel/split execution paths.
pub(crate) fn read_lint(sta: &Sta) -> String {
    let report = netlist::lint_netlist(sta.netlist());
    LINT_ERRORS.fetch_add(report.num_errors() as u64, Ordering::SeqCst);
    LINT_WARNINGS.fetch_add(report.num_warnings() as u64, Ordering::SeqCst);
    let mut w = JsonWriter::new();
    w.begin_obj();
    w.key("design");
    w.str(sta.netlist().name());
    w.key("errors");
    w.u64(report.num_errors() as u64);
    w.key("warnings");
    w.u64(report.num_warnings() as u64);
    w.key("issues");
    w.begin_arr();
    for issue in &report.issues {
        w.begin_obj();
        w.key("severity");
        w.str(issue.severity.label());
        w.key("code");
        w.str(issue.code);
        w.key("message");
        w.str(&issue.message);
        if let Some(span) = issue.span {
            w.key("line");
            w.u64(u64::from(span.line));
            w.key("col");
            w.u64(u64::from(span.col));
        }
        w.end_obj();
    }
    w.end_arr();
    w.end_obj();
    w.finish()
}

/// `slowlog` result: the slow-query ring, oldest first. Shared by the
/// writer lane (live ring) and the read pool (snapshot clone) so both
/// paths serve identical bytes.
pub(crate) fn render_slowlog(entries: &[SlowEntry], dropped: u64) -> String {
    let mut w = JsonWriter::new();
    w.begin_obj();
    w.key("count");
    w.u64(entries.len() as u64);
    w.key("dropped");
    w.u64(dropped);
    w.key("entries");
    w.begin_arr();
    for e in entries {
        w.begin_obj();
        w.key("request_id");
        match e.request_id {
            Some(rid) => w.u64(rid),
            None => w.null(),
        }
        w.key("cmd");
        w.str(e.cmd);
        w.end_obj();
    }
    w.end_arr();
    w.end_obj();
    w.finish()
}

/// `history` result: the calibration-drift ring, oldest first. Shared
/// by the writer lane and the read pool like [`render_slowlog`].
pub(crate) fn render_history(records: &[CalibrationRecord], evicted: u64) -> String {
    let mut w = JsonWriter::new();
    w.begin_obj();
    w.key("count");
    w.u64(records.len() as u64);
    w.key("evicted");
    w.u64(evicted);
    w.key("records");
    w.begin_arr();
    for r in records {
        write_history_record(&mut w, r);
    }
    w.end_arr();
    w.end_obj();
    w.finish()
}

/// One calibration-drift record as a JSON object — the `history`
/// response element shape, also reused verbatim as the checkpoint
/// file's history-line format so recovery restores the exact ring.
pub(crate) fn write_history_record(w: &mut JsonWriter, r: &CalibrationRecord) {
    w.begin_obj();
    w.key("fit");
    w.u64(r.fit_seq);
    w.key("mode");
    w.str(r.mode);
    w.key("solver");
    w.str(&r.solver);
    w.key("fallback_stage");
    w.str(r.fallback);
    w.key("iterations");
    w.u64(r.iterations);
    w.key("converged");
    w.bool(r.converged);
    w.key("mse_before");
    w.f64(r.mse_before);
    w.key("mse_after");
    w.f64(r.mse_after);
    w.key("wns");
    w.f64(r.wns);
    w.key("tns");
    w.f64(r.tns);
    w.key("weights_nonzero");
    w.u64(r.weights_nonzero);
    w.key("weights_total");
    w.u64(r.weights_total);
    w.key("commits_since_fit");
    w.u64(r.commits_since_fit);
    w.end_obj();
}

/// `wns`/`tns` result: the summary figure plus the violation count.
pub(crate) fn read_summary(sta: &Sta, wns: bool) -> String {
    let mut w = JsonWriter::new();
    w.begin_obj();
    if wns {
        w.key("wns");
        w.f64(sta.wns());
    } else {
        w.key("tns");
        w.f64(sta.tns());
    }
    w.key("violating");
    w.u64(sta.violating_endpoints().len() as u64);
    w.end_obj();
    w.finish()
}

/// `path` result: the worst path to `endpoint` (or the global worst),
/// optionally PBA-retimed.
pub(crate) fn read_path(sta: &Sta, endpoint: Option<&str>, pba: bool) -> Result<String, MgbaError> {
    let cell = match endpoint {
        Some(name) => sta
            .netlist()
            .find_cell(name)
            .ok_or_else(|| usage(format!("unknown cell `{name}`")))?,
        None => {
            worst_endpoints(sta, 1)
                .first()
                .ok_or_else(|| usage("design has no constrained endpoints"))?
                .0
        }
    };
    let paths = worst_paths_to_endpoint(sta, cell, 1);
    let path = paths
        .first()
        .ok_or_else(|| usage("no data path reaches that endpoint"))?;
    let mut w = JsonWriter::new();
    w.begin_obj();
    w.key("endpoint");
    w.str(&sta.netlist().cell(path.endpoint).name);
    w.key("slack");
    w.f64(path.gba_slack);
    w.key("arrival");
    w.f64(path.gba_arrival);
    w.key("gates");
    w.u64(path.num_gates() as u64);
    if pba {
        w.key("pba_slack");
        w.f64(pba_timing(sta, path).slack);
    }
    w.key("cells");
    w.begin_arr();
    for c in &path.cells {
        w.str(&sta.netlist().cell(*c).name);
    }
    w.end_arr();
    w.end_obj();
    Ok(w.finish())
}

impl Session {
    /// Creates an empty session (no design loaded).
    pub fn new() -> Self {
        Self::default()
    }

    fn require_loaded(&mut self) -> Result<&mut Loaded, MgbaError> {
        self.loaded
            .as_mut()
            .ok_or_else(|| usage("no design loaded (send `load` first)"))
    }

    /// True while the session serves fault-recovered state without
    /// calibration, or after its durability was lost; the server stamps
    /// `degraded:true` into success envelopes while this holds.
    pub fn is_degraded(&self) -> bool {
        self.degraded || self.durability_lost
    }

    /// Marks the session read-only after a WAL write failure (see the
    /// [`Session::durability_lost`] field doc for the semantics).
    pub(crate) fn mark_durability_lost(&mut self) {
        self.durability_lost = true;
    }

    /// True once a WAL write failed and mutations are refused.
    pub(crate) fn durability_lost(&self) -> bool {
        self.durability_lost
    }

    /// Flags the session degraded without touching its state — used by
    /// startup recovery when a checkpoint or WAL tail could not be fully
    /// replayed, so clients see `degraded:true` until a fresh
    /// `load`/`calibrate` rebuilds trustworthy state.
    pub(crate) fn mark_degraded(&mut self) {
        self.degraded = true;
    }

    /// True when the next warm-path recalibration would read the frozen
    /// calibration cache. The durability layer keys its checkpoint
    /// anchor off this: a command that *ignores* the cache (cold fit,
    /// load, restore) starts a fresh WAL tail, because replaying it from
    /// a cache-less rebuilt anchor regenerates the cache bit-for-bit.
    pub(crate) fn cache_armed(&self) -> bool {
        self.loaded
            .as_ref()
            .is_some_and(|l| l.calibrated.is_some() && l.cache.is_some())
    }

    /// `(warm, cold)` recalibration counts served by this lane.
    pub(crate) fn recalib_counts(&self) -> (u64, u64) {
        (self.recalib_warm, self.recalib_cold)
    }

    /// Clones the immutable post-command state into a snapshot the read
    /// pool can serve lock-free. `None` while no design is loaded (reads
    /// then answer the same `no design loaded` usage error the lane
    /// would).
    pub(crate) fn read_snapshot(&self) -> Option<ReadSnapshot> {
        self.loaded.as_ref().map(|l| ReadSnapshot {
            sta: l.sta.clone(),
            degraded: self.is_degraded(),
            calibrated: l.calibrated.is_some(),
            history: self.history.iter().cloned().collect(),
            history_evicted: self.history_evicted,
            slowlog: self.slowlog.iter().cloned().collect(),
            slow_dropped: self.slow_dropped,
            installed_at: std::time::Instant::now(),
        })
    }

    /// Appends a slow-query entry (called by the writer lane after a
    /// non-read command's execution met the `--slow-ms` threshold).
    pub(crate) fn note_slow(&mut self, request_id: Option<u64>, cmd: &'static str) {
        if self.slowlog.len() >= SLOWLOG_CAP {
            self.slowlog.pop_front();
            self.slow_dropped += 1;
        }
        self.slowlog.push_back(SlowEntry { request_id, cmd });
    }

    /// Appends a calibration-drift record, consuming the accumulated
    /// commit count.
    fn push_history(&mut self, mut record: CalibrationRecord) {
        self.fits_total += 1;
        record.fit_seq = self.fits_total;
        record.commits_since_fit = self.commits_since_fit;
        self.commits_since_fit = 0;
        if self.history.len() >= HISTORY_CAP {
            self.history.pop_front();
            self.history_evicted += 1;
        }
        self.history.push_back(record);
    }

    /// Most recent calibration-drift record, if any fit has run.
    pub(crate) fn latest_history(&self) -> Option<&CalibrationRecord> {
        self.history.back()
    }

    /// Drift records resident in the history ring.
    pub(crate) fn history_len(&self) -> usize {
        self.history.len()
    }

    /// `(nonzero, total)` fitted-weight counts over the loaded design.
    fn weight_counts(&self) -> (u64, u64) {
        match &self.loaded {
            Some(l) => {
                let total = l.sta.netlist().num_cells();
                let nonzero = (0..total)
                    .filter(|&i| l.sta.gate_weight(CellId::new(i)) != 0.0)
                    .count();
                (nonzero as u64, total as u64)
            }
            None => (0, 0),
        }
    }

    /// Live engine gauges for the session this lane owns (`None` until a
    /// design is loaded).
    pub(crate) fn engine_gauges(&self) -> Option<EngineGauges> {
        self.loaded.as_ref().map(|l| EngineGauges {
            wns: l.sta.wns(),
            tns: l.sta.tns(),
            calibrated: l.calibrated.is_some(),
            full_updates: l.sta.stats.full_updates,
            incremental_updates: l.sta.stats.incremental_updates,
            cells_propagated: l.sta.stats.cells_propagated,
        })
    }

    /// Writes the `stats` command's `engine` value (object or null).
    pub(crate) fn write_engine_json(&self, w: &mut JsonWriter) {
        match &self.loaded {
            Some(l) => {
                w.begin_obj();
                w.key("design");
                w.str(l.sta.netlist().name());
                w.key("period");
                w.f64(l.period);
                w.key("calibrated");
                w.bool(l.calibrated.is_some());
                w.key("full_updates");
                w.u64(l.sta.stats.full_updates);
                w.key("incremental_updates");
                w.u64(l.sta.stats.incremental_updates);
                w.key("cells_propagated");
                w.u64(l.sta.stats.cells_propagated);
                w.end_obj();
            }
            None => w.null(),
        }
    }

    /// Executes one command and renders its `result` object.
    ///
    /// # Errors
    ///
    /// Returns the command's [`MgbaError`]; the caller wraps it into a
    /// structured error response. The session survives every error.
    pub fn handle(&mut self, cmd: &Command) -> Result<String, MgbaError> {
        // Chaos hook for the crash-isolation layer: `panic` here unwinds
        // exactly like a handler bug would (the worker catches it and
        // restores the last good state); `error`/`nan` surface as a
        // typed internal error. The `failpoint` command that arms this
        // is itself unaffected — arming happens in its handler, after
        // this check.
        if let Some(fault) = faultinject::fire("server.handle") {
            return Err(MgbaError::Internal(format!(
                "failpoint `server.handle`: injected {fault:?}"
            )));
        }
        let result = self.dispatch(cmd);
        if result.is_ok()
            && matches!(
                cmd,
                Command::Load { .. }
                    | Command::Calibrate { .. }
                    | Command::Commit { .. }
                    | Command::Recalibrate { .. }
                    | Command::Restore { .. }
            )
        {
            // Checkpoint only at successful state-changing command
            // boundaries: a later panic rolls back to exactly the state
            // the client last saw acknowledged.
            self.checkpoint();
        }
        result
    }

    fn dispatch(&mut self, cmd: &Command) -> Result<String, MgbaError> {
        match cmd {
            Command::Ping => Ok(ping_result()),
            Command::Load { spec, period } => self.load(spec, *period),
            Command::Calibrate { solver } => self.calibrate(solver.as_deref()),
            Command::Slack { endpoint, top } => {
                let loaded = self.require_loaded()?;
                read_slack(&loaded.sta, endpoint.as_deref(), *top)
            }
            Command::Wns => {
                let loaded = self.require_loaded()?;
                Ok(read_summary(&loaded.sta, true))
            }
            Command::Tns => {
                let loaded = self.require_loaded()?;
                Ok(read_summary(&loaded.sta, false))
            }
            Command::PathQuery { endpoint, pba } => {
                let loaded = self.require_loaded()?;
                read_path(&loaded.sta, endpoint.as_deref(), *pba)
            }
            Command::Lint => {
                let loaded = self.require_loaded()?;
                Ok(read_lint(&loaded.sta))
            }
            // Funnel-mode service of the two ring queries: render from
            // the live rings. The split path renders a snapshot clone of
            // the same rings (see `registry::execute_read`); both paths
            // require a loaded design so the modes answer identically.
            Command::Slowlog => {
                self.require_loaded()?;
                let entries: Vec<SlowEntry> = self.slowlog.iter().cloned().collect();
                Ok(render_slowlog(&entries, self.slow_dropped))
            }
            Command::History => {
                self.require_loaded()?;
                let records: Vec<CalibrationRecord> = self.history.iter().cloned().collect();
                Ok(render_history(&records, self.history_evicted))
            }
            Command::WhatIfResize { cell, to } => self.resize(cell, to, false, false),
            Command::WhatIfBatch { resizes, pba } => self.whatif_batch(resizes, *pba),
            Command::Commit { cell, to, full } => self.resize(cell, to, true, *full),
            Command::Recalibrate { solver, full } => self.recalibrate(solver.as_deref(), *full),
            Command::Snapshot { file } => self.snapshot(file),
            Command::Restore { file } => self.restore(file),
            // Stats, metrics, hello, health, and close_session need
            // registry-wide state (every session's handle, merged
            // latency views, the session map itself); the server layer
            // intercepts them before dispatch ever sees them.
            Command::Stats
            | Command::Metrics
            | Command::Hello { .. }
            | Command::Health
            | Command::CloseSession => Err(MgbaError::Internal(
                "command is handled at the server layer".into(),
            )),
            Command::Failpoint { spec } => {
                let applied = faultinject::arm_spec(spec).map_err(MgbaError::Usage)?;
                let mut w = JsonWriter::new();
                w.begin_obj();
                w.key("applied");
                w.u64(applied as u64);
                w.key("armed");
                w.begin_arr();
                for name in faultinject::armed_names() {
                    w.str(&name);
                }
                w.end_arr();
                w.end_obj();
                Ok(w.finish())
            }
            Command::Sleep { ms } => {
                std::thread::sleep(std::time::Duration::from_millis(*ms));
                let mut w = JsonWriter::new();
                w.begin_obj();
                w.key("slept_ms");
                w.u64(*ms);
                w.end_obj();
                Ok(w.finish())
            }
            Command::Shutdown => {
                let mut w = JsonWriter::new();
                w.begin_obj();
                w.key("draining");
                w.bool(true);
                w.end_obj();
                Ok(w.finish())
            }
        }
    }

    fn load(&mut self, spec: &str, period: Option<f64>) -> Result<String, MgbaError> {
        let netlist = mgba::load_design_or_file(spec)?;
        let period = match period {
            Some(p) if p > 0.0 && p.is_finite() => p,
            Some(p) => return Err(usage(format!("bad period {p}"))),
            None => mgba::auto_period(&netlist)?,
        };
        let sta = mgba::build_engine(netlist, period)?;
        let loaded = Loaded {
            spec: spec.to_owned(),
            period,
            sta,
            calibrated: None,
            solver: None,
            cache: None,
            dirty: Vec::new(),
            resizes: Vec::new(),
        };
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.key("design");
        w.str(loaded.sta.netlist().name());
        w.key("cells");
        w.u64(loaded.sta.netlist().num_cells() as u64);
        w.key("nets");
        w.u64(loaded.sta.netlist().num_nets() as u64);
        w.key("period");
        w.f64(loaded.period);
        w.key("wns");
        w.f64(loaded.sta.wns());
        w.key("tns");
        w.f64(loaded.sta.tns());
        w.key("violating");
        w.u64(loaded.sta.violating_endpoints().len() as u64);
        w.end_obj();
        self.loaded = Some(loaded);
        // An explicit load is the client choosing a new baseline; any
        // fault-degradation of the previous state is moot.
        self.degraded = false;
        Ok(w.finish())
    }

    fn calibrate(&mut self, solver: Option<&str>) -> Result<String, MgbaError> {
        let solver = parse_solver(solver.unwrap_or("scgrs"))?;
        let loaded = self.require_loaded()?;
        let config = MgbaConfig::default();
        let (report, cache) = run_mgba_cached(&mut loaded.sta, &config, solver);
        loaded.calibrated = Some(report.solver_name.clone());
        loaded.solver = Some(solver);
        loaded.cache = cache;
        loaded.dirty.clear();
        // A fit that bottomed out at identity weights is raw GBA: the
        // session keeps serving, but flagged as degraded until a later
        // calibrate lands on a real stage.
        let degraded = report.fallback.is_degraded();
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.key("design");
        w.str(&report.design);
        w.key("solver");
        w.str(&report.solver_name);
        w.key("fallback_stage");
        w.str(report.fallback.name());
        w.key("paths");
        w.u64(report.num_paths as u64);
        w.key("gates");
        w.u64(report.num_gates as u64);
        w.key("coverage");
        w.f64(report.coverage);
        w.key("iterations");
        w.u64(report.iterations as u64);
        w.key("rows_touched");
        w.u64(report.rows_touched);
        w.key("converged");
        w.bool(report.converged);
        w.key("mse_before");
        w.f64(report.mse_before);
        w.key("mse_after");
        w.f64(report.mse_after);
        w.key("pass_before");
        w.f64(report.pass_before.ratio());
        w.key("pass_after");
        w.f64(report.pass_after.ratio());
        let wns = loaded.sta.wns();
        let tns = loaded.sta.tns();
        w.key("wns");
        w.f64(wns);
        w.key("tns");
        w.f64(tns);
        w.end_obj();
        self.degraded = degraded;
        let (weights_nonzero, weights_total) = self.weight_counts();
        self.push_history(CalibrationRecord {
            fit_seq: 0,
            mode: "cold",
            solver: report.solver_name.clone(),
            fallback: report.fallback.name(),
            iterations: report.iterations as u64,
            converged: report.converged,
            mse_before: report.mse_before,
            mse_after: report.mse_after,
            wns,
            tns,
            weights_nonzero,
            weights_total,
            commits_since_fit: 0,
        });
        Ok(w.finish())
    }

    /// Resolves a resize request to (cell, current lib, target lib).
    /// Unknown names are reported with their nearest known names
    /// (edit-distance suggestions, netlist-parser diagnostics style).
    fn resolve_resize(
        sta: &Sta,
        cell_name: &str,
        to: &str,
    ) -> Result<(CellId, LibCellId, LibCellId), MgbaError> {
        let cell = sta.netlist().find_cell(cell_name).ok_or_else(|| {
            usage(format!(
                "unknown cell `{cell_name}`{}",
                suggest::nearest_note(
                    cell_name,
                    sta.netlist().cells().map(|(_, c)| c.name.as_str())
                )
            ))
        })?;
        let lib = sta.netlist().library();
        let current = sta.netlist().cell(cell).lib_cell;
        let target = match to {
            "up" => lib
                .upsized(current)
                .ok_or_else(|| usage(format!("`{cell_name}` has no stronger drive")))?,
            "down" => lib
                .downsized(current)
                .ok_or_else(|| usage(format!("`{cell_name}` has no weaker drive")))?,
            name => lib.find(name).ok_or_else(|| {
                usage(format!(
                    "unknown library cell `{name}`{}",
                    suggest::nearest_note(name, lib.iter().map(|(_, c)| c.name.as_str()))
                ))
            })?,
        };
        Ok((cell, current, target))
    }

    fn resize(
        &mut self,
        cell_name: &str,
        to: &str,
        commit: bool,
        full: bool,
    ) -> Result<String, MgbaError> {
        let loaded = self.require_loaded()?;
        let sta = &mut loaded.sta;
        let (cell, current, target) = Self::resolve_resize(sta, cell_name, to)?;
        if current == target {
            return Err(usage(format!("`{cell_name}` is already that size")));
        }
        let lib = sta.netlist().library();
        let from_name = lib.cell(current).name.clone();
        let to_name = lib.cell(target).name.clone();
        let wns_before = sta.wns();
        let tns_before = sta.tns();
        let touched_before = sta.stats.cells_propagated;
        sta.resize_cell(cell, target)?;
        let wns_after = sta.wns();
        let tns_after = sta.tns();
        if !commit {
            // Roll back: the original library cell was legal a moment
            // ago, so this cannot fail structurally — but if it ever
            // does, surface it instead of serving from a corrupt state.
            sta.resize_cell(cell, current)
                .map_err(|e| MgbaError::Solver {
                    solver: "whatif".into(),
                    message: format!("rollback of `{cell_name}` failed: {e}"),
                })?;
        }
        let touched = sta.stats.cells_propagated - touched_before;
        let mut recal = None;
        if commit {
            // Fold this commit's invalidation cone into the accumulated
            // dirty set before anything clears `last_touched`.
            let cone = loaded.sta.last_touched().to_vec();
            loaded.dirty.extend(cone);
            loaded.dirty.sort_unstable_by_key(|c| c.index());
            loaded.dirty.dedup();
            // Record the resolved target (not `up`/`down`) so recovery
            // replays the exact same library cell.
            loaded.resizes.push((cell_name.to_owned(), to_name.clone()));
            if loaded.calibrated.is_some() {
                // A calibrated session refits on every commit so queries
                // keep answering with post-edit mGBA accuracy: warm and
                // incremental by default, cold on the `full` escape
                // hatch.
                recal = Some(Self::recalibrate_loaded(loaded, None, full)?);
            }
        }
        if commit {
            // Counted before any drift record captures it, so a
            // commit-triggered refit reports `commits_since_fit` ≥ 1.
            self.commits_since_fit += 1;
        }
        if let Some(o) = &recal {
            self.note_recalibration(o);
        }
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.key("cell");
        w.str(cell_name);
        w.key("from");
        w.str(&from_name);
        w.key("to");
        w.str(&to_name);
        w.key("committed");
        w.bool(commit);
        w.key("wns_before");
        w.f64(wns_before);
        w.key("wns_after");
        w.f64(wns_after);
        w.key("delta_wns");
        w.f64(wns_after - wns_before);
        w.key("tns_before");
        w.f64(tns_before);
        w.key("tns_after");
        w.f64(tns_after);
        w.key("delta_tns");
        w.f64(tns_after - tns_before);
        w.key("cells_propagated");
        w.u64(touched);
        if let Some(o) = &recal {
            w.key("recalibrate");
            Self::write_recal(&mut w, o);
        }
        w.end_obj();
        Ok(w.finish())
    }

    /// Re-fits the session's weights after committed edits. Warm path:
    /// patch only the dirty fit-matrix rows and warm-start the solver
    /// from the cached `x*`. Cold path (`full`, or no cache — e.g. right
    /// after crash recovery): a fresh [`run_mgba_cached`] with path
    /// re-selection.
    fn recalibrate_loaded(
        loaded: &mut Loaded,
        solver_arg: Option<&str>,
        full: bool,
    ) -> Result<RecalOutcome, MgbaError> {
        let solver = match solver_arg {
            Some(name) => parse_solver(name)?,
            None => loaded.solver.unwrap_or(Solver::ScgRs),
        };
        let config = MgbaConfig::default();
        let outcome = if let (false, Some(cache)) = (full, loaded.cache.as_mut()) {
            let dirty = std::mem::take(&mut loaded.dirty);
            let re = recalibrate_warm(&mut loaded.sta, &config, solver, cache, &dirty);
            loaded.calibrated = Some(solver.paper_name().to_owned());
            loaded.solver = Some(solver);
            RecalOutcome {
                mode: "warm",
                solver_name: solver.paper_name().to_owned(),
                fallback_name: re.fallback.name(),
                dirty_rows: re.dirty_rows as u64,
                total_rows: re.total_rows as u64,
                iterations: re.iterations as u64,
                converged: re.converged,
                mse_before: re.mse_before,
                mse_after: re.mse_after,
                wns: loaded.sta.wns(),
                tns: loaded.sta.tns(),
                degraded: re.fallback.is_degraded(),
            }
        } else {
            let (report, cache) = run_mgba_cached(&mut loaded.sta, &config, solver);
            loaded.calibrated = Some(report.solver_name.clone());
            loaded.solver = Some(solver);
            loaded.cache = cache;
            loaded.dirty.clear();
            RecalOutcome {
                mode: "cold",
                solver_name: report.solver_name,
                fallback_name: report.fallback.name(),
                dirty_rows: report.num_paths as u64,
                total_rows: report.num_paths as u64,
                iterations: report.iterations as u64,
                converged: report.converged,
                mse_before: report.mse_before,
                mse_after: report.mse_after,
                wns: loaded.sta.wns(),
                tns: loaded.sta.tns(),
                degraded: report.fallback.is_degraded(),
            }
        };
        Ok(outcome)
    }

    /// Updates session-level warm/cold counters and the degraded flag
    /// after a recalibration, and appends the drift record.
    fn note_recalibration(&mut self, o: &RecalOutcome) {
        if o.mode == "warm" {
            self.recalib_warm += 1;
        } else {
            self.recalib_cold += 1;
        }
        self.degraded = o.degraded;
        let (weights_nonzero, weights_total) = self.weight_counts();
        self.push_history(CalibrationRecord {
            fit_seq: 0,
            mode: o.mode,
            solver: o.solver_name.clone(),
            fallback: o.fallback_name,
            iterations: o.iterations,
            converged: o.converged,
            mse_before: o.mse_before,
            mse_after: o.mse_after,
            wns: o.wns,
            tns: o.tns,
            weights_nonzero,
            weights_total,
            commits_since_fit: 0,
        });
    }

    fn write_recal(w: &mut JsonWriter, o: &RecalOutcome) {
        w.begin_obj();
        w.key("mode");
        w.str(o.mode);
        w.key("solver");
        w.str(&o.solver_name);
        w.key("fallback_stage");
        w.str(o.fallback_name);
        w.key("dirty_rows");
        w.u64(o.dirty_rows);
        w.key("total_rows");
        w.u64(o.total_rows);
        w.key("iterations");
        w.u64(o.iterations);
        w.key("converged");
        w.bool(o.converged);
        w.key("mse_before");
        w.f64(o.mse_before);
        w.key("mse_after");
        w.f64(o.mse_after);
        w.key("wns");
        w.f64(o.wns);
        w.key("tns");
        w.f64(o.tns);
        w.end_obj();
    }

    fn recalibrate(&mut self, solver: Option<&str>, full: bool) -> Result<String, MgbaError> {
        let loaded = self.require_loaded()?;
        if loaded.calibrated.is_none() {
            return Err(usage("nothing calibrated yet (send `calibrate` first)"));
        }
        let o = Self::recalibrate_loaded(loaded, solver, full)?;
        self.note_recalibration(&o);
        let mut w = JsonWriter::new();
        Self::write_recal(&mut w, &o);
        Ok(w.finish())
    }

    /// Evaluates N candidate resizes in one request: each candidate is
    /// trial-applied, measured, and rolled back. Per-candidate slack
    /// sweeps fan out over the calibrated path set with the batch
    /// retimers ([`gba_path_timing_batch`] / [`pba_timing_batch`]), so
    /// the response is bit-identical at any thread count. Invalid
    /// candidates (unknown names, no such drive) become per-candidate
    /// `error` entries instead of failing the whole batch.
    fn whatif_batch(
        &mut self,
        resizes: &[(String, String)],
        pba: bool,
    ) -> Result<String, MgbaError> {
        let loaded = self.require_loaded()?;
        let par = parallel::global();
        // Split borrows: candidates mutate the engine (resize, measure,
        // roll back) while the monitored path set stays borrowed from
        // the calibration cache.
        let Loaded { sta, cache, .. } = loaded;
        let monitored: Option<&[Path]> = cache.as_ref().map(|c| c.paths.as_slice());
        let wns0 = sta.wns();
        let tns0 = sta.tns();
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.key("count");
        w.u64(resizes.len() as u64);
        w.key("wns_base");
        w.f64(wns0);
        w.key("tns_base");
        w.f64(tns0);
        w.key("results");
        w.begin_arr();
        for (cell_name, to) in resizes {
            w.begin_obj();
            w.key("cell");
            w.str(cell_name);
            w.key("to");
            w.str(to);
            let resolved =
                Self::resolve_resize(sta, cell_name, to).and_then(|(cell, current, target)| {
                    if current == target {
                        Err(usage(format!("`{cell_name}` is already that size")))
                    } else {
                        Ok((cell, current, target))
                    }
                });
            // Per-candidate errors use the same `{code, message}` shape
            // as top-level protocol errors (satellite: one structured
            // error enum across every command).
            let write_error = |w: &mut JsonWriter, e: &MgbaError| {
                w.key("error");
                w.begin_obj();
                w.key("code");
                w.str(crate::proto::error_kind(e));
                w.key("message");
                w.str(&e.to_string());
                w.end_obj();
            };
            let (cell, current, target) = match resolved {
                Ok(t) => t,
                Err(e) => {
                    write_error(&mut w, &e);
                    w.end_obj();
                    continue;
                }
            };
            if let Err(e) = sta.resize_cell(cell, target) {
                // Structural rejection happens before any mutation, so
                // the engine is untouched and the batch can continue.
                write_error(&mut w, &MgbaError::from(e));
                w.end_obj();
                continue;
            }
            w.key("from");
            w.str(&sta.netlist().library().cell(current).name);
            w.key("resolved_to");
            w.str(&sta.netlist().library().cell(target).name);
            let wns1 = sta.wns();
            let tns1 = sta.tns();
            w.key("wns");
            w.f64(wns1);
            w.key("delta_wns");
            w.f64(wns1 - wns0);
            w.key("tns");
            w.f64(tns1);
            w.key("delta_tns");
            w.f64(tns1 - tns0);
            if let Some(paths) = monitored {
                let worst = gba_path_timing_batch(sta, paths, par)
                    .iter()
                    .map(|t| t.slack)
                    .fold(f64::INFINITY, f64::min);
                w.key("path_wns");
                w.f64(worst);
                if pba {
                    let worst = pba_timing_batch(sta, paths, par)
                        .iter()
                        .map(|t| t.slack)
                        .fold(f64::INFINITY, f64::min);
                    w.key("path_pba_wns");
                    w.f64(worst);
                }
            }
            sta.resize_cell(cell, current)
                .map_err(|e| MgbaError::Solver {
                    solver: "whatif_batch".into(),
                    message: format!("rollback of `{cell_name}` failed: {e}"),
                })?;
            w.end_obj();
        }
        w.end_arr();
        w.end_obj();
        Ok(w.finish())
    }

    fn snapshot(&mut self, file: &str) -> Result<String, MgbaError> {
        let loaded = self.require_loaded()?;
        let sta = &loaded.sta;
        let n = sta.netlist().num_cells();
        let weights: Vec<f64> = (0..n).map(|i| sta.gate_weight(CellId::new(i))).collect();
        let mut out = String::new();
        let _ = writeln!(out, "# mgba snapshot v1 design={}", sta.netlist().name());
        let _ = writeln!(out, "spec {}", loaded.spec);
        let _ = writeln!(out, "period {:?}", loaded.period);
        let _ = writeln!(
            out,
            "calibrated {}",
            loaded.calibrated.as_deref().unwrap_or("-")
        );
        let _ = writeln!(out, "weights");
        out.push_str(&mgba::write_weights(sta.netlist(), &weights));
        std::fs::write(file, &out).map_err(|e| MgbaError::io(file, e))?;
        let nonzero = weights.iter().filter(|w| **w != 0.0).count();
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.key("file");
        w.str(file);
        w.key("design");
        w.str(sta.netlist().name());
        w.key("weights_written");
        w.u64(nonzero as u64);
        w.end_obj();
        Ok(w.finish())
    }

    fn restore(&mut self, file: &str) -> Result<String, MgbaError> {
        let text = std::fs::read_to_string(file).map_err(|e| MgbaError::io(file, e))?;
        let malformed = |line: usize, reason: String| {
            MgbaError::from(mgba::WeightsError::Malformed { line, reason })
        };
        if !text.starts_with("# mgba snapshot v1") {
            return Err(malformed(
                1,
                "not a snapshot (missing `# mgba snapshot v1` header)".into(),
            ));
        }
        let mut spec: Option<&str> = None;
        let mut period: Option<f64> = None;
        let mut calibrated: Option<String> = None;
        let mut weights_text = String::new();
        let mut in_weights = false;
        for (i, line) in text.lines().enumerate().skip(1) {
            if in_weights {
                weights_text.push_str(line);
                weights_text.push('\n');
                continue;
            }
            let t = line.trim();
            if t.is_empty() || t.starts_with('#') {
                continue;
            }
            if t == "weights" {
                in_weights = true;
                continue;
            }
            let (key, value) = t
                .split_once(' ')
                .ok_or_else(|| malformed(i + 1, format!("expected `key value`, got `{t}`")))?;
            match key {
                "spec" => spec = Some(value),
                "period" => {
                    period = Some(
                        value
                            .parse()
                            .map_err(|_| malformed(i + 1, format!("bad period `{value}`")))?,
                    )
                }
                "calibrated" => calibrated = (value != "-").then(|| value.to_owned()),
                other => return Err(malformed(i + 1, format!("unknown key `{other}`"))),
            }
        }
        let spec = spec.ok_or_else(|| malformed(1, "snapshot missing `spec`".into()))?;
        let period = period.ok_or_else(|| malformed(1, "snapshot missing `period`".into()))?;
        let netlist = mgba::load_design_or_file(spec)?;
        let mut sta = mgba::build_engine(netlist, period)?;
        let pairs = mgba::parse_weights(&weights_text)?;
        let dense = mgba::apply_weights(sta.netlist(), &pairs)?;
        sta.set_weights(&dense);
        let applied = pairs.len();
        // A restored session carries weights but no calibration cache:
        // the first post-restore recalibration runs cold.
        let loaded = Loaded {
            spec: spec.to_owned(),
            period,
            sta,
            calibrated,
            solver: None,
            cache: None,
            dirty: Vec::new(),
            resizes: Vec::new(),
        };
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.key("design");
        w.str(loaded.sta.netlist().name());
        w.key("period");
        w.f64(loaded.period);
        w.key("weights_applied");
        w.u64(applied as u64);
        w.key("calibrated");
        match &loaded.calibrated {
            Some(s) => w.str(s),
            None => w.null(),
        }
        w.key("wns");
        w.f64(loaded.sta.wns());
        w.key("tns");
        w.f64(loaded.sta.tns());
        w.end_obj();
        self.loaded = Some(loaded);
        // Like `load`: an explicit restore sets a new client-chosen
        // baseline, clearing any fault degradation.
        self.degraded = false;
        Ok(w.finish())
    }

    /// Captures the rebuild record for a loaded design: spec, period,
    /// committed resizes, and the nonzero fitted weights by cell name.
    fn mem_snapshot(l: &Loaded) -> MemSnapshot {
        let weights = (0..l.sta.netlist().num_cells())
            .map(CellId::new)
            .filter_map(|id| {
                let w = l.sta.gate_weight(id);
                (w != 0.0).then(|| (l.sta.netlist().cell(id).name.clone(), w))
            })
            .collect();
        MemSnapshot {
            spec: l.spec.clone(),
            period: l.period,
            calibrated: l.calibrated.clone(),
            resizes: l.resizes.clone(),
            weights,
        }
    }

    /// Records the current state as the crash-recovery baseline.
    fn checkpoint(&mut self) {
        self.last_good = self.loaded.as_ref().map(Self::mem_snapshot);
    }

    /// Rebuilds a [`Loaded`] from a checkpoint: reload the design,
    /// replay committed resizes, reapply fitted weights.
    fn rebuild(snap: &MemSnapshot) -> Result<Loaded, MgbaError> {
        let netlist = mgba::load_design_or_file(&snap.spec)?;
        let mut sta = mgba::build_engine(netlist, snap.period)?;
        for (cell, to) in &snap.resizes {
            let id = sta.netlist().find_cell(cell).ok_or_else(|| {
                MgbaError::Internal(format!("checkpoint resize names unknown cell `{cell}`"))
            })?;
            let target = sta.netlist().library().find(to).ok_or_else(|| {
                MgbaError::Internal(format!(
                    "checkpoint resize names unknown library cell `{to}`"
                ))
            })?;
            sta.resize_cell(id, target)?;
        }
        if !snap.weights.is_empty() {
            let dense = mgba::apply_weights(sta.netlist(), &snap.weights)?;
            sta.set_weights(&dense);
        }
        // The calibration cache is deliberately NOT checkpointed (it is
        // large and derivable): a recovered session serves the replayed
        // weights, and its next recalibration falls back to cold.
        Ok(Loaded {
            spec: snap.spec.clone(),
            period: snap.period,
            sta,
            calibrated: snap.calibrated.clone(),
            solver: None,
            cache: None,
            dirty: Vec::new(),
            resizes: snap.resizes.clone(),
        })
    }

    /// Restores the session after a caught handler panic. The possibly
    /// half-mutated engine is discarded unconditionally; state comes
    /// back from the last good checkpoint. The session is left degraded
    /// when the restored state has no calibration (raw-GBA answers) or
    /// when the rebuild itself fails (no design loaded at all).
    pub fn recover(&mut self) {
        self.loaded = None;
        let Some(snap) = self.last_good.clone() else {
            // Nothing was ever acknowledged as loaded: the empty state
            // IS the last good state, and it is fully restored.
            self.degraded = false;
            return;
        };
        match Self::rebuild(&snap) {
            Ok(loaded) => {
                self.degraded = loaded.calibrated.is_none();
                self.loaded = Some(loaded);
                obs::counter_add("server.session.restored", 1);
            }
            Err(e) => {
                // Catastrophic: even the checkpoint will not rebuild
                // (e.g. the netlist file vanished). Serve as an empty,
                // explicitly degraded session rather than crash.
                self.degraded = true;
                obs::counter_add("server.session.restore_failed", 1);
                eprintln!("mgba-server: session restore failed: {e}");
            }
        }
    }

    /// Captures everything the durability layer writes into an on-disk
    /// checkpoint: the rebuild record plus the session-level counters
    /// and the drift-history ring. The slow-query ring is deliberately
    /// excluded — it is operational telemetry keyed to one process
    /// lifetime, and documented to reset on restart (`DESIGN.md` §16).
    pub(crate) fn durable_state(&self) -> DurableState {
        DurableState {
            snap: self.loaded.as_ref().map(Self::mem_snapshot),
            degraded: self.degraded,
            recalib_warm: self.recalib_warm,
            recalib_cold: self.recalib_cold,
            fits_total: self.fits_total,
            commits_since_fit: self.commits_since_fit,
            history: self.history.iter().cloned().collect(),
            history_evicted: self.history_evicted,
        }
    }

    /// Builds a session from a recovered checkpoint anchor: reload +
    /// replay resizes + reapply weights (bit-exact, like panic
    /// recovery), then restore the counters and history ring the
    /// anchor carried. The WAL tail is replayed on top via
    /// [`Session::handle`].
    ///
    /// # Errors
    ///
    /// Propagates rebuild failures (vanished netlist file, resize
    /// naming an unknown cell) — the caller decides whether to serve
    /// the session empty or refuse startup.
    pub(crate) fn restore_durable(d: &DurableState) -> Result<Session, MgbaError> {
        let loaded = match &d.snap {
            Some(snap) => Some(Self::rebuild(snap)?),
            None => None,
        };
        let mut s = Session {
            loaded,
            last_good: d.snap.clone(),
            degraded: d.degraded,
            durability_lost: false,
            recalib_warm: d.recalib_warm,
            recalib_cold: d.recalib_cold,
            history: d.history.iter().cloned().collect(),
            history_evicted: d.history_evicted,
            fits_total: d.fits_total,
            commits_since_fit: d.commits_since_fit,
            slowlog: std::collections::VecDeque::new(),
            slow_dropped: 0,
        };
        // The rebuilt state is also the panic-recovery baseline.
        s.checkpoint();
        Ok(s)
    }
}

/// Checkpoint-anchor contents: a point-in-time capture of one session
/// that [`Session::restore_durable`] turns back into a live session.
/// See `DESIGN.md` §16 for where anchors sit relative to the WAL tail.
#[derive(Clone)]
pub(crate) struct DurableState {
    /// Rebuild record (`None` = no design was loaded at the anchor).
    snap: Option<MemSnapshot>,
    degraded: bool,
    recalib_warm: u64,
    recalib_cold: u64,
    fits_total: u64,
    commits_since_fit: u64,
    /// Drift-history ring at the anchor, oldest first.
    history: Vec<CalibrationRecord>,
    history_evicted: u64,
}

/// Renders a checkpoint anchor as the on-disk `.ckpt` text format:
///
/// ```text
/// # mgba ckpt v1
/// seq <records folded into this anchor>
/// degraded <0|1>
/// counters <warm> <cold> <fits> <commits_since_fit> <evicted>
/// history <count>
/// <one JSON object per record, `history` response element shape>
/// loaded <0|1>
/// spec <design spec or netlist path>
/// period <f64, shortest round-trip>
/// calibrated <solver name or ->
/// resizes <count>
/// <cell name>\t<library cell>
/// weights <count>
/// <cell name>\t<f64, shortest round-trip>
/// ```
///
/// Floats use `{:?}` (shortest exact round-trip) and names are
/// tab-separated, so parse → render is byte-stable and recovery is
/// bit-exact. Written via `atomic_write_text` (tmp + fsync + rename):
/// a crash mid-checkpoint leaves the previous anchor intact.
pub(crate) fn render_checkpoint(d: &DurableState, seq: u64) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# mgba ckpt v1");
    let _ = writeln!(out, "seq {seq}");
    let _ = writeln!(out, "degraded {}", u8::from(d.degraded));
    let _ = writeln!(
        out,
        "counters {} {} {} {} {}",
        d.recalib_warm, d.recalib_cold, d.fits_total, d.commits_since_fit, d.history_evicted
    );
    let _ = writeln!(out, "history {}", d.history.len());
    for r in &d.history {
        let mut w = JsonWriter::new();
        write_history_record(&mut w, r);
        let _ = writeln!(out, "{}", w.finish());
    }
    match &d.snap {
        None => {
            let _ = writeln!(out, "loaded 0");
        }
        Some(s) => {
            let _ = writeln!(out, "loaded 1");
            let _ = writeln!(out, "spec {}", s.spec);
            let _ = writeln!(out, "period {:?}", s.period);
            let _ = writeln!(out, "calibrated {}", s.calibrated.as_deref().unwrap_or("-"));
            let _ = writeln!(out, "resizes {}", s.resizes.len());
            for (cell, to) in &s.resizes {
                let _ = writeln!(out, "{cell}\t{to}");
            }
            let _ = writeln!(out, "weights {}", s.weights.len());
            for (cell, w) in &s.weights {
                let _ = writeln!(out, "{cell}\t{w:?}");
            }
        }
    }
    out
}

/// Parses the `.ckpt` text format back into an anchor plus its WAL
/// sequence number. Returns a typed error on any malformation — a
/// corrupt checkpoint must refuse recovery loudly, never panic or
/// restore a half-read state.
pub(crate) fn parse_checkpoint(text: &str) -> Result<(DurableState, u64), MgbaError> {
    fn bad(reason: String) -> MgbaError {
        MgbaError::Internal(format!("corrupt checkpoint: {reason}"))
    }
    fn next_field(lines: &mut std::str::Lines<'_>, key: &str) -> Result<String, MgbaError> {
        let line = lines
            .next()
            .ok_or_else(|| bad(format!("truncated before `{key}`")))?;
        line.strip_prefix(key)
            .and_then(|r| r.strip_prefix(' '))
            .map(str::to_owned)
            .ok_or_else(|| bad(format!("expected `{key} ...`, got `{line}`")))
    }
    let mut lines = text.lines();
    if lines.next() != Some("# mgba ckpt v1") {
        return Err(bad("missing `# mgba ckpt v1` header".into()));
    }
    let seq: u64 = next_field(&mut lines, "seq")?
        .parse()
        .map_err(|_| bad("bad `seq`".into()))?;
    let degraded = match next_field(&mut lines, "degraded")?.as_str() {
        "0" => false,
        "1" => true,
        other => return Err(bad(format!("bad `degraded` value `{other}`"))),
    };
    let counters = next_field(&mut lines, "counters")?;
    let mut it = counters.split(' ').map(str::parse::<u64>);
    let mut next_counter = || -> Result<u64, MgbaError> {
        it.next()
            .and_then(Result::ok)
            .ok_or_else(|| bad("bad `counters` line".into()))
    };
    let recalib_warm = next_counter()?;
    let recalib_cold = next_counter()?;
    let fits_total = next_counter()?;
    let commits_since_fit = next_counter()?;
    let history_evicted = next_counter()?;
    let n_history: usize = next_field(&mut lines, "history")?
        .parse()
        .map_err(|_| bad("bad `history` count".into()))?;
    let mut history = Vec::with_capacity(n_history.min(HISTORY_CAP));
    for i in 0..n_history {
        let line = lines
            .next()
            .ok_or_else(|| bad(format!("truncated in history record {i}")))?;
        history.push(parse_history_record(line).map_err(|e| bad(format!("record {i}: {e}")))?);
    }
    let loaded = match next_field(&mut lines, "loaded")?.as_str() {
        "0" => None,
        "1" => {
            let spec = next_field(&mut lines, "spec")?;
            let period: f64 = next_field(&mut lines, "period")?
                .parse()
                .map_err(|_| bad("bad `period`".into()))?;
            let calibrated = match next_field(&mut lines, "calibrated")?.as_str() {
                "-" => None,
                name => Some(name.to_owned()),
            };
            let n_resizes: usize = next_field(&mut lines, "resizes")?
                .parse()
                .map_err(|_| bad("bad `resizes` count".into()))?;
            let mut resizes = Vec::with_capacity(n_resizes.min(1 << 16));
            for i in 0..n_resizes {
                let line = lines
                    .next()
                    .ok_or_else(|| bad(format!("truncated in resize {i}")))?;
                let (cell, to) = line
                    .split_once('\t')
                    .ok_or_else(|| bad(format!("resize {i}: expected `cell\\tlib`")))?;
                resizes.push((cell.to_owned(), to.to_owned()));
            }
            let n_weights: usize = next_field(&mut lines, "weights")?
                .parse()
                .map_err(|_| bad("bad `weights` count".into()))?;
            let mut weights = Vec::with_capacity(n_weights.min(1 << 20));
            for i in 0..n_weights {
                let line = lines
                    .next()
                    .ok_or_else(|| bad(format!("truncated in weight {i}")))?;
                let (cell, w) = line
                    .split_once('\t')
                    .ok_or_else(|| bad(format!("weight {i}: expected `cell\\tvalue`")))?;
                let w: f64 = w
                    .parse()
                    .map_err(|_| bad(format!("weight {i}: bad value `{w}`")))?;
                weights.push((cell.to_owned(), w));
            }
            Some(MemSnapshot {
                spec,
                period,
                calibrated,
                resizes,
                weights,
            })
        }
        other => return Err(bad(format!("bad `loaded` value `{other}`"))),
    };
    Ok((
        DurableState {
            snap: loaded,
            degraded,
            recalib_warm,
            recalib_cold,
            fits_total,
            commits_since_fit,
            history,
            history_evicted,
        },
        seq,
    ))
}

/// Parses one checkpoint history line (the `history` response element
/// shape) back into a [`CalibrationRecord`].
fn parse_history_record(line: &str) -> Result<CalibrationRecord, String> {
    let v = crate::json::parse(line).map_err(|e| e.to_string())?;
    let u = |key: &str| {
        v.get(key)
            .and_then(crate::json::Value::as_u64)
            .ok_or_else(|| format!("missing `{key}`"))
    };
    let f = |key: &str| {
        v.get(key)
            .and_then(crate::json::Value::as_f64)
            .ok_or_else(|| format!("missing `{key}`"))
    };
    let s = |key: &str| {
        v.get(key)
            .and_then(crate::json::Value::as_str)
            .map(str::to_owned)
            .ok_or_else(|| format!("missing `{key}`"))
    };
    let mode = match s("mode")?.as_str() {
        "warm" => "warm",
        "cold" => "cold",
        other => return Err(format!("bad mode `{other}`")),
    };
    // Fallback-stage names are a small closed set of static strings in
    // the fit layer; a checkpoint round-trip re-interns the one it
    // stored (bounded: once per distinct stage name per recovery).
    let fallback: &'static str = match s("fallback_stage")?.as_str() {
        "none" => "none",
        other => Box::leak(other.to_owned().into_boxed_str()),
    };
    let converged = match v.get("converged") {
        Some(crate::json::Value::Bool(b)) => *b,
        _ => return Err("missing `converged`".into()),
    };
    Ok(CalibrationRecord {
        fit_seq: u("fit")?,
        mode,
        solver: s("solver")?,
        fallback,
        iterations: u("iterations")?,
        converged,
        mse_before: f("mse_before")?,
        mse_after: f("mse_after")?,
        wns: f("wns")?,
        tns: f("tns")?,
        weights_nonzero: u("weights_nonzero")?,
        weights_total: u("weights_total")?,
        commits_since_fit: u("commits_since_fit")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Value};

    fn handle(s: &mut Session, line: &str) -> Result<String, MgbaError> {
        let req = crate::proto::parse_request(line)
            .map_err(|(_, e)| e)
            .unwrap();
        s.handle(&req.cmd)
    }

    fn obj(json: &str) -> Value {
        parse(json).unwrap()
    }

    #[test]
    fn queries_before_load_are_usage_errors() {
        let mut s = Session::new();
        for cmd in [
            r#"{"cmd":"wns"}"#,
            r#"{"cmd":"calibrate"}"#,
            r#"{"cmd":"slack"}"#,
            r#"{"cmd":"snapshot","file":"x"}"#,
        ] {
            assert!(
                matches!(handle(&mut s, cmd), Err(MgbaError::Usage(_))),
                "{cmd}"
            );
        }
        // The session still works afterwards.
        assert!(handle(&mut s, r#"{"cmd":"ping"}"#).is_ok());
    }

    #[test]
    fn load_then_query_then_whatif_roundtrip() {
        let mut s = Session::new();
        let r = obj(&handle(&mut s, r#"{"cmd":"load","design":"small:7"}"#).unwrap());
        assert!(r.get("cells").and_then(Value::as_u64).unwrap() > 0);
        let wns0 = r.get("wns").and_then(Value::as_f64).unwrap();
        assert!(wns0 < 0.0, "auto period must leave violations");

        // Worst path names a mid-path combinational cell we can resize.
        let p = obj(&handle(&mut s, r#"{"cmd":"path","pba":true}"#).unwrap());
        let cells: Vec<String> = match p.get("cells").unwrap() {
            Value::Arr(a) => a.iter().map(|v| v.as_str().unwrap().to_owned()).collect(),
            other => panic!("{other:?}"),
        };
        assert!(cells.len() >= 3);
        assert!(
            p.get("pba_slack").and_then(Value::as_f64).unwrap()
                >= p.get("slack").and_then(Value::as_f64).unwrap()
        );

        let mid = &cells[cells.len() / 2];
        let whatif = format!(r#"{{"cmd":"whatif_resize","cell":"{mid}","to":"up"}}"#);
        match handle(&mut s, &whatif) {
            Ok(resp) => {
                let r = obj(&resp);
                assert_eq!(r.get("committed"), Some(&Value::Bool(false)));
                // Rolled back: engine timing is unchanged.
                let now = obj(&handle(&mut s, r#"{"cmd":"wns"}"#).unwrap());
                let wns1 = now.get("wns").and_then(Value::as_f64).unwrap();
                assert!((wns1 - wns0).abs() < 1e-6, "{wns0} vs {wns1}");
            }
            // Mid-path cell may be a flip-flop or at max drive — the
            // error path is equally valid for this seed.
            Err(MgbaError::Usage(_)) => {}
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn calibrate_improves_and_snapshot_restores() {
        let dir = std::env::temp_dir().join("mgba_server_session_test");
        std::fs::create_dir_all(&dir).unwrap();
        let snap = dir.join("s.mgba");
        let snap_str = snap.to_str().unwrap();

        let mut s = Session::new();
        handle(&mut s, r#"{"cmd":"load","design":"small:11","period":-1}"#).unwrap_err();
        handle(&mut s, r#"{"cmd":"load","design":"small:11"}"#).unwrap();
        let c = obj(&handle(&mut s, r#"{"cmd":"calibrate","solver":"cgnr"}"#).unwrap());
        assert!(c.get("paths").and_then(Value::as_u64).unwrap() > 0);
        let mse_b = c.get("mse_before").and_then(Value::as_f64).unwrap();
        let mse_a = c.get("mse_after").and_then(Value::as_f64).unwrap();
        assert!(mse_a < mse_b);
        let wns = obj(&handle(&mut s, r#"{"cmd":"wns"}"#).unwrap());
        let wns_cal = wns.get("wns").and_then(Value::as_f64).unwrap();

        let snap_req = format!(r#"{{"cmd":"snapshot","file":"{snap_str}"}}"#);
        let sn = obj(&handle(&mut s, &snap_req).unwrap());
        assert!(sn.get("weights_written").and_then(Value::as_u64).unwrap() > 0);

        // A fresh session restores to the identical corrected timing.
        let mut s2 = Session::new();
        let restore_req = format!(r#"{{"cmd":"restore","file":"{snap_str}"}}"#);
        let r = obj(&handle(&mut s2, &restore_req).unwrap());
        assert_eq!(r.get("wns").and_then(Value::as_f64), Some(wns_cal));
        assert_eq!(
            r.get("calibrated").and_then(Value::as_str),
            Some("CGNR (reference)")
        );
    }

    #[test]
    fn restore_rejects_malformed_snapshots() {
        let dir = std::env::temp_dir().join("mgba_server_session_test");
        std::fs::create_dir_all(&dir).unwrap();
        let mut s = Session::new();
        for (name, content) in [
            ("empty.mgba", ""),
            ("notsnap.mgba", "hello\n"),
            ("nospec.mgba", "# mgba snapshot v1 design=x\nperiod 900\n"),
            (
                "badperiod.mgba",
                "# mgba snapshot v1 design=x\nspec small:1\nperiod zzz\n",
            ),
            (
                "badweights.mgba",
                "# mgba snapshot v1 design=x\nspec small:1\nperiod 900.0\nweights\nnot_a_pair\n",
            ),
        ] {
            let p = dir.join(name);
            std::fs::write(&p, content).unwrap();
            let req = format!(r#"{{"cmd":"restore","file":"{}"}}"#, p.to_str().unwrap());
            let e = handle(&mut s, &req).unwrap_err();
            assert!(matches!(e, MgbaError::Parse(_)), "{name}: {e}");
        }
        // Missing file is an I/O error, not a panic.
        let e = handle(&mut s, r#"{"cmd":"restore","file":"/nonexistent/s.mgba"}"#).unwrap_err();
        assert!(matches!(e, MgbaError::Io { .. }));
    }

    #[test]
    fn commit_changes_timing_state() {
        let mut s = Session::new();
        handle(&mut s, r#"{"cmd":"load","design":"small:13"}"#).unwrap();
        let p = obj(&handle(&mut s, r#"{"cmd":"path"}"#).unwrap());
        let cells: Vec<String> = match p.get("cells").unwrap() {
            Value::Arr(a) => a.iter().map(|v| v.as_str().unwrap().to_owned()).collect(),
            other => panic!("{other:?}"),
        };
        // Find a resizable cell along the path.
        for name in &cells {
            let req = format!(r#"{{"cmd":"commit","cell":"{name}","to":"up"}}"#);
            if let Ok(resp) = handle(&mut s, &req) {
                let r = obj(&resp);
                assert_eq!(r.get("committed"), Some(&Value::Bool(true)));
                let d = r.get("delta_wns").and_then(Value::as_f64).unwrap();
                let wns_b = r.get("wns_before").and_then(Value::as_f64).unwrap();
                let wns_a = r.get("wns_after").and_then(Value::as_f64).unwrap();
                assert!((wns_a - wns_b - d).abs() < 1e-9);
                // Incremental, not full, update served the commit.
                assert!(s.engine_gauges().unwrap().incremental_updates > 0);
                return;
            }
        }
        panic!("no resizable cell on the worst path");
    }

    fn wns_of(s: &mut Session) -> f64 {
        obj(&handle(s, r#"{"cmd":"wns"}"#).unwrap())
            .get("wns")
            .and_then(Value::as_f64)
            .unwrap()
    }

    #[test]
    fn recover_restores_calibrated_state_bit_for_bit() {
        let mut s = Session::new();
        handle(&mut s, r#"{"cmd":"load","design":"small:11"}"#).unwrap();
        handle(&mut s, r#"{"cmd":"calibrate","solver":"cgnr"}"#).unwrap();
        let wns_cal = wns_of(&mut s);
        // Simulate the worker catching a panic mid-request: the engine
        // is discarded and rebuilt from the last checkpoint.
        s.recover();
        assert!(!s.is_degraded(), "full checkpoint restores calibration");
        assert_eq!(wns_of(&mut s).to_bits(), wns_cal.to_bits());
    }

    #[test]
    fn recover_without_calibration_is_degraded_until_recalibrated() {
        let mut s = Session::new();
        handle(&mut s, r#"{"cmd":"load","design":"small:7"}"#).unwrap();
        let wns0 = wns_of(&mut s);
        s.recover();
        assert!(s.is_degraded(), "post-fault uncalibrated state is degraded");
        // Still serving — raw GBA answers, identical to the pre-fault load.
        assert_eq!(wns_of(&mut s).to_bits(), wns0.to_bits());
        handle(&mut s, r#"{"cmd":"calibrate","solver":"cgnr"}"#).unwrap();
        assert!(!s.is_degraded(), "successful calibrate clears degradation");
    }

    #[test]
    fn recover_with_no_checkpoint_serves_empty_session() {
        let mut s = Session::new();
        s.recover();
        assert!(!s.is_degraded(), "empty state is fully restored");
        assert!(matches!(
            handle(&mut s, r#"{"cmd":"wns"}"#),
            Err(MgbaError::Usage(_))
        ));
        assert!(handle(&mut s, r#"{"cmd":"ping"}"#).is_ok());
    }

    #[test]
    fn recover_replays_committed_resizes() {
        let mut s = Session::new();
        handle(&mut s, r#"{"cmd":"load","design":"small:13"}"#).unwrap();
        let p = obj(&handle(&mut s, r#"{"cmd":"path"}"#).unwrap());
        let cells: Vec<String> = match p.get("cells").unwrap() {
            Value::Arr(a) => a.iter().map(|v| v.as_str().unwrap().to_owned()).collect(),
            other => panic!("{other:?}"),
        };
        let mut committed = false;
        for name in &cells {
            let req = format!(r#"{{"cmd":"commit","cell":"{name}","to":"up"}}"#);
            if handle(&mut s, &req).is_ok() {
                committed = true;
                break;
            }
        }
        assert!(committed, "no resizable cell on the worst path");
        let wns_after_commit = wns_of(&mut s);
        s.recover();
        assert_eq!(
            wns_of(&mut s).to_bits(),
            wns_after_commit.to_bits(),
            "recovery must replay the committed resize"
        );
    }

    /// Loads a design, calibrates with CGNR, and returns the worst
    /// path's cell names (resize candidates).
    fn calibrated_session(design: &str) -> (Session, Vec<String>) {
        let mut s = Session::new();
        handle(&mut s, &format!(r#"{{"cmd":"load","design":"{design}"}}"#)).unwrap();
        handle(&mut s, r#"{"cmd":"calibrate","solver":"cgnr"}"#).unwrap();
        let p = obj(&handle(&mut s, r#"{"cmd":"path"}"#).unwrap());
        let cells = match p.get("cells").unwrap() {
            Value::Arr(a) => a.iter().map(|v| v.as_str().unwrap().to_owned()).collect(),
            other => panic!("{other:?}"),
        };
        (s, cells)
    }

    /// First cell from `cells` that accepts an upsize, found by probing
    /// with rolled-back what-ifs.
    fn resizable_cell(s: &mut Session, cells: &[String]) -> String {
        cells
            .iter()
            .find(|name| {
                let req = format!(r#"{{"cmd":"whatif_resize","cell":"{name}","to":"up"}}"#);
                handle(s, &req).is_ok()
            })
            .expect("a resizable cell on the worst path")
            .clone()
    }

    #[test]
    fn commit_on_calibrated_session_recalibrates_warm() {
        let (mut s, cells) = calibrated_session("small:11");
        let victim = resizable_cell(&mut s, &cells);
        let req = format!(r#"{{"cmd":"commit","cell":"{victim}","to":"up"}}"#);
        let r = obj(&handle(&mut s, &req).unwrap());
        assert_eq!(r.get("committed"), Some(&Value::Bool(true)));
        let recal = r.get("recalibrate").expect("calibrated commit refits");
        assert_eq!(recal.get("mode").and_then(Value::as_str), Some("warm"));
        let dirty = recal.get("dirty_rows").and_then(Value::as_u64).unwrap();
        let total = recal.get("total_rows").and_then(Value::as_u64).unwrap();
        assert!(dirty > 0, "a worst-path gate is on fitted rows");
        assert!(dirty <= total);
        // The response's post-refit WNS is what queries now serve.
        let wns_recal = recal.get("wns").and_then(Value::as_f64).unwrap();
        assert_eq!(wns_of(&mut s).to_bits(), wns_recal.to_bits());

        // Parity with a cold fit (satellite): a fresh session that
        // commits the same resize FIRST and then calibrates cold lands
        // on the same corrected timing within tolerance — the warm path
        // changes the route to the optimum, not the optimum.
        let mut cold = Session::new();
        handle(&mut cold, r#"{"cmd":"load","design":"small:11"}"#).unwrap();
        handle(&mut cold, &req).unwrap();
        handle(&mut cold, r#"{"cmd":"calibrate","solver":"cgnr"}"#).unwrap();
        let wns_cold = wns_of(&mut cold);
        let tol = wns_cold.abs() * 0.01 + 1.0;
        assert!(
            (wns_recal - wns_cold).abs() <= tol,
            "warm {wns_recal} vs cold {wns_cold}"
        );
    }

    #[test]
    fn recalibrate_command_modes_and_counters() {
        let (mut s, cells) = calibrated_session("small:11");
        let victim = resizable_cell(&mut s, &cells);
        let commit = format!(r#"{{"cmd":"commit","cell":"{victim}","to":"up"}}"#);
        handle(&mut s, &commit).unwrap(); // warm #1 (auto)
                                          // Standalone warm recalibrate with nothing dirty: zero rows
                                          // patched, solution already optimal.
        let r = obj(&handle(&mut s, r#"{"cmd":"recalibrate"}"#).unwrap());
        assert_eq!(r.get("mode").and_then(Value::as_str), Some("warm"));
        assert_eq!(r.get("dirty_rows").and_then(Value::as_u64), Some(0));
        // The escape hatch forces a cold re-select + re-fit.
        let r = obj(&handle(&mut s, r#"{"cmd":"recalibrate","full":true}"#).unwrap());
        assert_eq!(r.get("mode").and_then(Value::as_str), Some("cold"));
        let dirty = r.get("dirty_rows").and_then(Value::as_u64).unwrap();
        assert_eq!(Some(dirty), r.get("total_rows").and_then(Value::as_u64));

        // Counters feed the registry-level Prometheus renderer.
        assert_eq!(s.recalib_counts(), (2, 1));
    }

    #[test]
    fn recalibrate_before_calibrate_is_a_usage_error() {
        let mut s = Session::new();
        handle(&mut s, r#"{"cmd":"load","design":"small:7"}"#).unwrap();
        let e = handle(&mut s, r#"{"cmd":"recalibrate"}"#).unwrap_err();
        assert!(matches!(e, MgbaError::Usage(_)), "{e}");
    }

    #[test]
    fn whatif_batch_reports_candidates_and_isolates_errors() {
        let (mut s, cells) = calibrated_session("small:7");
        let victim = resizable_cell(&mut s, &cells);
        let wns0 = wns_of(&mut s);
        // A near-miss name exercises the nearest-match diagnostics.
        let near_miss = format!("{victim}x");
        let req = format!(
            r#"{{"cmd":"whatif_batch","resizes":[{{"cell":"{victim}","to":"up"}},{{"cell":"{near_miss}","to":"up"}},{{"cell":"{victim}","to":"NO_SUCH_LIB"}}],"pba":true}}"#
        );
        let r = obj(&handle(&mut s, &req).unwrap());
        assert_eq!(r.get("count").and_then(Value::as_u64), Some(3));
        let results = match r.get("results").unwrap() {
            Value::Arr(a) => a,
            other => panic!("{other:?}"),
        };
        assert_eq!(results.len(), 3);
        // Candidate 0: measured and rolled back.
        let c0 = &results[0];
        assert!(c0.get("error").is_none());
        let wns1 = c0.get("wns").and_then(Value::as_f64).unwrap();
        let d = c0.get("delta_wns").and_then(Value::as_f64).unwrap();
        assert!((wns1 - wns0 - d).abs() < 1e-9);
        // Calibrated session: batch-retimed path metrics ride along.
        let path_wns = c0.get("path_wns").and_then(Value::as_f64).unwrap();
        let path_pba = c0.get("path_pba_wns").and_then(Value::as_f64).unwrap();
        assert!(path_wns.is_finite() && path_pba.is_finite());
        // Candidate 1: unknown cell, with a suggestion naming the real
        // cell; candidate 2: unknown library cell. Per-candidate errors
        // are structured `{code, message}` objects (protocol v2 shape).
        let e1 = results[1].get("error").expect("candidate 1 errors");
        assert_eq!(e1.get("code").and_then(Value::as_str), Some("usage"));
        let m1 = e1.get("message").and_then(Value::as_str).unwrap();
        assert!(m1.contains(&format!("unknown cell `{near_miss}`")), "{m1}");
        assert!(m1.contains("nearest:"), "{m1}");
        assert!(m1.contains(victim.as_str()), "{m1}");
        let e2 = results[2].get("error").expect("candidate 2 errors");
        assert_eq!(e2.get("code").and_then(Value::as_str), Some("usage"));
        let m2 = e2.get("message").and_then(Value::as_str).unwrap();
        assert!(m2.contains("unknown library cell `NO_SUCH_LIB`"), "{m2}");
        // Every candidate was rolled back: timing is unchanged.
        assert_eq!(wns_of(&mut s).to_bits(), wns0.to_bits());
    }

    #[test]
    fn whatif_batch_is_bit_identical_across_thread_counts() {
        // All engine kernels, batch retimers, and solvers are
        // bit-identical for every thread width, so the full response
        // bytes must not depend on the pool size.
        let run = |threads: usize| {
            parallel::set_global_threads(threads);
            let (mut s, cells) = calibrated_session("small:11");
            let victim = resizable_cell(&mut s, &cells);
            let req = format!(
                r#"{{"cmd":"whatif_batch","resizes":[{{"cell":"{victim}","to":"up"}},{{"cell":"{victim}","to":"down"}}],"pba":true}}"#
            );
            let resp = handle(&mut s, &req).unwrap();
            parallel::set_global_threads(0);
            resp
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn stats_and_metrics_are_server_layer_commands() {
        // The lane-level dispatcher refuses registry-wide commands; the
        // server intercepts them first (see `registry::render_stats`).
        let mut s = Session::new();
        for cmd in [r#"{"cmd":"stats"}"#, r#"{"cmd":"metrics"}"#] {
            let e = handle(&mut s, cmd).unwrap_err();
            assert!(matches!(e, MgbaError::Internal(_)), "{cmd}: {e}");
        }
    }

    #[test]
    fn checkpoint_text_round_trips_durable_state_bit_for_bit() {
        let (mut s, cells) = calibrated_session("small:11");
        let victim = resizable_cell(&mut s, &cells);
        let req = format!(r#"{{"cmd":"commit","cell":"{victim}","to":"up"}}"#);
        handle(&mut s, &req).unwrap();
        let wns_live = wns_of(&mut s);
        let history_live = handle(&mut s, r#"{"cmd":"history"}"#).unwrap();

        let text = render_checkpoint(&s.durable_state(), 42);
        let (parsed, seq) = parse_checkpoint(&text).unwrap();
        assert_eq!(seq, 42);
        // Render → parse → render is byte-stable.
        assert_eq!(render_checkpoint(&parsed, 42), text);
        // The restored session serves bit-identical answers.
        let mut r = Session::restore_durable(&parsed).unwrap();
        assert_eq!(wns_of(&mut r).to_bits(), wns_live.to_bits());
        assert_eq!(
            handle(&mut r, r#"{"cmd":"history"}"#).unwrap(),
            history_live
        );
        assert_eq!(r.recalib_counts(), s.recalib_counts());
        assert_eq!(r.is_degraded(), s.is_degraded());
    }

    #[test]
    fn corrupt_checkpoints_are_typed_errors_not_panics() {
        let mut s = Session::new();
        handle(&mut s, r#"{"cmd":"load","design":"small:7"}"#).unwrap();
        let good = render_checkpoint(&s.durable_state(), 7);
        // Truncation at every line boundary either parses a full
        // checkpoint or errors — never panics.
        let lines: Vec<&str> = good.lines().collect();
        for n in 0..lines.len() {
            let partial: String = lines[..n].iter().map(|l| format!("{l}\n")).collect();
            assert!(parse_checkpoint(&partial).is_err(), "prefix of {n} lines");
        }
        for bad in [
            "",
            "garbage",
            "# mgba ckpt v1\nseq x\n",
            "# mgba ckpt v1\nseq 1\ndegraded 7\n",
            "# mgba ckpt v1\nseq 1\ndegraded 0\ncounters 1 2\n",
        ] {
            assert!(parse_checkpoint(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn durability_loss_degrades_and_is_sticky() {
        let mut s = Session::new();
        handle(&mut s, r#"{"cmd":"load","design":"small:7"}"#).unwrap();
        assert!(!s.is_degraded());
        assert!(!s.durability_lost());
        s.mark_durability_lost();
        assert!(s.durability_lost());
        assert!(s.is_degraded(), "lost durability flags the envelope");
        // The published snapshot carries the flag to the read pool.
        assert!(s.read_snapshot().unwrap().degraded);
    }

    #[test]
    fn read_snapshot_tracks_loaded_state() {
        let mut s = Session::new();
        assert!(s.read_snapshot().is_none());
        handle(&mut s, r#"{"cmd":"load","design":"small:7"}"#).unwrap();
        let snap = s.read_snapshot().expect("loaded session snapshots");
        assert!(!snap.degraded);
        assert!(!snap.calibrated);
        // The snapshot is an independent clone serving identical bytes.
        let live = wns_of(&mut s);
        assert_eq!(snap.sta.wns().to_bits(), live.to_bits());
        assert_eq!(
            read_summary(&snap.sta, true),
            handle(&mut s, r#"{"cmd":"wns"}"#).unwrap()
        );
        handle(&mut s, r#"{"cmd":"calibrate","solver":"cgnr"}"#).unwrap();
        assert!(s.read_snapshot().unwrap().calibrated);
    }
}
