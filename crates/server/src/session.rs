//! One resident timing session: a loaded design + engine + fitted
//! weights, executing protocol commands sequentially on the worker
//! thread.
//!
//! The session is where the paper's economics pay off: the expensive
//! steps (netlist load, full STA build, weight fitting) happen once per
//! `load`/`calibrate`, after which `slack`/`wns`/`path` queries read the
//! already-propagated graph and `whatif_resize` rides [`Sta`]'s
//! incremental update — resize, measure the delta, roll back — without
//! ever paying a full re-propagation.
//!
//! Every handler returns either a rendered JSON `result` object or an
//! [`MgbaError`]; nothing here panics on bad input, because a panic
//! would take the daemon (and every other client) down with it.
//!
//! Responses deliberately contain **no wall-clock fields**: they must be
//! bit-identical across `--threads` settings and repeated runs. Latency
//! lives in the `stats` command and the `obs` profile instead.

use crate::proto::Command;
use crate::stats::CommandStats;
use mgba::{run_mgba, MgbaConfig, MgbaError, Solver};
use netlist::{CellId, LibCellId};
use obs::json::JsonWriter;
use sta::{paths::worst_paths_to_endpoint, pba_timing, Sta};
use std::fmt::Write as _;

/// Server-level counters handed to [`Session::handle`] so the `stats`
/// command can report them alongside engine and latency data.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerInfo {
    /// Configured bounded-queue depth.
    pub queue_depth: usize,
    /// Requests executed to completion.
    pub served: u64,
    /// Requests rejected because the queue was full.
    pub rejected_overload: u64,
    /// Requests rejected because their admission deadline expired.
    pub rejected_deadline: u64,
    /// Request handlers that panicked and were crash-isolated.
    pub panics: u64,
}

/// A design loaded into the session.
struct Loaded {
    /// The spec string `load`/`restore` used (generator spec or file
    /// path) — recorded into snapshots for warm restart.
    spec: String,
    /// Clock period, ps.
    period: f64,
    /// The resident timing engine.
    sta: Sta,
    /// Solver name when the session has been calibrated.
    calibrated: Option<String>,
    /// Committed resizes since load, in order, as (cell name, resolved
    /// library-cell name) — replayed verbatim by crash recovery.
    resizes: Vec<(String, String)>,
}

/// Everything needed to rebuild [`Loaded`] from scratch after a caught
/// panic: the engine itself may be mid-mutation when a handler unwinds,
/// so recovery never reuses it — it replays this record instead.
#[derive(Clone)]
struct MemSnapshot {
    spec: String,
    period: f64,
    calibrated: Option<String>,
    resizes: Vec<(String, String)>,
    /// Nonzero fitted weights keyed by cell name.
    weights: Vec<(String, f64)>,
}

/// The daemon's per-process state: at most one loaded design, plus
/// always-on latency accounting.
#[derive(Default)]
pub struct Session {
    loaded: Option<Loaded>,
    /// In-memory checkpoint taken after every successful state-changing
    /// command; [`Session::recover`] restores from it.
    last_good: Option<MemSnapshot>,
    /// True while serving from a fault-recovered state whose calibration
    /// is unavailable (answers are raw GBA: safe but pessimistic).
    degraded: bool,
    /// Per-command latency histograms (recorded by the worker loop).
    pub latency: CommandStats,
}

fn usage(msg: impl Into<String>) -> MgbaError {
    MgbaError::Usage(msg.into())
}

fn parse_solver(name: &str) -> Result<Solver, MgbaError> {
    Ok(match name {
        "gd" => Solver::Gd,
        "scg" => Solver::Scg,
        "scgrs" => Solver::ScgRs,
        "cgnr" => Solver::Cgnr,
        other => return Err(usage(format!("unknown solver `{other}`"))),
    })
}

/// Endpoints with finite setup slack, worst first (ties broken by cell
/// id so the order — and therefore the response bytes — are stable).
fn worst_endpoints(sta: &Sta, top: usize) -> Vec<(CellId, f64)> {
    let mut v: Vec<(CellId, f64)> = sta
        .netlist()
        .endpoints()
        .into_iter()
        .map(|e| (e, sta.setup_slack(e)))
        .filter(|(_, s)| s.is_finite())
        .collect();
    v.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.index().cmp(&b.0.index())));
    v.truncate(top);
    v
}

impl Session {
    /// Creates an empty session (no design loaded).
    pub fn new() -> Self {
        Self::default()
    }

    fn require_loaded(&mut self) -> Result<&mut Loaded, MgbaError> {
        self.loaded
            .as_mut()
            .ok_or_else(|| usage("no design loaded (send `load` first)"))
    }

    /// True while the session serves fault-recovered state without
    /// calibration; the server stamps `degraded:true` into success
    /// envelopes while this holds.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Executes one command and renders its `result` object.
    ///
    /// # Errors
    ///
    /// Returns the command's [`MgbaError`]; the caller wraps it into a
    /// structured error response. The session survives every error.
    pub fn handle(&mut self, cmd: &Command, server: &ServerInfo) -> Result<String, MgbaError> {
        // Chaos hook for the crash-isolation layer: `panic` here unwinds
        // exactly like a handler bug would (the worker catches it and
        // restores the last good state); `error`/`nan` surface as a
        // typed internal error. The `failpoint` command that arms this
        // is itself unaffected — arming happens in its handler, after
        // this check.
        if let Some(fault) = faultinject::fire("server.handle") {
            return Err(MgbaError::Internal(format!(
                "failpoint `server.handle`: injected {fault:?}"
            )));
        }
        let result = self.dispatch(cmd, server);
        if result.is_ok()
            && matches!(
                cmd,
                Command::Load { .. }
                    | Command::Calibrate { .. }
                    | Command::Commit { .. }
                    | Command::Restore { .. }
            )
        {
            // Checkpoint only at successful state-changing command
            // boundaries: a later panic rolls back to exactly the state
            // the client last saw acknowledged.
            self.checkpoint();
        }
        result
    }

    fn dispatch(&mut self, cmd: &Command, server: &ServerInfo) -> Result<String, MgbaError> {
        match cmd {
            Command::Ping => {
                let mut w = JsonWriter::new();
                w.begin_obj();
                w.key("pong");
                w.bool(true);
                w.end_obj();
                Ok(w.finish())
            }
            Command::Load { spec, period } => self.load(spec, *period),
            Command::Calibrate { solver } => self.calibrate(solver.as_deref()),
            Command::Slack { endpoint, top } => self.slack(endpoint.as_deref(), *top),
            Command::Wns => self.summary(true),
            Command::Tns => self.summary(false),
            Command::PathQuery { endpoint, pba } => self.path(endpoint.as_deref(), *pba),
            Command::WhatIfResize { cell, to } => self.resize(cell, to, false),
            Command::Commit { cell, to } => self.resize(cell, to, true),
            Command::Snapshot { file } => self.snapshot(file),
            Command::Restore { file } => self.restore(file),
            Command::Stats => self.stats(server),
            Command::Metrics => Ok(self.metrics(server)),
            Command::Failpoint { spec } => {
                let applied = faultinject::arm_spec(spec).map_err(MgbaError::Usage)?;
                let mut w = JsonWriter::new();
                w.begin_obj();
                w.key("applied");
                w.u64(applied as u64);
                w.key("armed");
                w.begin_arr();
                for name in faultinject::armed_names() {
                    w.str(&name);
                }
                w.end_arr();
                w.end_obj();
                Ok(w.finish())
            }
            Command::Sleep { ms } => {
                std::thread::sleep(std::time::Duration::from_millis(*ms));
                let mut w = JsonWriter::new();
                w.begin_obj();
                w.key("slept_ms");
                w.u64(*ms);
                w.end_obj();
                Ok(w.finish())
            }
            Command::Shutdown => {
                let mut w = JsonWriter::new();
                w.begin_obj();
                w.key("draining");
                w.bool(true);
                w.end_obj();
                Ok(w.finish())
            }
        }
    }

    fn load(&mut self, spec: &str, period: Option<f64>) -> Result<String, MgbaError> {
        let netlist = mgba::load_design_or_file(spec)?;
        let period = match period {
            Some(p) if p > 0.0 && p.is_finite() => p,
            Some(p) => return Err(usage(format!("bad period {p}"))),
            None => mgba::auto_period(&netlist)?,
        };
        let sta = mgba::build_engine(netlist, period)?;
        let loaded = Loaded {
            spec: spec.to_owned(),
            period,
            sta,
            calibrated: None,
            resizes: Vec::new(),
        };
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.key("design");
        w.str(loaded.sta.netlist().name());
        w.key("cells");
        w.u64(loaded.sta.netlist().num_cells() as u64);
        w.key("nets");
        w.u64(loaded.sta.netlist().num_nets() as u64);
        w.key("period");
        w.f64(loaded.period);
        w.key("wns");
        w.f64(loaded.sta.wns());
        w.key("tns");
        w.f64(loaded.sta.tns());
        w.key("violating");
        w.u64(loaded.sta.violating_endpoints().len() as u64);
        w.end_obj();
        self.loaded = Some(loaded);
        // An explicit load is the client choosing a new baseline; any
        // fault-degradation of the previous state is moot.
        self.degraded = false;
        Ok(w.finish())
    }

    fn calibrate(&mut self, solver: Option<&str>) -> Result<String, MgbaError> {
        let solver = parse_solver(solver.unwrap_or("scgrs"))?;
        let loaded = self.require_loaded()?;
        let config = MgbaConfig::default();
        let report = run_mgba(&mut loaded.sta, &config, solver);
        loaded.calibrated = Some(report.solver_name.clone());
        // A fit that bottomed out at identity weights is raw GBA: the
        // session keeps serving, but flagged as degraded until a later
        // calibrate lands on a real stage.
        let degraded = report.fallback.is_degraded();
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.key("design");
        w.str(&report.design);
        w.key("solver");
        w.str(&report.solver_name);
        w.key("fallback_stage");
        w.str(report.fallback.name());
        w.key("paths");
        w.u64(report.num_paths as u64);
        w.key("gates");
        w.u64(report.num_gates as u64);
        w.key("coverage");
        w.f64(report.coverage);
        w.key("iterations");
        w.u64(report.iterations as u64);
        w.key("rows_touched");
        w.u64(report.rows_touched);
        w.key("converged");
        w.bool(report.converged);
        w.key("mse_before");
        w.f64(report.mse_before);
        w.key("mse_after");
        w.f64(report.mse_after);
        w.key("pass_before");
        w.f64(report.pass_before.ratio());
        w.key("pass_after");
        w.f64(report.pass_after.ratio());
        w.key("wns");
        w.f64(loaded.sta.wns());
        w.key("tns");
        w.f64(loaded.sta.tns());
        w.end_obj();
        self.degraded = degraded;
        Ok(w.finish())
    }

    fn slack(&mut self, endpoint: Option<&str>, top: usize) -> Result<String, MgbaError> {
        let loaded = self.require_loaded()?;
        let sta = &loaded.sta;
        let mut w = JsonWriter::new();
        match endpoint {
            Some(name) => {
                let cell = sta
                    .netlist()
                    .find_cell(name)
                    .ok_or_else(|| usage(format!("unknown cell `{name}`")))?;
                if !sta.netlist().endpoints().contains(&cell) {
                    return Err(usage(format!("cell `{name}` is not a timing endpoint")));
                }
                w.begin_obj();
                w.key("endpoint");
                w.str(name);
                w.key("slack");
                w.f64(sta.setup_slack(cell));
                w.end_obj();
            }
            None => {
                let worst = worst_endpoints(sta, top);
                w.begin_obj();
                w.key("wns");
                w.f64(sta.wns());
                w.key("endpoints");
                w.begin_arr();
                for (cell, slack) in &worst {
                    w.begin_obj();
                    w.key("endpoint");
                    w.str(&sta.netlist().cell(*cell).name);
                    w.key("slack");
                    w.f64(*slack);
                    w.end_obj();
                }
                w.end_arr();
                w.end_obj();
            }
        }
        Ok(w.finish())
    }

    fn summary(&mut self, wns: bool) -> Result<String, MgbaError> {
        let loaded = self.require_loaded()?;
        let sta = &loaded.sta;
        let mut w = JsonWriter::new();
        w.begin_obj();
        if wns {
            w.key("wns");
            w.f64(sta.wns());
        } else {
            w.key("tns");
            w.f64(sta.tns());
        }
        w.key("violating");
        w.u64(sta.violating_endpoints().len() as u64);
        w.end_obj();
        Ok(w.finish())
    }

    fn path(&mut self, endpoint: Option<&str>, pba: bool) -> Result<String, MgbaError> {
        let loaded = self.require_loaded()?;
        let sta = &loaded.sta;
        let cell = match endpoint {
            Some(name) => sta
                .netlist()
                .find_cell(name)
                .ok_or_else(|| usage(format!("unknown cell `{name}`")))?,
            None => {
                worst_endpoints(sta, 1)
                    .first()
                    .ok_or_else(|| usage("design has no constrained endpoints"))?
                    .0
            }
        };
        let paths = worst_paths_to_endpoint(sta, cell, 1);
        let path = paths
            .first()
            .ok_or_else(|| usage("no data path reaches that endpoint"))?;
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.key("endpoint");
        w.str(&sta.netlist().cell(path.endpoint).name);
        w.key("slack");
        w.f64(path.gba_slack);
        w.key("arrival");
        w.f64(path.gba_arrival);
        w.key("gates");
        w.u64(path.num_gates() as u64);
        if pba {
            w.key("pba_slack");
            w.f64(pba_timing(sta, path).slack);
        }
        w.key("cells");
        w.begin_arr();
        for c in &path.cells {
            w.str(&sta.netlist().cell(*c).name);
        }
        w.end_arr();
        w.end_obj();
        Ok(w.finish())
    }

    /// Resolves a resize request to (cell, current lib, target lib).
    fn resolve_resize(
        sta: &Sta,
        cell_name: &str,
        to: &str,
    ) -> Result<(CellId, LibCellId, LibCellId), MgbaError> {
        let cell = sta
            .netlist()
            .find_cell(cell_name)
            .ok_or_else(|| usage(format!("unknown cell `{cell_name}`")))?;
        let lib = sta.netlist().library();
        let current = sta.netlist().cell(cell).lib_cell;
        let target = match to {
            "up" => lib
                .upsized(current)
                .ok_or_else(|| usage(format!("`{cell_name}` has no stronger drive")))?,
            "down" => lib
                .downsized(current)
                .ok_or_else(|| usage(format!("`{cell_name}` has no weaker drive")))?,
            name => lib
                .find(name)
                .ok_or_else(|| usage(format!("unknown library cell `{name}`")))?,
        };
        Ok((cell, current, target))
    }

    fn resize(&mut self, cell_name: &str, to: &str, commit: bool) -> Result<String, MgbaError> {
        let loaded = self.require_loaded()?;
        let sta = &mut loaded.sta;
        let (cell, current, target) = Self::resolve_resize(sta, cell_name, to)?;
        if current == target {
            return Err(usage(format!("`{cell_name}` is already that size")));
        }
        let lib = sta.netlist().library();
        let from_name = lib.cell(current).name.clone();
        let to_name = lib.cell(target).name.clone();
        let wns_before = sta.wns();
        let tns_before = sta.tns();
        let touched_before = sta.stats.cells_propagated;
        sta.resize_cell(cell, target)?;
        let wns_after = sta.wns();
        let tns_after = sta.tns();
        if !commit {
            // Roll back: the original library cell was legal a moment
            // ago, so this cannot fail structurally — but if it ever
            // does, surface it instead of serving from a corrupt state.
            sta.resize_cell(cell, current)
                .map_err(|e| MgbaError::Solver {
                    solver: "whatif".into(),
                    message: format!("rollback of `{cell_name}` failed: {e}"),
                })?;
        }
        let touched = sta.stats.cells_propagated - touched_before;
        if commit {
            // Record the resolved target (not `up`/`down`) so recovery
            // replays the exact same library cell.
            loaded.resizes.push((cell_name.to_owned(), to_name.clone()));
        }
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.key("cell");
        w.str(cell_name);
        w.key("from");
        w.str(&from_name);
        w.key("to");
        w.str(&to_name);
        w.key("committed");
        w.bool(commit);
        w.key("wns_before");
        w.f64(wns_before);
        w.key("wns_after");
        w.f64(wns_after);
        w.key("delta_wns");
        w.f64(wns_after - wns_before);
        w.key("tns_before");
        w.f64(tns_before);
        w.key("tns_after");
        w.f64(tns_after);
        w.key("delta_tns");
        w.f64(tns_after - tns_before);
        w.key("cells_propagated");
        w.u64(touched);
        w.end_obj();
        Ok(w.finish())
    }

    fn snapshot(&mut self, file: &str) -> Result<String, MgbaError> {
        let loaded = self.require_loaded()?;
        let sta = &loaded.sta;
        let n = sta.netlist().num_cells();
        let weights: Vec<f64> = (0..n).map(|i| sta.gate_weight(CellId::new(i))).collect();
        let mut out = String::new();
        let _ = writeln!(out, "# mgba snapshot v1 design={}", sta.netlist().name());
        let _ = writeln!(out, "spec {}", loaded.spec);
        let _ = writeln!(out, "period {:?}", loaded.period);
        let _ = writeln!(
            out,
            "calibrated {}",
            loaded.calibrated.as_deref().unwrap_or("-")
        );
        let _ = writeln!(out, "weights");
        out.push_str(&mgba::write_weights(sta.netlist(), &weights));
        std::fs::write(file, &out).map_err(|e| MgbaError::io(file, e))?;
        let nonzero = weights.iter().filter(|w| **w != 0.0).count();
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.key("file");
        w.str(file);
        w.key("design");
        w.str(sta.netlist().name());
        w.key("weights_written");
        w.u64(nonzero as u64);
        w.end_obj();
        Ok(w.finish())
    }

    fn restore(&mut self, file: &str) -> Result<String, MgbaError> {
        let text = std::fs::read_to_string(file).map_err(|e| MgbaError::io(file, e))?;
        let malformed = |line: usize, reason: String| {
            MgbaError::from(mgba::WeightsError::Malformed { line, reason })
        };
        if !text.starts_with("# mgba snapshot v1") {
            return Err(malformed(
                1,
                "not a snapshot (missing `# mgba snapshot v1` header)".into(),
            ));
        }
        let mut spec: Option<&str> = None;
        let mut period: Option<f64> = None;
        let mut calibrated: Option<String> = None;
        let mut weights_text = String::new();
        let mut in_weights = false;
        for (i, line) in text.lines().enumerate().skip(1) {
            if in_weights {
                weights_text.push_str(line);
                weights_text.push('\n');
                continue;
            }
            let t = line.trim();
            if t.is_empty() || t.starts_with('#') {
                continue;
            }
            if t == "weights" {
                in_weights = true;
                continue;
            }
            let (key, value) = t
                .split_once(' ')
                .ok_or_else(|| malformed(i + 1, format!("expected `key value`, got `{t}`")))?;
            match key {
                "spec" => spec = Some(value),
                "period" => {
                    period = Some(
                        value
                            .parse()
                            .map_err(|_| malformed(i + 1, format!("bad period `{value}`")))?,
                    )
                }
                "calibrated" => calibrated = (value != "-").then(|| value.to_owned()),
                other => return Err(malformed(i + 1, format!("unknown key `{other}`"))),
            }
        }
        let spec = spec.ok_or_else(|| malformed(1, "snapshot missing `spec`".into()))?;
        let period = period.ok_or_else(|| malformed(1, "snapshot missing `period`".into()))?;
        let netlist = mgba::load_design_or_file(spec)?;
        let mut sta = mgba::build_engine(netlist, period)?;
        let pairs = mgba::parse_weights(&weights_text)?;
        let dense = mgba::apply_weights(sta.netlist(), &pairs)?;
        sta.set_weights(&dense);
        let applied = pairs.len();
        let loaded = Loaded {
            spec: spec.to_owned(),
            period,
            sta,
            calibrated,
            resizes: Vec::new(),
        };
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.key("design");
        w.str(loaded.sta.netlist().name());
        w.key("period");
        w.f64(loaded.period);
        w.key("weights_applied");
        w.u64(applied as u64);
        w.key("calibrated");
        match &loaded.calibrated {
            Some(s) => w.str(s),
            None => w.null(),
        }
        w.key("wns");
        w.f64(loaded.sta.wns());
        w.key("tns");
        w.f64(loaded.sta.tns());
        w.end_obj();
        self.loaded = Some(loaded);
        // Like `load`: an explicit restore sets a new client-chosen
        // baseline, clearing any fault degradation.
        self.degraded = false;
        Ok(w.finish())
    }

    /// Records the current state as the crash-recovery baseline.
    fn checkpoint(&mut self) {
        self.last_good = self.loaded.as_ref().map(|l| {
            let weights = (0..l.sta.netlist().num_cells())
                .map(CellId::new)
                .filter_map(|id| {
                    let w = l.sta.gate_weight(id);
                    (w != 0.0).then(|| (l.sta.netlist().cell(id).name.clone(), w))
                })
                .collect();
            MemSnapshot {
                spec: l.spec.clone(),
                period: l.period,
                calibrated: l.calibrated.clone(),
                resizes: l.resizes.clone(),
                weights,
            }
        });
    }

    /// Rebuilds a [`Loaded`] from a checkpoint: reload the design,
    /// replay committed resizes, reapply fitted weights.
    fn rebuild(snap: &MemSnapshot) -> Result<Loaded, MgbaError> {
        let netlist = mgba::load_design_or_file(&snap.spec)?;
        let mut sta = mgba::build_engine(netlist, snap.period)?;
        for (cell, to) in &snap.resizes {
            let id = sta.netlist().find_cell(cell).ok_or_else(|| {
                MgbaError::Internal(format!("checkpoint resize names unknown cell `{cell}`"))
            })?;
            let target = sta.netlist().library().find(to).ok_or_else(|| {
                MgbaError::Internal(format!(
                    "checkpoint resize names unknown library cell `{to}`"
                ))
            })?;
            sta.resize_cell(id, target)?;
        }
        if !snap.weights.is_empty() {
            let dense = mgba::apply_weights(sta.netlist(), &snap.weights)?;
            sta.set_weights(&dense);
        }
        Ok(Loaded {
            spec: snap.spec.clone(),
            period: snap.period,
            sta,
            calibrated: snap.calibrated.clone(),
            resizes: snap.resizes.clone(),
        })
    }

    /// Restores the session after a caught handler panic. The possibly
    /// half-mutated engine is discarded unconditionally; state comes
    /// back from the last good checkpoint. The session is left degraded
    /// when the restored state has no calibration (raw-GBA answers) or
    /// when the rebuild itself fails (no design loaded at all).
    pub fn recover(&mut self) {
        self.loaded = None;
        let Some(snap) = self.last_good.clone() else {
            // Nothing was ever acknowledged as loaded: the empty state
            // IS the last good state, and it is fully restored.
            self.degraded = false;
            return;
        };
        match Self::rebuild(&snap) {
            Ok(loaded) => {
                self.degraded = loaded.calibrated.is_none();
                self.loaded = Some(loaded);
                obs::counter_add("server.session.restored", 1);
            }
            Err(e) => {
                // Catastrophic: even the checkpoint will not rebuild
                // (e.g. the netlist file vanished). Serve as an empty,
                // explicitly degraded session rather than crash.
                self.degraded = true;
                obs::counter_add("server.session.restore_failed", 1);
                eprintln!("mgba-server: session restore failed: {e}");
            }
        }
    }

    /// Renders the full Prometheus exposition: server counters, engine
    /// gauges, the always-on per-command latency histograms (one
    /// `{cmd="…"}` series each), and whatever the `obs` registry holds
    /// (empty unless `--profile` is on). Like `stats`, the output is
    /// non-deterministic (latencies), so it is excluded from the
    /// byte-identity protocol tests.
    fn exposition(&self, server: &ServerInfo) -> String {
        use obs::prom::PromWriter;
        let mut p = PromWriter::new();
        p.gauge(
            "mgba_server_queue_depth",
            "configured bounded-queue depth",
            server.queue_depth as f64,
        );
        p.gauge(
            "mgba_server_threads",
            "worker pool size",
            parallel::global().threads() as f64,
        );
        p.counter(
            "mgba_server_served_total",
            "requests executed to completion",
            server.served,
        );
        p.counter(
            "mgba_server_rejected_overload_total",
            "requests rejected with a full queue",
            server.rejected_overload,
        );
        p.counter(
            "mgba_server_rejected_deadline_total",
            "requests whose admission deadline expired while queued",
            server.rejected_deadline,
        );
        p.counter(
            "mgba_server_panics_total",
            "request handlers that panicked and were crash-isolated",
            server.panics,
        );
        p.gauge(
            "mgba_session_degraded",
            "1 while serving fault-recovered state without calibration",
            if self.degraded { 1.0 } else { 0.0 },
        );
        if let Some(l) = &self.loaded {
            p.gauge("mgba_engine_wns", "worst negative slack, ps", l.sta.wns());
            p.gauge("mgba_engine_tns", "total negative slack, ps", l.sta.tns());
            p.gauge(
                "mgba_engine_calibrated",
                "1 when mGBA weights are fitted",
                if l.calibrated.is_some() { 1.0 } else { 0.0 },
            );
            p.counter(
                "mgba_engine_full_updates_total",
                "full timing propagations",
                l.sta.stats.full_updates,
            );
            p.counter(
                "mgba_engine_incremental_updates_total",
                "incremental timing propagations",
                l.sta.stats.incremental_updates,
            );
            p.counter(
                "mgba_engine_cells_propagated_total",
                "cells touched by timing propagation",
                l.sta.stats.cells_propagated,
            );
        }
        p.histogram_family(
            "mgba_server_command_latency_us",
            "per-command request latency, microseconds",
        );
        for (name, h) in self.latency.iter() {
            p.histogram_series(
                "mgba_server_command_latency_us",
                Some(("cmd", name)),
                &h.buckets(),
                h.count,
                h.sum_us as f64,
            );
        }
        let mut text = p.finish();
        // The obs registry rides along when profiling is enabled.
        text.push_str(&obs::prom::encode(&obs::metrics::snapshot()));
        text
    }

    fn metrics(&self, server: &ServerInfo) -> String {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.key("content_type");
        w.str(obs::prom::CONTENT_TYPE);
        w.key("exposition");
        w.str(&self.exposition(server));
        w.end_obj();
        w.finish()
    }

    fn stats(&mut self, server: &ServerInfo) -> Result<String, MgbaError> {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.key("server");
        w.begin_obj();
        w.key("queue_depth");
        w.u64(server.queue_depth as u64);
        w.key("served");
        w.u64(server.served);
        w.key("rejected_overload");
        w.u64(server.rejected_overload);
        w.key("rejected_deadline");
        w.u64(server.rejected_deadline);
        w.key("panics");
        w.u64(server.panics);
        w.key("degraded");
        w.bool(self.degraded);
        w.key("threads");
        w.u64(parallel::global().threads() as u64);
        w.end_obj();
        w.key("engine");
        match &self.loaded {
            Some(l) => {
                w.begin_obj();
                w.key("design");
                w.str(l.sta.netlist().name());
                w.key("period");
                w.f64(l.period);
                w.key("calibrated");
                w.bool(l.calibrated.is_some());
                w.key("full_updates");
                w.u64(l.sta.stats.full_updates);
                w.key("incremental_updates");
                w.u64(l.sta.stats.incremental_updates);
                w.key("cells_propagated");
                w.u64(l.sta.stats.cells_propagated);
                w.end_obj();
            }
            None => w.null(),
        }
        w.key("commands");
        self.latency.write_json(&mut w);
        w.end_obj();
        Ok(w.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Value};

    fn handle(s: &mut Session, line: &str) -> Result<String, MgbaError> {
        let req = crate::proto::parse_request(line)
            .map_err(|(_, e)| e)
            .unwrap();
        s.handle(&req.cmd, &ServerInfo::default())
    }

    fn obj(json: &str) -> Value {
        parse(json).unwrap()
    }

    #[test]
    fn queries_before_load_are_usage_errors() {
        let mut s = Session::new();
        for cmd in [
            r#"{"cmd":"wns"}"#,
            r#"{"cmd":"calibrate"}"#,
            r#"{"cmd":"slack"}"#,
            r#"{"cmd":"snapshot","file":"x"}"#,
        ] {
            assert!(
                matches!(handle(&mut s, cmd), Err(MgbaError::Usage(_))),
                "{cmd}"
            );
        }
        // The session still works afterwards.
        assert!(handle(&mut s, r#"{"cmd":"ping"}"#).is_ok());
    }

    #[test]
    fn load_then_query_then_whatif_roundtrip() {
        let mut s = Session::new();
        let r = obj(&handle(&mut s, r#"{"cmd":"load","design":"small:7"}"#).unwrap());
        assert!(r.get("cells").and_then(Value::as_u64).unwrap() > 0);
        let wns0 = r.get("wns").and_then(Value::as_f64).unwrap();
        assert!(wns0 < 0.0, "auto period must leave violations");

        // Worst path names a mid-path combinational cell we can resize.
        let p = obj(&handle(&mut s, r#"{"cmd":"path","pba":true}"#).unwrap());
        let cells: Vec<String> = match p.get("cells").unwrap() {
            Value::Arr(a) => a.iter().map(|v| v.as_str().unwrap().to_owned()).collect(),
            other => panic!("{other:?}"),
        };
        assert!(cells.len() >= 3);
        assert!(
            p.get("pba_slack").and_then(Value::as_f64).unwrap()
                >= p.get("slack").and_then(Value::as_f64).unwrap()
        );

        let mid = &cells[cells.len() / 2];
        let whatif = format!(r#"{{"cmd":"whatif_resize","cell":"{mid}","to":"up"}}"#);
        match handle(&mut s, &whatif) {
            Ok(resp) => {
                let r = obj(&resp);
                assert_eq!(r.get("committed"), Some(&Value::Bool(false)));
                // Rolled back: engine timing is unchanged.
                let now = obj(&handle(&mut s, r#"{"cmd":"wns"}"#).unwrap());
                let wns1 = now.get("wns").and_then(Value::as_f64).unwrap();
                assert!((wns1 - wns0).abs() < 1e-6, "{wns0} vs {wns1}");
            }
            // Mid-path cell may be a flip-flop or at max drive — the
            // error path is equally valid for this seed.
            Err(MgbaError::Usage(_)) => {}
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn calibrate_improves_and_snapshot_restores() {
        let dir = std::env::temp_dir().join("mgba_server_session_test");
        std::fs::create_dir_all(&dir).unwrap();
        let snap = dir.join("s.mgba");
        let snap_str = snap.to_str().unwrap();

        let mut s = Session::new();
        handle(&mut s, r#"{"cmd":"load","design":"small:11","period":-1}"#).unwrap_err();
        handle(&mut s, r#"{"cmd":"load","design":"small:11"}"#).unwrap();
        let c = obj(&handle(&mut s, r#"{"cmd":"calibrate","solver":"cgnr"}"#).unwrap());
        assert!(c.get("paths").and_then(Value::as_u64).unwrap() > 0);
        let mse_b = c.get("mse_before").and_then(Value::as_f64).unwrap();
        let mse_a = c.get("mse_after").and_then(Value::as_f64).unwrap();
        assert!(mse_a < mse_b);
        let wns = obj(&handle(&mut s, r#"{"cmd":"wns"}"#).unwrap());
        let wns_cal = wns.get("wns").and_then(Value::as_f64).unwrap();

        let snap_req = format!(r#"{{"cmd":"snapshot","file":"{snap_str}"}}"#);
        let sn = obj(&handle(&mut s, &snap_req).unwrap());
        assert!(sn.get("weights_written").and_then(Value::as_u64).unwrap() > 0);

        // A fresh session restores to the identical corrected timing.
        let mut s2 = Session::new();
        let restore_req = format!(r#"{{"cmd":"restore","file":"{snap_str}"}}"#);
        let r = obj(&handle(&mut s2, &restore_req).unwrap());
        assert_eq!(r.get("wns").and_then(Value::as_f64), Some(wns_cal));
        assert_eq!(
            r.get("calibrated").and_then(Value::as_str),
            Some("CGNR (reference)")
        );
    }

    #[test]
    fn restore_rejects_malformed_snapshots() {
        let dir = std::env::temp_dir().join("mgba_server_session_test");
        std::fs::create_dir_all(&dir).unwrap();
        let mut s = Session::new();
        for (name, content) in [
            ("empty.mgba", ""),
            ("notsnap.mgba", "hello\n"),
            ("nospec.mgba", "# mgba snapshot v1 design=x\nperiod 900\n"),
            (
                "badperiod.mgba",
                "# mgba snapshot v1 design=x\nspec small:1\nperiod zzz\n",
            ),
            (
                "badweights.mgba",
                "# mgba snapshot v1 design=x\nspec small:1\nperiod 900.0\nweights\nnot_a_pair\n",
            ),
        ] {
            let p = dir.join(name);
            std::fs::write(&p, content).unwrap();
            let req = format!(r#"{{"cmd":"restore","file":"{}"}}"#, p.to_str().unwrap());
            let e = handle(&mut s, &req).unwrap_err();
            assert!(matches!(e, MgbaError::Parse(_)), "{name}: {e}");
        }
        // Missing file is an I/O error, not a panic.
        let e = handle(&mut s, r#"{"cmd":"restore","file":"/nonexistent/s.mgba"}"#).unwrap_err();
        assert!(matches!(e, MgbaError::Io { .. }));
    }

    #[test]
    fn commit_changes_timing_state() {
        let mut s = Session::new();
        handle(&mut s, r#"{"cmd":"load","design":"small:13"}"#).unwrap();
        let p = obj(&handle(&mut s, r#"{"cmd":"path"}"#).unwrap());
        let cells: Vec<String> = match p.get("cells").unwrap() {
            Value::Arr(a) => a.iter().map(|v| v.as_str().unwrap().to_owned()).collect(),
            other => panic!("{other:?}"),
        };
        // Find a resizable cell along the path.
        for name in &cells {
            let req = format!(r#"{{"cmd":"commit","cell":"{name}","to":"up"}}"#);
            if let Ok(resp) = handle(&mut s, &req) {
                let r = obj(&resp);
                assert_eq!(r.get("committed"), Some(&Value::Bool(true)));
                let d = r.get("delta_wns").and_then(Value::as_f64).unwrap();
                let wns_b = r.get("wns_before").and_then(Value::as_f64).unwrap();
                let wns_a = r.get("wns_after").and_then(Value::as_f64).unwrap();
                assert!((wns_a - wns_b - d).abs() < 1e-9);
                // Incremental, not full, update served the commit.
                let st = obj(&handle(&mut s, r#"{"cmd":"stats"}"#).unwrap());
                let eng = st.get("engine").unwrap();
                assert!(
                    eng.get("incremental_updates")
                        .and_then(Value::as_u64)
                        .unwrap()
                        > 0
                );
                return;
            }
        }
        panic!("no resizable cell on the worst path");
    }

    fn wns_of(s: &mut Session) -> f64 {
        obj(&handle(s, r#"{"cmd":"wns"}"#).unwrap())
            .get("wns")
            .and_then(Value::as_f64)
            .unwrap()
    }

    #[test]
    fn recover_restores_calibrated_state_bit_for_bit() {
        let mut s = Session::new();
        handle(&mut s, r#"{"cmd":"load","design":"small:11"}"#).unwrap();
        handle(&mut s, r#"{"cmd":"calibrate","solver":"cgnr"}"#).unwrap();
        let wns_cal = wns_of(&mut s);
        // Simulate the worker catching a panic mid-request: the engine
        // is discarded and rebuilt from the last checkpoint.
        s.recover();
        assert!(!s.is_degraded(), "full checkpoint restores calibration");
        assert_eq!(wns_of(&mut s).to_bits(), wns_cal.to_bits());
    }

    #[test]
    fn recover_without_calibration_is_degraded_until_recalibrated() {
        let mut s = Session::new();
        handle(&mut s, r#"{"cmd":"load","design":"small:7"}"#).unwrap();
        let wns0 = wns_of(&mut s);
        s.recover();
        assert!(s.is_degraded(), "post-fault uncalibrated state is degraded");
        // Still serving — raw GBA answers, identical to the pre-fault load.
        assert_eq!(wns_of(&mut s).to_bits(), wns0.to_bits());
        handle(&mut s, r#"{"cmd":"calibrate","solver":"cgnr"}"#).unwrap();
        assert!(!s.is_degraded(), "successful calibrate clears degradation");
    }

    #[test]
    fn recover_with_no_checkpoint_serves_empty_session() {
        let mut s = Session::new();
        s.recover();
        assert!(!s.is_degraded(), "empty state is fully restored");
        assert!(matches!(
            handle(&mut s, r#"{"cmd":"wns"}"#),
            Err(MgbaError::Usage(_))
        ));
        assert!(handle(&mut s, r#"{"cmd":"ping"}"#).is_ok());
    }

    #[test]
    fn recover_replays_committed_resizes() {
        let mut s = Session::new();
        handle(&mut s, r#"{"cmd":"load","design":"small:13"}"#).unwrap();
        let p = obj(&handle(&mut s, r#"{"cmd":"path"}"#).unwrap());
        let cells: Vec<String> = match p.get("cells").unwrap() {
            Value::Arr(a) => a.iter().map(|v| v.as_str().unwrap().to_owned()).collect(),
            other => panic!("{other:?}"),
        };
        let mut committed = false;
        for name in &cells {
            let req = format!(r#"{{"cmd":"commit","cell":"{name}","to":"up"}}"#);
            if handle(&mut s, &req).is_ok() {
                committed = true;
                break;
            }
        }
        assert!(committed, "no resizable cell on the worst path");
        let wns_after_commit = wns_of(&mut s);
        s.recover();
        assert_eq!(
            wns_of(&mut s).to_bits(),
            wns_after_commit.to_bits(),
            "recovery must replay the committed resize"
        );
    }

    #[test]
    fn stats_reports_latency_and_engine() {
        let mut s = Session::new();
        s.latency.record("ping", 12);
        let st = obj(&handle(&mut s, r#"{"cmd":"stats"}"#).unwrap());
        assert_eq!(st.get("engine"), Some(&Value::Null));
        let cmds = st.get("commands").unwrap();
        assert!(cmds.get("ping").is_some());
    }

    #[test]
    fn metrics_exposition_is_conformant() {
        let mut s = Session::new();
        handle(&mut s, r#"{"cmd":"load","design":"small:7"}"#).unwrap();
        s.latency.record("load", 950);
        s.latency.record("wns", 4);
        s.latency.record("wns", 70_000);
        let info = ServerInfo {
            queue_depth: 16,
            served: 3,
            rejected_overload: 1,
            rejected_deadline: 0,
            panics: 2,
        };
        let req = crate::proto::parse_request(r#"{"cmd":"metrics"}"#)
            .map_err(|(_, e)| e)
            .unwrap();
        let r = obj(&s.handle(&req.cmd, &info).unwrap());
        assert_eq!(
            r.get("content_type").and_then(Value::as_str),
            Some(obs::prom::CONTENT_TYPE)
        );
        let text = r.get("exposition").and_then(Value::as_str).unwrap();
        obs::prom::validate(text).expect("conformant exposition");
        assert!(text.contains("mgba_server_served_total 3"));
        assert!(text.contains("mgba_server_rejected_overload_total 1"));
        assert!(text.contains("mgba_server_panics_total 2"));
        assert!(text.contains("mgba_session_degraded 0"));
        assert!(text.contains("# TYPE mgba_server_command_latency_us histogram"));
        assert!(text.contains("mgba_server_command_latency_us_count{cmd=\"wns\"} 2"));
        assert!(text.contains("mgba_server_command_latency_us_bucket{cmd=\"wns\",le=\"+Inf\"} 2"));
        assert!(text.contains("# TYPE mgba_engine_wns gauge"));
    }
}
