//! The session registry: named concurrent sessions with a read/write
//! split.
//!
//! # Sharding model
//!
//! Every session (protocol v2 `session` field; v1 requests map to
//! `"default"`) owns exactly one **writer lane** — a thread that holds
//! the session's [`Session`] state and executes mutating commands
//! strictly in admission order. After every successful state-changing
//! command the lane clones the immutable post-command engine into a
//! [`ReadSnapshot`] behind an [`Arc`] and publishes it on the session's
//! [`SessionHandle`].
//!
//! Read-only queries (`ping`/`slack`/`wns`/`tns`/`path`) never touch the
//! lane when the read pool is enabled: they execute against the
//! published snapshot, either inline on the connection's reader thread
//! (when the snapshot is already current) or on one of N shared read
//! workers. With `read_workers = 0` (the default) every command funnels
//! through the writer lane — byte-for-byte the legacy single-worker
//! behavior.
//!
//! # Determinism: write tickets
//!
//! Responses within a session must be identical no matter how many read
//! workers serve them. The mechanism is a *write ticket*: every lane job
//! gets the next ticket number at admission, and the lane bumps the
//! session's `published` watermark after every job (success, error, or
//! deadline reject alike). A read admitted after W writes captures
//! ticket W and waits until `published >= W` before executing, so it
//! always observes exactly the state produced by every write admitted
//! before it — admission order, reconstructed without serializing reads
//! behind each other.
//!
//! Tickets are committed only when the lane queue accepts the job; a
//! full-queue rejection rolls the ticket back so readers never wait on
//! work that was never admitted.

use crate::proto::{self, Command, EnvMeta};
use crate::session::{self, ServerInfo, Session};
use crate::stats::{CommandStats, LatencyHist};
use crate::wal;
use mgba::MgbaError;
use obs::json::JsonWriter;
use sta::Sta;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Hard cap on concurrently resident sessions: each one costs a lane
/// thread plus a resident engine clone, so runaway session creation is
/// a usage error, not an OOM.
pub const MAX_SESSIONS: usize = 64;

/// How often an idle lane re-checks the shutdown flag.
const LANE_POLL: Duration = Duration::from_millis(25);

/// How long a lane keeps draining after shutdown before exiting. Covers
/// the race where an admission passed the shutting-down check just
/// before the flag was set.
const DRAIN_GRACE: Duration = Duration::from_millis(50);

/// Counters shared between connection readers, lanes, read workers, and
/// the accept loop.
pub(crate) struct Shared {
    pub shutting_down: AtomicBool,
    pub served: AtomicU64,
    pub rejected_overload: AtomicU64,
    pub rejected_deadline: AtomicU64,
    pub panicked: AtomicU64,
    /// Sessions removed by TTL expiry or an explicit `close_session`.
    pub evicted: AtomicU64,
    /// Reads admitted to the pool but not yet picked up; bounded by
    /// [`Shared::read_backlog_cap`].
    pub pending_reads: AtomicUsize,
    pub queue_depth: usize,
    pub read_workers: usize,
}

impl Shared {
    pub fn new(queue_depth: usize, read_workers: usize) -> Self {
        Self {
            shutting_down: AtomicBool::new(false),
            served: AtomicU64::new(0),
            rejected_overload: AtomicU64::new(0),
            rejected_deadline: AtomicU64::new(0),
            panicked: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            pending_reads: AtomicUsize::new(0),
            queue_depth,
            read_workers,
        }
    }

    /// Max pool-queued reads before admission answers `overload`. Reads
    /// are cheap and lock-free, so the backlog runs deeper than the
    /// per-session write queue.
    pub fn read_backlog_cap(&self) -> usize {
        self.queue_depth.saturating_mul(8).max(64)
    }

    pub fn info(&self) -> ServerInfo {
        ServerInfo {
            queue_depth: self.queue_depth,
            read_workers: self.read_workers,
            served: self.served.load(Ordering::SeqCst),
            rejected_overload: self.rejected_overload.load(Ordering::SeqCst),
            rejected_deadline: self.rejected_deadline.load(Ordering::SeqCst),
            panics: self.panicked.load(Ordering::SeqCst),
        }
    }
}

/// Durability settings handed down from `serve --state-dir` — present
/// iff the durability layer is on.
#[derive(Debug, Clone)]
pub(crate) struct DurabilityConfig {
    /// Directory holding one `<session>.wal` + `<session>.ckpt` pair per
    /// durable session (also the confinement root for client-supplied
    /// `snapshot`/`restore` paths).
    pub state_dir: PathBuf,
    /// Write an on-disk checkpoint (and compact the WAL) after this many
    /// logged mutations.
    pub checkpoint_every: u64,
}

/// Registry-wide WAL telemetry, rendered as the
/// `mgba_server_wal_*_total` counter families (always present in the
/// exposition; all-zero while durability is off).
#[derive(Default)]
pub(crate) struct WalCounters {
    /// Bytes appended to session WALs, framing included.
    pub appended_bytes: AtomicU64,
    /// Successful WAL data syncs (appends and compactions).
    pub fsyncs: AtomicU64,
    /// WAL records replayed into sessions at recovery.
    pub replayed_records: AtomicU64,
    /// Torn WAL tails truncated at recovery.
    pub truncated_tails: AtomicU64,
    /// On-disk checkpoints written (each followed by a WAL compaction).
    pub checkpoints: AtomicU64,
}

/// Lock-free per-session durability facts serving the `health` command
/// from both execution paths (writer lane and read pool). The lane
/// stores into these before publishing each ticket, so a read admitted
/// behind a write observes at least that write's facts — the same
/// ordering contract the published snapshot gives every other read.
/// All fields are deterministic (no wall clock), keeping `health`
/// responses pinned in the byte-identity matrix.
#[derive(Default)]
pub(crate) struct DurabilityFacts {
    /// Whether this registry runs with `--state-dir` at all.
    pub durable: AtomicBool,
    /// Whether this session's state was rebuilt from disk (checkpoint
    /// and/or WAL tail) when its lane started.
    pub recovered: AtomicBool,
    /// Mutations logged over the session's lifetime (monotonic across
    /// restarts; 0 while durability is off).
    pub wal_records: AtomicU64,
    /// `wal_records` watermark folded into the newest on-disk
    /// checkpoint (0 = none yet).
    pub last_checkpoint_seq: AtomicU64,
    /// Mirror of [`Session::is_degraded`] as of the latest published
    /// write ticket.
    pub degraded: AtomicBool,
}

/// Crate version reported by `mgba_build_info` and `stats`.
const BUILD_VERSION: &str = env!("CARGO_PKG_VERSION");

/// Commit id baked in at compile time via the `MGBA_BUILD_COMMIT` env
/// var (CI sets it); `"unknown"` for plain local builds.
const BUILD_COMMIT: &str = match option_env!("MGBA_BUILD_COMMIT") {
    Some(c) => c,
    None => "unknown",
};

/// Best-effort text of a caught panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_owned())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".into())
}

/// The immutable post-command state a session publishes for lock-free
/// reads: an engine clone plus the envelope/gauge flags the read path
/// needs.
pub struct ReadSnapshot {
    /// Cloned timing engine; queries against it are byte-identical to
    /// queries against the live lane engine it was cloned from.
    pub sta: Sta,
    /// The session's degraded flag at publish time.
    pub degraded: bool,
    /// Whether mGBA weights were fitted at publish time.
    pub calibrated: bool,
    /// Calibration-drift ring clone at publish time (`history`).
    pub(crate) history: Vec<session::CalibrationRecord>,
    /// Records evicted from the history ring before this snapshot.
    pub(crate) history_evicted: u64,
    /// Slow-query ring clone at publish time (`slowlog`).
    pub(crate) slowlog: Vec<session::SlowEntry>,
    /// Entries evicted from the slow-query ring before this snapshot.
    pub(crate) slow_dropped: u64,
    /// When this snapshot was installed — read by the `snapshot_age`
    /// stage histogram (how stale the served state was at execution).
    pub(crate) installed_at: Instant,
}

/// One admitted writer-lane job.
pub(crate) struct LaneJob {
    pub meta: EnvMeta,
    pub cmd: Command,
    pub deadline_ms: Option<u64>,
    /// This job's write ticket; the lane publishes it when done.
    pub ticket: u64,
    pub reply: mpsc::Sender<String>,
    pub enqueued: Instant,
}

/// One read query waiting for (or already holding) its snapshot.
pub(crate) struct ReadJob {
    pub meta: EnvMeta,
    pub cmd: Command,
    pub deadline_ms: Option<u64>,
    /// The write ticket this read must observe before executing.
    pub ticket: u64,
    pub handle: Arc<SessionHandle>,
    pub reply: mpsc::Sender<String>,
    pub enqueued: Instant,
}

/// The always-shared face of one session: ticket counters, the
/// published snapshot, and latency accounting. The mutable engine state
/// lives on the lane thread ([`Session`]); this handle is what readers,
/// admission, and the metrics renderers touch.
pub struct SessionHandle {
    name: String,
    /// Highest committed write ticket (assigned at admission).
    tickets: AtomicU64,
    /// Serializes ticket assignment + queue admission so ticket order
    /// equals queue order.
    admit: Mutex<()>,
    /// Highest ticket whose lane job has completed.
    published: Mutex<u64>,
    published_cv: Condvar,
    snapshot: RwLock<Option<Arc<ReadSnapshot>>>,
    /// Per-session per-command latency histograms (lane and read workers
    /// both record here).
    pub(crate) latency: Mutex<CommandStats>,
    /// Per-session per-stage duration histograms (`queue_wait`,
    /// `ticket_wait`, `snapshot_age`, `execute`, `reply_write`) feeding
    /// `mgba_server_stage_us{session,stage}`.
    pub(crate) stage_latency: Mutex<CommandStats>,
    /// Histogram of `whatif_batch` candidate counts (unit: candidates).
    pub(crate) whatif_sizes: Mutex<LatencyHist>,
    /// When the session was last addressed — the TTL eviction clock.
    last_active: Mutex<Instant>,
    /// Admission-order request-id source (shared by lane and read
    /// admissions; see [`SessionHandle::admit_lane`] /
    /// [`SessionHandle::next_request_id`]).
    request_seq: AtomicU64,
    /// Lane jobs admitted but not yet dequeued — the
    /// `mgba_server_write_queue_depth` gauge.
    pending_lane: AtomicUsize,
    /// Crash-isolated rebuilds of this session's state
    /// (`mgba_server_session_rebuilds_total`). Latency/stage histograms
    /// deliberately survive rebuilds — they live here, not on the lane
    /// state — so this counter is the only stats discontinuity marker.
    rebuilds: AtomicU64,
    /// Durability facts behind the `health` command (see
    /// [`DurabilityFacts`]).
    pub(crate) durability: DurabilityFacts,
}

impl SessionHandle {
    fn new(name: &str) -> Self {
        Self {
            name: name.to_owned(),
            tickets: AtomicU64::new(0),
            admit: Mutex::new(()),
            published: Mutex::new(0),
            published_cv: Condvar::new(),
            snapshot: RwLock::new(None),
            latency: Mutex::new(CommandStats::default()),
            stage_latency: Mutex::new(CommandStats::default()),
            whatif_sizes: Mutex::new(LatencyHist::default()),
            last_active: Mutex::new(Instant::now()),
            request_seq: AtomicU64::new(0),
            pending_lane: AtomicUsize::new(0),
            rebuilds: AtomicU64::new(0),
            durability: DurabilityFacts::default(),
        }
    }

    /// Records one request-stage duration into the per-session stage
    /// histograms (microseconds).
    pub(crate) fn record_stage(&self, stage: &'static str, d: Duration) {
        let us = d.as_micros().min(u128::from(u64::MAX)) as u64;
        self.stage_latency.lock().unwrap().record(stage, us);
    }

    /// Assigns the next admission-order request id to a read admission.
    /// Takes the same `admit` gate as [`SessionHandle::admit_lane`] so
    /// read and write ids interleave exactly in admission order.
    pub(crate) fn next_request_id(&self) -> u64 {
        let _gate = self.admit.lock().unwrap();
        self.request_seq.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Crash-isolated rebuilds of this session's lane state.
    pub(crate) fn rebuilds(&self) -> u64 {
        self.rebuilds.load(Ordering::SeqCst)
    }

    /// Lane jobs admitted but not yet dequeued.
    pub(crate) fn write_queue_depth(&self) -> usize {
        self.pending_lane.load(Ordering::SeqCst)
    }

    /// Resets the TTL eviction clock (called on every admission that
    /// addresses this session).
    fn touch(&self) {
        *self.last_active.lock().unwrap() = Instant::now();
    }

    /// How long since the session was last addressed.
    fn idle_for(&self) -> Duration {
        self.last_active.lock().unwrap().elapsed()
    }

    /// The session's registry name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The ticket a read admitted right now must wait for.
    pub(crate) fn current_ticket(&self) -> u64 {
        self.tickets.load(Ordering::SeqCst)
    }

    /// Admits one job to the writer lane with the next ticket. The
    /// ticket is committed only when the queue accepts the job — on
    /// `Full` it rolls back, so readers never wait on a rejected write.
    // The Err variant hands the whole rejected job back: the caller
    // must recover its reply channel to answer the overload envelope.
    #[allow(clippy::result_large_err)]
    pub(crate) fn admit_lane(
        &self,
        lane_tx: &SyncSender<LaneJob>,
        meta: EnvMeta,
        cmd: Command,
        deadline_ms: Option<u64>,
        reply: mpsc::Sender<String>,
    ) -> Result<(), TrySendError<LaneJob>> {
        let _gate = self.admit.lock().unwrap();
        let ticket = self.tickets.load(Ordering::SeqCst) + 1;
        let request_id = self.request_seq.load(Ordering::SeqCst) + 1;
        let mut meta = meta;
        meta.request_id = Some(request_id);
        lane_tx.try_send(LaneJob {
            meta,
            cmd,
            deadline_ms,
            ticket,
            reply,
            enqueued: Instant::now(),
        })?;
        // Committed only on acceptance: a full-queue rejection rolls
        // both the ticket and the request id back, keeping admission
        // numbering identical across runs that hit transient overload.
        self.tickets.store(ticket, Ordering::SeqCst);
        self.request_seq.store(request_id, Ordering::SeqCst);
        self.pending_lane.fetch_add(1, Ordering::SeqCst);
        Ok(())
    }

    /// Marks `ticket` (and everything before it) complete and wakes
    /// waiting readers.
    pub(crate) fn publish(&self, ticket: u64) {
        let mut p = self.published.lock().unwrap();
        if ticket > *p {
            *p = ticket;
        }
        self.published_cv.notify_all();
        drop(p);
    }

    /// True when every write admitted before `ticket` has completed —
    /// the inline fast path executes immediately when this holds at
    /// admission.
    pub(crate) fn is_published(&self, ticket: u64) -> bool {
        *self.published.lock().unwrap() >= ticket
    }

    /// Blocks until `ticket` is published. Returns `false` when
    /// `deadline` (as `(enqueued, limit_ms)`) expires first.
    pub(crate) fn wait_published(&self, ticket: u64, deadline: Option<(Instant, u64)>) -> bool {
        let mut p = self.published.lock().unwrap();
        loop {
            if *p >= ticket {
                return true;
            }
            match deadline {
                Some((enqueued, limit_ms)) => {
                    let limit = Duration::from_millis(limit_ms);
                    let waited = enqueued.elapsed();
                    if waited >= limit {
                        return false;
                    }
                    let (guard, _timeout) =
                        self.published_cv.wait_timeout(p, limit - waited).unwrap();
                    p = guard;
                }
                None => p = self.published_cv.wait(p).unwrap(),
            }
        }
    }

    fn install_snapshot(&self, snap: Option<ReadSnapshot>) {
        *self.snapshot.write().unwrap() = snap.map(Arc::new);
    }

    /// The currently published snapshot (`None` before the first
    /// successful `load`).
    pub fn snapshot(&self) -> Option<Arc<ReadSnapshot>> {
        self.snapshot.read().unwrap().clone()
    }
}

/// One registry row: the shared handle plus the lane's admission queue.
#[derive(Clone)]
pub(crate) struct SessionEntry {
    pub handle: Arc<SessionHandle>,
    pub lane_tx: SyncSender<LaneJob>,
}

/// Why an admission could not resolve a session.
pub(crate) enum AdmitRejection {
    /// Server is draining; answer with a `shutdown` envelope.
    Draining,
    /// [`MAX_SESSIONS`] resident sessions already exist.
    TooManySessions,
}

/// The multi-session registry: client-chosen names → lazily created
/// sessions, each with its own writer lane.
pub struct Registry {
    sessions: Mutex<BTreeMap<String, SessionEntry>>,
    /// Mirror of `sessions` holding only the handles, for the
    /// metrics/stats renderers. Unlike `sessions` it is *not* cleared by
    /// [`Registry::close`], so a `metrics` or `stats` request draining
    /// through a lane after shutdown still reports every resident
    /// session instead of an empty server. Kept in sync on insert,
    /// `close_session`, and TTL eviction — always mutated under the
    /// `sessions` lock to keep the two maps consistent.
    roster: Mutex<BTreeMap<String, Arc<SessionHandle>>>,
    lanes: Mutex<Vec<JoinHandle<()>>>,
    closed: AtomicBool,
    queue_depth: usize,
    /// Evict sessions idle longer than this (`None` = never). Checked
    /// lazily on every admission, so an all-idle server holds its
    /// sessions until the next request arrives — no sweeper thread.
    session_ttl: Option<Duration>,
    /// Slow-query threshold (`--slow-ms`): lane commands whose execution
    /// takes at least this long are recorded to the session's slow-query
    /// ring. `None` (the default) disables recording entirely.
    slow_ms: Option<u64>,
    /// Durability settings (`--state-dir`); `None` keeps the registry
    /// fully in-memory with zero extra work per request.
    durability: Option<DurabilityConfig>,
    /// Registry-wide WAL telemetry (see [`WalCounters`]).
    pub(crate) wal_counters: WalCounters,
    pub(crate) shared: Arc<Shared>,
}

impl Registry {
    /// Creates an empty registry; sessions spawn on first address.
    pub(crate) fn new(
        queue_depth: usize,
        shared: Arc<Shared>,
        session_ttl: Option<Duration>,
        slow_ms: Option<u64>,
        durability: Option<DurabilityConfig>,
    ) -> Arc<Self> {
        Arc::new(Self {
            sessions: Mutex::new(BTreeMap::new()),
            roster: Mutex::new(BTreeMap::new()),
            lanes: Mutex::new(Vec::new()),
            closed: AtomicBool::new(false),
            queue_depth,
            session_ttl,
            slow_ms,
            durability,
            wal_counters: WalCounters::default(),
            shared,
        })
    }

    /// Startup recovery: scans the state dir for `<session>.wal` /
    /// `<session>.ckpt` pairs and resolves each named session, which
    /// rebuilds its state from disk before the first request is served
    /// (recovery runs synchronously inside [`Registry::session`]).
    /// No-op without `--state-dir`. Never panics: corrupt files are
    /// quarantined and reported per session, not fatal to startup.
    pub(crate) fn recover(self: &Arc<Self>) {
        let Some(cfg) = self.durability.clone() else {
            return;
        };
        if let Err(e) = std::fs::create_dir_all(&cfg.state_dir) {
            obs::events::emit(
                obs::events::Severity::Error,
                "server.durability.state_dir_unusable",
                None,
                None,
                &[("error", e.to_string())],
            );
            return;
        }
        let mut names: Vec<String> = Vec::new();
        if let Ok(dir) = std::fs::read_dir(&cfg.state_dir) {
            for entry in dir.flatten() {
                let path = entry.path();
                let (Some(stem), Some(ext)) = (
                    path.file_stem().and_then(|s| s.to_str()),
                    path.extension().and_then(|s| s.to_str()),
                ) else {
                    continue;
                };
                if (ext == "wal" || ext == "ckpt")
                    && proto::validate_session_name(stem).is_ok()
                    && !names.iter().any(|n| n == stem)
                {
                    names.push(stem.to_owned());
                }
            }
        }
        names.sort();
        for name in &names {
            if self.session(name).is_err() {
                obs::events::emit(
                    obs::events::Severity::Warn,
                    "server.durability.recovery_skipped",
                    Some(name),
                    None,
                    &[("reason", "session cap or draining".to_owned())],
                );
            }
        }
    }

    /// Resolves `name` to its session, creating it (and spawning its
    /// writer lane) on first use. Lazily evicts sessions whose idle time
    /// exceeds the configured TTL — dropping a session's queue sender
    /// makes its lane drain and exit, and readers holding the old
    /// handle's `Arc` finish safely against the published snapshot.
    pub(crate) fn session(self: &Arc<Self>, name: &str) -> Result<SessionEntry, AdmitRejection> {
        let mut map = self.sessions.lock().unwrap();
        if self.closed.load(Ordering::SeqCst) {
            return Err(AdmitRejection::Draining);
        }
        if let Some(ttl) = self.session_ttl {
            let before = map.len();
            map.retain(|n, e| n == name || e.handle.idle_for() <= ttl);
            self.roster
                .lock()
                .unwrap()
                .retain(|n, _| map.contains_key(n));
            let evicted = before - map.len();
            if evicted > 0 {
                self.shared
                    .evicted
                    .fetch_add(evicted as u64, Ordering::SeqCst);
                obs::counter_add("server.sessions.evicted", evicted as u64);
            }
        }
        if let Some(entry) = map.get(name) {
            entry.handle.touch();
            return Ok(entry.clone());
        }
        if map.len() >= MAX_SESSIONS {
            return Err(AdmitRejection::TooManySessions);
        }
        let handle = Arc::new(SessionHandle::new(name));
        handle
            .durability
            .durable
            .store(self.durability.is_some(), Ordering::SeqCst);
        // Durable sessions rebuild from disk *before* the lane starts
        // (and before this admission returns), so the first request —
        // read or write — already observes the recovered state.
        let state = match &self.durability {
            Some(cfg) => Durability::open(cfg, &handle, &self.wal_counters),
            None => (Session::new(), None),
        };
        let (lane_tx, lane_rx) = mpsc::sync_channel::<LaneJob>(self.queue_depth);
        let lane = {
            let handle = Arc::clone(&handle);
            let registry = Arc::clone(self);
            thread::Builder::new()
                .name(format!("mgba-lane-{name}"))
                .spawn(move || lane_loop(lane_rx, handle, registry, state))
                .expect("spawn writer lane")
        };
        self.lanes.lock().unwrap().push(lane);
        let entry = SessionEntry { handle, lane_tx };
        map.insert(name.to_owned(), entry.clone());
        self.roster
            .lock()
            .unwrap()
            .insert(name.to_owned(), Arc::clone(&entry.handle));
        obs::counter_add("server.sessions.created", 1);
        obs::events::emit(
            obs::events::Severity::Info,
            "server.session.created",
            Some(name),
            None,
            &[],
        );
        Ok(entry)
    }

    /// Removes one session by name (`close_session`): its entry leaves
    /// the map, the dropped queue sender makes its lane drain admitted
    /// work and exit, and the name is immediately free for a fresh
    /// session. Returns whether a session by that name was resident.
    ///
    /// With `--state-dir`, `close_session` also discards the session's
    /// durable files — closing means "forget this state", so the name
    /// restarts empty. (TTL eviction deliberately does *not* delete
    /// them: an evicted-for-idleness session recovers from disk when
    /// next addressed.)
    pub(crate) fn remove(&self, name: &str) -> bool {
        let mut map = self.sessions.lock().unwrap();
        let removed = map.remove(name).is_some();
        self.roster.lock().unwrap().remove(name);
        if removed {
            if let Some(cfg) = &self.durability {
                let _ = std::fs::remove_file(cfg.state_dir.join(format!("{name}.wal")));
                let _ = std::fs::remove_file(cfg.state_dir.join(format!("{name}.ckpt")));
            }
        }
        drop(map);
        if removed {
            self.shared.evicted.fetch_add(1, Ordering::SeqCst);
            obs::counter_add("server.sessions.evicted", 1);
        }
        removed
    }

    /// Resident session names, sorted.
    pub fn session_names(&self) -> Vec<String> {
        self.sessions.lock().unwrap().keys().cloned().collect()
    }

    /// `(name, handle)` rows in name order — the metrics/stats renderers
    /// iterate these for cross-session views.
    pub(crate) fn handles(&self) -> Vec<(String, Arc<SessionHandle>)> {
        self.roster
            .lock()
            .unwrap()
            .iter()
            .map(|(n, h)| (n.clone(), Arc::clone(h)))
            .collect()
    }

    /// Closes the registry: no further sessions resolve, every lane's
    /// sender drops (lanes drain and exit), and the lane join handles
    /// are returned for the caller to join *after* releasing all locks.
    ///
    /// Also raises the shared shutdown flag so a lane whose sender is
    /// still cloned somewhere (a connection mid-admission) exits via
    /// its poll path instead of waiting for `Disconnected` forever.
    ///
    /// The handle roster is deliberately left intact: `metrics`/`stats`
    /// requests already admitted and draining through a lane still
    /// render every session's rows instead of an empty server.
    pub(crate) fn close(&self) -> Vec<JoinHandle<()>> {
        let mut map = self.sessions.lock().unwrap();
        self.closed.store(true, Ordering::SeqCst);
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        map.clear();
        drop(map);
        std::mem::take(&mut *self.lanes.lock().unwrap())
    }
}

/// True for commands that change session state and therefore require a
/// fresh snapshot publish on success.
fn is_state_changing(cmd: &Command) -> bool {
    matches!(
        cmd,
        Command::Load { .. }
            | Command::Calibrate { .. }
            | Command::Commit { .. }
            | Command::Recalibrate { .. }
            | Command::Restore { .. }
    )
}

/// True for logged commands whose execution *reads* the frozen warm
/// calibration cache (which checkpoints cannot capture). The checkpoint
/// anchor may only advance past a command when replaying it from a
/// cache-less rebuilt anchor reproduces the same bytes — which holds
/// exactly when the command ignores the cache (cold fits regenerate it
/// bit-for-bit; warm refits after a replayed cold fit then match too).
fn reads_warm_cache(cmd: &Command) -> bool {
    matches!(
        cmd,
        Command::Commit { full: false, .. } | Command::Recalibrate { full: false, .. }
    )
}

/// Resolves a client-supplied `snapshot`/`restore` file argument under
/// the state dir. Absolute paths and any non-plain component (`..`,
/// `.`) are rejected: with `--state-dir` the server's file surface is
/// exactly that directory.
fn confine_file(state_dir: &Path, file: &str) -> Result<String, String> {
    let p = Path::new(file);
    let escapes = p.is_absolute()
        || p.components()
            .any(|c| !matches!(c, std::path::Component::Normal(_)));
    if escapes {
        return Err(format!(
            "path `{file}` escapes the state dir (absolute paths and `..`/`.` components \
             are rejected while `--state-dir` is set)"
        ));
    }
    Ok(state_dir.join(p).to_string_lossy().into_owned())
}

/// Rewrites the file argument of `snapshot`/`restore` to its confined
/// form. `Ok(None)` = the command carries no path (execute as-is).
fn confine_command(state_dir: &Path, cmd: &Command) -> Result<Option<Command>, String> {
    match cmd {
        Command::Snapshot { file } => Ok(Some(Command::Snapshot {
            file: confine_file(state_dir, file)?,
        })),
        Command::Restore { file } => Ok(Some(Command::Restore {
            file: confine_file(state_dir, file)?,
        })),
        _ => Ok(None),
    }
}

/// Renames a corrupt durability file to `<name>.corrupt` so restart
/// diagnostics keep the bytes while the session restarts clean.
fn quarantine(path: &Path) {
    if path.exists() {
        let mut bad = path.as_os_str().to_owned();
        bad.push(".corrupt");
        let _ = std::fs::rename(path, PathBuf::from(bad));
    }
}

/// The canonical WAL record for a state-changing command: the protocol
/// v2 request line, re-parsed at replay through the ordinary request
/// parser. The `id` field carries the record's durable sequence
/// number — recovery uses it to skip records a newer checkpoint has
/// already folded (a crash can land between the checkpoint write and
/// the WAL compaction, leaving folded records in the log).
fn wal_line(cmd: &Command, seq: u64) -> String {
    proto::render_request(Some(seq), 2, None, cmd, None)
}

/// One writer lane's durability state: the open WAL, the in-memory
/// checkpoint anchor, and the tail of command lines since that anchor.
///
/// # Anchor discipline
///
/// `anchor` is always a state from which replaying `tail` through the
/// real command handlers reproduces the live session bit-for-bit. The
/// warm calibration cache cannot be serialized, so before logging a
/// command that *ignores* the cache (see [`reads_warm_cache`]) the
/// anchor is promoted to the previous command's post-state and the tail
/// restarts — replay then regenerates the cache via the same cold fit.
/// A client that never cold-fits keeps one anchor forever and the tail
/// (and WAL) grow unbounded; `DESIGN.md` §16 documents the trade.
pub(crate) struct Durability {
    wal: wal::Wal,
    ckpt_path: PathBuf,
    state_dir: PathBuf,
    checkpoint_every: u64,
    /// Replay base: the durable state preceding `tail[0]`.
    anchor: session::DurableState,
    /// Mutations folded into `anchor` (monotonic across restarts).
    anchor_seq: u64,
    /// Logged command lines since `anchor` — what the next checkpoint
    /// compacts the WAL down to.
    tail: Vec<String>,
    /// Post-state of the most recently logged mutation (the next
    /// anchor-promotion candidate).
    prev_state: session::DurableState,
    /// Mutations logged over the session's lifetime.
    seq: u64,
    /// `seq` watermark stored in the newest on-disk checkpoint.
    last_checkpoint_seq: u64,
    /// Mutations since the last on-disk checkpoint.
    since_checkpoint: u64,
}

impl Durability {
    /// Opens (or creates) one session's durable state: parse the
    /// checkpoint, rebuild its anchor, replay the WAL tail through the
    /// real command handlers, truncate any torn final record, and leave
    /// the log positioned for appends. Never panics: corrupt files are
    /// quarantined (session restarts clean but `degraded`), and I/O
    /// failures return `None` with the session marked durability-lost.
    fn open(
        cfg: &DurabilityConfig,
        handle: &SessionHandle,
        counters: &WalCounters,
    ) -> (Session, Option<Durability>) {
        let name = handle.name();
        let wal_path = cfg.state_dir.join(format!("{name}.wal"));
        let ckpt_path = cfg.state_dir.join(format!("{name}.ckpt"));
        let _ = std::fs::create_dir_all(&cfg.state_dir);
        let mut recovered = false;
        let mut fresh_degraded = false;
        // 1. Checkpoint → anchor.
        let (anchor, anchor_seq) = match std::fs::read_to_string(&ckpt_path) {
            Ok(text) => match session::parse_checkpoint(&text) {
                Ok((anchor, seq)) => {
                    recovered = true;
                    (anchor, seq)
                }
                Err(e) => {
                    quarantine(&ckpt_path);
                    quarantine(&wal_path);
                    fresh_degraded = true;
                    obs::events::emit(
                        obs::events::Severity::Error,
                        "server.durability.checkpoint_corrupt",
                        Some(name),
                        None,
                        &[("error", e.to_string())],
                    );
                    (Session::new().durable_state(), 0)
                }
            },
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                (Session::new().durable_state(), 0)
            }
            Err(e) => return Self::lost_at_open(handle, "checkpoint unreadable", &e),
        };
        // 2. Anchor → live session.
        let mut session = match Session::restore_durable(&anchor) {
            Ok(s) => s,
            Err(e) => {
                // The anchor references state we cannot rebuild (e.g.
                // its netlist file vanished). Quarantine and restart
                // clean rather than log against a wrong base.
                quarantine(&ckpt_path);
                quarantine(&wal_path);
                fresh_degraded = true;
                obs::events::emit(
                    obs::events::Severity::Error,
                    "server.durability.checkpoint_unusable",
                    Some(name),
                    None,
                    &[("error", e.to_string())],
                );
                Session::new()
            }
        };
        let anchor = if fresh_degraded {
            session.mark_degraded();
            Session::new().durable_state()
        } else {
            anchor
        };
        let anchor_seq = if fresh_degraded { 0 } else { anchor_seq };
        // 3. Open the WAL (scans, truncates a torn tail in place).
        let (wal, scan) = match wal::Wal::open(&wal_path) {
            Ok(x) => x,
            Err(e) => return Self::lost_at_open(handle, "WAL unopenable", &e),
        };
        if let Some(reason) = &scan.truncated {
            counters.truncated_tails.fetch_add(1, Ordering::SeqCst);
            obs::events::emit(
                obs::events::Severity::Warn,
                "server.durability.wal_tail_truncated",
                Some(name),
                None,
                &[("reason", reason.clone())],
            );
        }
        let mut d = Durability {
            wal,
            ckpt_path,
            state_dir: cfg.state_dir.clone(),
            checkpoint_every: cfg.checkpoint_every.max(1),
            prev_state: anchor.clone(),
            anchor,
            anchor_seq,
            tail: Vec::new(),
            seq: anchor_seq,
            last_checkpoint_seq: anchor_seq,
            since_checkpoint: 0,
        };
        // 4. Replay the tail through the real handlers. Records carry
        // their durable seq in the `id` field: those at or below the
        // checkpoint's anchor are already folded in (a crash between
        // checkpoint write and WAL compaction leaves them behind) and
        // are skipped; the rest must be gap-free.
        recovered |= !scan.records.is_empty();
        let mut broken: Option<String> = None;
        for line in &scan.records {
            let (cmd, rec_seq) = match proto::parse_request(line) {
                Ok(request) => (request.cmd, request.id),
                Err((_, e)) => {
                    broken = Some(format!("unparseable record: {e}"));
                    break;
                }
            };
            let Some(rec_seq) = rec_seq else {
                broken = Some("record carries no sequence number".to_owned());
                break;
            };
            if rec_seq <= d.anchor_seq {
                continue;
            }
            if rec_seq != d.seq + 1 {
                broken = Some(format!(
                    "sequence gap: expected record {}, found {rec_seq}",
                    d.seq + 1
                ));
                break;
            }
            let pre_armed = session.cache_armed();
            let exec = match confine_command(&d.state_dir, &cmd) {
                Ok(rewritten) => rewritten,
                Err(msg) => {
                    broken = Some(format!("unconfinable record: {msg}"));
                    break;
                }
            };
            if let Err(e) = session.handle(exec.as_ref().unwrap_or(&cmd)) {
                broken = Some(format!("record failed to replay: {e}"));
                break;
            }
            counters.replayed_records.fetch_add(1, Ordering::SeqCst);
            d.fold(pre_armed, &cmd, line.clone(), &session);
        }
        if let Some(why) = broken {
            // The unreplayable suffix describes state we do not have:
            // drop it (checkpoint the replayed prefix so disk matches
            // memory) and serve what replayed, flagged degraded.
            session.mark_degraded();
            obs::events::emit(
                obs::events::Severity::Error,
                "server.durability.wal_replay_stopped",
                Some(name),
                None,
                &[("reason", why)],
            );
            if let Err(e) = d.checkpoint(counters) {
                session.mark_durability_lost();
                Self::publish_loss(handle, &e);
                d.publish_facts(handle, &session);
                handle.install_snapshot(session.read_snapshot());
                handle.durability.recovered.store(true, Ordering::SeqCst);
                return (session, None);
            }
        }
        handle
            .durability
            .recovered
            .store(recovered, Ordering::SeqCst);
        d.publish_facts(handle, &session);
        // Publish the recovered state for pool reads before the first
        // ticket exists.
        handle.install_snapshot(session.read_snapshot());
        if recovered {
            obs::events::emit(
                obs::events::Severity::Info,
                "server.durability.session_recovered",
                Some(name),
                None,
                &[
                    ("wal_records", d.seq.to_string()),
                    ("replayed", scan.records.len().to_string()),
                ],
            );
        }
        (session, Some(d))
    }

    /// Open-time I/O failure: durability is unavailable from the first
    /// request on, so the fresh session starts read-only.
    fn lost_at_open(
        handle: &SessionHandle,
        what: &str,
        e: &std::io::Error,
    ) -> (Session, Option<Durability>) {
        let mut session = Session::new();
        session.mark_durability_lost();
        Self::publish_loss(handle, &format!("{what}: {e}"));
        handle
            .durability
            .degraded
            .store(session.is_degraded(), Ordering::SeqCst);
        (session, None)
    }

    /// Emits the durability-loss event and counter.
    fn publish_loss(handle: &SessionHandle, why: &str) {
        obs::counter_add("server.durability.lost", 1);
        obs::events::emit(
            obs::events::Severity::Error,
            "server.durability.lost",
            Some(handle.name()),
            None,
            &[("error", why.to_owned())],
        );
    }

    /// Folds one logged mutation into the anchor/tail bookkeeping.
    /// `pre_armed` is [`Session::cache_armed`] captured *before* the
    /// command executed; `session` is the post-command state.
    fn fold(&mut self, pre_armed: bool, cmd: &Command, line: String, session: &Session) {
        if !(pre_armed && reads_warm_cache(cmd)) {
            self.anchor = self.prev_state.clone();
            self.anchor_seq = self.seq;
            self.tail.clear();
        }
        self.tail.push(line);
        self.seq += 1;
        self.prev_state = session.durable_state();
    }

    /// Logs one acknowledged mutation: append + fsync the WAL record,
    /// fold the anchor bookkeeping, and checkpoint/compact when due.
    /// Any failure (including the `wal.append`/`wal.fsync`/
    /// `wal.checkpoint` failpoints) is a durability loss — the caller
    /// marks the session read-only.
    fn record(
        &mut self,
        pre_armed: bool,
        cmd: &Command,
        session: &Session,
        counters: &WalCounters,
    ) -> Result<(), String> {
        let line = wal_line(cmd, self.seq + 1);
        let framed = self
            .wal
            .append(&line)
            .map_err(|e| format!("WAL append failed: {e}"))?;
        counters.appended_bytes.fetch_add(framed, Ordering::SeqCst);
        counters.fsyncs.fetch_add(1, Ordering::SeqCst);
        self.fold(pre_armed, cmd, line, session);
        self.since_checkpoint += 1;
        if self.since_checkpoint >= self.checkpoint_every {
            self.checkpoint(counters)?;
        }
        Ok(())
    }

    /// Writes the current anchor as the on-disk checkpoint (atomic
    /// rename discipline), then compacts the WAL down to the tail.
    /// Crash-ordering: the checkpoint lands fully before the WAL
    /// shrinks, so every instant holds a complete (checkpoint, WAL)
    /// pair. A crash between the two steps leaves already-folded
    /// records in the WAL; recovery skips them by their embedded
    /// sequence numbers (see [`wal_line`]). The compacted log itself
    /// swaps in with one atomic rename inside [`wal::Wal::rewrite`].
    fn checkpoint(&mut self, counters: &WalCounters) -> Result<(), String> {
        if let Some(fault) = faultinject::fire("wal.checkpoint") {
            return Err(format!("failpoint `wal.checkpoint`: injected {fault:?}"));
        }
        let text = session::render_checkpoint(&self.anchor, self.anchor_seq);
        mgba::atomic_write_text(&self.ckpt_path, &text)
            .map_err(|e| format!("checkpoint write failed: {e}"))?;
        self.wal
            .rewrite(&self.tail)
            .map_err(|e| format!("WAL compaction failed: {e}"))?;
        counters.fsyncs.fetch_add(1, Ordering::SeqCst);
        counters.checkpoints.fetch_add(1, Ordering::SeqCst);
        self.last_checkpoint_seq = self.anchor_seq;
        self.since_checkpoint = 0;
        Ok(())
    }

    /// Stores the current durability facts onto the handle for the
    /// `health` command.
    fn publish_facts(&self, handle: &SessionHandle, session: &Session) {
        let f = &handle.durability;
        f.wal_records.store(self.seq, Ordering::SeqCst);
        f.last_checkpoint_seq
            .store(self.last_checkpoint_seq, Ordering::SeqCst);
        f.degraded.store(session.is_degraded(), Ordering::SeqCst);
    }
}

/// Renders the `health` result: protocol window, durability mode, and
/// this session's durability facts. Deliberately free of timing fields
/// (no uptime) so responses are byte-identical across runs, threads,
/// and read-worker settings — `health` is pinned in the byte-identity
/// matrix.
pub(crate) fn render_health(handle: &SessionHandle) -> String {
    let f = &handle.durability;
    let mut w = JsonWriter::new();
    w.begin_obj();
    w.key("server");
    w.str("mgba-server");
    w.key("proto_min");
    w.u64(proto::PROTO_MIN);
    w.key("proto_max");
    w.u64(proto::PROTO_MAX);
    w.key("durable");
    w.bool(f.durable.load(Ordering::SeqCst));
    w.key("session");
    w.begin_obj();
    w.key("name");
    w.str(handle.name());
    w.key("recovered");
    w.bool(f.recovered.load(Ordering::SeqCst));
    w.key("wal_records");
    w.u64(f.wal_records.load(Ordering::SeqCst));
    w.key("last_checkpoint_seq");
    w.u64(f.last_checkpoint_seq.load(Ordering::SeqCst));
    w.key("degraded");
    w.bool(f.degraded.load(Ordering::SeqCst));
    w.end_obj();
    w.end_obj();
    w.finish()
}

/// The `health` read handler (shared by the lane funnel and the read
/// pool, including the same chaos hook, so bytes match across modes).
fn read_health(handle: &SessionHandle) -> Result<String, MgbaError> {
    if let Some(fault) = faultinject::fire("server.handle") {
        return Err(MgbaError::Internal(format!(
            "failpoint `server.handle`: injected {fault:?}"
        )));
    }
    Ok(render_health(handle))
}

/// The writer-lane loop: owns the session state, executes jobs in
/// ticket order, publishes snapshots, drains on shutdown. `state` is
/// the session (plus its durability lane, with `--state-dir`) that
/// [`Registry::session`] built — recovered from disk when durable
/// files existed.
pub(crate) fn lane_loop(
    rx: Receiver<LaneJob>,
    handle: Arc<SessionHandle>,
    registry: Arc<Registry>,
    state: (Session, Option<Durability>),
) {
    let shared = Arc::clone(&registry.shared);
    let (mut session, mut durability) = state;
    loop {
        match rx.recv_timeout(LANE_POLL) {
            Ok(job) => {
                if process_lane(
                    job,
                    &mut session,
                    &mut durability,
                    &handle,
                    &registry,
                    &shared,
                ) {
                    shared.shutting_down.store(true, Ordering::SeqCst);
                    break;
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    break;
                }
            }
            // Registry closed and the queue is empty: done.
            Err(mpsc::RecvTimeoutError::Disconnected) => return,
        }
    }
    // Drain-then-exit: serve everything admitted before (or racing with)
    // the shutdown flag. Every admitted ticket MUST still publish, or
    // readers waiting on it would hang until their deadline.
    while let Ok(job) = rx.recv_timeout(DRAIN_GRACE) {
        process_lane(
            job,
            &mut session,
            &mut durability,
            &handle,
            &registry,
            &shared,
        );
    }
}

/// Executes one lane job; returns `true` on a served `shutdown`.
fn process_lane(
    job: LaneJob,
    session: &mut Session,
    durability: &mut Option<Durability>,
    handle: &SessionHandle,
    registry: &Registry,
    shared: &Shared,
) -> bool {
    let LaneJob {
        meta,
        cmd,
        deadline_ms,
        ticket,
        reply,
        enqueued,
    } = job;
    handle.pending_lane.fetch_sub(1, Ordering::SeqCst);
    if let Some(limit) = deadline_ms {
        if enqueued.elapsed() > Duration::from_millis(limit) {
            shared.rejected_deadline.fetch_add(1, Ordering::SeqCst);
            obs::counter_add("server.rejected.deadline", 1);
            let _ = reply.send(proto::error_envelope(
                &meta,
                "deadline",
                &format!("deadline of {limit} ms expired while queued"),
            ));
            // A rejected ticket still publishes: reads behind it must
            // not wait forever on work that will never run.
            handle.publish(ticket);
            return false;
        }
    }
    // Durability gate 1: a session whose WAL failed is read-only — the
    // in-memory state is ahead of the durable log, so acknowledging
    // more mutations would widen the gap a restart cannot close.
    if session.durability_lost() && is_state_changing(&cmd) {
        obs::counter_add("server.rejected.durability_lost", 1);
        shared.served.fetch_add(1, Ordering::SeqCst);
        let _ = reply.send(proto::error_envelope(
            &meta,
            "durability_lost",
            "a WAL write failed; the session is read-only until restart \
             (reads still serve the in-memory state, flagged degraded)",
        ));
        handle.publish(ticket);
        return false;
    }
    // Durability gate 2: with `--state-dir`, client-supplied
    // `snapshot`/`restore` paths are confined to the state dir. The
    // WAL logs the *original* relative path; replay re-confines it.
    let confined = match durability.as_ref() {
        Some(d) => match confine_command(&d.state_dir, &cmd) {
            Ok(rewritten) => rewritten,
            Err(msg) => {
                shared.served.fetch_add(1, Ordering::SeqCst);
                obs::counter_add("server.rejected.path_escape", 1);
                let _ = reply.send(proto::error_envelope(&meta, "path_escape", &msg));
                handle.publish(ticket);
                return false;
            }
        },
        None => None,
    };
    // Captured before execution: whether this command would *read* the
    // frozen warm cache (decides the checkpoint-anchor fold below).
    let pre_armed = session.cache_armed();
    let name = cmd.name();
    // Stage 1: how long the job sat in the lane queue before dequeue.
    let queue_wait = enqueued.elapsed();
    handle.record_stage("queue_wait", queue_wait);
    if obs::trace_enabled() {
        obs::trace::emit_complete(&format!("{name}/queue_wait"), enqueued, queue_wait);
    }
    let start = Instant::now();
    // Crash isolation: a panic in one request must not take the daemon
    // (and every other session) down. The lane catches the unwind,
    // restores its session from the last good checkpoint, and answers
    // with a typed "internal" error. AssertUnwindSafe is justified
    // because the possibly half-mutated session state is discarded
    // wholesale by `recover()` — nothing broken is ever observed.
    let caught = {
        let _span = obs::span(name);
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            match &cmd {
                // Registry-wide views are rendered here, where every
                // session's handle is reachable; the chaos hook still
                // fires for them exactly as `Session::handle` would.
                Command::Stats | Command::Metrics => {
                    if let Some(fault) = faultinject::fire("server.handle") {
                        return Err(MgbaError::Internal(format!(
                            "failpoint `server.handle`: injected {fault:?}"
                        )));
                    }
                    Ok(match &cmd {
                        Command::Stats => render_stats(session, handle, registry, shared),
                        _ => render_metrics(session, handle, registry, shared),
                    })
                }
                // `health` serves the handle's durability facts —
                // reachable here (funnel mode) and on the read pool,
                // with identical bytes by construction.
                Command::Health => read_health(handle),
                _ => session.handle(confined.as_ref().unwrap_or(&cmd)),
            }
        }))
    };
    let (result, panicked) = match caught {
        Ok(result) => (result, false),
        Err(payload) => {
            shared.panicked.fetch_add(1, Ordering::SeqCst);
            obs::counter_add("server.requests.panicked", 1);
            let msg = panic_message(payload.as_ref());
            session.recover();
            handle.rebuilds.fetch_add(1, Ordering::SeqCst);
            obs::events::emit(
                obs::events::Severity::Error,
                "server.session.rebuilt",
                Some(handle.name()),
                meta.request_id,
                &[("cmd", name.to_owned())],
            );
            (
                Err(MgbaError::Internal(format!(
                    "request `{name}` panicked: {msg}; session restored from last good state"
                ))),
                true,
            )
        }
    };
    let exec = start.elapsed();
    let us = exec.as_micros().min(u128::from(u64::MAX)) as u64;
    handle.latency.lock().unwrap().record(name, us);
    handle.record_stage("execute", exec);
    if obs::trace_enabled() {
        obs::trace::emit_complete(&format!("{name}/execute"), start, exec);
    }
    // Slow-query ring: lane (non-read) commands only — pool reads
    // complete out of admission order, so recording them would make
    // `slowlog` bytes depend on `--read-workers`. The threshold decides
    // membership by wall clock, but entries carry no timing, keeping
    // the rendered bytes deterministic (always, with `--slow-ms 0`).
    let mut recorded_slow = false;
    if let Some(limit) = registry.slow_ms.filter(|_| !panicked && !cmd.is_read()) {
        if exec >= Duration::from_millis(limit) {
            session.note_slow(meta.request_id, name);
            recorded_slow = true;
            obs::events::emit(
                obs::events::Severity::Warn,
                "server.slow_query",
                Some(handle.name()),
                meta.request_id,
                &[("cmd", name.to_owned())],
            );
        }
    }
    if result.is_ok() {
        if let Command::WhatIfBatch { resizes, .. } = &cmd {
            handle
                .whatif_sizes
                .lock()
                .unwrap()
                .record(resizes.len() as u64);
        }
    }
    obs::observe(&format!("server.latency_us.{name}"), us as f64);
    obs::counter_add(&format!("server.requests.{name}"), 1);
    shared.served.fetch_add(1, Ordering::SeqCst);
    // Durability: append + fsync the WAL record BEFORE the mutation is
    // acknowledged. A failed write (real or failpoint-injected) flips
    // the session read-only: the reply becomes a `durability_lost`
    // error, but the in-memory state — which already mutated — stays
    // published for reads, honestly flagged degraded.
    let mut durability_error: Option<String> = None;
    if result.is_ok() && !panicked && is_state_changing(&cmd) {
        if let Some(d) = durability.as_mut() {
            match d.record(pre_armed, &cmd, session, &registry.wal_counters) {
                Ok(()) => d.publish_facts(handle, session),
                Err(why) => {
                    session.mark_durability_lost();
                    d.publish_facts(handle, session);
                    Durability::publish_loss(handle, &why);
                    *durability = None;
                    durability_error = Some(format!("{why}; session is read-only until restart"));
                }
            }
        }
    }
    let shutdown = matches!(cmd, Command::Shutdown) && result.is_ok();
    let envelope = if let Some(msg) = &durability_error {
        proto::error_envelope(&meta, "durability_lost", msg)
    } else {
        match &result {
            Ok(json) => proto::ok_envelope(&meta, session.is_degraded(), json),
            Err(e) => proto::mgba_error_envelope(&meta, e),
        }
    };
    let _ = reply.send(envelope);
    // Publish AFTER the state settles: a successful state change (or a
    // panic-recovery, which also rewrites state, or a slow-query ring
    // append that split-mode `slowlog` reads must observe) refreshes
    // the read snapshot first, then the ticket watermark releases any
    // readers admitted behind this write.
    if (result.is_ok() && is_state_changing(&cmd)) || panicked || recorded_slow {
        handle.install_snapshot(session.read_snapshot());
    }
    // Keep the lock-free `health` facts in step with this ticket.
    handle
        .durability
        .degraded
        .store(session.is_degraded(), Ordering::SeqCst);
    handle.publish(ticket);
    shutdown
}

/// Executes one read-only command against a published snapshot. Shares
/// the session handlers with the lane path, so responses are
/// byte-identical across funnel and split modes.
fn execute_read(snapshot: Option<&ReadSnapshot>, cmd: &Command) -> Result<String, MgbaError> {
    // Same chaos hook as the lane path: reads are fault-injectable too.
    if let Some(fault) = faultinject::fire("server.handle") {
        return Err(MgbaError::Internal(format!(
            "failpoint `server.handle`: injected {fault:?}"
        )));
    }
    if matches!(cmd, Command::Ping) {
        return Ok(session::ping_result());
    }
    let snap =
        snapshot.ok_or_else(|| MgbaError::Usage("no design loaded (send `load` first)".into()))?;
    match cmd {
        Command::Slack { endpoint, top } => {
            session::read_slack(&snap.sta, endpoint.as_deref(), *top)
        }
        Command::Wns => Ok(session::read_summary(&snap.sta, true)),
        Command::Tns => Ok(session::read_summary(&snap.sta, false)),
        Command::PathQuery { endpoint, pba } => {
            session::read_path(&snap.sta, endpoint.as_deref(), *pba)
        }
        Command::Lint => Ok(session::read_lint(&snap.sta)),
        Command::Slowlog => Ok(session::render_slowlog(&snap.slowlog, snap.slow_dropped)),
        Command::History => Ok(session::render_history(&snap.history, snap.history_evicted)),
        other => Err(MgbaError::Internal(format!(
            "`{}` is not a read command",
            other.name()
        ))),
    }
}

/// Serves one read job end to end: wait for its ticket, execute against
/// the snapshot, record latency, reply. Runs on a read worker or — for
/// the already-published fast path — directly on the connection's
/// reader thread (zero cross-thread handoffs).
pub(crate) fn serve_read(job: ReadJob, shared: &Shared) {
    let ReadJob {
        meta,
        cmd,
        deadline_ms,
        ticket,
        handle,
        reply,
        enqueued,
    } = job;
    let deadline = deadline_ms.map(|limit| (enqueued, limit));
    let expired = match deadline {
        Some((at, limit)) => at.elapsed() > Duration::from_millis(limit),
        None => false,
    };
    let name = cmd.name();
    // Stage 2: how long the read waited for its write ticket to
    // publish (≈0 on the inline fast path).
    let wait_start = Instant::now();
    if expired || !handle.wait_published(ticket, deadline) {
        let limit = deadline_ms.unwrap_or(0);
        shared.rejected_deadline.fetch_add(1, Ordering::SeqCst);
        obs::counter_add("server.rejected.deadline", 1);
        let _ = reply.send(proto::error_envelope(
            &meta,
            "deadline",
            &format!("deadline of {limit} ms expired while queued"),
        ));
        return;
    }
    let ticket_wait = wait_start.elapsed();
    handle.record_stage("ticket_wait", ticket_wait);
    if obs::trace_enabled() {
        obs::trace::emit_complete(&format!("{name}/ticket_wait"), wait_start, ticket_wait);
    }
    let snap = handle.snapshot();
    // Stage 3: how stale the served snapshot was at execution time.
    if let Some(s) = snap.as_deref() {
        handle.record_stage("snapshot_age", s.installed_at.elapsed());
    }
    let start = Instant::now();
    // Crash isolation, read flavor: the snapshot is immutable and the
    // session state lives on the lane, so a panicking read corrupts
    // nothing — no recovery needed, just a typed error.
    let caught = {
        let _span = obs::span(name);
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match &cmd {
            // `health` reads the handle's durability facts, not the
            // snapshot — it answers before any design is loaded.
            Command::Health => read_health(&handle),
            _ => execute_read(snap.as_deref(), &cmd),
        }))
    };
    let result = match caught {
        Ok(result) => result,
        Err(payload) => {
            shared.panicked.fetch_add(1, Ordering::SeqCst);
            obs::counter_add("server.requests.panicked", 1);
            let msg = panic_message(payload.as_ref());
            Err(MgbaError::Internal(format!(
                "request `{name}` panicked: {msg}; read was isolated from session state"
            )))
        }
    };
    let exec = start.elapsed();
    let us = exec.as_micros().min(u128::from(u64::MAX)) as u64;
    handle.latency.lock().unwrap().record(name, us);
    handle.record_stage("execute", exec);
    if obs::trace_enabled() {
        obs::trace::emit_complete(&format!("{name}/execute"), start, exec);
    }
    obs::observe(&format!("server.latency_us.{name}"), us as f64);
    obs::counter_add(&format!("server.requests.{name}"), 1);
    shared.served.fetch_add(1, Ordering::SeqCst);
    // No snapshot yet (nothing loaded): fall back to the handle's
    // degraded fact, so a durability-lost session is flagged on the
    // read path exactly as the lane would flag it.
    let degraded = snap
        .as_deref()
        .map(|s| s.degraded)
        .unwrap_or_else(|| handle.durability.degraded.load(Ordering::SeqCst));
    let envelope = match &result {
        Ok(json) => proto::ok_envelope(&meta, degraded, json),
        Err(e) => proto::mgba_error_envelope(&meta, e),
    };
    let _ = reply.send(envelope);
}

/// Renders the `hello` result: negotiated protocol plus the resident
/// session list.
pub(crate) fn render_hello(registry: &Registry, max_proto: Option<u64>) -> String {
    let granted = max_proto
        .unwrap_or(proto::PROTO_MAX)
        .clamp(proto::PROTO_MIN, proto::PROTO_MAX);
    let mut w = JsonWriter::new();
    w.begin_obj();
    w.key("server");
    w.str("mgba-server");
    w.key("proto");
    w.u64(granted);
    w.key("proto_min");
    w.u64(proto::PROTO_MIN);
    w.key("proto_max");
    w.u64(proto::PROTO_MAX);
    w.key("sessions");
    w.begin_arr();
    for name in registry.session_names() {
        w.str(&name);
    }
    w.end_arr();
    w.end_obj();
    w.finish()
}

/// Renders the `stats` result for the session that received the
/// command: server-wide counters, this session's engine view and
/// per-command latencies, plus the merged all-sessions latency view.
pub(crate) fn render_stats(
    session: &Session,
    handle: &SessionHandle,
    registry: &Registry,
    shared: &Shared,
) -> String {
    let info = shared.info();
    let rows = registry.handles();
    let mut w = JsonWriter::new();
    w.begin_obj();
    w.key("server");
    w.begin_obj();
    w.key("queue_depth");
    w.u64(info.queue_depth as u64);
    w.key("read_workers");
    w.u64(info.read_workers as u64);
    w.key("sessions");
    w.u64(rows.len() as u64);
    w.key("served");
    w.u64(info.served);
    w.key("rejected_overload");
    w.u64(info.rejected_overload);
    w.key("rejected_deadline");
    w.u64(info.rejected_deadline);
    w.key("panics");
    w.u64(info.panics);
    w.key("degraded");
    w.bool(session.is_degraded());
    w.key("threads");
    w.u64(parallel::global().threads() as u64);
    w.key("version");
    w.str(BUILD_VERSION);
    w.key("commit");
    w.str(BUILD_COMMIT);
    w.key("read_backlog");
    w.u64(shared.pending_reads.load(Ordering::SeqCst) as u64);
    w.end_obj();
    w.key("session");
    w.str(handle.name());
    w.key("write_queue_depth");
    w.u64(handle.write_queue_depth() as u64);
    w.key("rebuilds");
    w.u64(handle.rebuilds());
    w.key("engine");
    session.write_engine_json(&mut w);
    w.key("commands");
    handle.latency.lock().unwrap().write_json(&mut w);
    w.key("commands_all");
    let mut merged = CommandStats::default();
    for (_, h) in &rows {
        merged.merge_from(&h.latency.lock().unwrap());
    }
    merged.write_json(&mut w);
    w.end_obj();
    w.finish()
}

/// Renders the full Prometheus exposition: server counters, per-session
/// engine gauges (`{session="…"}` labels), the merged per-command
/// latency family (keeping the original
/// `mgba_server_command_latency_us{cmd}` series names valid), a
/// per-session latency family, and whatever the `obs` registry holds
/// (empty unless `--profile` is on). Like `stats`, the output is
/// non-deterministic (latencies), so it is excluded from the
/// byte-identity protocol tests.
fn exposition(
    session: &Session,
    handle: &SessionHandle,
    registry: &Registry,
    shared: &Shared,
) -> String {
    use obs::prom::PromWriter;
    let info = shared.info();
    let rows = registry.handles();
    let mut p = PromWriter::new();
    p.gauge(
        "mgba_server_queue_depth",
        "configured bounded-queue depth",
        info.queue_depth as f64,
    );
    p.gauge(
        "mgba_server_read_workers",
        "configured read-pool size (0 = writer-lane funnel)",
        info.read_workers as f64,
    );
    p.gauge(
        "mgba_server_sessions",
        "resident sessions",
        rows.len() as f64,
    );
    p.gauge(
        "mgba_server_threads",
        "worker pool size",
        parallel::global().threads() as f64,
    );
    // Info-style build gauge: the value is always 1, the labels carry
    // the metadata.
    p.gauge_family("mgba_build_info", "build metadata; the value is always 1");
    p.sample_labels(
        "mgba_build_info",
        &[("version", BUILD_VERSION), ("commit", BUILD_COMMIT)],
        1.0,
    );
    p.gauge(
        "mgba_server_read_backlog",
        "reads admitted to the pool but not yet picked up",
        shared.pending_reads.load(Ordering::SeqCst) as f64,
    );
    p.gauge_family(
        "mgba_server_write_queue_depth",
        "lane jobs admitted but not yet dequeued, per session",
    );
    for (name, h) in &rows {
        p.sample_labels(
            "mgba_server_write_queue_depth",
            &[("session", name)],
            h.write_queue_depth() as f64,
        );
    }
    p.counter_family(
        "mgba_server_session_rebuilds_total",
        "crash-isolated session state rebuilds (latency histograms survive them)",
    );
    for (name, h) in &rows {
        p.sample_labels(
            "mgba_server_session_rebuilds_total",
            &[("session", name)],
            h.rebuilds() as f64,
        );
    }
    p.counter(
        "mgba_server_served_total",
        "requests executed to completion",
        info.served,
    );
    p.counter(
        "mgba_server_rejected_overload_total",
        "requests rejected with a full queue",
        info.rejected_overload,
    );
    p.counter(
        "mgba_server_rejected_deadline_total",
        "requests whose admission deadline expired while queued",
        info.rejected_deadline,
    );
    p.counter(
        "mgba_server_panics_total",
        "request handlers that panicked and were crash-isolated",
        info.panics,
    );
    p.counter(
        "mgba_server_sessions_evicted_total",
        "sessions removed by TTL expiry or close_session",
        shared.evicted.load(Ordering::SeqCst),
    );
    // Durability telemetry: always rendered (all-zero while
    // `--state-dir` is off) so dashboards need no conditional scrape.
    let wal_c = &registry.wal_counters;
    p.counter(
        "mgba_server_wal_appended_bytes_total",
        "bytes appended to session write-ahead logs, framing included",
        wal_c.appended_bytes.load(Ordering::SeqCst),
    );
    p.counter(
        "mgba_server_wal_fsyncs_total",
        "successful WAL data syncs (appends and compactions)",
        wal_c.fsyncs.load(Ordering::SeqCst),
    );
    p.counter(
        "mgba_server_wal_replayed_records_total",
        "WAL records replayed into sessions at recovery",
        wal_c.replayed_records.load(Ordering::SeqCst),
    );
    p.counter(
        "mgba_server_wal_truncated_tails_total",
        "torn WAL tails truncated at recovery",
        wal_c.truncated_tails.load(Ordering::SeqCst),
    );
    p.counter(
        "mgba_server_wal_checkpoints_total",
        "on-disk checkpoints written (each compacts its WAL)",
        wal_c.checkpoints.load(Ordering::SeqCst),
    );
    // Lint issue counts by severity, accumulated over every `lint`
    // command this process served (all sessions).
    let (lint_errors, lint_warnings) = session::lint_totals();
    p.counter_family(
        "mgba_lint_issues_total",
        "issues found by `lint` commands, by severity",
    );
    p.sample_labels(
        "mgba_lint_issues_total",
        &[("severity", "error")],
        lint_errors as f64,
    );
    p.sample_labels(
        "mgba_lint_issues_total",
        &[("severity", "warning")],
        lint_warnings as f64,
    );
    // Per-session degraded flags: live for the session serving this
    // request, published-snapshot state for the others.
    p.gauge_family(
        "mgba_session_degraded",
        "1 while serving fault-recovered state without calibration",
    );
    for (name, h) in &rows {
        let degraded = if name == handle.name() {
            session.is_degraded()
        } else {
            h.snapshot().map(|s| s.degraded).unwrap_or(false)
        };
        p.sample_labels(
            "mgba_session_degraded",
            &[("session", name)],
            if degraded { 1.0 } else { 0.0 },
        );
    }
    // Recalibration counters describe the lane serving this request
    // (other lanes' counts live in their own lane state).
    let (warm, cold) = session.recalib_counts();
    p.counter(
        "mgba_server_recalibrate_warm_total",
        "incremental warm-start recalibrations (dirty rows patched)",
        warm,
    );
    p.counter(
        "mgba_server_recalibrate_cold_total",
        "full cold recalibrations (`full:true` or warm cache unavailable)",
        cold,
    );
    // Engine gauges, one labeled sample per loaded session.
    let gauges: Vec<(String, session::EngineGauges)> = rows
        .iter()
        .filter_map(|(name, h)| {
            let g = if name == handle.name() {
                session.engine_gauges()
            } else {
                h.snapshot().map(|s| session::snapshot_engine_gauges(&s))
            };
            g.map(|g| (name.clone(), g))
        })
        .collect();
    if !gauges.is_empty() {
        p.gauge_family("mgba_engine_wns", "worst negative slack, ps");
        for (name, g) in &gauges {
            p.sample_labels("mgba_engine_wns", &[("session", name)], g.wns);
        }
        p.gauge_family("mgba_engine_tns", "total negative slack, ps");
        for (name, g) in &gauges {
            p.sample_labels("mgba_engine_tns", &[("session", name)], g.tns);
        }
        p.gauge_family("mgba_engine_calibrated", "1 when mGBA weights are fitted");
        for (name, g) in &gauges {
            p.sample_labels(
                "mgba_engine_calibrated",
                &[("session", name)],
                if g.calibrated { 1.0 } else { 0.0 },
            );
        }
        p.counter_family("mgba_engine_full_updates_total", "full timing propagations");
        for (name, g) in &gauges {
            p.sample_labels(
                "mgba_engine_full_updates_total",
                &[("session", name)],
                g.full_updates as f64,
            );
        }
        p.counter_family(
            "mgba_engine_incremental_updates_total",
            "incremental timing propagations",
        );
        for (name, g) in &gauges {
            p.sample_labels(
                "mgba_engine_incremental_updates_total",
                &[("session", name)],
                g.incremental_updates as f64,
            );
        }
        p.counter_family(
            "mgba_engine_cells_propagated_total",
            "cells touched by timing propagation",
        );
        for (name, g) in &gauges {
            p.sample_labels(
                "mgba_engine_cells_propagated_total",
                &[("session", name)],
                g.cells_propagated as f64,
            );
        }
    }
    // Calibration-drift telemetry: one labeled sample per session that
    // has at least one drift record, describing the most recent fit.
    let drift: Vec<(String, session::CalibrationRecord, usize)> = rows
        .iter()
        .filter_map(|(name, h)| {
            let (record, len) = if name == handle.name() {
                (session.latest_history().cloned(), session.history_len())
            } else {
                match h.snapshot() {
                    Some(s) => (s.history.last().cloned(), s.history.len()),
                    None => (None, 0),
                }
            };
            record.map(|r| (name.clone(), r, len))
        })
        .collect();
    if !drift.is_empty() {
        p.gauge_family(
            "mgba_calibration_drift_mse",
            "mean squared mGBA-vs-PBA slack error after the latest fit, ps^2",
        );
        for (name, r, _) in &drift {
            p.sample_labels(
                "mgba_calibration_drift_mse",
                &[("session", name)],
                r.mse_after,
            );
        }
        p.gauge_family(
            "mgba_calibration_drift_rms_ps",
            "root-mean-squared mGBA-vs-PBA slack error after the latest fit, ps",
        );
        for (name, r, _) in &drift {
            p.sample_labels(
                "mgba_calibration_drift_rms_ps",
                &[("session", name)],
                r.mse_after.max(0.0).sqrt(),
            );
        }
        p.gauge_family(
            "mgba_calibration_drift_weight_sparsity_pct",
            "share of gates fitted to exactly zero weight, percent",
        );
        for (name, r, _) in &drift {
            let pct = if r.weights_total == 0 {
                0.0
            } else {
                100.0 * (r.weights_total - r.weights_nonzero) as f64 / r.weights_total as f64
            };
            p.sample_labels(
                "mgba_calibration_drift_weight_sparsity_pct",
                &[("session", name)],
                pct,
            );
        }
        p.gauge_family(
            "mgba_calibration_drift_commits_since_fit",
            "commits the latest fit absorbed since the previous fit",
        );
        for (name, r, _) in &drift {
            p.sample_labels(
                "mgba_calibration_drift_commits_since_fit",
                &[("session", name)],
                r.commits_since_fit as f64,
            );
        }
        p.gauge_family(
            "mgba_calibration_drift_records",
            "drift records resident in the per-session history ring",
        );
        for (name, _, len) in &drift {
            p.sample_labels(
                "mgba_calibration_drift_records",
                &[("session", name)],
                *len as f64,
            );
        }
    }
    // Merged latency view under the original family name, so dashboards
    // scraping `mgba_server_command_latency_us{cmd}` keep working.
    let mut merged = CommandStats::default();
    for (_, h) in &rows {
        merged.merge_from(&h.latency.lock().unwrap());
    }
    p.histogram_family(
        "mgba_server_command_latency_us",
        "per-command request latency across all sessions, microseconds",
    );
    for (name, h) in merged.iter() {
        p.histogram_series(
            "mgba_server_command_latency_us",
            Some(("cmd", name)),
            &h.buckets(),
            h.count,
            h.sum_us as f64,
        );
    }
    // Per-session breakdown under its own family.
    p.histogram_family(
        "mgba_server_session_command_latency_us",
        "per-session per-command request latency, microseconds",
    );
    for (sname, h) in &rows {
        let stats = h.latency.lock().unwrap().clone();
        for (cmd, hist) in stats.iter() {
            p.histogram_series_labels(
                "mgba_server_session_command_latency_us",
                &[("session", sname), ("cmd", cmd)],
                &hist.buckets(),
                hist.count,
                hist.sum_us as f64,
            );
        }
    }
    // Per-session request-stage durations (queue wait, ticket wait,
    // snapshot age at execution, execute, reply write).
    p.histogram_family(
        "mgba_server_stage_us",
        "per-session request-stage durations, microseconds",
    );
    for (sname, h) in &rows {
        let stats = h.stage_latency.lock().unwrap().clone();
        for (stage, hist) in stats.iter() {
            p.histogram_series_labels(
                "mgba_server_stage_us",
                &[("session", sname), ("stage", stage)],
                &hist.buckets(),
                hist.count,
                hist.sum_us as f64,
            );
        }
    }
    let mut batch = LatencyHist::default();
    for (_, h) in &rows {
        batch.merge_from(&h.whatif_sizes.lock().unwrap());
    }
    p.histogram_family(
        "mgba_server_whatif_batch_size",
        "candidates per whatif_batch request",
    );
    p.histogram_series(
        "mgba_server_whatif_batch_size",
        None,
        &batch.buckets(),
        batch.count,
        batch.sum_us as f64,
    );
    let mut text = p.finish();
    // The obs registry rides along when profiling is enabled.
    text.push_str(&obs::prom::encode(&obs::metrics::snapshot()));
    text
}

/// Renders the `metrics` result (exposition wrapped in JSON).
pub(crate) fn render_metrics(
    session: &Session,
    handle: &SessionHandle,
    registry: &Registry,
    shared: &Shared,
) -> String {
    let mut w = JsonWriter::new();
    w.begin_obj();
    w.key("content_type");
    w.str(obs::prom::CONTENT_TYPE);
    w.key("exposition");
    w.str(&exposition(session, handle, registry, shared));
    w.end_obj();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Value};

    fn registry_with(names: &[&str]) -> (Arc<Registry>, Vec<SessionEntry>) {
        let shared = Arc::new(Shared::new(8, 2));
        let registry = Registry::new(8, shared, None, None, None);
        let entries = names
            .iter()
            .map(|n| registry.session(n).map_err(|_| ()).unwrap())
            .collect();
        (registry, entries)
    }

    fn close(registry: &Registry) {
        for lane in registry.close() {
            let _ = lane.join();
        }
    }

    #[test]
    fn sessions_are_created_lazily_and_capped() {
        let shared = Arc::new(Shared::new(4, 0));
        let registry = Registry::new(4, shared, None, None, None);
        assert!(registry.session_names().is_empty());
        for i in 0..MAX_SESSIONS {
            assert!(registry.session(&format!("s{i}")).is_ok());
        }
        assert!(matches!(
            registry.session("one-too-many"),
            Err(AdmitRejection::TooManySessions)
        ));
        // Existing sessions still resolve at the cap.
        assert!(registry.session("s0").is_ok());
        assert_eq!(registry.session_names().len(), MAX_SESSIONS);
        close(&registry);
        assert!(matches!(
            registry.session("post-close"),
            Err(AdmitRejection::Draining)
        ));
    }

    #[test]
    fn tickets_commit_only_on_successful_admission() {
        let (registry, entries) = registry_with(&["t"]);
        let entry = &entries[0];
        let (reply_tx, reply_rx) = mpsc::channel();
        let meta = EnvMeta::v2(Some(1), "t");
        entry
            .handle
            .admit_lane(&entry.lane_tx, meta, Command::Ping, None, reply_tx)
            .unwrap();
        assert_eq!(entry.handle.current_ticket(), 1);
        // The lane publishes the ticket once the job completes.
        let resp = reply_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(resp.contains("\"pong\":true"), "{resp}");
        assert!(entry.handle.wait_published(1, Some((Instant::now(), 1000))));
        close(&registry);
    }

    #[test]
    fn full_lane_queue_rolls_the_ticket_back() {
        let shared = Arc::new(Shared::new(1, 0));
        let registry = Registry::new(1, Arc::clone(&shared), None, None, None);
        let entry = registry.session("q").map_err(|_| ()).unwrap();
        let (reply_tx, reply_rx) = mpsc::channel();
        // A sleep occupies the lane; the queue (depth 1) then fills.
        entry
            .handle
            .admit_lane(
                &entry.lane_tx,
                EnvMeta::v2(Some(1), "q"),
                Command::Sleep { ms: 150 },
                None,
                reply_tx.clone(),
            )
            .unwrap();
        let mut overflowed = false;
        let mut admitted = 1u64;
        for i in 0..8 {
            let r = entry.handle.admit_lane(
                &entry.lane_tx,
                EnvMeta::v2(Some(2 + i), "q"),
                Command::Ping,
                None,
                reply_tx.clone(),
            );
            match r {
                Ok(()) => admitted += 1,
                Err(TrySendError::Full(_)) => {
                    overflowed = true;
                    break;
                }
                Err(e) => panic!("unexpected {e:?}"),
            }
        }
        assert!(overflowed, "depth-1 queue must overflow");
        // The rejected job must NOT have consumed a ticket or a request
        // id: both counters equal the number of accepted admissions.
        assert_eq!(entry.handle.current_ticket(), admitted);
        assert_eq!(entry.handle.next_request_id(), admitted + 1);
        drop(reply_tx);
        for _ in 0..admitted {
            let _ = reply_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        }
        close(&registry);
    }

    #[test]
    fn snapshot_publishes_after_load_and_reads_match_lane_bytes() {
        let (registry, entries) = registry_with(&["r"]);
        let entry = &entries[0];
        assert!(entry.handle.snapshot().is_none());
        let (reply_tx, reply_rx) = mpsc::channel();
        entry
            .handle
            .admit_lane(
                &entry.lane_tx,
                EnvMeta::v2(Some(1), "r"),
                Command::Load {
                    spec: "small:7".into(),
                    period: None,
                },
                None,
                reply_tx.clone(),
            )
            .unwrap();
        entry
            .handle
            .admit_lane(
                &entry.lane_tx,
                EnvMeta::v2(Some(2), "r"),
                Command::Wns,
                None,
                reply_tx.clone(),
            )
            .unwrap();
        let load_resp = reply_rx.recv_timeout(Duration::from_secs(30)).unwrap();
        assert!(load_resp.contains("\"ok\":true"), "{load_resp}");
        let lane_wns = reply_rx.recv_timeout(Duration::from_secs(30)).unwrap();
        // Snapshot is published; a read against it produces the same
        // result bytes the lane just served.
        assert!(entry.handle.wait_published(2, Some((Instant::now(), 5000))));
        let snap = entry.handle.snapshot().expect("published after load");
        let read = execute_read(Some(&snap), &Command::Wns).unwrap();
        // The lane stamped the second admission with request_id 2.
        let expected =
            proto::ok_envelope(&EnvMeta::v2(Some(2), "r").with_request_id(2), false, &read);
        assert_eq!(lane_wns, expected);
        close(&registry);
    }

    #[test]
    fn serve_read_before_load_is_a_usage_error() {
        let (registry, entries) = registry_with(&["e"]);
        let entry = &entries[0];
        let (reply_tx, reply_rx) = mpsc::channel();
        serve_read(
            ReadJob {
                meta: EnvMeta::v2(Some(5), "e"),
                cmd: Command::Wns,
                deadline_ms: None,
                ticket: 0,
                handle: Arc::clone(&entry.handle),
                reply: reply_tx,
                enqueued: Instant::now(),
            },
            &registry.shared,
        );
        let resp = reply_rx.recv().unwrap();
        assert!(resp.contains("\"code\":\"usage\""), "{resp}");
        assert!(resp.contains("no design loaded"), "{resp}");
        close(&registry);
    }

    #[test]
    fn serve_read_rejects_on_unpublished_ticket_deadline() {
        let (registry, entries) = registry_with(&["d"]);
        let entry = &entries[0];
        let (reply_tx, reply_rx) = mpsc::channel();
        // Ticket 7 never publishes: the read must give up at its
        // deadline instead of hanging.
        serve_read(
            ReadJob {
                meta: EnvMeta::v2(Some(9), "d"),
                cmd: Command::Ping,
                deadline_ms: Some(20),
                ticket: 7,
                handle: Arc::clone(&entry.handle),
                reply: reply_tx,
                enqueued: Instant::now(),
            },
            &registry.shared,
        );
        let resp = reply_rx.recv().unwrap();
        assert!(resp.contains("\"code\":\"deadline\""), "{resp}");
        assert_eq!(registry.shared.rejected_deadline.load(Ordering::SeqCst), 1);
        close(&registry);
    }

    #[test]
    fn hello_reports_protocol_window_and_sessions() {
        let (registry, _entries) = registry_with(&["b", "a"]);
        let r = parse(&render_hello(&registry, None)).unwrap();
        assert_eq!(r.get("proto").and_then(Value::as_u64), Some(2));
        assert_eq!(r.get("proto_min").and_then(Value::as_u64), Some(1));
        assert_eq!(r.get("proto_max").and_then(Value::as_u64), Some(2));
        match r.get("sessions").unwrap() {
            Value::Arr(a) => {
                let names: Vec<&str> = a.iter().filter_map(Value::as_str).collect();
                assert_eq!(names, vec!["a", "b"], "sorted session list");
            }
            other => panic!("{other:?}"),
        }
        // Negotiation clamps into the supported window.
        let r = parse(&render_hello(&registry, Some(1))).unwrap();
        assert_eq!(r.get("proto").and_then(Value::as_u64), Some(1));
        let r = parse(&render_hello(&registry, Some(99))).unwrap();
        assert_eq!(r.get("proto").and_then(Value::as_u64), Some(2));
        close(&registry);
    }

    #[test]
    fn stats_and_metrics_render_per_session_and_merged_views() {
        let (registry, entries) = registry_with(&["alpha", "beta"]);
        let alpha = &entries[0];
        let beta = &entries[1];
        alpha.handle.latency.lock().unwrap().record("ping", 12);
        beta.handle.latency.lock().unwrap().record("wns", 4);
        beta.handle.latency.lock().unwrap().record("wns", 70_000);
        beta.handle.whatif_sizes.lock().unwrap().record(3);
        let mut session = Session::new();
        session
            .handle(&Command::Load {
                spec: "small:7".into(),
                period: None,
            })
            .unwrap();

        let st = parse(&render_stats(
            &session,
            &alpha.handle,
            &registry,
            &registry.shared,
        ))
        .unwrap();
        let server = st.get("server").unwrap();
        assert_eq!(server.get("sessions").and_then(Value::as_u64), Some(2));
        assert_eq!(server.get("read_workers").and_then(Value::as_u64), Some(2));
        assert_eq!(st.get("session").and_then(Value::as_str), Some("alpha"));
        // Own-session commands vs the merged view.
        let own = st.get("commands").unwrap();
        assert!(own.get("ping").is_some());
        assert!(own.get("wns").is_none());
        let all = st.get("commands_all").unwrap();
        assert!(all.get("ping").is_some());
        assert_eq!(
            all.get("wns")
                .and_then(|w| w.get("count"))
                .and_then(Value::as_u64),
            Some(2)
        );
        // The stats-serving session's engine view is live.
        assert!(st.get("engine").unwrap().get("design").is_some());

        let m = parse(&render_metrics(
            &session,
            &alpha.handle,
            &registry,
            &registry.shared,
        ))
        .unwrap();
        let text = m.get("exposition").and_then(Value::as_str).unwrap();
        obs::prom::validate(text).expect("conformant exposition");
        assert!(text.contains("mgba_server_sessions 2.0"), "{text}");
        assert!(text.contains("mgba_server_read_workers 2.0"), "{text}");
        // Original series names stay valid (merged across sessions)...
        assert!(
            text.contains("mgba_server_command_latency_us_count{cmd=\"wns\"} 2"),
            "{text}"
        );
        // ...and the per-session family breaks them down.
        assert!(
            text.contains(
                "mgba_server_session_command_latency_us_count{session=\"beta\",cmd=\"wns\"} 2"
            ),
            "{text}"
        );
        assert!(
            text.contains("mgba_session_degraded{session=\"alpha\"} 0"),
            "{text}"
        );
        // Engine gauges are labeled with the serving session's name
        // (alpha is live-loaded; beta has no snapshot and no sample).
        assert!(
            text.contains("mgba_engine_wns{session=\"alpha\"}"),
            "{text}"
        );
        assert!(
            !text.contains("mgba_engine_wns{session=\"beta\"}"),
            "{text}"
        );
        assert!(
            text.contains("mgba_server_whatif_batch_size_count 1"),
            "{text}"
        );
        close(&registry);
    }
}
