//! "Did you mean" suggestions for unknown-name errors.
//!
//! Resize commands arrive with hand-typed cell and library-cell names;
//! a bare `unknown cell` error sends the user back to dumping the whole
//! netlist. Following the netlist parser's diagnostics style, the error
//! instead carries the closest known names by edit distance.

/// Levenshtein distance between `a` and `b`, abandoned early when it
/// provably exceeds `cap` (returns `None`). The early-out keeps the scan
/// over a large netlist cheap: most names differ wildly in length and
/// never reach the DP loop.
pub fn edit_distance_capped(a: &str, b: &str, cap: usize) -> Option<usize> {
    let a = a.as_bytes();
    let b = b.as_bytes();
    if a.len().abs_diff(b.len()) > cap {
        return None;
    }
    // One-row DP; row[j] = distance between a[..i] and b[..j].
    let mut row: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut prev = row[0]; // row[i][0] before overwrite
        row[0] = i + 1;
        let mut best = row[0];
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev + usize::from(ca != cb);
            prev = row[j + 1];
            row[j + 1] = sub.min(prev + 1).min(row[j] + 1);
            best = best.min(row[j + 1]);
        }
        if best > cap {
            return None;
        }
    }
    let d = row[b.len()];
    (d <= cap).then_some(d)
}

/// The `k` known names closest to `query` by edit distance, nearest
/// first. Ties break lexicographically so the suggestion list — and any
/// error message embedding it — is byte-stable across runs. Names
/// further than `max(2, query.len()/2)` edits away are never suggested
/// (a suggestion that rewrites most of the name is noise, not help).
pub fn nearest<'a>(query: &str, names: impl Iterator<Item = &'a str>, k: usize) -> Vec<String> {
    let cap = (query.len() / 2).max(2);
    let mut scored: Vec<(usize, &str)> = names
        .filter_map(|n| edit_distance_capped(query, n, cap).map(|d| (d, n)))
        .collect();
    scored.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(b.1)));
    scored.truncate(k);
    scored.into_iter().map(|(_, n)| n.to_owned()).collect()
}

/// Renders the ` (nearest: a, b, c)` suffix for an unknown-name error,
/// or the empty string when nothing is close enough to suggest.
pub fn nearest_note<'a>(query: &str, names: impl Iterator<Item = &'a str>) -> String {
    let close = nearest(query, names, 3);
    if close.is_empty() {
        String::new()
    } else {
        format!(" (nearest: {})", close.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance_capped("abc", "abc", 0), Some(0));
        assert_eq!(edit_distance_capped("abc", "abd", 2), Some(1));
        assert_eq!(edit_distance_capped("abc", "ab", 2), Some(1));
        assert_eq!(edit_distance_capped("abc", "xabc", 2), Some(1));
        assert_eq!(edit_distance_capped("kitten", "sitting", 6), Some(3));
        assert_eq!(edit_distance_capped("", "abc", 3), Some(3));
    }

    #[test]
    fn cap_prunes_far_names() {
        assert_eq!(edit_distance_capped("abc", "xyzzy", 1), None);
        // Length difference alone exceeds the cap.
        assert_eq!(edit_distance_capped("a", "abcdefgh", 3), None);
        // Exactly at the cap is still reported.
        assert_eq!(edit_distance_capped("abc", "abd", 1), Some(1));
    }

    #[test]
    fn nearest_ranks_and_breaks_ties_by_name() {
        let names = ["g_1_9", "g_1_0", "g_2_99", "clk_buf_3", "g_1_99"];
        let got = nearest("g_1_99x", names.iter().copied(), 3);
        assert_eq!(got[0], "g_1_99", "exact-but-one match ranks first");
        // Remaining candidates at equal distance come lexicographically.
        assert_eq!(got.len(), 3);
        let mut tail = got[1..].to_vec();
        let mut sorted = tail.clone();
        sorted.sort();
        tail.sort();
        assert_eq!(tail, sorted);
    }

    #[test]
    fn note_is_empty_when_nothing_is_close() {
        assert_eq!(nearest_note("zzz", ["alpha", "beta"].into_iter()), "");
        let note = nearest_note("g_1_9", ["g_1_0", "g_1_9x"].into_iter());
        assert!(note.starts_with(" (nearest: "), "{note}");
        assert!(note.contains("g_1_9x"));
    }
}
