//! Typed wire client for the daemon: connect/timeout/retry, protocol
//! v2 session addressing, and parsed response envelopes.
//!
//! The CLI `query` command and the bench harness both speak the
//! protocol through this module instead of hand-rolling JSON lines, so
//! there is exactly one encoder ([`proto::render_request`]) and one
//! envelope decoder ([`Response::parse`]) in the tree.
//!
//! The client is deliberately synchronous and pipelining-friendly:
//! [`Client::call`] is one strict request/response round trip, while
//! [`Client::send`] / [`Client::recv`] split the two halves so a bench
//! loop can keep many requests in flight on one connection.

use crate::json::{self, Value};
use crate::proto::{self, Command};
use mgba::MgbaError;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Client-side connection tunables.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Per-I/O timeout (read and write), milliseconds. `0` disables.
    pub timeout_ms: u64,
    /// Extra connect attempts after the first fails (covers a daemon
    /// that is still binding its port). The same budget governs
    /// mid-flight reconnects: a connection reset/refused/EOF while a
    /// request is outstanding triggers a reconnect (itself retried
    /// under this policy) and a replay of every unanswered request —
    /// so a client rides through a server restart. Replay is
    /// at-least-once: a mutation the server acknowledged to its WAL
    /// just before dying may be applied again on replay.
    pub connect_retries: u32,
    /// Initial sleep between connect attempts, milliseconds (doubles
    /// after every failed retry).
    pub backoff_ms: u64,
    /// Protocol version to speak: `2` (sessions) or `1` (legacy
    /// sessionless requests; the server answers `deprecated:true`).
    pub proto: u64,
    /// Session this client addresses (ignored at `proto: 1`).
    pub session: String,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            timeout_ms: 30_000,
            connect_retries: 2,
            backoff_ms: 50,
            proto: proto::PROTO_MAX,
            session: proto::DEFAULT_SESSION.to_owned(),
        }
    }
}

/// A structured `error` object from a response envelope.
#[derive(Debug, Clone)]
pub struct WireError {
    /// Error category (legacy key; always equals `code`).
    pub kind: String,
    /// Stable error code: `parse`, `config`, `solver`, `io`, `usage`,
    /// `timeout`, `internal`, `overload`, `deadline`, or `shutdown`.
    pub code: String,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

/// One parsed response envelope.
#[derive(Debug, Clone)]
pub struct Response {
    /// Echoed request id.
    pub id: Option<u64>,
    /// `true` on success.
    pub ok: bool,
    /// Session that served the request (v2 envelopes only).
    pub session: Option<String>,
    /// `true` when the server flagged the request as using the
    /// deprecated v1 sessionless addressing.
    pub deprecated: bool,
    /// `true` while the session serves fault-recovered state without
    /// calibration.
    pub degraded: bool,
    /// Parsed `result` payload on success.
    pub result: Option<Value>,
    /// Structured error on failure.
    pub error: Option<WireError>,
    /// The raw response line, verbatim.
    pub raw: String,
}

impl Response {
    /// Parses one envelope line.
    ///
    /// # Errors
    ///
    /// Returns [`MgbaError::Internal`] when the line is not a JSON
    /// object with a boolean `ok` key — the server side of the wire is
    /// broken, not the caller.
    pub fn parse(line: &str) -> Result<Self, MgbaError> {
        let v = json::parse(line)
            .map_err(|e| MgbaError::Internal(format!("malformed response line: {e}")))?;
        let ok = v
            .get("ok")
            .and_then(Value::as_bool)
            .ok_or_else(|| MgbaError::Internal("response missing `ok`".into()))?;
        let error = v.get("error").map(|e| WireError {
            kind: e
                .get("kind")
                .and_then(Value::as_str)
                .unwrap_or("internal")
                .to_owned(),
            code: e
                .get("code")
                .and_then(Value::as_str)
                .unwrap_or("internal")
                .to_owned(),
            message: e
                .get("message")
                .and_then(Value::as_str)
                .unwrap_or_default()
                .to_owned(),
        });
        Ok(Self {
            id: v.get("id").and_then(Value::as_u64),
            ok,
            session: v.get("session").and_then(Value::as_str).map(str::to_owned),
            deprecated: v
                .get("deprecated")
                .and_then(Value::as_bool)
                .unwrap_or(false),
            degraded: v.get("degraded").and_then(Value::as_bool).unwrap_or(false),
            result: v.get("result").cloned(),
            error,
            raw: line.to_owned(),
        })
    }

    /// The successful `result`, or the wire error converted to
    /// [`MgbaError`].
    ///
    /// # Errors
    ///
    /// Returns [`MgbaError::Internal`] carrying `code: message` when the
    /// envelope reports failure.
    pub fn into_result(self) -> Result<Value, MgbaError> {
        if self.ok {
            Ok(self.result.unwrap_or(Value::Null))
        } else {
            let e = self.error.unwrap_or(WireError {
                kind: "internal".into(),
                code: "internal".into(),
                message: "malformed error envelope".into(),
            });
            Err(MgbaError::Internal(format!("{e}")))
        }
    }
}

/// True for the I/O failures a server restart produces mid-connection:
/// reset/aborted/refused, a broken pipe, or a clean server-side close.
/// Timeouts are deliberately excluded — a slow server is not a dead one.
fn is_disconnect(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionRefused
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::BrokenPipe
            | std::io::ErrorKind::UnexpectedEof
    )
}

/// A connected protocol client (one TCP stream, line-oriented).
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    config: ClientConfig,
    next_id: u64,
    /// Connect target, kept so mid-flight disconnects can reconnect.
    addr: String,
    /// Request lines sent but not yet answered, in send order — resent
    /// verbatim after a mid-flight reconnect so the caller's pending
    /// `recv`s still complete.
    outstanding: std::collections::VecDeque<String>,
}

impl Client {
    /// Connects to `addr` with the config's retry/backoff/timeout
    /// policy: `connect_retries` extra attempts under exponential
    /// backoff starting at `backoff_ms`, each attempt (and later every
    /// read/write) bounded by `timeout_ms`.
    ///
    /// # Errors
    ///
    /// Returns [`MgbaError::Io`] when every connect attempt fails or the
    /// socket rejects its timeout configuration.
    pub fn connect(addr: &str, config: ClientConfig) -> Result<Self, MgbaError> {
        let (reader, writer) = Self::open_stream(addr, &config)?;
        Ok(Self {
            reader,
            writer,
            config,
            next_id: 0,
            addr: addr.to_owned(),
            outstanding: std::collections::VecDeque::new(),
        })
    }

    /// One full connect cycle under the config's retry/backoff/timeout
    /// policy (shared by [`Client::connect`] and mid-flight
    /// reconnects).
    fn open_stream(
        addr: &str,
        config: &ClientConfig,
    ) -> Result<(BufReader<TcpStream>, TcpStream), MgbaError> {
        use std::net::ToSocketAddrs as _;
        let connect_once = || -> std::io::Result<TcpStream> {
            if config.timeout_ms == 0 {
                return TcpStream::connect(addr);
            }
            let sock = addr.to_socket_addrs()?.next().ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::NotFound, "address resolved to nothing")
            })?;
            TcpStream::connect_timeout(&sock, Duration::from_millis(config.timeout_ms))
        };
        let mut delay = Duration::from_millis(config.backoff_ms.max(1));
        let mut last_err = None;
        for attempt in 0..=config.connect_retries {
            if attempt > 0 {
                std::thread::sleep(delay);
                delay *= 2;
            }
            match connect_once() {
                Ok(stream) => {
                    let timeout =
                        (config.timeout_ms > 0).then(|| Duration::from_millis(config.timeout_ms));
                    stream
                        .set_read_timeout(timeout)
                        .and_then(|()| stream.set_write_timeout(timeout))
                        .map_err(|e| MgbaError::io(addr, e))?;
                    let _ = stream.set_nodelay(true);
                    let writer = stream.try_clone().map_err(|e| MgbaError::io(addr, e))?;
                    return Ok((BufReader::new(stream), writer));
                }
                Err(e) => last_err = Some(e),
            }
        }
        let last_err = last_err.unwrap_or_else(|| std::io::Error::other("no connect attempt ran"));
        let last_err = if config.connect_retries > 0 {
            std::io::Error::new(
                last_err.kind(),
                format!(
                    "connect failed after retry {0}/{0}: {last_err}",
                    config.connect_retries
                ),
            )
        } else {
            last_err
        };
        Err(MgbaError::io(addr, last_err))
    }

    /// Re-establishes the connection and resends every unanswered
    /// request line in send order, so pending `recv`s still complete
    /// (against the restarted server's replies).
    fn reconnect_and_replay(&mut self) -> Result<(), MgbaError> {
        let (reader, writer) = Self::open_stream(&self.addr, &self.config)?;
        self.reader = reader;
        self.writer = writer;
        for i in 0..self.outstanding.len() {
            let line = self.outstanding[i].clone();
            self.writer
                .write_all(line.as_bytes())
                .and_then(|()| self.writer.write_all(b"\n"))
                .map_err(|e| MgbaError::io("send (replay)", e))?;
        }
        Ok(())
    }

    /// The session this client addresses.
    pub fn session(&self) -> &str {
        &self.config.session
    }

    /// Points subsequent requests at a different session.
    pub fn set_session(&mut self, session: impl Into<String>) {
        self.config.session = session.into();
    }

    /// Sends `cmd` without waiting for the response; returns the
    /// request id. Pair with [`Client::recv`] — responses come back in
    /// send order, so a pipelined loop is `N × send` then `N × recv`.
    ///
    /// # Errors
    ///
    /// Returns [`MgbaError::Io`] when the write fails or times out.
    pub fn send(&mut self, cmd: &Command, deadline_ms: Option<u64>) -> Result<u64, MgbaError> {
        self.next_id += 1;
        let id = self.next_id;
        let session = (self.config.proto >= 2).then_some(self.config.session.as_str());
        let line = proto::render_request(Some(id), self.config.proto, session, cmd, deadline_ms);
        self.send_raw(&line)?;
        Ok(id)
    }

    /// Writes one raw request line (escape hatch for pre-rendered or
    /// intentionally malformed requests). A disconnect during the write
    /// reconnects and replays under the retry policy.
    ///
    /// # Errors
    ///
    /// Returns [`MgbaError::Io`] when the write fails or times out.
    pub fn send_raw(&mut self, line: &str) -> Result<(), MgbaError> {
        self.outstanding.push_back(line.to_owned());
        let wrote = self
            .writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"));
        match wrote {
            Ok(()) => Ok(()),
            Err(e) if is_disconnect(&e) && self.config.connect_retries > 0 => {
                // The replay includes the line just queued.
                self.reconnect_and_replay()
            }
            Err(e) => {
                self.outstanding.pop_back();
                Err(MgbaError::io("send", e))
            }
        }
    }

    /// Reads one line, mapping a server-closed stream to
    /// [`std::io::ErrorKind::UnexpectedEof`].
    fn read_line_once(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    /// Reads one raw response line. A disconnect while requests are
    /// outstanding (the server restarted mid-flight) reconnects,
    /// replays the unanswered requests, and keeps reading — bounded by
    /// the config's `connect_retries` budget.
    ///
    /// # Errors
    ///
    /// Returns [`MgbaError::Io`] on timeout, a non-retryable disconnect,
    /// or an exhausted retry budget.
    pub fn recv_raw(&mut self) -> Result<String, MgbaError> {
        let mut reconnects = 0u32;
        loop {
            match self.read_line_once() {
                Ok(line) => {
                    self.outstanding.pop_front();
                    return Ok(line);
                }
                Err(e)
                    if is_disconnect(&e)
                        && !self.outstanding.is_empty()
                        && reconnects < self.config.connect_retries =>
                {
                    reconnects += 1;
                    self.reconnect_and_replay()?;
                }
                Err(e) => return Err(MgbaError::io("recv", e)),
            }
        }
    }

    /// Reads and parses one response envelope.
    ///
    /// # Errors
    ///
    /// Propagates [`Client::recv_raw`] I/O errors and
    /// [`Response::parse`] errors.
    pub fn recv(&mut self) -> Result<Response, MgbaError> {
        let line = self.recv_raw()?;
        Response::parse(&line)
    }

    /// One strict round trip: send `cmd`, wait for its response.
    ///
    /// # Errors
    ///
    /// Propagates send/receive errors; a response with `ok:false` is
    /// still `Ok` (inspect [`Response::error`] or use
    /// [`Response::into_result`]).
    pub fn call(&mut self, cmd: &Command) -> Result<Response, MgbaError> {
        self.send(cmd, None)?;
        self.recv()
    }

    /// Performs the `hello` handshake and pins `config.proto` to the
    /// granted version.
    ///
    /// # Errors
    ///
    /// Propagates round-trip errors; fails with [`MgbaError::Internal`]
    /// when the server refuses the handshake.
    pub fn hello(&mut self) -> Result<Response, MgbaError> {
        let max = self.config.proto;
        let resp = self.call(&Command::Hello {
            max_proto: Some(max),
        })?;
        if !resp.ok {
            return Err(MgbaError::Internal(format!(
                "hello rejected: {}",
                resp.error
                    .as_ref()
                    .map(|e| e.message.as_str())
                    .unwrap_or("?")
            )));
        }
        if let Some(granted) = resp
            .result
            .as_ref()
            .and_then(|r| r.get("proto"))
            .and_then(Value::as_u64)
        {
            self.config.proto = granted;
        }
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{Server, ServerConfig};

    fn spawn_server(config: ServerConfig) -> (String, std::thread::JoinHandle<()>) {
        let server = Server::bind("127.0.0.1:0", config).unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || server.run().unwrap());
        (addr, handle)
    }

    #[test]
    fn typed_round_trips_hello_sessions_and_errors() {
        let (addr, server) = spawn_server(ServerConfig::default());
        let mut c = Client::connect(
            &addr,
            ClientConfig {
                session: "opt-a".into(),
                ..ClientConfig::default()
            },
        )
        .unwrap();
        let hello = c.hello().unwrap();
        let granted = hello.result.as_ref().unwrap();
        assert_eq!(granted.get("proto").and_then(Value::as_u64), Some(2));

        let pong = c.call(&Command::Ping).unwrap();
        assert!(pong.ok);
        assert_eq!(pong.session.as_deref(), Some("opt-a"));
        assert!(!pong.deprecated);
        assert!(pong.result.unwrap().get("pong").is_some());

        // Typed error envelope: no design loaded yet.
        let err = c.call(&Command::Wns).unwrap();
        assert!(!err.ok);
        let wire = err.error.clone().unwrap();
        assert_eq!(wire.code, "usage");
        assert_eq!(wire.kind, "usage");
        assert!(wire.message.contains("no design loaded"), "{wire}");
        assert!(err.into_result().is_err());

        // v1 addressing round trip on a second connection.
        let mut v1 = Client::connect(
            &addr,
            ClientConfig {
                proto: 1,
                ..ClientConfig::default()
            },
        )
        .unwrap();
        let pong = v1.call(&Command::Ping).unwrap();
        assert!(pong.ok && pong.deprecated);
        assert_eq!(pong.session, None);

        let bye = c.call(&Command::Shutdown).unwrap();
        assert!(bye.ok, "{}", bye.raw);
        server.join().unwrap();
    }

    #[test]
    fn pipelined_sends_return_responses_in_order() {
        let (addr, server) = spawn_server(ServerConfig {
            read_workers: 2,
            ..ServerConfig::default()
        });
        let mut c = Client::connect(&addr, ClientConfig::default()).unwrap();
        let ids: Vec<u64> = (0..16)
            .map(|_| c.send(&Command::Ping, None).unwrap())
            .collect();
        for id in ids {
            let resp = c.recv().unwrap();
            assert_eq!(resp.id, Some(id));
            assert!(resp.ok);
        }
        c.call(&Command::Shutdown).unwrap();
        server.join().unwrap();
    }

    #[test]
    fn connect_retries_give_up_with_io_error() {
        // Nothing listens here; all attempts must fail fast.
        let err = Client::connect(
            "127.0.0.1:1",
            ClientConfig {
                connect_retries: 1,
                backoff_ms: 1,
                ..ClientConfig::default()
            },
        );
        let Err(e) = err else {
            panic!("connect to a dead port must fail")
        };
        assert!(matches!(e, MgbaError::Io { .. }));
        let msg = e.to_string();
        assert!(msg.contains("retry 1/1"), "{msg}");
    }
}
