//! Wire protocol: JSON-lines requests and responses.
//!
//! One request per line, one response per line. Every request is an
//! object with a `cmd` string, an optional numeric `id` (echoed back),
//! and an optional `deadline_ms` admission deadline. Responses are
//! `{"id":…,"ok":true,"result":{…}}` on success and
//! `{"id":…,"ok":false,"error":{"kind":…,"message":…}}` on failure.
//!
//! Error kinds for [`mgba::MgbaError`] variants are `"parse"`,
//! `"config"`, `"solver"`, `"io"`, `"usage"`, `"timeout"`, and
//! `"internal"` (a request handler panicked; the session was restored
//! from its last good state); the server layer adds `"overload"`
//! (bounded queue full), `"deadline"` (admission deadline expired while
//! queued), and `"shutdown"` (received while draining). Malformed JSON
//! and unknown commands surface as `"usage"` — they are routed through
//! [`MgbaError::Usage`] like any bad CLI invocation.
//!
//! Success envelopes carry a `"degraded":true` field **only** while the
//! session is serving from a fault-recovered state without calibration
//! (raw-GBA answers, safe but pessimistic); healthy responses omit the
//! key entirely so response bytes are unchanged from pre-fault runs.

use crate::json::{self, Value};
use mgba::MgbaError;
use obs::json::JsonWriter;

/// Largest accepted `whatif_batch` candidate list. One request holds the
/// worker for the whole batch, so the cap bounds worst-case queue delay
/// the same way the `sleep` cap does.
pub const MAX_WHATIF_BATCH: usize = 256;

/// One admission-controlled request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed into the response.
    pub id: Option<u64>,
    /// The decoded command.
    pub cmd: Command,
    /// Admission deadline: if the request waits in the queue longer
    /// than this, it is rejected without execution.
    pub deadline_ms: Option<u64>,
}

/// Every operation the daemon serves.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Liveness probe.
    Ping,
    /// Load a design (generator spec or netlist file) and build the
    /// timing engine. `period` defaults to the auto-derived tight clock.
    Load {
        /// Generator spec (`D3`, `small:7`) or netlist file path.
        spec: String,
        /// Clock period in ps; auto-derived when absent.
        period: Option<f64>,
    },
    /// Run the mGBA fit and fold the weights back into the engine.
    Calibrate {
        /// Solver name (`gd|scg|scgrs|cgnr`), default `scgrs`.
        solver: Option<String>,
    },
    /// Setup slack of one endpoint, or the worst `top` endpoints.
    Slack {
        /// Endpoint cell name; worst endpoints when absent.
        endpoint: Option<String>,
        /// How many worst endpoints to report (default 10).
        top: usize,
    },
    /// Worst negative slack over all endpoints.
    Wns,
    /// Total negative slack over all endpoints.
    Tns,
    /// Worst path to an endpoint (the worst endpoint when absent),
    /// optionally re-timed with golden PBA.
    PathQuery {
        /// Endpoint cell name; the worst endpoint when absent.
        endpoint: Option<String>,
        /// Also report the path's golden PBA slack.
        pba: bool,
    },
    /// Trial-resize a gate, report the timing delta, and roll back —
    /// the incremental-update what-if of the paper's §4 sizing loop.
    WhatIfResize {
        /// Cell instance name.
        cell: String,
        /// `up`, `down`, or an explicit library cell name.
        to: String,
    },
    /// Apply a resize permanently (same arguments as `whatif_resize`).
    /// On a calibrated session the commit triggers an incremental
    /// recalibration: dirty fit-matrix rows are patched and the solver
    /// warm-starts from the previous `x*`.
    Commit {
        /// Cell instance name.
        cell: String,
        /// `up`, `down`, or an explicit library cell name.
        to: String,
        /// Escape hatch: force a full cold recalibration (re-select
        /// paths, rebuild the fit matrix, solve from zero) instead of
        /// the warm incremental refit.
        full: bool,
    },
    /// Re-run calibration on the current design: warm and incremental
    /// when the session holds a calibration cache, cold otherwise (or
    /// when `full` is set).
    Recalibrate {
        /// Solver name (`gd|scg|scgrs|cgnr`); defaults to the solver of
        /// the previous calibration.
        solver: Option<String>,
        /// Force a full cold recalibration.
        full: bool,
    },
    /// Evaluate up to [`MAX_WHATIF_BATCH`] candidate resizes in one
    /// request: each candidate is trial-applied, measured (engine
    /// WNS/TNS plus batch-retimed slacks over the calibrated path set),
    /// and rolled back. One round trip instead of N.
    WhatIfBatch {
        /// Candidates as `(cell instance name, target)` pairs, where the
        /// target is `up`, `down`, or an explicit library cell name.
        resizes: Vec<(String, String)>,
        /// Also report each candidate's golden-PBA worst slack over the
        /// calibrated path set (slower: N PBA batch retimes).
        pba: bool,
    },
    /// Serialize the session (design spec, period, fitted weights) for
    /// warm restart.
    Snapshot {
        /// Destination file path.
        file: String,
    },
    /// Rebuild the session from a snapshot file.
    Restore {
        /// Snapshot file path.
        file: String,
    },
    /// Server and engine statistics (non-deterministic: latencies).
    Stats,
    /// Prometheus text exposition of server counters, per-command
    /// latency histograms, and the `obs` metrics registry
    /// (non-deterministic: latencies).
    Metrics,
    /// Arm or disarm fault-injection points at runtime (chaos testing
    /// aid; rejected unless the server was built with `--features
    /// failpoints`).
    Failpoint {
        /// Failpoint spec, e.g. `server.handle=panic*1` or
        /// `solver.iter=off`.
        spec: String,
    },
    /// Hold the worker busy (testing aid for backpressure/deadlines).
    Sleep {
        /// How long to block the worker, in milliseconds (capped at
        /// 10 000 so a stray request cannot wedge the daemon).
        ms: u64,
    },
    /// Stop accepting, drain the queue, and exit.
    Shutdown,
}

impl Command {
    /// Stable command name (used for spans, metrics, and `stats`).
    pub fn name(&self) -> &'static str {
        match self {
            Command::Ping => "ping",
            Command::Load { .. } => "load",
            Command::Calibrate { .. } => "calibrate",
            Command::Slack { .. } => "slack",
            Command::Wns => "wns",
            Command::Tns => "tns",
            Command::PathQuery { .. } => "path",
            Command::WhatIfResize { .. } => "whatif_resize",
            Command::WhatIfBatch { .. } => "whatif_batch",
            Command::Commit { .. } => "commit",
            Command::Recalibrate { .. } => "recalibrate",
            Command::Snapshot { .. } => "snapshot",
            Command::Restore { .. } => "restore",
            Command::Stats => "stats",
            Command::Metrics => "metrics",
            Command::Failpoint { .. } => "failpoint",
            Command::Sleep { .. } => "sleep",
            Command::Shutdown => "shutdown",
        }
    }
}

fn usage(msg: impl Into<String>) -> MgbaError {
    MgbaError::Usage(msg.into())
}

fn opt_str(v: &Value, key: &str) -> Result<Option<String>, MgbaError> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Str(s)) => Ok(Some(s.clone())),
        Some(_) => Err(usage(format!("`{key}` must be a string"))),
    }
}

fn req_str(v: &Value, key: &str) -> Result<String, MgbaError> {
    opt_str(v, key)?.ok_or_else(|| usage(format!("missing required `{key}`")))
}

fn opt_f64(v: &Value, key: &str) -> Result<Option<f64>, MgbaError> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Num(n)) => Ok(Some(*n)),
        Some(_) => Err(usage(format!("`{key}` must be a number"))),
    }
}

fn opt_u64(v: &Value, key: &str) -> Result<Option<u64>, MgbaError> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(n @ Value::Num(_)) => n
            .as_u64()
            .map(Some)
            .ok_or_else(|| usage(format!("`{key}` must be a non-negative integer"))),
        Some(_) => Err(usage(format!("`{key}` must be a non-negative integer"))),
    }
}

fn opt_bool(v: &Value, key: &str) -> Result<bool, MgbaError> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(false),
        Some(Value::Bool(b)) => Ok(*b),
        Some(_) => Err(usage(format!("`{key}` must be a boolean"))),
    }
}

/// Parses one request line. On failure the request `id` is still
/// recovered when the line was an object with a numeric `id`, so the
/// error response can be correlated.
///
/// # Errors
///
/// Returns `(recovered id, MgbaError)` for malformed JSON, a missing or
/// unknown `cmd`, or bad argument types.
pub fn parse_request(line: &str) -> Result<Request, (Option<u64>, MgbaError)> {
    let v = json::parse(line).map_err(|e| (None, usage(format!("malformed request: {e}"))))?;
    let id = v.get("id").and_then(Value::as_u64);
    parse_request_value(&v, id).map_err(|e| (id, e))
}

fn parse_request_value(v: &Value, id: Option<u64>) -> Result<Request, MgbaError> {
    if !matches!(v, Value::Obj(_)) {
        return Err(usage("request must be a JSON object"));
    }
    let cmd_name = req_str(v, "cmd")?;
    let deadline_ms = opt_u64(v, "deadline_ms")?;
    let cmd = match cmd_name.as_str() {
        "ping" => Command::Ping,
        "load" => {
            let spec = opt_str(v, "design")?
                .or(opt_str(v, "file")?)
                .ok_or_else(|| usage("load needs `design` (spec) or `file` (netlist path)"))?;
            Command::Load {
                spec,
                period: opt_f64(v, "period")?,
            }
        }
        "calibrate" => Command::Calibrate {
            solver: opt_str(v, "solver")?,
        },
        "slack" => Command::Slack {
            endpoint: opt_str(v, "endpoint")?,
            top: opt_u64(v, "top")?.unwrap_or(10).min(10_000) as usize,
        },
        "wns" => Command::Wns,
        "tns" => Command::Tns,
        "path" => Command::PathQuery {
            endpoint: opt_str(v, "endpoint")?,
            pba: opt_bool(v, "pba")?,
        },
        "whatif_resize" => Command::WhatIfResize {
            cell: req_str(v, "cell")?,
            to: req_str(v, "to")?,
        },
        "commit" => Command::Commit {
            cell: req_str(v, "cell")?,
            to: req_str(v, "to")?,
            full: opt_bool(v, "full")?,
        },
        "recalibrate" => Command::Recalibrate {
            solver: opt_str(v, "solver")?,
            full: opt_bool(v, "full")?,
        },
        "whatif_batch" => {
            let items = match v.get("resizes") {
                Some(Value::Arr(items)) => items,
                Some(_) => return Err(usage("`resizes` must be an array")),
                None => return Err(usage("missing required `resizes`")),
            };
            if items.is_empty() {
                return Err(usage("`resizes` must not be empty"));
            }
            if items.len() > MAX_WHATIF_BATCH {
                return Err(usage(format!(
                    "`resizes` holds {} candidates (max {MAX_WHATIF_BATCH})",
                    items.len()
                )));
            }
            let mut resizes = Vec::with_capacity(items.len());
            for (i, item) in items.iter().enumerate() {
                if !matches!(item, Value::Obj(_)) {
                    return Err(usage(format!("`resizes[{i}]` must be an object")));
                }
                let cell = req_str(item, "cell")
                    .map_err(|_| usage(format!("`resizes[{i}]` needs a string `cell`")))?;
                let to = req_str(item, "to")
                    .map_err(|_| usage(format!("`resizes[{i}]` needs a string `to`")))?;
                resizes.push((cell, to));
            }
            Command::WhatIfBatch {
                resizes,
                pba: opt_bool(v, "pba")?,
            }
        }
        "snapshot" => Command::Snapshot {
            file: req_str(v, "file")?,
        },
        "restore" => Command::Restore {
            file: req_str(v, "file")?,
        },
        "stats" => Command::Stats,
        "metrics" => Command::Metrics,
        "failpoint" => Command::Failpoint {
            spec: req_str(v, "spec")?,
        },
        "sleep" => Command::Sleep {
            ms: opt_u64(v, "ms")?.unwrap_or(0).min(10_000),
        },
        "shutdown" => Command::Shutdown,
        other => return Err(usage(format!("unknown command `{other}`"))),
    };
    Ok(Request {
        id,
        cmd,
        deadline_ms,
    })
}

/// Maps an [`MgbaError`] variant onto its wire `kind`.
pub fn error_kind(e: &MgbaError) -> &'static str {
    match e {
        MgbaError::Parse(_) => "parse",
        MgbaError::Config { .. } => "config",
        MgbaError::Solver { .. } => "solver",
        MgbaError::Io { .. } => "io",
        MgbaError::Usage(_) => "usage",
        MgbaError::Timeout { .. } => "timeout",
        MgbaError::Internal(_) => "internal",
    }
}

fn id_field(w: &mut JsonWriter, id: Option<u64>) {
    w.key("id");
    match id {
        Some(i) => w.u64(i),
        None => w.null(),
    }
}

/// Renders a success envelope around a pre-rendered `result` object.
///
/// `degraded` adds `"degraded":true` — only when set, so healthy
/// response bytes are identical to builds that predate the field.
pub fn ok_envelope(id: Option<u64>, degraded: bool, result_json: &str) -> String {
    let mut w = JsonWriter::new();
    w.begin_obj();
    id_field(&mut w, id);
    w.key("ok");
    w.bool(true);
    if degraded {
        w.key("degraded");
        w.bool(true);
    }
    w.key("result");
    w.raw(result_json);
    w.end_obj();
    w.finish()
}

/// Renders an error envelope with an explicit kind.
pub fn error_envelope(id: Option<u64>, kind: &str, message: &str) -> String {
    let mut w = JsonWriter::new();
    w.begin_obj();
    id_field(&mut w, id);
    w.key("ok");
    w.bool(false);
    w.key("error");
    w.begin_obj();
    w.key("kind");
    w.str(kind);
    w.key("message");
    w.str(message);
    w.end_obj();
    w.end_obj();
    w.finish()
}

/// Renders the error envelope for an [`MgbaError`].
pub fn mgba_error_envelope(id: Option<u64>, e: &MgbaError) -> String {
    error_envelope(id, error_kind(e), &e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_command() {
        let cases: &[(&str, &str)] = &[
            (r#"{"cmd":"ping"}"#, "ping"),
            (r#"{"cmd":"load","design":"small:7","period":900}"#, "load"),
            (r#"{"cmd":"load","file":"d.nl"}"#, "load"),
            (r#"{"cmd":"calibrate","solver":"cgnr"}"#, "calibrate"),
            (r#"{"cmd":"slack","top":3}"#, "slack"),
            (r#"{"cmd":"wns"}"#, "wns"),
            (r#"{"cmd":"tns"}"#, "tns"),
            (r#"{"cmd":"path","pba":true}"#, "path"),
            (
                r#"{"cmd":"whatif_resize","cell":"g1","to":"up"}"#,
                "whatif_resize",
            ),
            (r#"{"cmd":"commit","cell":"g1","to":"down"}"#, "commit"),
            (
                r#"{"cmd":"commit","cell":"g1","to":"down","full":true}"#,
                "commit",
            ),
            (r#"{"cmd":"recalibrate"}"#, "recalibrate"),
            (
                r#"{"cmd":"recalibrate","solver":"cgnr","full":true}"#,
                "recalibrate",
            ),
            (
                r#"{"cmd":"whatif_batch","resizes":[{"cell":"g1","to":"up"},{"cell":"g2","to":"down"}],"pba":true}"#,
                "whatif_batch",
            ),
            (r#"{"cmd":"snapshot","file":"s.mgba"}"#, "snapshot"),
            (r#"{"cmd":"restore","file":"s.mgba"}"#, "restore"),
            (r#"{"cmd":"stats"}"#, "stats"),
            (r#"{"cmd":"metrics"}"#, "metrics"),
            (
                r#"{"cmd":"failpoint","spec":"server.handle=panic*1"}"#,
                "failpoint",
            ),
            (r#"{"cmd":"sleep","ms":5}"#, "sleep"),
            (r#"{"cmd":"shutdown"}"#, "shutdown"),
        ];
        for (line, name) in cases {
            let r = parse_request(line).unwrap();
            assert_eq!(r.cmd.name(), *name, "{line}");
        }
    }

    #[test]
    fn id_and_deadline_are_recovered() {
        let r = parse_request(r#"{"id":42,"cmd":"ping","deadline_ms":5}"#).unwrap();
        assert_eq!(r.id, Some(42));
        assert_eq!(r.deadline_ms, Some(5));

        // Unknown command: the id still comes back for correlation.
        let (id, e) = parse_request(r#"{"id":7,"cmd":"nope"}"#).unwrap_err();
        assert_eq!(id, Some(7));
        assert!(matches!(e, MgbaError::Usage(_)));
    }

    #[test]
    fn malformed_requests_are_usage_errors() {
        for bad in [
            "not json",
            "[1,2,3]",
            r#"{"cmd":5}"#,
            r#"{"cmd":"load"}"#,
            r#"{"cmd":"slack","top":-1}"#,
            r#"{"cmd":"whatif_resize","cell":"g1"}"#,
        ] {
            let (_, e) = parse_request(bad).unwrap_err();
            assert!(matches!(e, MgbaError::Usage(_)), "`{bad}`: {e}");
        }
    }

    #[test]
    fn envelopes_are_well_formed() {
        assert_eq!(
            ok_envelope(Some(1), false, r#"{"pong":true}"#),
            r#"{"id":1,"ok":true,"result":{"pong":true}}"#
        );
        // Degraded mode is an explicit extra field; healthy envelopes
        // must not carry it at all (byte-identity across runs).
        assert_eq!(
            ok_envelope(Some(1), true, r#"{"pong":true}"#),
            r#"{"id":1,"ok":true,"degraded":true,"result":{"pong":true}}"#
        );
        assert_eq!(
            error_envelope(None, "overload", "queue full"),
            r#"{"id":null,"ok":false,"error":{"kind":"overload","message":"queue full"}}"#
        );
        let e = MgbaError::Usage("bad".into());
        assert!(mgba_error_envelope(Some(2), &e).contains(r#""kind":"usage""#));
        let e = MgbaError::timeout("connect", 250);
        assert!(mgba_error_envelope(None, &e).contains(r#""kind":"timeout""#));
        let e = MgbaError::Internal("handler panicked".into());
        assert!(mgba_error_envelope(None, &e).contains(r#""kind":"internal""#));
    }

    #[test]
    fn whatif_batch_decodes_pairs_and_rejects_bad_shapes() {
        let r = parse_request(
            r#"{"cmd":"whatif_batch","resizes":[{"cell":"a","to":"up"},{"cell":"b","to":"INV_X4"}]}"#,
        )
        .unwrap();
        match r.cmd {
            Command::WhatIfBatch { resizes, pba } => {
                assert_eq!(
                    resizes,
                    vec![
                        ("a".to_owned(), "up".to_owned()),
                        ("b".to_owned(), "INV_X4".to_owned())
                    ]
                );
                assert!(!pba);
            }
            other => panic!("{other:?}"),
        }
        for bad in [
            r#"{"cmd":"whatif_batch"}"#,
            r#"{"cmd":"whatif_batch","resizes":"up"}"#,
            r#"{"cmd":"whatif_batch","resizes":[]}"#,
            r#"{"cmd":"whatif_batch","resizes":["g1"]}"#,
            r#"{"cmd":"whatif_batch","resizes":[{"cell":"g1"}]}"#,
            r#"{"cmd":"whatif_batch","resizes":[{"to":"up"}]}"#,
        ] {
            let (_, e) = parse_request(bad).unwrap_err();
            assert!(matches!(e, MgbaError::Usage(_)), "`{bad}`: {e}");
        }
        // Over-cap batches are rejected at parse time, before queueing.
        let many: Vec<String> = (0..=MAX_WHATIF_BATCH)
            .map(|i| format!(r#"{{"cell":"g{i}","to":"up"}}"#))
            .collect();
        let line = format!(r#"{{"cmd":"whatif_batch","resizes":[{}]}}"#, many.join(","));
        let (_, e) = parse_request(&line).unwrap_err();
        assert!(e.to_string().contains("max 256"), "{e}");
    }

    #[test]
    fn sleep_is_capped() {
        let r = parse_request(r#"{"cmd":"sleep","ms":999999}"#).unwrap();
        assert_eq!(r.cmd, Command::Sleep { ms: 10_000 });
    }
}
