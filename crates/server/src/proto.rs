//! Wire protocol: JSON-lines requests and responses, versions 1 and 2.
//!
//! One request per line, one response per line. Every request is an
//! object with a `cmd` string, an optional numeric `id` (echoed back),
//! and an optional `deadline_ms` admission deadline. Protocol v2
//! requests additionally carry `"proto":2` and an optional `"session"`
//! name (default `"default"`); v1 requests (no `proto` field) route to
//! the `"default"` session and their responses carry
//! `"deprecated":true`, while v2 responses echo `"session"`. The
//! `hello` command negotiates the protocol version and lists live
//! sessions. The full grammar lives in `DESIGN.md` §13.
//!
//! Responses are `{"id":…,"ok":true,…,"result":{…}}` on success and
//! `{"id":…,"ok":false,…,"error":{"kind":…,"code":…,"message":…}}` on
//! failure. `code` is the canonical v2 error enum; `kind` is its v1
//! alias and always holds the same value.
//!
//! Error codes for [`mgba::MgbaError`] variants are `"parse"`,
//! `"config"`, `"solver"`, `"io"`, `"usage"`, `"timeout"`, and
//! `"internal"` (a request handler panicked; the session was restored
//! from its last good state); the server layer adds `"overload"`
//! (bounded queue full), `"deadline"` (admission deadline expired while
//! queued), and `"shutdown"` (received while draining). The durability
//! layer (`serve --state-dir`, `DESIGN.md` §16) adds `"durability_lost"`
//! (the session's write-ahead log could not be appended or fsynced, so
//! the session is read-only until restart) and `"path_escape"`
//! (`snapshot`/`restore` named a path outside the state dir). Malformed
//! JSON, unknown commands, and bad `proto`/`session` fields surface as
//! `"usage"` — they are routed through [`MgbaError::Usage`] like any
//! bad CLI invocation.
//!
//! Success envelopes carry a `"degraded":true` field **only** while the
//! session is serving from a fault-recovered state without calibration
//! (raw-GBA answers, safe but pessimistic) or after its durability was
//! lost (read-only, in-memory answers ahead of the durable log); healthy
//! responses omit the key entirely so response bytes are unchanged from
//! pre-fault runs.

use crate::json::{self, Value};
use mgba::MgbaError;
use obs::json::JsonWriter;

/// Largest accepted `whatif_batch` candidate list. One request holds the
/// worker for the whole batch, so the cap bounds worst-case queue delay
/// the same way the `sleep` cap does.
pub const MAX_WHATIF_BATCH: usize = 256;

/// Lowest protocol version the server speaks (legacy sessionless).
pub const PROTO_MIN: u64 = 1;

/// Highest protocol version the server speaks (session addressing).
pub const PROTO_MAX: u64 = 2;

/// The session that v1 (sessionless) requests route to, and the v2
/// default when `session` is omitted.
pub const DEFAULT_SESSION: &str = "default";

/// Longest accepted session name.
pub const MAX_SESSION_NAME: usize = 64;

/// How a response envelope is addressed — decided at parse time, echoed
/// on every reply (success, error, or server-level reject) so clients
/// can route concurrently multiplexed responses.
#[derive(Debug, Clone, PartialEq)]
pub struct EnvMeta {
    /// Client-chosen correlation id, echoed back (or `null`).
    pub id: Option<u64>,
    /// Negotiated addressing: 1 stamps `"deprecated":true`, 2 echoes
    /// `"session"`, 0 means the line was too malformed to tell (neither
    /// key is emitted).
    pub proto: u64,
    /// Target session, when addressing is known.
    pub session: Option<String>,
    /// Deterministic admission-order request id, assigned per session
    /// when the request is admitted (write lane or read path). Echoed
    /// as `"request_id"` on v2 envelopes only — the v1 envelope shape
    /// is frozen. `None` for requests that were never admitted
    /// (malformed lines, overload rejections, admission-answered
    /// commands like `hello`).
    pub request_id: Option<u64>,
}

impl EnvMeta {
    /// Addressing for a line too malformed to classify.
    pub fn unknown(id: Option<u64>) -> Self {
        Self {
            id,
            proto: 0,
            session: None,
            request_id: None,
        }
    }

    /// v1 (sessionless, deprecated) addressing.
    pub fn v1(id: Option<u64>) -> Self {
        Self {
            id,
            proto: 1,
            session: Some(DEFAULT_SESSION.to_owned()),
            request_id: None,
        }
    }

    /// v2 addressing for `session`.
    pub fn v2(id: Option<u64>, session: impl Into<String>) -> Self {
        Self {
            id,
            proto: 2,
            session: Some(session.into()),
            request_id: None,
        }
    }

    /// The same addressing with `request_id` stamped in (builder-style,
    /// used at admission and by tests constructing expected envelopes).
    #[must_use]
    pub fn with_request_id(mut self, request_id: u64) -> Self {
        self.request_id = Some(request_id);
        self
    }
}

/// One admission-controlled request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed into the response.
    pub id: Option<u64>,
    /// Protocol version the client spoke (1 or 2 after parsing).
    pub proto: u64,
    /// Target session name (always resolved; `"default"` for v1).
    pub session: String,
    /// The decoded command.
    pub cmd: Command,
    /// Admission deadline: if the request waits in the queue longer
    /// than this, it is rejected without execution.
    pub deadline_ms: Option<u64>,
}

impl Request {
    /// Envelope addressing for this request's responses.
    pub fn meta(&self) -> EnvMeta {
        EnvMeta {
            id: self.id,
            proto: self.proto,
            session: Some(self.session.clone()),
            request_id: None,
        }
    }
}

/// Checks a client-chosen session name: 1–[`MAX_SESSION_NAME`] chars
/// from `[A-Za-z0-9._-]`.
///
/// # Errors
///
/// Returns [`MgbaError::Usage`] describing the violation.
pub fn validate_session_name(name: &str) -> Result<(), MgbaError> {
    if name.is_empty() {
        return Err(usage("`session` must not be empty"));
    }
    if name.len() > MAX_SESSION_NAME {
        return Err(usage(format!(
            "`session` is {} chars (max {MAX_SESSION_NAME})",
            name.len()
        )));
    }
    if let Some(c) = name
        .chars()
        .find(|c| !(c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-')))
    {
        return Err(usage(format!(
            "`session` contains `{c}` (allowed: letters, digits, `.`, `_`, `-`)"
        )));
    }
    Ok(())
}

/// Every operation the daemon serves.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Protocol negotiation: reports the server's supported version
    /// range, the version granted to this client (min of the client's
    /// `max_proto` and [`PROTO_MAX`]), and the live session names.
    /// Answered inline at admission — it never queues behind a lane.
    Hello {
        /// Highest protocol version the client speaks (default
        /// [`PROTO_MAX`]).
        max_proto: Option<u64>,
    },
    /// Liveness probe.
    Ping,
    /// Liveness/readiness probe for load balancers: the protocol
    /// window, whether durability (`--state-dir`) is on, and the
    /// session's durability facts (`recovered`, `wal_records`,
    /// `last_checkpoint_seq`, `degraded`). Deliberately carries **no
    /// timing fields** (no uptime) so responses are byte-identical
    /// across threads, read modes, and repeated runs — it is pinned in
    /// the byte-identity matrix. Read-only and served without a loaded
    /// design.
    Health,
    /// Load a design (generator spec or netlist file) and build the
    /// timing engine. `period` defaults to the auto-derived tight clock.
    Load {
        /// Generator spec (`D3`, `small:7`) or netlist file path.
        spec: String,
        /// Clock period in ps; auto-derived when absent.
        period: Option<f64>,
    },
    /// Run the mGBA fit and fold the weights back into the engine.
    Calibrate {
        /// Solver name (`gd|scg|scgrs|cgnr`), default `scgrs`.
        solver: Option<String>,
    },
    /// Setup slack of one endpoint, or the worst `top` endpoints.
    Slack {
        /// Endpoint cell name; worst endpoints when absent.
        endpoint: Option<String>,
        /// How many worst endpoints to report (default 10).
        top: usize,
    },
    /// Worst negative slack over all endpoints.
    Wns,
    /// Total negative slack over all endpoints.
    Tns,
    /// Worst path to an endpoint (the worst endpoint when absent),
    /// optionally re-timed with golden PBA.
    PathQuery {
        /// Endpoint cell name; the worst endpoint when absent.
        endpoint: Option<String>,
        /// Also report the path's golden PBA slack.
        pba: bool,
    },
    /// Trial-resize a gate, report the timing delta, and roll back —
    /// the incremental-update what-if of the paper's §4 sizing loop.
    WhatIfResize {
        /// Cell instance name.
        cell: String,
        /// `up`, `down`, or an explicit library cell name.
        to: String,
    },
    /// Apply a resize permanently (same arguments as `whatif_resize`).
    /// On a calibrated session the commit triggers an incremental
    /// recalibration: dirty fit-matrix rows are patched and the solver
    /// warm-starts from the previous `x*`.
    Commit {
        /// Cell instance name.
        cell: String,
        /// `up`, `down`, or an explicit library cell name.
        to: String,
        /// Escape hatch: force a full cold recalibration (re-select
        /// paths, rebuild the fit matrix, solve from zero) instead of
        /// the warm incremental refit.
        full: bool,
    },
    /// Re-run calibration on the current design: warm and incremental
    /// when the session holds a calibration cache, cold otherwise (or
    /// when `full` is set).
    Recalibrate {
        /// Solver name (`gd|scg|scgrs|cgnr`); defaults to the solver of
        /// the previous calibration.
        solver: Option<String>,
        /// Force a full cold recalibration.
        full: bool,
    },
    /// Evaluate up to [`MAX_WHATIF_BATCH`] candidate resizes in one
    /// request: each candidate is trial-applied, measured (engine
    /// WNS/TNS plus batch-retimed slacks over the calibrated path set),
    /// and rolled back. One round trip instead of N.
    WhatIfBatch {
        /// Candidates as `(cell instance name, target)` pairs, where the
        /// target is `up`, `down`, or an explicit library cell name.
        resizes: Vec<(String, String)>,
        /// Also report each candidate's golden-PBA worst slack over the
        /// calibrated path set (slower: N PBA batch retimes).
        pba: bool,
    },
    /// Serialize the session (design spec, period, fitted weights) for
    /// warm restart.
    Snapshot {
        /// Destination file path.
        file: String,
    },
    /// Rebuild the session from a snapshot file.
    Restore {
        /// Snapshot file path.
        file: String,
    },
    /// Collected-issues lint of the loaded design: every structural
    /// defect (undriven/multiply-driven nets, dangling ports,
    /// combinational cycles, non-finite attributes, …) in one report.
    /// Read-only: served from the published snapshot, byte-identical
    /// across `--threads` and `--read-workers` settings.
    Lint,
    /// The session's slow-query ring: write-lane commands whose
    /// execution met the server's `--slow-ms` threshold, oldest first,
    /// identified by `request_id` and command name (no timing fields,
    /// so responses stay byte-identical across thread/read-worker
    /// settings). Read-only: served from the published snapshot.
    Slowlog,
    /// The session's calibration-drift history ring: one record per
    /// calibrate/recalibrate (fit-accuracy stats, WNS/TNS, weight
    /// sparsity, fallback stage, commits since the previous fit),
    /// oldest first. Read-only: served from the published snapshot.
    History,
    /// Evict one named session: its writer lane drains and exits, its
    /// engine memory is released, and the name becomes free for a fresh
    /// session. Answered at admission (like `hello`).
    CloseSession,
    /// Server and engine statistics (non-deterministic: latencies).
    Stats,
    /// Prometheus text exposition of server counters, per-command
    /// latency histograms, and the `obs` metrics registry
    /// (non-deterministic: latencies).
    Metrics,
    /// Arm or disarm fault-injection points at runtime (chaos testing
    /// aid; rejected unless the server was built with `--features
    /// failpoints`).
    Failpoint {
        /// Failpoint spec, e.g. `server.handle=panic*1` or
        /// `solver.iter=off`.
        spec: String,
    },
    /// Hold the worker busy (testing aid for backpressure/deadlines).
    Sleep {
        /// How long to block the worker, in milliseconds (capped at
        /// 10 000 so a stray request cannot wedge the daemon).
        ms: u64,
    },
    /// Stop accepting, drain the queue, and exit.
    Shutdown,
}

impl Command {
    /// Stable command name (used for spans, metrics, and `stats`).
    pub fn name(&self) -> &'static str {
        match self {
            Command::Hello { .. } => "hello",
            Command::Ping => "ping",
            Command::Health => "health",
            Command::Load { .. } => "load",
            Command::Calibrate { .. } => "calibrate",
            Command::Slack { .. } => "slack",
            Command::Wns => "wns",
            Command::Tns => "tns",
            Command::PathQuery { .. } => "path",
            Command::WhatIfResize { .. } => "whatif_resize",
            Command::WhatIfBatch { .. } => "whatif_batch",
            Command::Commit { .. } => "commit",
            Command::Recalibrate { .. } => "recalibrate",
            Command::Snapshot { .. } => "snapshot",
            Command::Restore { .. } => "restore",
            Command::Lint => "lint",
            Command::Slowlog => "slowlog",
            Command::History => "history",
            Command::CloseSession => "close_session",
            Command::Stats => "stats",
            Command::Metrics => "metrics",
            Command::Failpoint { .. } => "failpoint",
            Command::Sleep { .. } => "sleep",
            Command::Shutdown => "shutdown",
        }
    }

    /// True for commands that only read the published snapshot (never
    /// mutate session state) and are eligible for the lock-free read
    /// pool when one is configured. Everything else funnels through the
    /// session's writer lane.
    pub fn is_read(&self) -> bool {
        matches!(
            self,
            Command::Ping
                | Command::Health
                | Command::Slack { .. }
                | Command::Wns
                | Command::Tns
                | Command::PathQuery { .. }
                | Command::Lint
                | Command::Slowlog
                | Command::History
        )
    }
}

fn usage(msg: impl Into<String>) -> MgbaError {
    MgbaError::Usage(msg.into())
}

fn opt_str(v: &Value, key: &str) -> Result<Option<String>, MgbaError> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Str(s)) => Ok(Some(s.clone())),
        Some(_) => Err(usage(format!("`{key}` must be a string"))),
    }
}

fn req_str(v: &Value, key: &str) -> Result<String, MgbaError> {
    opt_str(v, key)?.ok_or_else(|| usage(format!("missing required `{key}`")))
}

fn opt_f64(v: &Value, key: &str) -> Result<Option<f64>, MgbaError> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Num(n)) => Ok(Some(*n)),
        Some(_) => Err(usage(format!("`{key}` must be a number"))),
    }
}

fn opt_u64(v: &Value, key: &str) -> Result<Option<u64>, MgbaError> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(n @ Value::Num(_)) => n
            .as_u64()
            .map(Some)
            .ok_or_else(|| usage(format!("`{key}` must be a non-negative integer"))),
        Some(_) => Err(usage(format!("`{key}` must be a non-negative integer"))),
    }
}

fn opt_bool(v: &Value, key: &str) -> Result<bool, MgbaError> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(false),
        Some(Value::Bool(b)) => Ok(*b),
        Some(_) => Err(usage(format!("`{key}` must be a boolean"))),
    }
}

/// Parses one request line, including the v2 addressing fields. On
/// failure as much addressing as was recoverable (id, proto, session)
/// comes back in the [`EnvMeta`] so the error response can still be
/// correlated and routed.
///
/// # Errors
///
/// Returns `(recovered addressing, MgbaError)` for malformed JSON, bad
/// `proto`/`session` fields, a missing or unknown `cmd`, or bad
/// argument types.
pub fn parse_request(line: &str) -> Result<Request, (EnvMeta, MgbaError)> {
    let v = json::parse(line).map_err(|e| {
        (
            EnvMeta::unknown(None),
            usage(format!("malformed request: {e}")),
        )
    })?;
    let id = v.get("id").and_then(Value::as_u64);
    if !matches!(v, Value::Obj(_)) {
        return Err((EnvMeta::unknown(id), usage("request must be a JSON object")));
    }
    // Addressing first: proto (absent ⇒ 1), then session (v2 only).
    let proto = match opt_u64(&v, "proto") {
        Ok(p) => p.unwrap_or(PROTO_MIN),
        Err(e) => return Err((EnvMeta::unknown(id), e)),
    };
    if !(PROTO_MIN..=PROTO_MAX).contains(&proto) {
        return Err((
            EnvMeta::unknown(id),
            usage(format!(
                "unsupported `proto` {proto} (server speaks {PROTO_MIN}..={PROTO_MAX})"
            )),
        ));
    }
    let session = match opt_str(&v, "session") {
        Ok(s) => s,
        Err(e) => return Err((EnvMeta::unknown(id), e)),
    };
    let session = match (proto, session) {
        (1, Some(_)) => {
            return Err((
                EnvMeta::v1(id),
                usage("`session` requires `\"proto\":2` (v1 requests are sessionless)"),
            ))
        }
        (_, Some(name)) => {
            if let Err(e) = validate_session_name(&name) {
                return Err((EnvMeta::unknown(id), e));
            }
            name
        }
        (_, None) => DEFAULT_SESSION.to_owned(),
    };
    let meta = EnvMeta {
        id,
        proto,
        session: Some(session.clone()),
        request_id: None,
    };
    parse_request_value(&v, id, proto, session).map_err(|e| (meta, e))
}

fn parse_request_value(
    v: &Value,
    id: Option<u64>,
    proto: u64,
    session: String,
) -> Result<Request, MgbaError> {
    let cmd_name = req_str(v, "cmd")?;
    let deadline_ms = opt_u64(v, "deadline_ms")?;
    let cmd = match cmd_name.as_str() {
        "hello" => Command::Hello {
            max_proto: opt_u64(v, "max_proto")?,
        },
        "ping" => Command::Ping,
        "health" => Command::Health,
        "load" => {
            let spec = opt_str(v, "design")?
                .or(opt_str(v, "file")?)
                .ok_or_else(|| usage("load needs `design` (spec) or `file` (netlist path)"))?;
            Command::Load {
                spec,
                period: opt_f64(v, "period")?,
            }
        }
        "calibrate" => Command::Calibrate {
            solver: opt_str(v, "solver")?,
        },
        "slack" => Command::Slack {
            endpoint: opt_str(v, "endpoint")?,
            top: opt_u64(v, "top")?.unwrap_or(10).min(10_000) as usize,
        },
        "wns" => Command::Wns,
        "tns" => Command::Tns,
        "path" => Command::PathQuery {
            endpoint: opt_str(v, "endpoint")?,
            pba: opt_bool(v, "pba")?,
        },
        "whatif_resize" => Command::WhatIfResize {
            cell: req_str(v, "cell")?,
            to: req_str(v, "to")?,
        },
        "commit" => Command::Commit {
            cell: req_str(v, "cell")?,
            to: req_str(v, "to")?,
            full: opt_bool(v, "full")?,
        },
        "recalibrate" => Command::Recalibrate {
            solver: opt_str(v, "solver")?,
            full: opt_bool(v, "full")?,
        },
        "whatif_batch" => {
            let items = match v.get("resizes") {
                Some(Value::Arr(items)) => items,
                Some(_) => return Err(usage("`resizes` must be an array")),
                None => return Err(usage("missing required `resizes`")),
            };
            if items.is_empty() {
                return Err(usage("`resizes` must not be empty"));
            }
            if items.len() > MAX_WHATIF_BATCH {
                return Err(usage(format!(
                    "`resizes` holds {} candidates (max {MAX_WHATIF_BATCH})",
                    items.len()
                )));
            }
            let mut resizes = Vec::with_capacity(items.len());
            for (i, item) in items.iter().enumerate() {
                if !matches!(item, Value::Obj(_)) {
                    return Err(usage(format!("`resizes[{i}]` must be an object")));
                }
                let cell = req_str(item, "cell")
                    .map_err(|_| usage(format!("`resizes[{i}]` needs a string `cell`")))?;
                let to = req_str(item, "to")
                    .map_err(|_| usage(format!("`resizes[{i}]` needs a string `to`")))?;
                resizes.push((cell, to));
            }
            Command::WhatIfBatch {
                resizes,
                pba: opt_bool(v, "pba")?,
            }
        }
        "snapshot" => Command::Snapshot {
            file: req_str(v, "file")?,
        },
        "restore" => Command::Restore {
            file: req_str(v, "file")?,
        },
        "lint" => Command::Lint,
        "slowlog" => Command::Slowlog,
        "history" => Command::History,
        "close_session" => Command::CloseSession,
        "stats" => Command::Stats,
        "metrics" => Command::Metrics,
        "failpoint" => Command::Failpoint {
            spec: req_str(v, "spec")?,
        },
        "sleep" => Command::Sleep {
            ms: opt_u64(v, "ms")?.unwrap_or(0).min(10_000),
        },
        "shutdown" => Command::Shutdown,
        other => return Err(usage(format!("unknown command `{other}`"))),
    };
    Ok(Request {
        id,
        proto,
        session,
        cmd,
        deadline_ms,
    })
}

/// Maps an [`MgbaError`] variant onto its wire `kind`.
pub fn error_kind(e: &MgbaError) -> &'static str {
    match e {
        MgbaError::Parse(_) => "parse",
        MgbaError::Config { .. } => "config",
        MgbaError::Solver { .. } => "solver",
        MgbaError::Io { .. } => "io",
        MgbaError::Usage(_) => "usage",
        MgbaError::Lint { .. } => "lint",
        MgbaError::Timeout { .. } => "timeout",
        MgbaError::Internal(_) => "internal",
    }
}

fn id_field(w: &mut JsonWriter, id: Option<u64>) {
    w.key("id");
    match id {
        Some(i) => w.u64(i),
        None => w.null(),
    }
}

/// Emits `"request_id"` after the addressing keys — v2 envelopes only
/// (the v1 shape is frozen), and only when admission assigned one.
fn request_id_field(w: &mut JsonWriter, meta: &EnvMeta) {
    if meta.proto == 2 {
        if let Some(rid) = meta.request_id {
            w.key("request_id");
            w.u64(rid);
        }
    }
}

/// Emits the addressing keys that follow `ok`: `"deprecated":true` for
/// v1, `"session":…` for v2, neither when addressing is unknown.
fn addressing_fields(w: &mut JsonWriter, meta: &EnvMeta) {
    match meta.proto {
        1 => {
            w.key("deprecated");
            w.bool(true);
        }
        2 => {
            w.key("session");
            w.str(meta.session.as_deref().unwrap_or(DEFAULT_SESSION));
        }
        _ => {}
    }
}

/// Renders a success envelope around a pre-rendered `result` object.
///
/// `degraded` adds `"degraded":true` — only when set, so healthy
/// response bytes are identical to builds that predate the field.
pub fn ok_envelope(meta: &EnvMeta, degraded: bool, result_json: &str) -> String {
    let mut w = JsonWriter::new();
    w.begin_obj();
    id_field(&mut w, meta.id);
    w.key("ok");
    w.bool(true);
    addressing_fields(&mut w, meta);
    request_id_field(&mut w, meta);
    if degraded {
        w.key("degraded");
        w.bool(true);
    }
    w.key("result");
    w.raw(result_json);
    w.end_obj();
    w.finish()
}

/// Renders an error envelope with an explicit code. `kind` (the v1
/// name) and `code` (the v2 name) always carry the same value.
pub fn error_envelope(meta: &EnvMeta, code: &str, message: &str) -> String {
    let mut w = JsonWriter::new();
    w.begin_obj();
    id_field(&mut w, meta.id);
    w.key("ok");
    w.bool(false);
    addressing_fields(&mut w, meta);
    request_id_field(&mut w, meta);
    w.key("error");
    w.begin_obj();
    w.key("kind");
    w.str(code);
    w.key("code");
    w.str(code);
    w.key("message");
    w.str(message);
    w.end_obj();
    w.end_obj();
    w.finish()
}

/// Renders the error envelope for an [`MgbaError`].
pub fn mgba_error_envelope(meta: &EnvMeta, e: &MgbaError) -> String {
    error_envelope(meta, error_kind(e), &e.to_string())
}

/// Serializes one request line — the inverse of [`parse_request`], used
/// by the typed client (`crate::client`) and the bench harness so no
/// caller hand-assembles JSON. `proto` 1 emits a legacy sessionless
/// line; `proto` 2 emits `"proto":2` plus `"session"` when given.
pub fn render_request(
    id: Option<u64>,
    proto: u64,
    session: Option<&str>,
    cmd: &Command,
    deadline_ms: Option<u64>,
) -> String {
    let mut w = JsonWriter::new();
    w.begin_obj();
    if let Some(i) = id {
        w.key("id");
        w.u64(i);
    }
    if proto >= 2 {
        w.key("proto");
        w.u64(proto);
        if let Some(s) = session {
            w.key("session");
            w.str(s);
        }
    }
    w.key("cmd");
    w.str(cmd.name());
    if let Some(d) = deadline_ms {
        w.key("deadline_ms");
        w.u64(d);
    }
    match cmd {
        Command::Hello { max_proto } => {
            if let Some(p) = max_proto {
                w.key("max_proto");
                w.u64(*p);
            }
        }
        Command::Ping
        | Command::Health
        | Command::Wns
        | Command::Tns
        | Command::Lint
        | Command::Slowlog
        | Command::History
        | Command::CloseSession
        | Command::Stats
        | Command::Metrics
        | Command::Shutdown => {}
        Command::Load { spec, period } => {
            w.key("design");
            w.str(spec);
            if let Some(p) = period {
                w.key("period");
                w.f64(*p);
            }
        }
        Command::Calibrate { solver } => {
            if let Some(s) = solver {
                w.key("solver");
                w.str(s);
            }
        }
        Command::Slack { endpoint, top } => {
            if let Some(e) = endpoint {
                w.key("endpoint");
                w.str(e);
            }
            w.key("top");
            w.u64(*top as u64);
        }
        Command::PathQuery { endpoint, pba } => {
            if let Some(e) = endpoint {
                w.key("endpoint");
                w.str(e);
            }
            if *pba {
                w.key("pba");
                w.bool(true);
            }
        }
        Command::WhatIfResize { cell, to } => {
            w.key("cell");
            w.str(cell);
            w.key("to");
            w.str(to);
        }
        Command::Commit { cell, to, full } => {
            w.key("cell");
            w.str(cell);
            w.key("to");
            w.str(to);
            if *full {
                w.key("full");
                w.bool(true);
            }
        }
        Command::Recalibrate { solver, full } => {
            if let Some(s) = solver {
                w.key("solver");
                w.str(s);
            }
            if *full {
                w.key("full");
                w.bool(true);
            }
        }
        Command::WhatIfBatch { resizes, pba } => {
            w.key("resizes");
            w.begin_arr();
            for (cell, to) in resizes {
                w.begin_obj();
                w.key("cell");
                w.str(cell);
                w.key("to");
                w.str(to);
                w.end_obj();
            }
            w.end_arr();
            if *pba {
                w.key("pba");
                w.bool(true);
            }
        }
        Command::Snapshot { file } | Command::Restore { file } => {
            w.key("file");
            w.str(file);
        }
        Command::Failpoint { spec } => {
            w.key("spec");
            w.str(spec);
        }
        Command::Sleep { ms } => {
            w.key("ms");
            w.u64(*ms);
        }
    }
    w.end_obj();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_command() {
        let cases: &[(&str, &str)] = &[
            (r#"{"cmd":"hello"}"#, "hello"),
            (r#"{"cmd":"hello","max_proto":2}"#, "hello"),
            (r#"{"cmd":"ping"}"#, "ping"),
            (r#"{"cmd":"health"}"#, "health"),
            (r#"{"cmd":"load","design":"small:7","period":900}"#, "load"),
            (r#"{"cmd":"load","file":"d.nl"}"#, "load"),
            (r#"{"cmd":"calibrate","solver":"cgnr"}"#, "calibrate"),
            (r#"{"cmd":"slack","top":3}"#, "slack"),
            (r#"{"cmd":"wns"}"#, "wns"),
            (r#"{"cmd":"tns"}"#, "tns"),
            (r#"{"cmd":"path","pba":true}"#, "path"),
            (
                r#"{"cmd":"whatif_resize","cell":"g1","to":"up"}"#,
                "whatif_resize",
            ),
            (r#"{"cmd":"commit","cell":"g1","to":"down"}"#, "commit"),
            (
                r#"{"cmd":"commit","cell":"g1","to":"down","full":true}"#,
                "commit",
            ),
            (r#"{"cmd":"recalibrate"}"#, "recalibrate"),
            (
                r#"{"cmd":"recalibrate","solver":"cgnr","full":true}"#,
                "recalibrate",
            ),
            (
                r#"{"cmd":"whatif_batch","resizes":[{"cell":"g1","to":"up"},{"cell":"g2","to":"down"}],"pba":true}"#,
                "whatif_batch",
            ),
            (r#"{"cmd":"snapshot","file":"s.mgba"}"#, "snapshot"),
            (r#"{"cmd":"restore","file":"s.mgba"}"#, "restore"),
            (r#"{"cmd":"lint"}"#, "lint"),
            (r#"{"cmd":"slowlog"}"#, "slowlog"),
            (r#"{"cmd":"history"}"#, "history"),
            (r#"{"cmd":"close_session"}"#, "close_session"),
            (r#"{"cmd":"stats"}"#, "stats"),
            (r#"{"cmd":"metrics"}"#, "metrics"),
            (
                r#"{"cmd":"failpoint","spec":"server.handle=panic*1"}"#,
                "failpoint",
            ),
            (r#"{"cmd":"sleep","ms":5}"#, "sleep"),
            (r#"{"cmd":"shutdown"}"#, "shutdown"),
        ];
        for (line, name) in cases {
            let r = parse_request(line).unwrap();
            assert_eq!(r.cmd.name(), *name, "{line}");
        }
    }

    #[test]
    fn id_and_deadline_are_recovered() {
        let r = parse_request(r#"{"id":42,"cmd":"ping","deadline_ms":5}"#).unwrap();
        assert_eq!(r.id, Some(42));
        assert_eq!(r.deadline_ms, Some(5));
        assert_eq!(r.proto, 1);
        assert_eq!(r.session, DEFAULT_SESSION);

        // Unknown command: the addressing still comes back for
        // correlation and routing.
        let (meta, e) = parse_request(r#"{"id":7,"cmd":"nope"}"#).unwrap_err();
        assert_eq!(meta.id, Some(7));
        assert_eq!(meta.proto, 1);
        assert!(matches!(e, MgbaError::Usage(_)));
    }

    #[test]
    fn proto_and_session_addressing() {
        // v2 with an explicit session.
        let r = parse_request(r#"{"id":1,"proto":2,"session":"opt-a","cmd":"wns"}"#).unwrap();
        assert_eq!(r.proto, 2);
        assert_eq!(r.session, "opt-a");
        assert_eq!(r.meta(), EnvMeta::v2(Some(1), "opt-a"));
        // v2 without a session defaults to "default".
        let r = parse_request(r#"{"proto":2,"cmd":"ping"}"#).unwrap();
        assert_eq!(r.session, DEFAULT_SESSION);
        // v1 must not name a session.
        let (meta, e) = parse_request(r#"{"id":3,"session":"a","cmd":"ping"}"#).unwrap_err();
        assert_eq!(meta, EnvMeta::v1(Some(3)));
        assert!(e.to_string().contains("proto"), "{e}");
        // Unsupported version.
        let (meta, e) = parse_request(r#"{"proto":3,"cmd":"ping"}"#).unwrap_err();
        assert_eq!(meta.proto, 0);
        assert!(e.to_string().contains("unsupported"), "{e}");
        // Bad session names.
        for bad in [
            r#"{"proto":2,"session":"","cmd":"ping"}"#,
            r#"{"proto":2,"session":"a b","cmd":"ping"}"#,
            r#"{"proto":2,"session":"a/b","cmd":"ping"}"#,
        ] {
            let (_, e) = parse_request(bad).unwrap_err();
            assert!(matches!(e, MgbaError::Usage(_)), "`{bad}`: {e}");
        }
        let long = "x".repeat(MAX_SESSION_NAME + 1);
        let (_, e) = parse_request(&format!(r#"{{"proto":2,"session":"{long}","cmd":"ping"}}"#))
            .unwrap_err();
        assert!(e.to_string().contains("max 64"), "{e}");
        assert!(validate_session_name(&"y".repeat(MAX_SESSION_NAME)).is_ok());
    }

    #[test]
    fn render_request_round_trips() {
        let cases: Vec<(Option<u64>, u64, Option<&str>, Command)> = vec![
            (Some(1), 2, Some("opt-a"), Command::Ping),
            (None, 1, None, Command::Wns),
            (Some(9), 2, Some("opt-a"), Command::Lint),
            (Some(10), 2, Some("opt-a"), Command::CloseSession),
            (Some(11), 2, Some("opt-a"), Command::Slowlog),
            (Some(12), 2, Some("opt-a"), Command::History),
            (Some(2), 2, None, Command::Hello { max_proto: Some(2) }),
            (
                Some(3),
                2,
                Some("s1"),
                Command::Load {
                    spec: "small:7".into(),
                    period: Some(900.0),
                },
            ),
            (
                Some(4),
                2,
                Some("s1"),
                Command::Slack {
                    endpoint: None,
                    top: 10,
                },
            ),
            (
                Some(5),
                2,
                Some("s1"),
                Command::WhatIfBatch {
                    resizes: vec![("g1".into(), "up".into()), ("g2".into(), "down".into())],
                    pba: true,
                },
            ),
            (
                Some(6),
                1,
                None,
                Command::Commit {
                    cell: "g1".into(),
                    to: "up".into(),
                    full: true,
                },
            ),
        ];
        for (id, proto, session, cmd) in cases {
            let line = render_request(id, proto, session, &cmd, Some(250));
            let r = parse_request(&line).unwrap_or_else(|(_, e)| panic!("{line}: {e}"));
            assert_eq!(r.id, id, "{line}");
            assert_eq!(r.proto, proto, "{line}");
            assert_eq!(r.cmd, cmd, "{line}");
            assert_eq!(r.deadline_ms, Some(250), "{line}");
            if let Some(s) = session {
                assert_eq!(r.session, s, "{line}");
            }
        }
    }

    #[test]
    fn malformed_requests_are_usage_errors() {
        for bad in [
            "not json",
            "[1,2,3]",
            r#"{"cmd":5}"#,
            r#"{"cmd":"load"}"#,
            r#"{"cmd":"slack","top":-1}"#,
            r#"{"cmd":"whatif_resize","cell":"g1"}"#,
        ] {
            let (_, e) = parse_request(bad).unwrap_err();
            assert!(matches!(e, MgbaError::Usage(_)), "`{bad}`: {e}");
        }
    }

    #[test]
    fn envelopes_are_well_formed() {
        // v1 envelopes flag deprecation on every reply.
        assert_eq!(
            ok_envelope(&EnvMeta::v1(Some(1)), false, r#"{"pong":true}"#),
            r#"{"id":1,"ok":true,"deprecated":true,"result":{"pong":true}}"#
        );
        // Degraded mode is an explicit extra field; healthy envelopes
        // must not carry it at all (byte-identity across runs).
        assert_eq!(
            ok_envelope(&EnvMeta::v1(Some(1)), true, r#"{"pong":true}"#),
            r#"{"id":1,"ok":true,"deprecated":true,"degraded":true,"result":{"pong":true}}"#
        );
        // v2 envelopes echo the session instead.
        assert_eq!(
            ok_envelope(&EnvMeta::v2(Some(1), "opt-a"), false, r#"{"pong":true}"#),
            r#"{"id":1,"ok":true,"session":"opt-a","result":{"pong":true}}"#
        );
        // Admitted v2 requests also echo their admission-order id.
        assert_eq!(
            ok_envelope(
                &EnvMeta::v2(Some(1), "opt-a").with_request_id(7),
                false,
                r#"{"pong":true}"#
            ),
            r#"{"id":1,"ok":true,"session":"opt-a","request_id":7,"result":{"pong":true}}"#
        );
        // The v1 envelope shape is frozen: a request id assigned at
        // admission is never emitted on a deprecated envelope.
        assert_eq!(
            ok_envelope(
                &EnvMeta::v1(Some(1)).with_request_id(7),
                false,
                r#"{"pong":true}"#
            ),
            r#"{"id":1,"ok":true,"deprecated":true,"result":{"pong":true}}"#
        );
        // Errors carry both the legacy `kind` and the canonical `code`.
        assert_eq!(
            error_envelope(&EnvMeta::unknown(None), "overload", "queue full"),
            r#"{"id":null,"ok":false,"error":{"kind":"overload","code":"overload","message":"queue full"}}"#
        );
        assert_eq!(
            error_envelope(&EnvMeta::v2(Some(9), "s"), "deadline", "expired"),
            r#"{"id":9,"ok":false,"session":"s","error":{"kind":"deadline","code":"deadline","message":"expired"}}"#
        );
        assert_eq!(
            error_envelope(
                &EnvMeta::v2(Some(9), "s").with_request_id(3),
                "deadline",
                "expired"
            ),
            r#"{"id":9,"ok":false,"session":"s","request_id":3,"error":{"kind":"deadline","code":"deadline","message":"expired"}}"#
        );
        let e = MgbaError::Usage("bad".into());
        let env = mgba_error_envelope(&EnvMeta::v1(Some(2)), &e);
        assert!(env.contains(r#""kind":"usage""#), "{env}");
        assert!(env.contains(r#""code":"usage""#), "{env}");
        assert!(env.contains(r#""deprecated":true"#), "{env}");
        let e = MgbaError::timeout("connect", 250);
        assert!(mgba_error_envelope(&EnvMeta::unknown(None), &e).contains(r#""code":"timeout""#));
        let e = MgbaError::Internal("handler panicked".into());
        assert!(mgba_error_envelope(&EnvMeta::unknown(None), &e).contains(r#""code":"internal""#));
    }

    #[test]
    fn whatif_batch_decodes_pairs_and_rejects_bad_shapes() {
        let r = parse_request(
            r#"{"cmd":"whatif_batch","resizes":[{"cell":"a","to":"up"},{"cell":"b","to":"INV_X4"}]}"#,
        )
        .unwrap();
        match r.cmd {
            Command::WhatIfBatch { resizes, pba } => {
                assert_eq!(
                    resizes,
                    vec![
                        ("a".to_owned(), "up".to_owned()),
                        ("b".to_owned(), "INV_X4".to_owned())
                    ]
                );
                assert!(!pba);
            }
            other => panic!("{other:?}"),
        }
        for bad in [
            r#"{"cmd":"whatif_batch"}"#,
            r#"{"cmd":"whatif_batch","resizes":"up"}"#,
            r#"{"cmd":"whatif_batch","resizes":[]}"#,
            r#"{"cmd":"whatif_batch","resizes":["g1"]}"#,
            r#"{"cmd":"whatif_batch","resizes":[{"cell":"g1"}]}"#,
            r#"{"cmd":"whatif_batch","resizes":[{"to":"up"}]}"#,
        ] {
            let (_, e) = parse_request(bad).unwrap_err();
            assert!(matches!(e, MgbaError::Usage(_)), "`{bad}`: {e}");
        }
        // Over-cap batches are rejected at parse time, before queueing.
        let many: Vec<String> = (0..=MAX_WHATIF_BATCH)
            .map(|i| format!(r#"{{"cell":"g{i}","to":"up"}}"#))
            .collect();
        let line = format!(r#"{{"cmd":"whatif_batch","resizes":[{}]}}"#, many.join(","));
        let (_, e) = parse_request(&line).unwrap_err();
        assert!(e.to_string().contains("max 256"), "{e}");
    }

    #[test]
    fn sleep_is_capped() {
        let r = parse_request(r#"{"cmd":"sleep","ms":999999}"#).unwrap();
        assert_eq!(r.cmd, Command::Sleep { ms: 10_000 });
    }
}
