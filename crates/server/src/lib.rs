//! mgba-server: a long-running timing-query daemon.
//!
//! Loading a netlist, building the STA graph, and fitting mGBA weights
//! are the expensive steps of the paper's flow; a batch CLI pays them on
//! every invocation. This crate keeps a calibrated [`session::Session`]
//! resident and serves cheap queries (`slack`, `wns`, `tns`, `path`) and
//! incremental what-if experiments (`whatif_resize`) against it over a
//! JSON-lines protocol — std::net TCP or stdio, no external
//! dependencies.
//!
//! Layout:
//!
//! - [`json`] — strict JSON parser for request lines (emission reuses
//!   [`obs::json::JsonWriter`]).
//! - [`proto`] — request/command grammar and response envelopes; all
//!   failures route through [`mgba::MgbaError`].
//! - [`session`] — the resident design + engine + weights, and every
//!   command handler.
//! - [`server`] — bounded-queue admission, single-worker execution,
//!   deadlines, graceful drain, TCP/stdio front-ends.
//! - [`stats`] — always-on per-command latency histograms behind the
//!   `stats` command.
//!
//! Protocol reference lives in `DESIGN.md` §9; CLI usage in `README.md`.

pub mod json;
pub mod proto;
pub mod server;
pub mod session;
pub mod stats;
pub mod suggest;

pub use server::{serve_stdio, serve_stream, Server, ServerConfig};
pub use session::{ServerInfo, Session};
