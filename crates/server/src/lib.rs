//! mgba-server: a long-running, multi-session timing-query daemon.
//!
//! Loading a netlist, building the STA graph, and fitting mGBA weights
//! are the expensive steps of the paper's flow; a batch CLI pays them on
//! every invocation. This crate keeps calibrated [`session::Session`]s
//! resident — one per client-chosen session name — and serves cheap
//! queries (`slack`, `wns`, `tns`, `path`) and incremental what-if
//! experiments (`whatif_resize`) against them over a JSON-lines
//! protocol — std::net TCP or stdio, no external dependencies.
//!
//! Layout:
//!
//! - [`json`] — strict JSON parser for request lines (emission reuses
//!   [`obs::json::JsonWriter`]).
//! - [`proto`] — protocol v2 request/command grammar (session
//!   addressing, `hello` negotiation, structured error codes) and
//!   response envelopes; all failures route through
//!   [`mgba::MgbaError`].
//! - [`session`] — one resident design + engine + weights, and every
//!   command handler.
//! - [`registry`] — the session shard map: per-session writer lanes,
//!   published read snapshots, write-ticket ordering, merged
//!   stats/metrics views.
//! - [`server`] — bounded-queue admission, read/write split execution,
//!   deadlines, graceful drain, TCP/stdio front-ends.
//! - [`client`] — typed `Request`/`Response` wire API with
//!   connect/timeout/retry, shared by the CLI `query` command and the
//!   bench harness.
//! - [`stats`] — always-on per-command latency histograms behind the
//!   `stats` command.
//! - [`wal`] — per-session write-ahead log: checksummed,
//!   length-prefixed records of acknowledged mutations, torn-tail
//!   recovery, and post-checkpoint compaction (`--state-dir`
//!   durability; see `DESIGN.md` §16).
//!
//! Protocol reference lives in `DESIGN.md` §13 (v2) and §9 (daemon
//! architecture); CLI usage in `README.md`.

pub mod client;
pub mod json;
pub mod proto;
pub mod registry;
pub mod server;
pub mod session;
pub mod stats;
pub mod suggest;
pub mod wal;

pub use client::{Client, ClientConfig, Response, WireError};
pub use server::{serve_stdio, serve_stream, Server, ServerConfig};
pub use session::{ServerInfo, Session};
