//! Always-on per-command latency accounting.
//!
//! The `obs` registry only records while profiling is enabled; a
//! resident daemon wants its `stats` command to answer regardless, so
//! the session keeps its own compact log₂ histograms here (one per
//! command name, microsecond scale). Quantiles are bucket-resolution
//! estimates, same policy as [`obs::metrics::HistogramSnapshot`].

use obs::json::JsonWriter;
use std::collections::BTreeMap;

/// Buckets cover `(2^(i-1), 2^i]` µs; 40 buckets reach ~2⁴⁰ µs ≈ 12 days.
const BUCKETS: usize = 40;

/// One command's latency histogram.
#[derive(Debug, Clone)]
pub struct LatencyHist {
    /// Requests recorded.
    pub count: u64,
    /// Total microseconds.
    pub sum_us: u64,
    /// Slowest request, µs.
    pub max_us: u64,
    buckets: [u64; BUCKETS],
}

impl Default for LatencyHist {
    fn default() -> Self {
        Self {
            count: 0,
            sum_us: 0,
            max_us: 0,
            buckets: [0; BUCKETS],
        }
    }
}

fn bucket_index(us: u64) -> usize {
    if us <= 1 {
        0
    } else {
        (63 - (us - 1).leading_zeros() as usize + 1).min(BUCKETS - 1)
    }
}

impl LatencyHist {
    /// Records one request latency.
    pub fn record(&mut self, us: u64) {
        self.count += 1;
        self.sum_us += us;
        self.max_us = self.max_us.max(us);
        self.buckets[bucket_index(us)] += 1;
    }

    /// Buckets as `(upper_bound_us, count)` over the contiguous range
    /// from the first to the last non-empty bucket — the same trimming
    /// contract as [`obs::metrics::HistogramSnapshot::buckets`], so the
    /// Prometheus encoder consumes both identically. The overflow
    /// bucket's bound is `+∞`.
    pub fn buckets(&self) -> Vec<(f64, u64)> {
        let le = |i: usize| {
            if i == BUCKETS - 1 {
                f64::INFINITY
            } else {
                (1u64 << i) as f64
            }
        };
        match (
            self.buckets.iter().position(|&c| c > 0),
            self.buckets.iter().rposition(|&c| c > 0),
        ) {
            (Some(first), Some(last)) => (first..=last).map(|i| (le(i), self.buckets[i])).collect(),
            _ => Vec::new(),
        }
    }

    /// Folds another histogram into this one (bucket-wise sum). Used to
    /// build the merged all-sessions view from per-session histograms.
    pub fn merge_from(&mut self, other: &LatencyHist) {
        self.count += other.count;
        self.sum_us += other.sum_us;
        self.max_us = self.max_us.max(other.max_us);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }

    /// Estimated `q`-quantile in µs (upper bucket bound, clamped to the
    /// observed max). `None` when empty.
    pub fn quantile_us(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some((1u64 << i).min(self.max_us));
            }
        }
        Some(self.max_us)
    }
}

/// Per-command latency registry.
#[derive(Debug, Clone, Default)]
pub struct CommandStats {
    by_command: BTreeMap<&'static str, LatencyHist>,
}

impl CommandStats {
    /// Records one handled request.
    pub fn record(&mut self, command: &'static str, us: u64) {
        self.by_command.entry(command).or_default().record(us);
    }

    /// Looks up one command's histogram.
    pub fn get(&self, command: &str) -> Option<&LatencyHist> {
        self.by_command.get(command)
    }

    /// Iterates `(command, histogram)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, &LatencyHist)> {
        self.by_command.iter().map(|(n, h)| (*n, h))
    }

    /// Total requests recorded across all commands.
    pub fn total(&self) -> u64 {
        self.by_command.values().map(|h| h.count).sum()
    }

    /// Folds another registry into this one, command by command — the
    /// merged all-sessions view keeps the process-global Prometheus
    /// series alive while each session tracks its own latencies.
    pub fn merge_from(&mut self, other: &CommandStats) {
        for (name, h) in other.iter() {
            self.by_command.entry(name).or_default().merge_from(h);
        }
    }

    /// Emits the `{"command": {count,p50_us,p99_us,max_us,mean_us}}`
    /// object into an open JSON writer (as one value).
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_obj();
        for (name, h) in &self.by_command {
            w.key(name);
            w.begin_obj();
            w.key("count");
            w.u64(h.count);
            w.key("mean_us");
            w.f64(if h.count > 0 {
                h.sum_us as f64 / h.count as f64
            } else {
                0.0
            });
            w.key("p50_us");
            w.u64(h.quantile_us(0.50).unwrap_or(0));
            w.key("p99_us");
            w.u64(h.quantile_us(0.99).unwrap_or(0));
            w.key("max_us");
            w.u64(h.max_us);
            w.end_obj();
        }
        w.end_obj();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn quantiles_bound_the_observations() {
        let mut h = LatencyHist::default();
        for _ in 0..99 {
            h.record(100);
        }
        h.record(90_000);
        let p50 = h.quantile_us(0.50).unwrap();
        let p99 = h.quantile_us(0.99).unwrap();
        assert!((100..=128).contains(&p50), "p50 = {p50}");
        assert!(p50 <= p99);
        assert_eq!(h.quantile_us(1.0), Some(90_000));
        assert_eq!(h.max_us, 90_000);
    }

    #[test]
    fn buckets_are_contiguous_and_trimmed() {
        let mut h = LatencyHist::default();
        h.record(1); // bucket 0 (le=1)
        h.record(7); // bucket 3 (le=8)
        let b = h.buckets();
        assert_eq!(b, vec![(1.0, 1), (2.0, 0), (4.0, 0), (8.0, 1)]);
        assert!(LatencyHist::default().buckets().is_empty());
        // Overflow bucket reports an infinite bound.
        let mut o = LatencyHist::default();
        o.record(u64::MAX);
        assert_eq!(o.buckets(), vec![(f64::INFINITY, 1)]);
    }

    #[test]
    fn merge_sums_counts_buckets_and_max() {
        let mut a = LatencyHist::default();
        a.record(3);
        a.record(100);
        let mut b = LatencyHist::default();
        b.record(7);
        b.record(90_000);
        a.merge_from(&b);
        assert_eq!(a.count, 4);
        assert_eq!(a.sum_us, 3 + 100 + 7 + 90_000);
        assert_eq!(a.max_us, 90_000);
        assert_eq!(a.buckets().iter().map(|(_, c)| c).sum::<u64>(), 4);

        let mut s1 = CommandStats::default();
        s1.record("ping", 5);
        let mut s2 = CommandStats::default();
        s2.record("ping", 9);
        s2.record("wns", 11);
        s1.merge_from(&s2);
        assert_eq!(s1.total(), 3);
        assert_eq!(s1.get("ping").unwrap().count, 2);
        assert_eq!(s1.get("wns").unwrap().count, 1);
    }

    #[test]
    fn registry_renders_json() {
        let mut s = CommandStats::default();
        s.record("ping", 3);
        s.record("ping", 5);
        s.record("wns", 40);
        assert_eq!(s.total(), 3);
        let mut w = JsonWriter::new();
        s.write_json(&mut w);
        let text = w.finish();
        assert!(text.contains("\"ping\":{\"count\":2"));
        assert!(text.contains("\"wns\":{\"count\":1"));
        let parsed = crate::json::parse(&text).unwrap();
        assert!(parsed.get("ping").is_some());
    }
}
