//! A minimal JSON reader for the request side of the wire protocol.
//!
//! Emission reuses [`obs::json::JsonWriter`] (same dialect: shortest
//! round-trip floats, non-finite as `null`); this module adds the
//! missing half — a strict recursive-descent parser producing a
//! [`Value`] tree. It accepts exactly the JSON grammar (RFC 8259) with
//! one deliberate restriction: documents deeper than [`MAX_DEPTH`]
//! levels are rejected so a hostile request cannot overflow the daemon's
//! stack.

use std::collections::BTreeMap;

/// Maximum container nesting accepted by [`parse`].
pub const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. Key order is not significant to the protocol, so a
    /// sorted map keeps lookups simple; duplicate keys are rejected at
    /// parse time.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Looks up `key` in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if this is a
    /// number with no fractional part in `u64` range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parses one JSON document; trailing non-whitespace is an error.
///
/// # Errors
///
/// Returns a human-readable message with a byte offset.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

/// Renders a [`Value`] back to compact JSON (object keys in sorted map
/// order, same float dialect as [`obs::json::JsonWriter`]). Used by the
/// CLI `query` client to re-emit a user-typed request line after
/// injecting protocol-v2 addressing fields.
pub fn render(v: &Value) -> String {
    let mut w = obs::json::JsonWriter::new();
    render_into(v, &mut w);
    w.finish()
}

fn render_into(v: &Value, w: &mut obs::json::JsonWriter) {
    match v {
        Value::Null => w.null(),
        Value::Bool(b) => w.bool(*b),
        Value::Num(n) => {
            // Integral numbers render without a fractional part so a
            // round-tripped `"id":1` stays `1`, not `1.0`.
            if n.fract() == 0.0 && *n >= 0.0 && *n <= u64::MAX as f64 {
                w.u64(*n as u64);
            } else {
                w.f64(*n);
            }
        }
        Value::Str(s) => w.str(s),
        Value::Arr(items) => {
            w.begin_arr();
            for item in items {
                render_into(item, w);
            }
            w.end_arr();
        }
        Value::Obj(map) => {
            w.begin_obj();
            for (k, val) in map {
                w.key(k);
                render_into(val, w);
            }
            w.end_obj();
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH} levels"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(c) => Err(format!("unexpected `{}` at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            if map.insert(key.clone(), val).is_some() {
                return Err(format!("duplicate key `{key}`"));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by `\uXXXX` with a low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err("bad low surrogate".into());
                                    }
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined).ok_or("bad surrogate pair")?
                                } else {
                                    return Err("lone high surrogate".into());
                                }
                            } else if (0xDC00..0xE000).contains(&cp) {
                                return Err("lone low surrogate".into());
                            } else {
                                char::from_u32(cp).ok_or("bad \\u escape")?
                            };
                            out.push(c);
                            // hex4 leaves pos past the digits; skip the
                            // byte-advance below.
                            continue;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(format!("raw control character at byte {}", self.pos))
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so this
                    // is always valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().ok_or("empty")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let digits = self
            .bytes
            .get(self.pos..end)
            .ok_or("truncated \\u escape")?;
        let s = std::str::from_utf8(digits).map_err(|_| "bad \\u escape")?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| "bad \\u escape")?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        match s.parse::<f64>() {
            // Reject overflow to ±inf (e.g. `1e999999`): a non-finite
            // number would silently corrupt downstream arithmetic, and
            // the emitting side writes non-finite as `null` anyway.
            Ok(n) if n.is_finite() => Ok(Value::Num(n)),
            Ok(_) => Err(format!("number `{s}` out of range at byte {start}")),
            Err(_) => Err(format!("bad number `{s}` at byte {start}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("-2.5e2").unwrap(), Value::Num(-250.0));
        assert_eq!(parse(r#""a\nb""#).unwrap(), Value::Str("a\nb".into()));
        let v = parse(r#"{"cmd":"load","period":900,"list":[1,2]}"#).unwrap();
        assert_eq!(v.get("cmd").and_then(Value::as_str), Some("load"));
        assert_eq!(v.get("period").and_then(Value::as_f64), Some(900.0));
        assert_eq!(v.get("period").and_then(Value::as_u64), Some(900));
        match v.get("list").unwrap() {
            Value::Arr(a) => assert_eq!(a.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn render_round_trips_requests() {
        for doc in [
            r#"{"cmd":"ping","id":1}"#,
            r#"{"cmd":"slack","deadline_ms":250,"top":3}"#,
            r#"{"flags":[true,null,"a\nb"],"period":9.5}"#,
        ] {
            let v = parse(doc).unwrap();
            let rendered = render(&v);
            assert_eq!(parse(&rendered).unwrap(), v, "{doc} -> {rendered}");
        }
        // Keys come back in sorted order and integers stay integers.
        let v = parse(r#"{"id":7,"cmd":"ping"}"#).unwrap();
        assert_eq!(render(&v), r#"{"cmd":"ping","id":7}"#);
    }

    #[test]
    fn unicode_escapes_and_surrogates() {
        assert_eq!(parse(r#""A""#).unwrap(), Value::Str("A".into()));
        assert_eq!(parse(r#""😀""#).unwrap(), Value::Str("😀".into()));
        assert!(parse(r#""\ud83d""#).is_err());
        assert!(parse(r#""\udc00""#).is_err());
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            r#"{"a":1"#,
            r#"{"a" 1}"#,
            "tru",
            "1.2.3",
            "{} extra",
            r#"{"a":1,"a":2}"#,
            "\"raw\ncontrol\"",
        ] {
            assert!(parse(bad).is_err(), "`{bad}` should fail");
        }
    }

    #[test]
    fn every_truncation_of_a_valid_request_errors_cleanly() {
        // Property-style sweep: chopping a well-formed request at any
        // byte boundary must produce a clean parse error (or, for a few
        // lucky prefixes, a shorter valid document) — never a panic.
        let doc = r#"{"id":42,"cmd":"load","design":"small:7","period":9.5e2,"flags":[true,null,"aé\n"]}"#;
        for cut in 0..doc.len() {
            if !doc.is_char_boundary(cut) {
                continue;
            }
            let _ = parse(&doc[..cut]);
            let _ = parse(&doc[cut..]);
        }
        assert!(parse(doc).is_ok());
    }

    #[test]
    fn huge_and_overflowing_numbers_are_rejected() {
        assert!(parse("1e999999").is_err(), "overflow to +inf");
        assert!(parse("-1e999999").is_err(), "overflow to -inf");
        // Underflow to zero and large-but-finite values are fine.
        assert_eq!(parse("1e-999999").unwrap(), Value::Num(0.0));
        assert_eq!(parse("1e308").unwrap(), Value::Num(1e308));
        let digits = "9".repeat(4096);
        assert!(parse(&digits).is_err(), "4096 nines overflow f64");
    }

    #[test]
    fn invalid_unicode_escapes_are_rejected() {
        for bad in [
            r#""\u""#,
            r#""\u12""#,
            r#""\uzzzz""#,
            r#""\ud800A""#,
            r#""\ud800\udb00""#,
            r#""\x41""#,
        ] {
            assert!(parse(bad).is_err(), "`{bad}` should fail");
        }
    }

    #[test]
    fn depth_limit_guards_the_stack() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(10) + &"]".repeat(10);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn round_trips_with_the_obs_writer() {
        let mut w = obs::json::JsonWriter::new();
        w.begin_obj();
        w.key("name");
        w.str("a\"b\\c");
        w.key("x");
        w.f64(0.125);
        w.key("n");
        w.null();
        w.end_obj();
        let text = w.finish();
        let v = parse(&text).unwrap();
        assert_eq!(v.get("name").and_then(Value::as_str), Some("a\"b\\c"));
        assert_eq!(v.get("x").and_then(Value::as_f64), Some(0.125));
        assert_eq!(v.get("n"), Some(&Value::Null));
    }
}
