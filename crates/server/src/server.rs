//! The daemon: bounded admission queue, single worker thread, TCP and
//! stdio front-ends.
//!
//! # Threading model
//!
//! Exactly **one worker thread** owns the [`Session`] and executes
//! requests strictly in admission order. That single decision buys the
//! protocol's determinism guarantee for free: responses depend only on
//! the request sequence, never on connection interleaving or the
//! `--threads` setting (the engine's parallel kernels are themselves
//! bit-identical across thread counts).
//!
//! Each TCP connection gets a reader thread (parse + admit) and a
//! writer thread (serialize responses); replies travel over a
//! per-connection channel so the worker never blocks on a slow client.
//!
//! # Backpressure
//!
//! Admission goes through a bounded [`mpsc::sync_channel`]. When the queue is
//! full the reader does **not** block — it immediately answers with an
//! `"overload"` error envelope. A saturated server therefore stays
//! responsive: clients always get an answer, just sometimes "try later".
//!
//! # Deadlines
//!
//! `deadline_ms` (per request, or `--deadline-ms` server default) is
//! checked when the worker *dequeues* the request: work that already
//! missed its deadline while queued is rejected with a `"deadline"`
//! envelope instead of being executed. Deadlines are admission control,
//! not preemption — a request that starts executing runs to completion.
//!
//! # Shutdown
//!
//! `shutdown` answers `{"draining":true}`, then the worker drains every
//! request admitted before it and exits; late arrivals get a
//! `"shutdown"` envelope. On TCP the accept loop notices the flag within
//! one poll interval and `run` returns.

use crate::proto::{self, Command, Request};
use crate::session::{ServerInfo, Session};
use mgba::MgbaError;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// How often the accept loop re-checks the shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// How long the worker keeps draining after shutdown before closing the
/// queue. Covers the race where a reader passed the shutting-down check
/// just before the flag was set.
const DRAIN_GRACE: Duration = Duration::from_millis(50);

/// Tunables for a server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bounded request-queue depth; admissions beyond this are rejected
    /// with an `"overload"` envelope.
    pub queue_depth: usize,
    /// Default per-request deadline applied when a request carries none.
    pub default_deadline_ms: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            queue_depth: 64,
            default_deadline_ms: None,
        }
    }
}

/// Counters shared between readers, worker, and accept loop.
struct Shared {
    shutting_down: AtomicBool,
    served: AtomicU64,
    rejected_overload: AtomicU64,
    rejected_deadline: AtomicU64,
    panicked: AtomicU64,
    queue_depth: usize,
}

impl Shared {
    fn new(queue_depth: usize) -> Self {
        Self {
            shutting_down: AtomicBool::new(false),
            served: AtomicU64::new(0),
            rejected_overload: AtomicU64::new(0),
            rejected_deadline: AtomicU64::new(0),
            panicked: AtomicU64::new(0),
            queue_depth,
        }
    }

    fn info(&self) -> ServerInfo {
        ServerInfo {
            queue_depth: self.queue_depth,
            served: self.served.load(Ordering::SeqCst),
            rejected_overload: self.rejected_overload.load(Ordering::SeqCst),
            rejected_deadline: self.rejected_deadline.load(Ordering::SeqCst),
            panics: self.panicked.load(Ordering::SeqCst),
        }
    }
}

/// Best-effort text of a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_owned())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".into())
}

/// What the worker should do with an admitted line.
enum Work {
    /// A well-formed request to execute.
    Exec(Request),
    /// A line that failed to parse. It still flows through the queue so
    /// its error envelope is emitted **in admission order** — answering
    /// from the reader thread would let the error race ahead of earlier
    /// requests' responses and break stream determinism.
    Malformed { id: Option<u64>, error: MgbaError },
}

/// One admitted request waiting for the worker.
struct Job {
    work: Work,
    reply: mpsc::Sender<String>,
    enqueued: Instant,
}

/// Executes one job on the worker thread; returns `true` on a served
/// `shutdown`.
fn process(job: Job, session: &mut Session, shared: &Shared) -> bool {
    let request = match job.work {
        Work::Exec(request) => request,
        Work::Malformed { id, error } => {
            obs::counter_add("server.requests.malformed", 1);
            shared.served.fetch_add(1, Ordering::SeqCst);
            let _ = job.reply.send(proto::mgba_error_envelope(id, &error));
            return false;
        }
    };
    let Request {
        id,
        cmd,
        deadline_ms,
    } = request;
    if let Some(limit) = deadline_ms {
        let waited = job.enqueued.elapsed();
        if waited > Duration::from_millis(limit) {
            shared.rejected_deadline.fetch_add(1, Ordering::SeqCst);
            obs::counter_add("server.rejected.deadline", 1);
            let _ = job.reply.send(proto::error_envelope(
                id,
                "deadline",
                &format!("deadline of {limit} ms expired while queued"),
            ));
            return false;
        }
    }
    let name = cmd.name();
    let info = shared.info();
    let start = Instant::now();
    // Crash isolation: a panic in one request must not take the daemon
    // (and every other client) down. The worker catches the unwind,
    // restores the session from its last good checkpoint, and answers
    // with a typed "internal" error. AssertUnwindSafe is justified
    // because the possibly half-mutated session state is discarded
    // wholesale by `recover()` — nothing broken is ever observed.
    let caught = {
        let _span = obs::span(name);
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| session.handle(&cmd, &info)))
    };
    let result = match caught {
        Ok(result) => result,
        Err(payload) => {
            shared.panicked.fetch_add(1, Ordering::SeqCst);
            obs::counter_add("server.requests.panicked", 1);
            let msg = panic_message(payload.as_ref());
            session.recover();
            Err(MgbaError::Internal(format!(
                "request `{name}` panicked: {msg}; session restored from last good state"
            )))
        }
    };
    let us = start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
    session.latency.record(name, us);
    obs::observe(&format!("server.latency_us.{name}"), us as f64);
    obs::counter_add(&format!("server.requests.{name}"), 1);
    shared.served.fetch_add(1, Ordering::SeqCst);
    let shutdown = matches!(cmd, Command::Shutdown) && result.is_ok();
    let envelope = match &result {
        Ok(json) => proto::ok_envelope(id, session.is_degraded(), json),
        Err(e) => proto::mgba_error_envelope(id, e),
    };
    let _ = job.reply.send(envelope);
    shutdown
}

/// The worker loop: owns the session, executes jobs in admission order,
/// drains on shutdown.
fn worker_loop(rx: Receiver<Job>, shared: Arc<Shared>) {
    let mut session = Session::new();
    while let Ok(job) = rx.recv() {
        if process(job, &mut session, &shared) {
            shared.shutting_down.store(true, Ordering::SeqCst);
            break;
        }
    }
    // Drain-then-exit: serve everything admitted before (or racing with)
    // the shutdown flag, then close the queue so late readers see
    // `Disconnected` and answer with a "shutdown" envelope themselves.
    while let Ok(job) = rx.recv_timeout(DRAIN_GRACE) {
        process(job, &mut session, &shared);
    }
}

/// Reads request lines, admits them to the bounded queue, and answers
/// rejects inline. Shared by TCP connections and stdio mode.
fn serve_lines(
    reader: impl BufRead,
    reply_tx: mpsc::Sender<String>,
    tx: SyncSender<Job>,
    shared: &Shared,
    default_deadline_ms: Option<u64>,
) {
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        // Malformed input is answered, never dropped — and the
        // connection keeps serving. The error rides the queue like any
        // request so responses stay in admission order.
        let (id, is_shutdown, work) = match proto::parse_request(&line) {
            Ok(mut request) => {
                if request.deadline_ms.is_none() {
                    request.deadline_ms = default_deadline_ms;
                }
                let is_shutdown = matches!(request.cmd, Command::Shutdown);
                (request.id, is_shutdown, Work::Exec(request))
            }
            Err((id, error)) => (id, false, Work::Malformed { id, error }),
        };
        if shared.shutting_down.load(Ordering::SeqCst) {
            let _ = reply_tx.send(proto::error_envelope(id, "shutdown", "server is draining"));
            continue;
        }
        let job = Job {
            work,
            reply: reply_tx.clone(),
            enqueued: Instant::now(),
        };
        match tx.try_send(job) {
            Ok(()) => {
                if is_shutdown {
                    // Stop reading: this connection asked us to exit.
                    break;
                }
            }
            Err(TrySendError::Full(_)) => {
                shared.rejected_overload.fetch_add(1, Ordering::SeqCst);
                obs::counter_add("server.rejected.overload", 1);
                let _ = reply_tx.send(proto::error_envelope(
                    id,
                    "overload",
                    &format!(
                        "request queue full ({} deep); retry later",
                        shared.queue_depth
                    ),
                ));
            }
            Err(TrySendError::Disconnected(_)) => {
                let _ = reply_tx.send(proto::error_envelope(id, "shutdown", "server is draining"));
                break;
            }
        }
    }
}

/// One TCP connection: a reader (this thread) plus a writer thread fed
/// by the per-connection reply channel.
fn connection(
    stream: TcpStream,
    tx: SyncSender<Job>,
    shared: Arc<Shared>,
    default_deadline_ms: Option<u64>,
) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (reply_tx, reply_rx) = mpsc::channel::<String>();
    let writer = thread::spawn(move || {
        let mut w = BufWriter::new(write_half);
        for line in reply_rx {
            if w.write_all(line.as_bytes()).is_err()
                || w.write_all(b"\n").is_err()
                || w.flush().is_err()
            {
                break;
            }
        }
    });
    serve_lines(
        BufReader::new(stream),
        reply_tx,
        tx,
        &shared,
        default_deadline_ms,
    );
    // Reader done; the writer exits once every queued job's reply clone
    // is dropped (i.e. all admitted requests have been answered).
    let _ = writer.join();
}

/// A bound TCP server, ready to `run`.
pub struct Server {
    listener: TcpListener,
    config: ServerConfig,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:7400`; port 0 picks a free port).
    ///
    /// # Errors
    ///
    /// Returns [`MgbaError::Io`] when the address cannot be bound.
    pub fn bind(addr: &str, config: ServerConfig) -> Result<Self, MgbaError> {
        let listener = TcpListener::bind(addr).map_err(|e| MgbaError::io(addr, e))?;
        Ok(Self { listener, config })
    }

    /// The bound address (useful with port 0).
    ///
    /// # Errors
    ///
    /// Returns [`MgbaError::Io`] when the socket refuses to report it.
    pub fn local_addr(&self) -> Result<SocketAddr, MgbaError> {
        self.listener
            .local_addr()
            .map_err(|e| MgbaError::io("listener", e))
    }

    /// Serves connections until a `shutdown` request drains the queue.
    ///
    /// # Errors
    ///
    /// Returns [`MgbaError::Io`] when the listener cannot be switched to
    /// non-blocking mode (required for graceful exit).
    pub fn run(self) -> Result<(), MgbaError> {
        let _span = obs::span("server.run");
        self.listener
            .set_nonblocking(true)
            .map_err(|e| MgbaError::io("listener", e))?;
        let shared = Arc::new(Shared::new(self.config.queue_depth));
        let (tx, rx) = mpsc::sync_channel::<Job>(self.config.queue_depth);
        let worker = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || worker_loop(rx, shared))
        };
        while !shared.shutting_down.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    // Request/response JSON lines are small writes; with
                    // Nagle on, every strict (non-pipelined) round trip
                    // stalls on the peer's delayed ACK (~40 ms). Latency
                    // is the product here — trade the batching away.
                    let _ = stream.set_nodelay(true);
                    obs::counter_add("server.connections", 1);
                    let tx = tx.clone();
                    let shared = Arc::clone(&shared);
                    let deadline = self.config.default_deadline_ms;
                    thread::spawn(move || connection(stream, tx, shared, deadline));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    thread::sleep(ACCEPT_POLL);
                }
                Err(_) => {
                    // Transient accept failure; keep serving.
                    thread::sleep(ACCEPT_POLL);
                }
            }
        }
        drop(tx);
        let _ = worker.join();
        Ok(())
    }
}

/// Serves one request stream to one response sink (no TCP). This is the
/// `--stdio` engine and the deterministic unit-test entry: responses
/// come back in admission order on the returned writer.
///
/// Exits when the input ends or a `shutdown` request is served; either
/// way the queue drains before the writer is returned.
///
/// # Errors
///
/// Currently infallible at this layer (I/O failures terminate the
/// stream, matching a disconnecting client); the `Result` keeps the
/// signature stable for front-ends that must report bind-style errors.
pub fn serve_stream<R, W>(config: &ServerConfig, reader: R, writer: W) -> Result<W, MgbaError>
where
    R: BufRead,
    W: Write + Send + 'static,
{
    let shared = Arc::new(Shared::new(config.queue_depth));
    let (tx, rx) = mpsc::sync_channel::<Job>(config.queue_depth);
    let worker = {
        let shared = Arc::clone(&shared);
        thread::spawn(move || worker_loop(rx, shared))
    };
    let (reply_tx, reply_rx) = mpsc::channel::<String>();
    let writer_thread = thread::spawn(move || {
        let mut w = writer;
        for line in reply_rx {
            if w.write_all(line.as_bytes()).is_err()
                || w.write_all(b"\n").is_err()
                || w.flush().is_err()
            {
                break;
            }
        }
        w
    });
    serve_lines(reader, reply_tx, tx, &shared, config.default_deadline_ms);
    let _ = worker.join();
    let writer = writer_thread
        .join()
        .unwrap_or_else(|_| panic!("writer thread panicked"));
    Ok(writer)
}

/// Runs the daemon over stdin/stdout (`serve --stdio`).
///
/// # Errors
///
/// Propagates [`serve_stream`] errors.
pub fn serve_stdio(config: &ServerConfig) -> Result<(), MgbaError> {
    let stdin = std::io::stdin();
    serve_stream(config, stdin.lock(), std::io::stdout())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_session(config: &ServerConfig, script: &str) -> Vec<String> {
        let out = serve_stream(config, script.as_bytes(), Vec::<u8>::new()).unwrap();
        String::from_utf8(out)
            .unwrap()
            .lines()
            .map(str::to_owned)
            .collect()
    }

    #[test]
    fn stream_serves_in_order_and_drains_on_eof() {
        let script = "{\"id\":1,\"cmd\":\"ping\"}\n{\"id\":2,\"cmd\":\"ping\"}\n";
        let lines = run_session(&ServerConfig::default(), script);
        assert_eq!(
            lines,
            vec![
                "{\"id\":1,\"ok\":true,\"result\":{\"pong\":true}}",
                "{\"id\":2,\"ok\":true,\"result\":{\"pong\":true}}",
            ]
        );
    }

    #[test]
    fn malformed_line_gets_error_and_serving_continues() {
        let script = "this is not json\n{\"id\":7,\"cmd\":\"ping\"}\n";
        let lines = run_session(&ServerConfig::default(), script);
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"ok\":false"));
        assert!(lines[0].contains("\"kind\":\"usage\""));
        assert!(lines[1].contains("\"id\":7"));
        assert!(lines[1].contains("\"pong\":true"));
    }

    #[test]
    fn shutdown_stops_reading_further_input() {
        let script = "{\"id\":1,\"cmd\":\"shutdown\"}\n{\"id\":2,\"cmd\":\"ping\"}\n";
        let lines = run_session(&ServerConfig::default(), script);
        // The ping after shutdown is never read: exactly one response.
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("\"draining\":true"));
    }

    #[test]
    fn metrics_command_lands_in_stats_latency_set() {
        // `metrics` is itself a command: the worker loop records its
        // latency like any other, so the following `stats` reports it.
        let script = "{\"id\":1,\"cmd\":\"metrics\"}\n{\"id\":2,\"cmd\":\"stats\"}\n";
        let lines = run_session(&ServerConfig::default(), script);
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"exposition\""), "{}", lines[0]);
        assert!(lines[0].contains("mgba_server_queue_depth"), "{}", lines[0]);
        assert!(
            lines[1].contains("\"metrics\":{\"count\":1"),
            "stats must include the metrics command: {}",
            lines[1]
        );
    }

    #[test]
    fn expired_deadline_is_rejected_at_dequeue() {
        // sleep(30) occupies the worker while the deadline_ms:1 ping
        // waits in the queue past its deadline.
        let script = "{\"id\":1,\"cmd\":\"sleep\",\"ms\":30}\n\
                      {\"id\":2,\"cmd\":\"ping\",\"deadline_ms\":1}\n\
                      {\"id\":3,\"cmd\":\"ping\"}\n";
        let lines = run_session(&ServerConfig::default(), script);
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"slept_ms\":30"));
        assert!(
            lines[1].contains("\"kind\":\"deadline\""),
            "got {}",
            lines[1]
        );
        assert!(lines[2].contains("\"pong\":true"));
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn injected_panic_is_isolated_and_state_auto_restores() {
        // Serialize against other failpoint-arming tests; arming happens
        // over the protocol, so take the lock manually instead of
        // `scoped`.
        let _lock = faultinject::exclusive();
        faultinject::clear();
        let script = concat!(
            r#"{"id":1,"cmd":"load","design":"small:3"}"#,
            "\n",
            r#"{"id":2,"cmd":"calibrate","solver":"cgnr"}"#,
            "\n",
            r#"{"id":3,"cmd":"wns"}"#,
            "\n",
            r#"{"id":4,"cmd":"failpoint","spec":"server.handle=panic*1"}"#,
            "\n",
            r#"{"id":5,"cmd":"wns"}"#,
            "\n",
            r#"{"id":6,"cmd":"wns"}"#,
            "\n",
            r#"{"id":7,"cmd":"stats"}"#,
            "\n",
        );
        let out = serve_stream(
            &ServerConfig::default(),
            script.as_bytes(),
            Vec::<u8>::new(),
        )
        .unwrap();
        faultinject::clear();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 7, "{text}");
        // The arming request itself succeeds (it arms *after* the hook).
        assert!(lines[3].contains("\"applied\":1"), "{}", lines[3]);
        // The next request hits the one-shot panic: typed internal error.
        assert!(lines[4].contains("\"ok\":false"), "{}", lines[4]);
        assert!(lines[4].contains("\"kind\":\"internal\""), "{}", lines[4]);
        assert!(lines[4].contains("restored"), "{}", lines[4]);
        // The request after that is served from the auto-restored
        // calibrated state: same wns bytes as before the crash, and NOT
        // degraded (the checkpoint carried the calibration).
        assert!(lines[5].contains("\"ok\":true"), "{}", lines[5]);
        assert!(!lines[5].contains("degraded"), "{}", lines[5]);
        let wns_field = |line: &str| {
            let start = line.find("\"wns\":").expect("wns field") + 6;
            line[start..]
                .split(&[',', '}'][..])
                .next()
                .unwrap()
                .to_owned()
        };
        assert_eq!(wns_field(lines[2]), wns_field(lines[5]));
        assert!(lines[6].contains("\"panics\":1"), "{}", lines[6]);
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn panic_before_calibration_degrades_until_recalibrated() {
        let _lock = faultinject::exclusive();
        faultinject::clear();
        let script = concat!(
            r#"{"id":1,"cmd":"load","design":"small:5"}"#,
            "\n",
            r#"{"id":2,"cmd":"failpoint","spec":"server.handle=panic*1"}"#,
            "\n",
            r#"{"id":3,"cmd":"wns"}"#,
            "\n",
            r#"{"id":4,"cmd":"wns"}"#,
            "\n",
            r#"{"id":5,"cmd":"calibrate","solver":"cgnr"}"#,
            "\n",
            r#"{"id":6,"cmd":"wns"}"#,
            "\n",
        );
        let out = serve_stream(
            &ServerConfig::default(),
            script.as_bytes(),
            Vec::<u8>::new(),
        )
        .unwrap();
        faultinject::clear();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 6, "{text}");
        assert!(lines[2].contains("\"kind\":\"internal\""), "{}", lines[2]);
        // Restored state has no calibration: served, but flagged.
        assert!(lines[3].contains("\"ok\":true"), "{}", lines[3]);
        assert!(lines[3].contains("\"degraded\":true"), "{}", lines[3]);
        // A successful calibrate clears the flag.
        assert!(lines[4].contains("\"ok\":true"), "{}", lines[4]);
        assert!(!lines[5].contains("degraded"), "{}", lines[5]);
    }

    #[test]
    fn default_deadline_applies_when_request_has_none() {
        let config = ServerConfig {
            queue_depth: 64,
            default_deadline_ms: Some(1),
        };
        let script = "{\"id\":1,\"cmd\":\"sleep\",\"ms\":30}\n{\"id\":2,\"cmd\":\"ping\"}\n";
        let lines = run_session(&config, script);
        // The sleep itself is admitted instantly (no queue wait), so it
        // runs; the ping queued behind it exceeds the default deadline.
        assert_eq!(lines.len(), 2);
        assert!(lines[1].contains("\"kind\":\"deadline\""), "{}", lines[1]);
    }
}
