//! The daemon: bounded admission, per-session writer lanes, an optional
//! shared read pool, TCP and stdio front-ends.
//!
//! # Threading model
//!
//! The server hosts many named sessions (see [`crate::registry`]). Each
//! session's mutating commands funnel through its own **writer lane** —
//! one thread that owns the session state and executes jobs strictly in
//! admission order. Read-only queries are served lock-free from the
//! session's published [`registry::ReadSnapshot`] by a pool of
//! `read_workers` threads (or inline on the connection's reader thread
//! when the snapshot is already current). With `read_workers = 0` — the
//! default — every command funnels through the lane, which is exactly
//! the original single-worker behavior.
//!
//! Determinism survives the concurrency: write tickets order every read
//! after the writes admitted before it, so responses per session depend
//! only on that session's request sequence, never on connection
//! interleaving, the `--threads` setting, or the read-pool size (the
//! engine's parallel kernels are themselves bit-identical across thread
//! counts).
//!
//! Each TCP connection gets a reader thread (parse + admit) and a
//! writer thread that emits responses **in admission order**: admission
//! enqueues a per-request reply slot, and the writer drains slots
//! first-in-first-out no matter which thread produced each reply.
//!
//! # Backpressure
//!
//! Lane admission goes through a bounded [`mpsc::sync_channel`]. When
//! the queue is full the reader does **not** block — it immediately
//! answers with an `"overload"` error envelope. Pool reads have their
//! own (deeper) backlog cap. A saturated server therefore stays
//! responsive: clients always get an answer, just sometimes "try
//! later".
//!
//! # Deadlines
//!
//! `deadline_ms` (per request, or `--deadline-ms` server default) is
//! checked when a lane *dequeues* the request (and when a read worker
//! picks a read up, or would have to wait past it for a write ticket):
//! work that already missed its deadline while queued is rejected with
//! a `"deadline"` envelope instead of being executed. Deadlines are
//! admission control, not preemption — a request that starts executing
//! runs to completion.
//!
//! # Shutdown
//!
//! `shutdown` answers `{"draining":true}`, then every lane drains the
//! requests admitted before it and exits; late arrivals get a
//! `"shutdown"` envelope. On TCP the accept loop notices the flag
//! within one poll interval and `run` returns.

use crate::proto::{self, Command};
use crate::registry::{self, AdmitRejection, ReadJob, Registry, SessionHandle, Shared};
use mgba::MgbaError;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{self, Receiver, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// How often the accept loop re-checks the shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// How often an idle read worker re-checks the shutdown flag, so the
/// pool can be joined even while a lingering connection thread still
/// holds a clone of its queue sender.
const POOL_POLL: Duration = Duration::from_millis(50);

/// Tunables for a server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bounded per-session request-queue depth; admissions beyond this
    /// are rejected with an `"overload"` envelope.
    pub queue_depth: usize,
    /// Default per-request deadline applied when a request carries none.
    pub default_deadline_ms: Option<u64>,
    /// Read-pool size. `0` (the default) disables the pool and funnels
    /// every command — reads included — through the writer lane,
    /// reproducing the original single-worker execution exactly.
    pub read_workers: usize,
    /// Evict sessions idle longer than this many seconds (`None` or
    /// `Some(0)` = never). Eviction is lazy — checked when the next
    /// admission resolves a session — and releases the lane thread and
    /// resident engine clone; clients can also evict explicitly with
    /// the `close_session` command.
    pub session_ttl_secs: Option<u64>,
    /// Slow-query threshold in milliseconds (`--slow-ms`). Lane commands
    /// whose execution takes at least this long are recorded in the
    /// per-session slow-query ring served by the `slowlog` command.
    /// `None` (the default) disables recording; `Some(0)` records every
    /// non-read lane command, which is the deterministic test mode.
    pub slow_ms: Option<u64>,
    /// Durable session state (`--state-dir DIR`): every session gets a
    /// write-ahead log plus periodic checkpoints under `DIR`, and the
    /// registry replays them on startup. `None` (the default) keeps the
    /// server fully in-memory with zero per-request overhead.
    pub state_dir: Option<std::path::PathBuf>,
    /// With `state_dir` set: write an on-disk checkpoint (and compact
    /// the WAL) after this many logged mutations per session.
    pub checkpoint_every: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            queue_depth: 64,
            default_deadline_ms: None,
            read_workers: 0,
            session_ttl_secs: None,
            slow_ms: None,
            state_dir: None,
            checkpoint_every: 32,
        }
    }
}

impl ServerConfig {
    /// The effective TTL (`Some(0)` means disabled, like `None`).
    fn session_ttl(&self) -> Option<Duration> {
        self.session_ttl_secs
            .filter(|s| *s > 0)
            .map(Duration::from_secs)
    }

    /// The registry-level durability settings (`None` = off).
    fn durability(&self) -> Option<registry::DurabilityConfig> {
        self.state_dir
            .as_ref()
            .map(|dir| registry::DurabilityConfig {
                state_dir: dir.clone(),
                checkpoint_every: self.checkpoint_every.max(1),
            })
    }
}

/// Everything admission needs, cloned per connection: the session
/// registry, shared counters, and the read-pool sender (when enabled).
#[derive(Clone)]
struct Gate {
    registry: Arc<Registry>,
    shared: Arc<Shared>,
    pool_tx: Option<mpsc::Sender<ReadJob>>,
    default_deadline_ms: Option<u64>,
}

/// Spawns the shared read pool: N workers draining one queue. Returns
/// `(None, [])` when the pool is disabled.
fn spawn_read_pool(shared: &Arc<Shared>) -> (Option<mpsc::Sender<ReadJob>>, Vec<JoinHandle<()>>) {
    if shared.read_workers == 0 {
        return (None, Vec::new());
    }
    let (tx, rx) = mpsc::channel::<ReadJob>();
    let rx = Arc::new(Mutex::new(rx));
    let workers = (0..shared.read_workers)
        .map(|i| {
            let rx = Arc::clone(&rx);
            let shared = Arc::clone(shared);
            thread::Builder::new()
                .name(format!("mgba-read-{i}"))
                .spawn(move || {
                    loop {
                        // Take the next job with the lock released before
                        // serving, so workers pick up in parallel. The
                        // timeout keeps the worker joinable at shutdown
                        // even while a sender clone is still alive.
                        let job = rx.lock().unwrap().recv_timeout(POOL_POLL);
                        match job {
                            Ok(job) => {
                                shared.pending_reads.fetch_sub(1, Ordering::SeqCst);
                                registry::serve_read(job, &shared);
                            }
                            Err(mpsc::RecvTimeoutError::Timeout) => {
                                if shared.shutting_down.load(Ordering::SeqCst) {
                                    break;
                                }
                            }
                            Err(mpsc::RecvTimeoutError::Disconnected) => break,
                        }
                    }
                    // Drain reads admitted before the flag flipped: every
                    // lane publishes its tickets before exiting, so these
                    // answer instead of vanishing.
                    while let Ok(job) = rx.lock().unwrap().try_recv() {
                        shared.pending_reads.fetch_sub(1, Ordering::SeqCst);
                        registry::serve_read(job, &shared);
                    }
                })
                .expect("spawn read worker")
        })
        .collect();
    (Some(tx), workers)
}

/// A reply slot: the receiver the stream's writer drains next, plus the
/// session handle to attribute the reply-write stage to (None for
/// replies that never reached a session — handshakes, rejects,
/// malformed input).
type ReplySlot = (Receiver<String>, Option<Arc<SessionHandle>>);

/// Reads request lines, admits them, and answers what never reaches a
/// lane (handshakes, rejects, malformed input) inline. Shared by TCP
/// connections and stdio mode.
///
/// Response ordering: every line — served or rejected — enqueues exactly
/// one reply slot on `slot_tx`, in line order (this loop is sequential),
/// and the stream's writer drains slots in that order. Responses
/// therefore come back in admission order even when reads execute on
/// pool threads.
fn serve_lines(reader: impl BufRead, slot_tx: &mpsc::Sender<ReplySlot>, gate: &Gate) {
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let parsed = proto::parse_request(&line);
        let (reply_tx, reply_rx) = mpsc::channel::<String>();
        // Malformed input is answered, never dropped — and the
        // connection keeps serving. Its slot is queued like any other,
        // so the error still lands in admission order.
        let mut request = match parsed {
            Ok(request) => request,
            Err((meta, error)) => {
                obs::counter_add("server.requests.malformed", 1);
                gate.shared.served.fetch_add(1, Ordering::SeqCst);
                let _ = reply_tx.send(proto::mgba_error_envelope(&meta, &error));
                if slot_tx.send((reply_rx, None)).is_err() {
                    // Writer gone: the peer disconnected mid-stream.
                    break;
                }
                continue;
            }
        };
        if request.deadline_ms.is_none() {
            request.deadline_ms = gate.default_deadline_ms;
        }
        let meta = request.meta();
        if gate.shared.shutting_down.load(Ordering::SeqCst) {
            let _ = reply_tx.send(proto::error_envelope(
                &meta,
                "shutdown",
                "server is draining",
            ));
            if slot_tx.send((reply_rx, None)).is_err() {
                break;
            }
            continue;
        }
        // `hello` is the handshake: answered at admission, it needs no
        // session state and creates no session.
        if let Command::Hello { max_proto } = &request.cmd {
            gate.shared.served.fetch_add(1, Ordering::SeqCst);
            obs::counter_add("server.requests.hello", 1);
            let result = registry::render_hello(&gate.registry, *max_proto);
            let _ = reply_tx.send(proto::ok_envelope(&meta, false, &result));
            if slot_tx.send((reply_rx, None)).is_err() {
                break;
            }
            continue;
        }
        // `close_session` operates on the registry map, not on session
        // state, so it too answers at admission — and never creates the
        // session it is asked to close.
        if matches!(request.cmd, Command::CloseSession) {
            gate.shared.served.fetch_add(1, Ordering::SeqCst);
            obs::counter_add("server.requests.close_session", 1);
            let closed = gate.registry.remove(&request.session);
            let mut w = obs::json::JsonWriter::new();
            w.begin_obj();
            w.key("closed");
            w.bool(closed);
            w.end_obj();
            let _ = reply_tx.send(proto::ok_envelope(&meta, false, &w.finish()));
            if slot_tx.send((reply_rx, None)).is_err() {
                break;
            }
            continue;
        }
        let entry = match gate.registry.session(&request.session) {
            Ok(entry) => entry,
            Err(AdmitRejection::Draining) => {
                let _ = reply_tx.send(proto::error_envelope(
                    &meta,
                    "shutdown",
                    "server is draining",
                ));
                if slot_tx.send((reply_rx, None)).is_err() {
                    break;
                }
                continue;
            }
            Err(AdmitRejection::TooManySessions) => {
                let _ = reply_tx.send(proto::error_envelope(
                    &meta,
                    "usage",
                    &format!(
                        "too many sessions ({} resident); reuse an existing session name",
                        registry::MAX_SESSIONS
                    ),
                ));
                if slot_tx.send((reply_rx, None)).is_err() {
                    break;
                }
                continue;
            }
        };
        if slot_tx
            .send((reply_rx, Some(Arc::clone(&entry.handle))))
            .is_err()
        {
            break;
        }
        // Read split: with the pool enabled, read-only queries never
        // touch the writer lane.
        if let (Some(pool_tx), true) = (gate.pool_tx.as_ref(), request.cmd.is_read()) {
            let ticket = entry.handle.current_ticket();
            let mut job = ReadJob {
                meta,
                cmd: request.cmd,
                deadline_ms: request.deadline_ms,
                ticket,
                handle: Arc::clone(&entry.handle),
                reply: reply_tx,
                enqueued: Instant::now(),
            };
            if job.handle.is_published(ticket) {
                // Fast path: every prior write is already published, so
                // the snapshot is current — execute right here, zero
                // cross-thread handoffs.
                job.meta.request_id = Some(entry.handle.next_request_id());
                registry::serve_read(job, &gate.shared);
            } else if gate.shared.pending_reads.load(Ordering::SeqCst)
                >= gate.shared.read_backlog_cap()
            {
                // Rejected before admission: consumes no request id,
                // mirroring the lane's rollback on a full queue.
                gate.shared.rejected_overload.fetch_add(1, Ordering::SeqCst);
                obs::counter_add("server.rejected.overload", 1);
                let _ = job.reply.send(proto::error_envelope(
                    &job.meta,
                    "overload",
                    &format!(
                        "read backlog full ({} deep); retry later",
                        gate.shared.read_backlog_cap()
                    ),
                ));
            } else {
                job.meta.request_id = Some(entry.handle.next_request_id());
                gate.shared.pending_reads.fetch_add(1, Ordering::SeqCst);
                if let Err(mpsc::SendError(mut job)) = pool_tx.send(job) {
                    gate.shared.pending_reads.fetch_sub(1, Ordering::SeqCst);
                    job.meta.request_id = None;
                    let _ = job.reply.send(proto::error_envelope(
                        &job.meta,
                        "shutdown",
                        "server is draining",
                    ));
                }
            }
            continue;
        }
        let is_shutdown = matches!(request.cmd, Command::Shutdown);
        match entry.handle.admit_lane(
            &entry.lane_tx,
            meta,
            request.cmd,
            request.deadline_ms,
            reply_tx,
        ) {
            Ok(()) => {
                if is_shutdown {
                    // Stop reading: this connection asked us to exit.
                    break;
                }
            }
            Err(TrySendError::Full(mut job)) => {
                // The admission rolled the request id back; the rejection
                // envelope must not carry the id the next admitted
                // request will reuse.
                job.meta.request_id = None;
                gate.shared.rejected_overload.fetch_add(1, Ordering::SeqCst);
                obs::counter_add("server.rejected.overload", 1);
                let _ = job.reply.send(proto::error_envelope(
                    &job.meta,
                    "overload",
                    &format!(
                        "request queue full ({} deep); retry later",
                        gate.shared.queue_depth
                    ),
                ));
            }
            Err(TrySendError::Disconnected(mut job)) => {
                job.meta.request_id = None;
                let _ = job.reply.send(proto::error_envelope(
                    &job.meta,
                    "shutdown",
                    "server is draining",
                ));
                break;
            }
        }
    }
}

/// One TCP connection: a reader (this thread) plus a writer thread that
/// drains reply slots in admission order.
fn connection(stream: TcpStream, gate: Gate) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (slot_tx, slot_rx) = mpsc::channel::<ReplySlot>();
    let writer = thread::spawn(move || {
        let mut w = BufWriter::new(write_half);
        for (slot, handle) in slot_rx {
            // A dropped reply sender (job discarded at teardown) just
            // skips the slot; admitted-and-served replies always arrive.
            let Ok(line) = slot.recv() else { continue };
            let start = Instant::now();
            if w.write_all(line.as_bytes()).is_err()
                || w.write_all(b"\n").is_err()
                || w.flush().is_err()
            {
                break;
            }
            if let Some(handle) = &handle {
                let d = start.elapsed();
                handle.record_stage("reply_write", d);
                if obs::trace_enabled() {
                    obs::trace::emit_complete("reply_write", start, d);
                }
            }
        }
    });
    serve_lines(BufReader::new(stream), &slot_tx, &gate);
    drop(slot_tx);
    // Reader done; the writer exits once every admitted request's reply
    // has been drained.
    let _ = writer.join();
}

/// A bound TCP server, ready to `run`.
pub struct Server {
    listener: TcpListener,
    config: ServerConfig,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:7400`; port 0 picks a free port).
    ///
    /// # Errors
    ///
    /// Returns [`MgbaError::Io`] when the address cannot be bound.
    pub fn bind(addr: &str, config: ServerConfig) -> Result<Self, MgbaError> {
        let listener = TcpListener::bind(addr).map_err(|e| MgbaError::io(addr, e))?;
        Ok(Self { listener, config })
    }

    /// The bound address (useful with port 0).
    ///
    /// # Errors
    ///
    /// Returns [`MgbaError::Io`] when the socket refuses to report it.
    pub fn local_addr(&self) -> Result<SocketAddr, MgbaError> {
        self.listener
            .local_addr()
            .map_err(|e| MgbaError::io("listener", e))
    }

    /// Serves connections until a `shutdown` request drains the lanes.
    ///
    /// # Errors
    ///
    /// Returns [`MgbaError::Io`] when the listener cannot be switched to
    /// non-blocking mode (required for graceful exit).
    pub fn run(self) -> Result<(), MgbaError> {
        let _span = obs::span("server.run");
        self.listener
            .set_nonblocking(true)
            .map_err(|e| MgbaError::io("listener", e))?;
        let shared = Arc::new(Shared::new(
            self.config.queue_depth,
            self.config.read_workers,
        ));
        let registry = Registry::new(
            self.config.queue_depth,
            Arc::clone(&shared),
            self.config.session_ttl(),
            self.config.slow_ms,
            self.config.durability(),
        );
        // Crash-safe restart: rebuild every durable session from its
        // checkpoint + WAL tail before the first connection is accepted.
        registry.recover();
        let (pool_tx, pool) = spawn_read_pool(&shared);
        let gate = Gate {
            registry: Arc::clone(&registry),
            shared: Arc::clone(&shared),
            pool_tx,
            default_deadline_ms: self.config.default_deadline_ms,
        };
        while !shared.shutting_down.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    // Request/response JSON lines are small writes; with
                    // Nagle on, every strict (non-pipelined) round trip
                    // stalls on the peer's delayed ACK (~40 ms). Latency
                    // is the product here — trade the batching away.
                    let _ = stream.set_nodelay(true);
                    obs::counter_add("server.connections", 1);
                    let gate = gate.clone();
                    thread::spawn(move || connection(stream, gate));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    thread::sleep(ACCEPT_POLL);
                }
                Err(_) => {
                    // Transient accept failure; keep serving.
                    thread::sleep(ACCEPT_POLL);
                }
            }
        }
        drop(gate);
        for lane in registry.close() {
            let _ = lane.join();
        }
        // Read workers poll the shutdown flag, so they are joinable even
        // while a lingering connection thread still holds a queue-sender
        // clone — no leaked threads behind `run`'s return.
        for worker in pool {
            let _ = worker.join();
        }
        Ok(())
    }
}

/// Serves one request stream to one response sink (no TCP). This is the
/// `--stdio` engine and the deterministic unit-test entry: responses
/// come back in admission order on the returned writer.
///
/// Exits when the input ends or a `shutdown` request is served; either
/// way every lane (and the read pool, when enabled) drains before the
/// writer is returned.
///
/// # Errors
///
/// Currently infallible at this layer (I/O failures terminate the
/// stream, matching a disconnecting client); the `Result` keeps the
/// signature stable for front-ends that must report bind-style errors.
pub fn serve_stream<R, W>(config: &ServerConfig, reader: R, writer: W) -> Result<W, MgbaError>
where
    R: BufRead,
    W: Write + Send + 'static,
{
    let shared = Arc::new(Shared::new(config.queue_depth, config.read_workers));
    let registry = Registry::new(
        config.queue_depth,
        Arc::clone(&shared),
        config.session_ttl(),
        config.slow_ms,
        config.durability(),
    );
    registry.recover();
    let (pool_tx, pool) = spawn_read_pool(&shared);
    let gate = Gate {
        registry: Arc::clone(&registry),
        shared: Arc::clone(&shared),
        pool_tx,
        default_deadline_ms: config.default_deadline_ms,
    };
    let (slot_tx, slot_rx) = mpsc::channel::<ReplySlot>();
    let writer_thread = thread::spawn(move || {
        let mut w = writer;
        for (slot, handle) in slot_rx {
            let Ok(line) = slot.recv() else { continue };
            let start = Instant::now();
            if w.write_all(line.as_bytes()).is_err()
                || w.write_all(b"\n").is_err()
                || w.flush().is_err()
            {
                break;
            }
            if let Some(handle) = &handle {
                let d = start.elapsed();
                handle.record_stage("reply_write", d);
                if obs::trace_enabled() {
                    obs::trace::emit_complete("reply_write", start, d);
                }
            }
        }
        w
    });
    serve_lines(reader, &slot_tx, &gate);
    // Teardown order matters: close lanes first (they publish the last
    // replies), then drop the pool sender so read workers exit, then
    // close the slot stream so the writer drains and returns.
    for lane in registry.close() {
        let _ = lane.join();
    }
    drop(gate);
    for worker in pool {
        let _ = worker.join();
    }
    drop(slot_tx);
    let writer = writer_thread
        .join()
        .unwrap_or_else(|_| panic!("writer thread panicked"));
    Ok(writer)
}

/// Runs the daemon over stdin/stdout (`serve --stdio`).
///
/// # Errors
///
/// Propagates [`serve_stream`] errors.
pub fn serve_stdio(config: &ServerConfig) -> Result<(), MgbaError> {
    let stdin = std::io::stdin();
    serve_stream(config, stdin.lock(), std::io::stdout())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_session(config: &ServerConfig, script: &str) -> Vec<String> {
        let out = serve_stream(config, script.as_bytes(), Vec::<u8>::new()).unwrap();
        String::from_utf8(out)
            .unwrap()
            .lines()
            .map(str::to_owned)
            .collect()
    }

    fn split_config(read_workers: usize) -> ServerConfig {
        ServerConfig {
            read_workers,
            ..ServerConfig::default()
        }
    }

    #[test]
    fn stream_serves_in_order_and_drains_on_eof() {
        let script = "{\"id\":1,\"cmd\":\"ping\"}\n{\"id\":2,\"cmd\":\"ping\"}\n";
        let lines = run_session(&ServerConfig::default(), script);
        // v1 requests keep working, flagged as deprecated.
        assert_eq!(
            lines,
            vec![
                "{\"id\":1,\"ok\":true,\"deprecated\":true,\"result\":{\"pong\":true}}",
                "{\"id\":2,\"ok\":true,\"deprecated\":true,\"result\":{\"pong\":true}}",
            ]
        );
    }

    #[test]
    fn v2_requests_carry_their_session_in_the_envelope() {
        let script = "{\"id\":1,\"proto\":2,\"session\":\"opt-a\",\"cmd\":\"ping\"}\n";
        let lines = run_session(&ServerConfig::default(), script);
        assert_eq!(
            lines,
            vec![
                "{\"id\":1,\"ok\":true,\"session\":\"opt-a\",\"request_id\":1,\"result\":{\"pong\":true}}"
            ]
        );
    }

    #[test]
    fn malformed_line_gets_error_and_serving_continues() {
        let script = "this is not json\n{\"id\":7,\"cmd\":\"ping\"}\n";
        let lines = run_session(&ServerConfig::default(), script);
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"ok\":false"));
        assert!(lines[0].contains("\"kind\":\"usage\""));
        assert!(lines[0].contains("\"code\":\"usage\""));
        assert!(lines[1].contains("\"id\":7"));
        assert!(lines[1].contains("\"pong\":true"));
    }

    #[test]
    fn shutdown_stops_reading_further_input() {
        let script = "{\"id\":1,\"cmd\":\"shutdown\"}\n{\"id\":2,\"cmd\":\"ping\"}\n";
        let lines = run_session(&ServerConfig::default(), script);
        // The ping after shutdown is never read: exactly one response.
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("\"draining\":true"));
    }

    #[test]
    fn hello_negotiates_proto_and_lists_sessions() {
        let script = concat!(
            r#"{"id":1,"cmd":"hello"}"#,
            "\n",
            r#"{"id":2,"proto":2,"session":"opt-a","cmd":"ping"}"#,
            "\n",
            r#"{"id":3,"proto":2,"session":"default","cmd":"hello","max_proto":1}"#,
            "\n",
        );
        let lines = run_session(&ServerConfig::default(), script);
        assert_eq!(lines.len(), 3);
        // Before any addressed request: no sessions yet.
        assert!(lines[0].contains("\"proto\":2"), "{}", lines[0]);
        assert!(lines[0].contains("\"sessions\":[]"), "{}", lines[0]);
        // hello creates no session; the addressed ping created one.
        assert!(lines[2].contains("\"proto\":1"), "{}", lines[2]);
        assert!(
            lines[2].contains("\"sessions\":[\"opt-a\"]"),
            "{}",
            lines[2]
        );
    }

    #[test]
    fn sessions_are_isolated_state_shards() {
        let script = concat!(
            r#"{"id":1,"proto":2,"session":"x","cmd":"load","design":"small:3"}"#,
            "\n",
            r#"{"id":2,"proto":2,"session":"y","cmd":"wns"}"#,
            "\n",
            r#"{"id":3,"proto":2,"session":"x","cmd":"wns"}"#,
            "\n",
        );
        let lines = run_session(&ServerConfig::default(), script);
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"ok\":true"), "{}", lines[0]);
        // Session y never loaded a design.
        assert!(lines[1].contains("\"code\":\"usage\""), "{}", lines[1]);
        assert!(lines[1].contains("no design loaded"), "{}", lines[1]);
        assert!(lines[2].contains("\"wns\":"), "{}", lines[2]);
    }

    #[test]
    fn split_mode_is_byte_identical_to_funnel_mode() {
        // Interleaved reads and writes across two sessions: the split
        // path (reads on pool threads) must produce exactly the bytes
        // the funnel path produces, in the same order.
        let script = concat!(
            r#"{"id":1,"proto":2,"session":"a","cmd":"load","design":"small:5"}"#,
            "\n",
            r#"{"id":2,"proto":2,"session":"a","cmd":"wns"}"#,
            "\n",
            r#"{"id":3,"proto":2,"session":"b","cmd":"load","design":"small:3"}"#,
            "\n",
            r#"{"id":4,"proto":2,"session":"a","cmd":"calibrate","solver":"cgnr"}"#,
            "\n",
            r#"{"id":5,"proto":2,"session":"a","cmd":"wns"}"#,
            "\n",
            r#"{"id":6,"proto":2,"session":"b","cmd":"slack","top":3}"#,
            "\n",
            r#"{"id":7,"proto":2,"session":"a","cmd":"tns"}"#,
            "\n",
            r#"{"id":8,"proto":2,"session":"b","cmd":"ping"}"#,
            "\n",
        );
        let funnel = run_session(&split_config(0), script);
        let split = run_session(&split_config(4), script);
        assert_eq!(funnel.len(), 8);
        assert_eq!(funnel, split);
    }

    #[test]
    fn metrics_command_lands_in_stats_latency_set() {
        // `metrics` is itself a command: the lane records its latency
        // like any other, so the following `stats` reports it.
        let script = "{\"id\":1,\"cmd\":\"metrics\"}\n{\"id\":2,\"cmd\":\"stats\"}\n";
        let lines = run_session(&ServerConfig::default(), script);
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"exposition\""), "{}", lines[0]);
        assert!(lines[0].contains("mgba_server_queue_depth"), "{}", lines[0]);
        assert!(
            lines[1].contains("\"metrics\":{\"count\":1"),
            "stats must include the metrics command: {}",
            lines[1]
        );
        assert!(
            lines[1].contains("\"session\":\"default\""),
            "stats names its session: {}",
            lines[1]
        );
    }

    #[test]
    fn expired_deadline_is_rejected_at_dequeue() {
        // sleep(30) occupies the lane while the deadline_ms:1 ping
        // waits in the queue past its deadline.
        let script = "{\"id\":1,\"cmd\":\"sleep\",\"ms\":30}\n\
                      {\"id\":2,\"cmd\":\"ping\",\"deadline_ms\":1}\n\
                      {\"id\":3,\"cmd\":\"ping\"}\n";
        let lines = run_session(&ServerConfig::default(), script);
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"slept_ms\":30"));
        assert!(
            lines[1].contains("\"kind\":\"deadline\""),
            "got {}",
            lines[1]
        );
        assert!(lines[2].contains("\"pong\":true"));
    }

    #[test]
    fn read_behind_slow_write_honors_its_deadline_in_split_mode() {
        // The read is admitted behind a 60 ms write, so its ticket
        // cannot publish inside the 1 ms deadline: the pool must reject
        // it instead of waiting out the write.
        let script = "{\"id\":1,\"cmd\":\"sleep\",\"ms\":60}\n\
                      {\"id\":2,\"cmd\":\"wns\",\"deadline_ms\":1}\n\
                      {\"id\":3,\"cmd\":\"ping\"}\n";
        let lines = run_session(&split_config(2), script);
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"slept_ms\":60"), "{}", lines[0]);
        assert!(lines[1].contains("\"kind\":\"deadline\""), "{}", lines[1]);
        assert!(lines[2].contains("\"pong\":true"), "{}", lines[2]);
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn injected_panic_is_isolated_and_state_auto_restores() {
        // Serialize against other failpoint-arming tests; arming happens
        // over the protocol, so take the lock manually instead of
        // `scoped`.
        let _lock = faultinject::exclusive();
        faultinject::clear();
        let script = concat!(
            r#"{"id":1,"cmd":"load","design":"small:3"}"#,
            "\n",
            r#"{"id":2,"cmd":"calibrate","solver":"cgnr"}"#,
            "\n",
            r#"{"id":3,"cmd":"wns"}"#,
            "\n",
            r#"{"id":4,"cmd":"failpoint","spec":"server.handle=panic*1"}"#,
            "\n",
            r#"{"id":5,"cmd":"wns"}"#,
            "\n",
            r#"{"id":6,"cmd":"wns"}"#,
            "\n",
            r#"{"id":7,"cmd":"stats"}"#,
            "\n",
        );
        let out = serve_stream(
            &ServerConfig::default(),
            script.as_bytes(),
            Vec::<u8>::new(),
        )
        .unwrap();
        faultinject::clear();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 7, "{text}");
        // The arming request itself succeeds (it arms *after* the hook).
        assert!(lines[3].contains("\"applied\":1"), "{}", lines[3]);
        // The next request hits the one-shot panic: typed internal error.
        assert!(lines[4].contains("\"ok\":false"), "{}", lines[4]);
        assert!(lines[4].contains("\"kind\":\"internal\""), "{}", lines[4]);
        assert!(lines[4].contains("restored"), "{}", lines[4]);
        // The request after that is served from the auto-restored
        // calibrated state: same wns bytes as before the crash, and NOT
        // degraded (the checkpoint carried the calibration).
        assert!(lines[5].contains("\"ok\":true"), "{}", lines[5]);
        assert!(!lines[5].contains("degraded"), "{}", lines[5]);
        let wns_field = |line: &str| {
            let start = line.find("\"wns\":").expect("wns field") + 6;
            line[start..]
                .split(&[',', '}'][..])
                .next()
                .unwrap()
                .to_owned()
        };
        assert_eq!(wns_field(lines[2]), wns_field(lines[5]));
        assert!(lines[6].contains("\"panics\":1"), "{}", lines[6]);
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn panic_before_calibration_degrades_until_recalibrated() {
        let _lock = faultinject::exclusive();
        faultinject::clear();
        let script = concat!(
            r#"{"id":1,"cmd":"load","design":"small:5"}"#,
            "\n",
            r#"{"id":2,"cmd":"failpoint","spec":"server.handle=panic*1"}"#,
            "\n",
            r#"{"id":3,"cmd":"wns"}"#,
            "\n",
            r#"{"id":4,"cmd":"wns"}"#,
            "\n",
            r#"{"id":5,"cmd":"calibrate","solver":"cgnr"}"#,
            "\n",
            r#"{"id":6,"cmd":"wns"}"#,
            "\n",
        );
        let out = serve_stream(
            &ServerConfig::default(),
            script.as_bytes(),
            Vec::<u8>::new(),
        )
        .unwrap();
        faultinject::clear();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 6, "{text}");
        assert!(lines[2].contains("\"kind\":\"internal\""), "{}", lines[2]);
        // Restored state has no calibration: served, but flagged.
        assert!(lines[3].contains("\"ok\":true"), "{}", lines[3]);
        assert!(lines[3].contains("\"degraded\":true"), "{}", lines[3]);
        // A successful calibrate clears the flag.
        assert!(lines[4].contains("\"ok\":true"), "{}", lines[4]);
        assert!(!lines[5].contains("degraded"), "{}", lines[5]);
    }

    #[test]
    fn default_deadline_applies_when_request_has_none() {
        let config = ServerConfig {
            default_deadline_ms: Some(1),
            ..ServerConfig::default()
        };
        let script = "{\"id\":1,\"cmd\":\"sleep\",\"ms\":30}\n{\"id\":2,\"cmd\":\"ping\"}\n";
        let lines = run_session(&config, script);
        // The sleep itself is admitted instantly (no queue wait), so it
        // runs; the ping queued behind it exceeds the default deadline.
        assert_eq!(lines.len(), 2);
        assert!(lines[1].contains("\"kind\":\"deadline\""), "{}", lines[1]);
    }
}
