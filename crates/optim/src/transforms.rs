//! Local timing-repair transforms: gate sizing and buffer insertion.
//!
//! These are the "millions of various modifications" of the paper's Fig. 5
//! optimization loop, at the granularity the flow applies them: given a
//! violating endpoint's worst path, improve the most promising spot and
//! let the engine's incremental update refresh timing.

use netlist::{CellId, CellRole, Function, PinIndex};
use serde::{Deserialize, Serialize};
use sta::{Path, Sta};

/// What a repair attempt did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Transform {
    /// A gate was swapped to a stronger drive.
    Upsize(CellId),
    /// A buffer was inserted to isolate a long wire.
    Buffer(CellId),
    /// Nothing on the path could be improved.
    None,
}

/// Statistics of applied transforms.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransformCounts {
    /// Gates upsized.
    pub upsizes: u64,
    /// Buffers inserted.
    pub buffers: u64,
    /// Gates downsized during power/area recovery.
    pub downsizes: u64,
}

impl TransformCounts {
    /// Total transforms applied.
    pub fn total(&self) -> u64 {
        self.upsizes + self.buffers + self.downsizes
    }

    /// Records a transform.
    pub fn record(&mut self, t: Transform) {
        match t {
            Transform::Upsize(_) => self.upsizes += 1,
            Transform::Buffer(_) => self.buffers += 1,
            Transform::None => {}
        }
    }
}

/// Minimum wire delay (ps) on an edge before buffering is considered.
const BUFFER_WIRE_THRESHOLD: f64 = 8.0;

/// Tries to repair the worst path of a violating endpoint.
///
/// Strategy (one transform per call, worst-first): find both the path
/// gate with the largest derated delay contribution that still has
/// sizing headroom, and the path edge with the largest wire delay. Apply
/// whichever dominates — **buffer** the wire when its delay exceeds the
/// worst gate contribution (the quadratic distributed-RC term makes
/// splitting profitable), otherwise **upsize** the gate.
///
/// Returns what was done. The engine's timing is updated incrementally
/// (sizing) or rebuilt (buffering) before returning.
pub fn repair_path(sta: &mut Sta, path: &Path, buffer_seq: &mut u64) -> Transform {
    // Candidate 1: worst derated gate contribution with headroom.
    let mut best: Option<(f64, CellId)> = None;
    for &g in &path.cells[1..path.cells.len().saturating_sub(1)] {
        if sta.netlist().cell(g).role != CellRole::Combinational {
            continue;
        }
        let lib = sta.netlist().cell(g).lib_cell;
        if sta.netlist().library().cell(lib).function == Function::ClkBuf {
            continue;
        }
        if sta.netlist().library().upsized(lib).is_none() {
            continue;
        }
        let contribution = sta.gate_delay(g) * sta.effective_derate(g);
        if best.map(|(c, _)| contribution > c).unwrap_or(true) {
            best = Some((contribution, g));
        }
    }

    // Candidate 2: longest wire edge worth buffering.
    let mut worst_edge: Option<(f64, CellId, CellId, PinIndex)> = None;
    for w in path.cells.windows(2) {
        let (from, to) = (w[0], w[1]);
        let Some(edge) = sta
            .graph()
            .fanins(to)
            .iter()
            .find(|e| e.from == from)
            .copied()
        else {
            continue;
        };
        if edge.wire_delay > BUFFER_WIRE_THRESHOLD
            && worst_edge
                .map(|(d, ..)| edge.wire_delay > d)
                .unwrap_or(true)
        {
            worst_edge = Some((edge.wire_delay, from, to, edge.pin));
        }
    }

    let gate_first = match (&best, &worst_edge) {
        (Some((c, _)), Some((w, ..))) => c >= w,
        (Some(_), None) => true,
        _ => false,
    };
    if gate_first {
        let (_, g) = best.expect("gate_first implies a gate candidate");
        let up = sta
            .netlist()
            .library()
            .upsized(sta.netlist().cell(g).lib_cell)
            .expect("candidate has sizing headroom");
        sta.resize_cell(g, up)
            .expect("upsizing preserves the function");
        return Transform::Upsize(g);
    }
    if let Some((_, from, to, pin)) = worst_edge {
        let Some(net) = sta.netlist().cell(from).output else {
            return Transform::None;
        };
        let buf_lib = sta
            .netlist()
            .library()
            .find("BUF_X4")
            .expect("standard library has BUF_X4");
        *buffer_seq += 1;
        let name = format!("rbuf_{buffer_seq}");
        match sta.insert_buffer(net, buf_lib, &name, &[(to, pin)]) {
            Ok(buf) => Transform::Buffer(buf),
            Err(_) => Transform::None,
        }
    } else {
        Transform::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::GeneratorConfig;
    use sta::{paths::worst_paths_to_endpoint, DerateSet, Sdc};

    fn tight_engine(seed: u64) -> Sta {
        let n = GeneratorConfig::small(seed).generate();
        let probe = Sta::new(n.clone(), Sdc::with_period(10_000.0), DerateSet::standard()).unwrap();
        let max_arrival = probe
            .netlist()
            .endpoints()
            .iter()
            .map(|&e| probe.endpoint_arrival(e))
            .filter(|a| a.is_finite())
            .fold(0.0, f64::max);
        // Probe WNS first: slack shifts 1:1 with the period, so this
        // guarantees violations regardless of clock-tree insertion delay.
        let period = 10_000.0 - probe.wns() - 0.1 * max_arrival;
        Sta::new(n, Sdc::with_period(period), DerateSet::standard()).unwrap()
    }

    #[test]
    fn repair_improves_the_repaired_path_slack() {
        let mut sta = tight_engine(131);
        let worst = sta.violating_endpoints()[0];
        let path = worst_paths_to_endpoint(&sta, worst, 1)[0].clone();
        let before = sta.setup_slack(worst);
        let mut seq = 0;
        let t = repair_path(&mut sta, &path, &mut seq);
        assert_ne!(t, Transform::None, "a violating path must be repairable");
        let after = sta.setup_slack(worst);
        assert!(
            after > before - 1e-9,
            "repair must not worsen the endpoint: {before} → {after}"
        );
    }

    #[test]
    fn repair_picks_the_dominant_candidate() {
        let mut sta = tight_engine(132);
        let worst = sta.violating_endpoints()[0];
        let path = worst_paths_to_endpoint(&sta, worst, 1)[0].clone();
        // Compute the candidates the same way repair does.
        let worst_gate = path.cells[1..path.cells.len() - 1]
            .iter()
            .filter(|&&g| sta.netlist().cell(g).role == CellRole::Combinational)
            .map(|&g| sta.gate_delay(g) * sta.effective_derate(g))
            .fold(0.0, f64::max);
        let worst_wire = path
            .cells
            .windows(2)
            .filter_map(|w| {
                sta.graph()
                    .fanins(w[1])
                    .iter()
                    .find(|e| e.from == w[0])
                    .map(|e| e.wire_delay)
            })
            .fold(0.0, f64::max);
        let mut seq = 0;
        match repair_path(&mut sta, &path, &mut seq) {
            Transform::Upsize(_) => assert!(worst_gate >= worst_wire),
            Transform::Buffer(_) => assert!(worst_wire > worst_gate),
            Transform::None => panic!("violating path must be repairable"),
        }
    }

    #[test]
    fn exhausted_sizing_falls_back_to_buffering() {
        let mut sta = tight_engine(133);
        // Max out every gate first.
        let cells: Vec<CellId> = sta
            .netlist()
            .cells()
            .filter(|(_, c)| {
                c.role == CellRole::Combinational
                    && sta.netlist().library().cell(c.lib_cell).function != Function::ClkBuf
            })
            .map(|(id, _)| id)
            .collect();
        for c in cells {
            while let Some(up) = sta
                .netlist()
                .library()
                .upsized(sta.netlist().cell(c).lib_cell)
            {
                sta.resize_cell(c, up).unwrap();
            }
        }
        let violating = sta.violating_endpoints();
        if violating.is_empty() {
            return; // sizing alone closed this seed; nothing to assert
        }
        let path = worst_paths_to_endpoint(&sta, violating[0], 1)[0].clone();
        let mut seq = 0;
        match repair_path(&mut sta, &path, &mut seq) {
            Transform::Buffer(_) => {
                assert_eq!(sta.netlist().buffer_count(), 1);
            }
            Transform::None => {} // no long-enough wire on this path
            Transform::Upsize(_) => panic!("sizing was exhausted"),
        }
    }

    #[test]
    fn counts_accumulate() {
        let mut c = TransformCounts::default();
        c.record(Transform::Upsize(CellId::new(0)));
        c.record(Transform::Buffer(CellId::new(1)));
        c.record(Transform::None);
        assert_eq!(c.upsizes, 1);
        assert_eq!(c.buffers, 1);
        assert_eq!(c.total(), 2);
    }
}
