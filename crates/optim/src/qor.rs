//! Quality-of-result metrics (the paper's Table 2 columns).

use serde::{Deserialize, Serialize};
use sta::{paths::worst_paths_to_endpoint, pba_timing, Sta};

/// A snapshot of the design-quality metrics the paper's Table 2 compares.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Qor {
    /// Worst negative slack, ps (GBA view of the measuring engine).
    pub wns: f64,
    /// Total negative slack, ps.
    pub tns: f64,
    /// Endpoints with negative setup slack.
    pub violating_endpoints: usize,
    /// Total cell area, µm².
    pub area: f64,
    /// Total leakage power, nW.
    pub leakage: f64,
    /// Data-network buffers.
    pub buffers: usize,
}

impl Qor {
    /// Captures the metrics from an engine in its current timing view.
    pub fn capture(sta: &Sta) -> Self {
        Self {
            wns: sta.wns(),
            tns: sta.tns(),
            violating_endpoints: sta.violating_endpoints().len(),
            area: sta.netlist().total_area(),
            leakage: sta.netlist().total_leakage(),
            buffers: sta.netlist().buffer_count(),
        }
    }

    /// Captures the metrics with WNS/TNS measured by **golden PBA** on
    /// each endpoint's worst path — the signoff-grade view used to compare
    /// flows fairly (a flow driven by a less pessimistic timer would look
    /// artificially bad under the original GBA yardstick).
    pub fn capture_pba(sta: &Sta) -> Self {
        // Path tracing + PBA retiming per endpoint is embarrassingly
        // parallel; the reduction folds the per-endpoint slacks serially
        // in endpoint order, so the result is bit-identical for every
        // thread count.
        let endpoints = sta.netlist().endpoints();
        let slacks = parallel::par_map(parallel::global(), &endpoints, |&e| {
            worst_paths_to_endpoint(sta, e, 1)
                .into_iter()
                .next()
                .map(|path| pba_timing(sta, &path).slack)
        });
        let mut wns = f64::INFINITY;
        let mut tns = 0.0;
        let mut violating = 0usize;
        for slack in slacks.into_iter().flatten() {
            if slack.is_finite() {
                wns = wns.min(slack);
                if slack < 0.0 {
                    tns += slack;
                    violating += 1;
                }
            }
        }
        Self {
            wns,
            tns,
            violating_endpoints: violating,
            area: sta.netlist().total_area(),
            leakage: sta.netlist().total_leakage(),
            buffers: sta.netlist().buffer_count(),
        }
    }

    /// Relative improvement of `other` over `self` in percent, for a
    /// smaller-is-better metric (`area`, `leakage`, `buffers`):
    /// `(self − other) / self × 100`.
    pub fn reduction_percent(base: f64, other: f64) -> f64 {
        if base != 0.0 {
            (base - other) / base * 100.0
        } else {
            0.0
        }
    }

    /// Relative WNS/TNS improvement of `other` over `base` in percent:
    /// positive when `other` is less negative (the paper's Table 2 sign
    /// convention).
    pub fn slack_improvement_percent(base: f64, other: f64) -> f64 {
        if base.abs() > 0.0 {
            (other - base) / base.abs() * 100.0
        } else if other > base {
            100.0
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::GeneratorConfig;
    use sta::{DerateSet, Sdc};

    #[test]
    fn capture_reflects_engine() {
        let n = GeneratorConfig::small(121).generate();
        let sta = Sta::new(n, Sdc::with_period(900.0), DerateSet::standard()).unwrap();
        let q = Qor::capture(&sta);
        assert_eq!(q.wns, sta.wns());
        assert_eq!(q.tns, sta.tns());
        assert!(q.area > 0.0);
        assert!(q.leakage > 0.0);
        assert_eq!(q.buffers, sta.netlist().buffer_count());
    }

    #[test]
    fn reduction_percent_signs() {
        assert_eq!(Qor::reduction_percent(100.0, 90.0), 10.0);
        assert_eq!(Qor::reduction_percent(100.0, 110.0), -10.0);
        assert_eq!(Qor::reduction_percent(0.0, 5.0), 0.0);
    }

    #[test]
    fn slack_improvement_signs() {
        // WNS −100 → −50: 50% improvement.
        assert_eq!(Qor::slack_improvement_percent(-100.0, -50.0), 50.0);
        // WNS −100 → −120: −20% (degradation, like the paper's D2).
        assert_eq!(Qor::slack_improvement_percent(-100.0, -120.0), -20.0);
        assert_eq!(Qor::slack_improvement_percent(0.0, 5.0), 100.0);
        assert_eq!(Qor::slack_improvement_percent(0.0, 0.0), 0.0);
    }
}
