//! Timing-closure optimization flow for the mGBA framework.
//!
//! The paper's Fig. 5 implementation flow: a violation-driven loop of
//! gate sizing and buffer insertion over an incremental STA engine, with
//! a pluggable timing view — original GBA or the pessimism-reduced mGBA.
//! Quality-of-result metrics ([`Qor`]) capture the Table 2 columns
//! (WNS/TNS/area/leakage/buffers), and [`FlowResult`] carries the Table 5
//! runtime split (flow time vs. mGBA fitting time).
//!
//! # Example
//!
//! ```
//! use netlist::GeneratorConfig;
//! use optim::{run_flow, FlowConfig};
//! use sta::{DerateSet, Sdc, Sta};
//!
//! # fn main() -> Result<(), netlist::BuildError> {
//! let design = GeneratorConfig::small(9).generate();
//! let mut sta = Sta::new(design, Sdc::with_period(900.0), DerateSet::standard())?;
//! let result = run_flow(&mut sta, &FlowConfig::gba());
//! assert!(result.qor_final.tns >= result.qor_initial.tns);
//! # Ok(())
//! # }
//! ```

pub mod flow;
pub mod hold;
pub mod qor;
pub mod transforms;

pub use flow::{run_flow, FlowConfig, FlowResult, TimerMode};
pub use hold::{fix_hold_violations, hold_violations, HoldFixReport};
pub use qor::Qor;
pub use transforms::{repair_path, Transform, TransformCounts};

/// One-import facade for flow-level drivers: everything in
/// [`mgba::prelude`] (engine, fit config, solvers, typed error) plus the
/// optimization-flow types. `optim` depends on `mgba`, so the flow types
/// cannot live in `mgba::prelude` itself — import this one from code
/// that runs the full fit-then-optimize pipeline.
pub mod prelude {
    pub use crate::flow::{run_flow, FlowConfig, FlowResult, PassTrace, TimerMode};
    pub use crate::qor::Qor;
    pub use mgba::prelude::*;
}
