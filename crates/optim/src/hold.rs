//! Hold-time analysis and fixing.
//!
//! The paper's Eq. (1) constrains both setup *and* hold slack; the
//! optimization sections then focus on setup. This module completes the
//! hold side of the flow: finding endpoints whose early data arrival
//! races the late capture clock, and fixing them the way production
//! flows do — padding the `D` input with minimum-size delay buffers,
//! while watching the setup slack the padding erodes.

use netlist::{CellId, CellRole, DriveStrength, Function, PinIndex};
use serde::{Deserialize, Serialize};
use sta::Sta;

/// Outcome of a hold-fixing run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HoldFixReport {
    /// Hold-violating flip-flops before fixing.
    pub violations_before: usize,
    /// Hold-violating flip-flops after fixing.
    pub violations_after: usize,
    /// Delay buffers inserted.
    pub buffers_added: usize,
    /// Fixes skipped because padding would have broken setup.
    pub skipped_for_setup: usize,
}

/// Flip-flops with negative hold slack, worst first.
pub fn hold_violations(sta: &Sta) -> Vec<(CellId, f64)> {
    let mut v: Vec<(CellId, f64)> = sta
        .netlist()
        .endpoints()
        .into_iter()
        .filter_map(|e| {
            sta.hold_slack(e)
                .filter(|s| s.is_finite() && *s < 0.0)
                .map(|s| (e, s))
        })
        .collect();
    v.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite slacks"));
    v
}

/// Maximum padding buffers per endpoint (a hold violation deeper than
/// this many buffer delays indicates a structural problem, not a race).
const MAX_BUFFERS_PER_ENDPOINT: usize = 8;

/// Fixes hold violations by inserting minimum-size buffers on the
/// violating flip-flops' `D` nets. A fix is rolled back if it would push
/// the endpoint's *setup* slack below `setup_guard`.
///
/// Returns the report; the engine's timing is fully updated.
pub fn fix_hold_violations(sta: &mut Sta, setup_guard: f64) -> HoldFixReport {
    let before = hold_violations(sta);
    let mut buffers_added = 0usize;
    let mut skipped = 0usize;
    let buf_lib = sta
        .netlist()
        .library()
        .variant(Function::Buf, DriveStrength::X1)
        .expect("standard library has BUF_X1");

    for (ff, _) in before.clone() {
        let mut attempts = 0;
        while attempts < MAX_BUFFERS_PER_ENDPOINT {
            let hold = sta.hold_slack(ff).unwrap_or(f64::INFINITY);
            if hold >= 0.0 {
                break;
            }
            // Setup headroom check: padding delays the late path too.
            if sta.setup_slack(ff) < setup_guard {
                skipped += 1;
                break;
            }
            let Some(d_net) = sta.netlist().cell(ff).inputs[PinIndex::FF_D.index()] else {
                break;
            };
            let name = format!("hold_buf_{}_{}", sta.netlist().cell(ff).name, attempts);
            if sta
                .insert_buffer(d_net, buf_lib, &name, &[(ff, PinIndex::FF_D)])
                .is_err()
            {
                break;
            }
            buffers_added += 1;
            attempts += 1;
        }
    }

    HoldFixReport {
        violations_before: before.len(),
        violations_after: hold_violations(sta).len(),
        buffers_added,
        skipped_for_setup: skipped,
    }
}

/// Counts hold-clean sequential endpoints (diagnostic used in reports).
pub fn hold_clean_count(sta: &Sta) -> usize {
    sta.netlist()
        .cells()
        .filter(|(_, c)| c.role == CellRole::Sequential)
        .filter(|(id, _)| sta.hold_slack(*id).map(|s| s >= 0.0).unwrap_or(false))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::{GeneratorConfig, Library, NetlistBuilder, Point};
    use sta::{DerateSet, Sdc};

    /// A design with a deliberate hold race: two flip-flops on distant
    /// clock-tree leaves, connected by a single fast gate, so the late
    /// capture clock beats the early data edge.
    fn racy() -> Sta {
        let mut b = NetlistBuilder::new("racy", Library::standard());
        let clk = b.add_clock_port("clk", Point::new(0.0, 0.0));
        // Launch clock path: direct. Capture clock path: through two
        // clock buffers (large insertion delay → hold race at capture).
        let cb1 = b
            .add_gate("cb1", "CLKBUF_X2", Point::new(100.0, 0.0), &[clk])
            .unwrap();
        let cb2 = b
            .add_gate(
                "cb2",
                "CLKBUF_X2",
                Point::new(200.0, 0.0),
                &[b.cell_output(cb1)],
            )
            .unwrap();
        let d = b.add_input("d", Point::new(0.0, 10.0));
        let ff_l = b
            .add_flip_flop("ff_l", "DFF_X1", Point::new(5.0, 10.0), clk)
            .unwrap();
        b.connect_flip_flop_d_net(ff_l, d);
        let g = b
            .add_gate(
                "g",
                "INV_X4",
                Point::new(10.0, 10.0),
                &[b.cell_output(ff_l)],
            )
            .unwrap();
        let ff_c = b
            .add_flip_flop("ff_c", "DFF_X1", Point::new(15.0, 10.0), b.cell_output(cb2))
            .unwrap();
        b.connect_flip_flop_d(ff_c, g).unwrap();
        let q = b.cell_output(ff_c);
        b.add_output("y", Point::new(20.0, 10.0), q).unwrap();
        // Early input arrival keeps the launch flop itself hold-clean;
        // only the engineered ff_c race remains.
        let mut sdc = Sdc::with_period(5000.0);
        sdc.input_delay_early = 50.0;
        sdc.input_delay_late = 60.0;
        Sta::new(b.build().unwrap(), sdc, DerateSet::standard()).unwrap()
    }

    #[test]
    fn racy_design_has_a_hold_violation() {
        let sta = racy();
        let v = hold_violations(&sta);
        assert_eq!(v.len(), 1);
        assert_eq!(sta.netlist().cell(v[0].0).name, "ff_c");
        assert!(v[0].1 < 0.0);
    }

    #[test]
    fn padding_fixes_the_race() {
        let mut sta = racy();
        let report = fix_hold_violations(&mut sta, 0.0);
        assert_eq!(report.violations_before, 1);
        assert_eq!(
            report.violations_after, 0,
            "padding must clear the race: {report:?}"
        );
        assert!(report.buffers_added >= 1);
        // The pad slowed the early path without breaking setup.
        let ff_c = sta.netlist().find_cell("ff_c").unwrap();
        assert!(sta.hold_slack(ff_c).unwrap() >= 0.0);
        assert!(sta.setup_slack(ff_c) > 0.0);
    }

    #[test]
    fn fix_respects_setup_guard() {
        let mut sta = racy();
        // An absurd guard forbids any padding.
        let report = fix_hold_violations(&mut sta, 1e12);
        assert_eq!(report.buffers_added, 0);
        assert_eq!(report.skipped_for_setup, 1);
        assert_eq!(report.violations_after, 1);
    }

    #[test]
    fn generated_designs_mostly_hold_clean_and_fixable() {
        let n = GeneratorConfig::small(701).generate();
        let mut sta = Sta::new(n, Sdc::with_period(5000.0), DerateSet::standard()).unwrap();
        let before = hold_violations(&sta).len();
        let report = fix_hold_violations(&mut sta, 0.0);
        assert_eq!(report.violations_before, before);
        assert!(
            report.violations_after <= report.violations_before,
            "fixing never increases violations"
        );
        assert!(hold_clean_count(&sta) > 0);
    }

    #[test]
    fn fixing_is_idempotent_when_clean() {
        let mut sta = racy();
        let _ = fix_hold_violations(&mut sta, 0.0);
        let again = fix_hold_violations(&mut sta, 0.0);
        assert_eq!(again.violations_before, 0);
        assert_eq!(again.buffers_added, 0);
    }
}
