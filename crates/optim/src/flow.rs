//! The timing-closure optimization flow (the paper's Fig. 5).
//!
//! A violation-driven repair loop: each pass walks the violating
//! endpoints worst-first, repairs their worst paths with sizing/buffering
//! transforms, and relies on the engine's incremental timing update. The
//! timer the loop *believes* is pluggable:
//!
//! - [`TimerMode::Gba`] — original graph-based slacks (pessimistic);
//! - [`TimerMode::Mgba`] — mGBA-corrected slacks, refreshed every few
//!   passes by re-fitting the weights against golden PBA.
//!
//! Because mGBA removes pessimism, the mGBA-driven flow sees fewer
//! "violations" that were never real, applies fewer transforms, and exits
//! earlier — the source of the paper's Table 2 (area/leakage/buffer
//! savings) and Table 5 (runtime) improvements.

use crate::qor::Qor;
use crate::transforms::{repair_path, Transform, TransformCounts};
use mgba::{run_mgba, MgbaConfig, Solver};
use netlist::CellRole;
use serde::{Deserialize, Serialize};
use sta::paths::worst_paths_to_endpoint;
use sta::Sta;
use std::time::{Duration, Instant};

/// Which timing view drives the optimization loop.
#[derive(Debug, Clone)]
pub enum TimerMode {
    /// Original GBA slacks.
    Gba,
    /// mGBA-corrected slacks.
    Mgba {
        /// Fitting configuration.
        config: MgbaConfig,
        /// Solver for the fit.
        solver: Solver,
        /// Re-fit the weights every this many passes (structural changes
        /// and sizing gradually stale the correction).
        refresh_every: usize,
    },
}

impl TimerMode {
    /// Display name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            TimerMode::Gba => "GBA",
            TimerMode::Mgba { .. } => "mGBA",
        }
    }
}

/// Flow configuration.
#[derive(Debug, Clone)]
pub struct FlowConfig {
    /// The timing view driving repair decisions.
    pub timer: TimerMode,
    /// Maximum repair passes.
    pub max_passes: usize,
    /// Violating endpoints repaired per pass (worst first).
    pub endpoints_per_pass: usize,
    /// Acceptable number of violating endpoints at exit (the paper notes
    /// post-route flows tolerate a small number of waivable violations).
    pub target_violations: usize,
    /// Abort after this many passes without TNS improvement.
    pub stall_passes: usize,
    /// Run the area/leakage recovery phase after timing repair: downsize
    /// every gate whose slack margin (in the flow's own timing view)
    /// allows it. This is where timing pessimism directly costs silicon —
    /// a pessimistic timer sees less positive slack and recovers less.
    pub recovery: bool,
    /// Slack guard band (ps) for recovery: a downsize is accepted only if
    /// no additional endpoint drops below this margin in the flow's
    /// timing view. Absorbs the mGBA fit residual so recovery decisions
    /// made in the corrected view stay safe against golden PBA.
    pub recovery_guard: f64,
    /// When set, run hold fixing after recovery with this setup guard
    /// (see [`crate::hold::fix_hold_violations`]).
    pub fix_hold: Option<f64>,
}

impl Default for FlowConfig {
    fn default() -> Self {
        Self {
            timer: TimerMode::Gba,
            max_passes: 80,
            endpoints_per_pass: 128,
            target_violations: 0,
            stall_passes: 4,
            recovery: true,
            recovery_guard: 150.0,
            fix_hold: None,
        }
    }
}

impl FlowConfig {
    /// A GBA-driven flow.
    pub fn gba() -> Self {
        Self::default()
    }

    /// An mGBA-driven flow with the given fit settings.
    pub fn mgba(config: MgbaConfig, solver: Solver) -> Self {
        Self {
            timer: TimerMode::Mgba {
                config,
                solver,
                refresh_every: 3,
            },
            ..Self::default()
        }
    }
}

/// One repair pass's snapshot, for convergence analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PassTrace {
    /// Pass number (1-based).
    pub pass: usize,
    /// WNS in the flow's timing view after the pass, ps.
    pub wns: f64,
    /// TNS after the pass, ps.
    pub tns: f64,
    /// Violating endpoints after the pass.
    pub violating: usize,
    /// Cumulative transforms applied.
    pub transforms: u64,
}

/// Outcome of a flow run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlowResult {
    /// Design name.
    pub design: String,
    /// Timer mode name (`"GBA"` / `"mGBA"`).
    pub timer: String,
    /// Repair passes executed.
    pub passes: usize,
    /// Transforms applied.
    pub counts: TransformCounts,
    /// Total wall time of the flow.
    pub elapsed: Duration,
    /// Portion spent inside mGBA fitting (zero for the GBA flow) — the
    /// paper's Table 5 "mGBA" column.
    pub mgba_time: Duration,
    /// QoR before optimization (original GBA view).
    pub qor_initial: Qor,
    /// QoR after optimization, measured in the **original GBA** view
    /// (weights cleared) so both flows are compared with one yardstick.
    pub qor_final: Qor,
    /// QoR after optimization in the flow's own timer view (what the exit
    /// decision saw).
    pub qor_final_timer_view: Qor,
    /// QoR after optimization with WNS/TNS measured by golden PBA — the
    /// common signoff yardstick for comparing flows.
    pub qor_final_pba: Qor,
    /// Whether the flow reached its violation target.
    pub closed: bool,
    /// Per-pass convergence snapshots (in the flow's own timing view).
    pub trace: Vec<PassTrace>,
}

/// Runs the timing-closure flow on `sta` (which must be freshly built,
/// i.e. with zero weights).
pub fn run_flow(sta: &mut Sta, config: &FlowConfig) -> FlowResult {
    let _span = obs::span("flow");
    let start = Instant::now();
    let mut mgba_time = Duration::ZERO;
    let qor_initial = Qor::capture(sta);
    let mut counts = TransformCounts::default();
    let mut buffer_seq = 0u64;
    let mut passes = 0usize;
    let mut stall = 0usize;
    let mut best_tns = f64::NEG_INFINITY;
    let mut trace: Vec<PassTrace> = Vec::new();
    let closed;

    loop {
        // Refresh the mGBA correction on schedule.
        if let TimerMode::Mgba {
            config: mgba_cfg,
            solver,
            refresh_every,
        } = &config.timer
        {
            if passes.is_multiple_of((*refresh_every).max(1)) {
                let _span = obs::span("refresh_fit");
                let t = Instant::now();
                let _report = run_mgba(sta, mgba_cfg, *solver);
                mgba_time += t.elapsed();
            }
        }

        let violating = sta.violating_endpoints();
        if violating.len() <= config.target_violations {
            closed = true;
            break;
        }
        if passes >= config.max_passes {
            closed = false;
            break;
        }

        let _repair_span = obs::span("repair");
        let mut applied = 0usize;
        for &endpoint in violating.iter().take(config.endpoints_per_pass) {
            // Earlier repairs this pass may have fixed this endpoint.
            if sta.setup_slack(endpoint) >= 0.0 {
                continue;
            }
            let Some(path) = worst_paths_to_endpoint(sta, endpoint, 1).into_iter().next() else {
                continue;
            };
            let t = repair_path(sta, &path, &mut buffer_seq);
            counts.record(t);
            if t != Transform::None {
                applied += 1;
            }
        }
        passes += 1;
        trace.push(PassTrace {
            pass: passes,
            wns: sta.wns(),
            tns: sta.tns(),
            violating: sta.violating_endpoints().len(),
            transforms: counts.total(),
        });
        if applied == 0 {
            // Nothing left to try: sizing exhausted and no bufferable
            // wires. Exit with whatever timing remains.
            closed = sta.violating_endpoints().len() <= config.target_violations;
            break;
        }
        let tns = sta.tns();
        if tns <= best_tns + 1e-9 {
            stall += 1;
            if stall >= config.stall_passes {
                closed = sta.violating_endpoints().len() <= config.target_violations;
                break;
            }
        } else {
            stall = 0;
            best_tns = tns;
        }
    }

    // Power/area recovery: greedily downsize gates (largest first) while
    // the flow's timing view stays clean. The timer's pessimism directly
    // limits how much can be reclaimed here.
    if config.recovery {
        let _span = obs::span("recovery");
        // Recovery probes *positive*-slack paths, which the repair-phase
        // fit (violating paths only) never constrained — so the recovery
        // correction must be fitted over every endpoint's near-critical
        // paths, and refreshed periodically as downsizing stales it.
        let recovery_fit = |sta: &mut Sta, mgba_time: &mut Duration| {
            if let TimerMode::Mgba {
                config: mgba_cfg,
                solver,
                ..
            } = &config.timer
            {
                let mut cfg = mgba_cfg.clone();
                cfg.only_violating = false;
                // Recovery only needs floors on each endpoint's worst few
                // paths; a slim fit keeps the overhead proportionate.
                cfg.paths_per_endpoint = 5;
                let t = Instant::now();
                let _ = run_mgba(sta, &cfg, *solver);
                *mgba_time += t.elapsed();
            }
        };
        // Per-endpoint slack floors: a downsize is accepted only if every
        // endpoint keeps `slack ≥ min(slack at recovery start, guard)` in
        // the flow's timing view. Endpoints already inside the guard band
        // must not degrade at all; comfortable endpoints may give up
        // slack down to the guard. (A count-based test would allow one
        // endpoint to be traded for a worse one.)
        recovery_fit(sta, &mut mgba_time);
        let endpoints = sta.netlist().endpoints();
        let capture_floors = |sta: &Sta| -> Vec<f64> {
            endpoints
                .iter()
                .map(|&e| sta.setup_slack(e).min(config.recovery_guard))
                .collect()
        };
        let holds_floors = |sta: &Sta, floors: &[f64]| {
            endpoints
                .iter()
                .zip(floors)
                .all(|(&e, &f)| !f.is_finite() || sta.setup_slack(e) >= f - 1e-9)
        };
        let mut floors = capture_floors(sta);
        let mut candidates: Vec<(f64, netlist::CellId)> = sta
            .netlist()
            .cells()
            .filter(|(_, c)| c.role == CellRole::Combinational)
            .map(|(id, c)| (sta.netlist().library().cell(c.lib_cell).area, id))
            .collect();
        candidates.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("areas are finite"));
        let mut accepted_since_fit = 0usize;
        for (_, cell) in candidates {
            // Step the cell down the drive ladder until a floor breaks.
            loop {
                let lib = sta.netlist().cell(cell).lib_cell;
                let Some(down) = sta.netlist().library().downsized(lib) else {
                    break;
                };
                sta.resize_cell(cell, down)
                    .expect("downsizing preserves the function");
                if !holds_floors(sta, &floors) {
                    sta.resize_cell(cell, lib)
                        .expect("reverting preserves the function");
                    break;
                }
                counts.downsizes += 1;
                accepted_since_fit += 1;
                if accepted_since_fit >= 2000 {
                    recovery_fit(sta, &mut mgba_time);
                    // Re-anchor on the refreshed view so fit noise cannot
                    // wedge the acceptance test.
                    floors = capture_floors(sta);
                    accepted_since_fit = 0;
                }
            }
        }
    }

    // Optional hold-fixing phase (setup-guarded padding).
    if let Some(guard) = config.fix_hold {
        let _span = obs::span("hold_fix");
        let report = crate::hold::fix_hold_violations(sta, guard);
        counts.buffers += report.buffers_added as u64;
    }

    let qor_final_timer_view = Qor::capture(sta);
    // Common yardsticks: original GBA view and golden PBA.
    sta.clear_weights();
    let qor_final = Qor::capture(sta);
    let qor_final_pba = Qor::capture_pba(sta);

    obs::gauge_set("flow.passes", passes as f64);
    obs::gauge_set("flow.transforms", counts.total() as f64);
    obs::gauge_set("flow.qor.tns_final", qor_final.tns);
    obs::gauge_set("flow.qor.area_final", qor_final.area);
    obs::gauge_set(
        "flow.sta.incremental_updates",
        sta.stats.incremental_updates as f64,
    );
    obs::gauge_set(
        "flow.sta.cells_propagated",
        sta.stats.cells_propagated as f64,
    );
    FlowResult {
        design: sta.netlist().name().to_owned(),
        timer: config.timer.name().to_owned(),
        passes,
        counts,
        elapsed: start.elapsed(),
        mgba_time,
        qor_initial,
        qor_final,
        qor_final_timer_view,
        qor_final_pba,
        closed,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::GeneratorConfig;
    use sta::{DerateSet, Sdc};

    /// Builds an engine whose clock period puts the worst endpoint at a
    /// violation of `frac` of the worst data arrival (probing WNS first,
    /// because slack shifts 1:1 with the period).
    fn tight_design(seed: u64, frac: f64) -> Sta {
        let n = GeneratorConfig::small(seed).generate();
        let probe = Sta::new(n.clone(), Sdc::with_period(10_000.0), DerateSet::standard()).unwrap();
        let max_arrival = probe
            .netlist()
            .endpoints()
            .iter()
            .map(|&e| probe.endpoint_arrival(e))
            .filter(|a| a.is_finite())
            .fold(0.0, f64::max);
        let period = 10_000.0 - probe.wns() - frac * max_arrival;
        Sta::new(n, Sdc::with_period(period), DerateSet::standard()).unwrap()
    }

    #[test]
    fn gba_flow_improves_timing() {
        let mut sta = tight_design(141, 0.08);
        let r = run_flow(&mut sta, &FlowConfig::gba());
        assert!(r.qor_initial.tns < 0.0, "start with violations");
        assert!(
            r.qor_final.tns > r.qor_initial.tns,
            "TNS must improve: {} → {}",
            r.qor_initial.tns,
            r.qor_final.tns
        );
        assert!(r.counts.total() > 0);
        assert!(r.passes > 0);
    }

    #[test]
    fn repair_only_flow_grows_area() {
        let mut sta = tight_design(142, 0.08);
        let mut cfg = FlowConfig::gba();
        cfg.recovery = false;
        let r = run_flow(&mut sta, &cfg);
        // Upsizing/buffering costs area and leakage.
        assert!(r.qor_final.area >= r.qor_initial.area);
        assert!(r.qor_final.leakage >= r.qor_initial.leakage);
    }

    #[test]
    fn recovery_reclaims_area() {
        let mut with = tight_design(142, 0.08);
        let r_with = run_flow(&mut with, &FlowConfig::gba());
        let mut without = tight_design(142, 0.08);
        let mut cfg = FlowConfig::gba();
        cfg.recovery = false;
        let r_without = run_flow(&mut without, &cfg);
        assert!(
            r_with.qor_final.area < r_without.qor_final.area,
            "recovery must reclaim area: {} !< {}",
            r_with.qor_final.area,
            r_without.qor_final.area
        );
        assert!(r_with.counts.downsizes > 0);
        // Recovery never re-breaks the flow's timing view.
        assert!(r_with.qor_final_timer_view.violating_endpoints == 0 || !r_with.closed);
    }

    #[test]
    fn mgba_flow_applies_fewer_transforms() {
        // The central QoR claim (Table 2): the mGBA-driven flow does less
        // work because it does not chase phantom violations.
        let mut gba_sta = tight_design(143, 0.06);
        let gba = run_flow(&mut gba_sta, &FlowConfig::gba());
        let mut mgba_sta = tight_design(143, 0.06);
        let mgba = run_flow(
            &mut mgba_sta,
            &FlowConfig::mgba(MgbaConfig::default(), Solver::ScgRs),
        );
        assert!(
            mgba.counts.total() <= gba.counts.total(),
            "mGBA {} transforms must not exceed GBA {}",
            mgba.counts.total(),
            gba.counts.total()
        );
        assert!(mgba.qor_final.area <= gba.qor_final.area + 1e-9);
        assert!(mgba.mgba_time > Duration::ZERO);
        assert_eq!(mgba.timer, "mGBA");
    }

    #[test]
    fn trace_records_every_pass() {
        let mut sta = tight_design(147, 0.08);
        let r = run_flow(&mut sta, &FlowConfig::gba());
        assert_eq!(r.trace.len(), r.passes);
        for (i, t) in r.trace.iter().enumerate() {
            assert_eq!(t.pass, i + 1);
        }
        if let (Some(first), Some(last)) = (r.trace.first(), r.trace.last()) {
            assert!(last.tns >= first.tns - 1e-9, "TNS must trend upward");
            assert!(last.transforms >= first.transforms);
        }
    }

    #[test]
    fn flow_closes_easy_design() {
        let mut sta = tight_design(144, 0.01);
        let r = run_flow(&mut sta, &FlowConfig::gba());
        assert!(r.closed, "a barely-violating design must close");
        assert_eq!(r.qor_final_timer_view.violating_endpoints, 0);
    }

    #[test]
    fn hold_fixing_phase_reduces_hold_violations() {
        let mut sta = tight_design(148, 0.05);
        let hold_before = crate::hold::hold_violations(&sta).len();
        let mut cfg = FlowConfig::gba();
        cfg.fix_hold = Some(0.0);
        let r = run_flow(&mut sta, &cfg);
        let hold_after = crate::hold::hold_violations(&sta).len();
        assert!(hold_after <= hold_before);
        // Pads (if any were needed) are counted in the buffer tally.
        let _ = r.counts.buffers;
    }

    #[test]
    fn no_violations_needs_no_repair() {
        let n = GeneratorConfig::small(145).generate();
        let mut sta = Sta::new(n, Sdc::with_period(100_000.0), DerateSet::standard()).unwrap();
        let mut cfg = FlowConfig::gba();
        cfg.recovery = false;
        let r = run_flow(&mut sta, &cfg);
        assert!(r.closed);
        assert_eq!(r.counts.total(), 0);
        assert_eq!(r.passes, 0);
        assert_eq!(r.qor_initial.area, r.qor_final.area);
    }

    #[test]
    fn target_violations_allows_early_exit() {
        let mut strict = tight_design(146, 0.10);
        let all = sta_violations(&strict);
        assert!(all > 2);
        let mut cfg = FlowConfig::gba();
        cfg.recovery = false;
        cfg.target_violations = all; // already satisfied
        let r = run_flow(&mut strict, &cfg);
        assert!(r.closed);
        assert_eq!(r.counts.total(), 0);
    }

    fn sta_violations(sta: &Sta) -> usize {
        sta.violating_endpoints().len()
    }
}
